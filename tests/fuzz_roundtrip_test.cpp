// Fuzz round-trip tests for the binary deserializers: every structurally
// mutated container (bit-flip bursts, truncations, garbage extensions,
// length-field lies — appgen::mutate_bytes) must either parse or raise
// support::ParseError. Anything else — a crash, UB, an unexpected
// exception type — fails the test (and trips the sanitizer configs, see
// tools/run_sanitizer_matrix.sh).
#include <gtest/gtest.h>

#include "apk/apk.hpp"
#include "appgen/faulty.hpp"
#include "appgen/generator.hpp"
#include "dex/dexfile.hpp"
#include "nativebin/native_library.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dydroid {
namespace {

constexpr int kIterations = 400;

/// A representative app: dex + native DCL payloads, assets, a manifest.
appgen::GeneratedApp sample_app() {
  appgen::AppSpec spec;
  spec.package = "com.example.fuzzhost";
  spec.category = "TOOLS";
  spec.own_dex_dcl = true;
  spec.own_native_dcl = true;
  support::Rng rng(0xF0220001);
  return appgen::build_app(spec, rng);
}

support::Bytes sample_dex_bytes() {
  const auto app = sample_app();
  const auto pkg = apk::ApkFile::deserialize(app.apk);
  const auto dex = pkg.get(apk::kClassesDexEntry);
  EXPECT_TRUE(dex.has_value());
  return dex->to_bytes();
}

TEST(FuzzRoundTripTest, ValidApkRoundTripsByteIdentically) {
  const auto app = sample_app();
  const auto pkg = apk::ApkFile::deserialize(app.apk);
  const auto bytes = pkg.serialize();
  EXPECT_EQ(bytes, app.apk);
  EXPECT_EQ(apk::ApkFile::deserialize(bytes).serialize(), bytes);
}

TEST(FuzzRoundTripTest, MutatedApkParsesOrRaisesParseError) {
  const auto app = sample_app();
  support::Rng rng(0xF0220002);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto mutated = appgen::mutate_bytes(app.apk, rng);
    for (const auto mode :
         {apk::ParseMode::kLenient, apk::ParseMode::kStrict}) {
      try {
        const auto pkg = apk::ApkFile::deserialize(mutated, mode);
        // Accepted inputs must re-serialize into a stable fixed point.
        const auto bytes = pkg.serialize();
        ASSERT_EQ(apk::ApkFile::deserialize(bytes, mode).serialize(), bytes);
        ++parsed;
      } catch (const support::ParseError&) {
        ++rejected;  // the only acceptable failure mode
      }
    }
  }
  EXPECT_GT(rejected, 0) << "mutations never exercised a rejection path";
  EXPECT_GT(parsed, 0) << "mutations never left a parseable container";
}

TEST(FuzzRoundTripTest, MutatedDexParsesOrRaisesParseError) {
  const auto dex_bytes = sample_dex_bytes();
  ASSERT_NO_THROW({ (void)dex::DexFile::deserialize(dex_bytes); });
  support::Rng rng(0xF0220003);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto mutated = appgen::mutate_bytes(dex_bytes, rng);
    try {
      (void)dex::DexFile::deserialize(mutated);
    } catch (const support::ParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "mutations never exercised a rejection path";
}

TEST(FuzzRoundTripTest, MutatedNativeLibraryParsesOrRaisesParseError) {
  // Harvest a native payload from the generated app's entries.
  const auto app = sample_app();
  const auto pkg = apk::ApkFile::deserialize(app.apk);
  support::Bytes lib_bytes;
  for (const auto& name : pkg.entry_names()) {
    if (name.ends_with(".so")) {
      lib_bytes = pkg.get(name)->to_bytes();
      break;
    }
  }
  ASSERT_FALSE(lib_bytes.empty()) << "sample app carries no .so entry";
  ASSERT_NO_THROW({ (void)nativebin::NativeLibrary::deserialize(lib_bytes); });
  support::Rng rng(0xF0220004);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto mutated = appgen::mutate_bytes(lib_bytes, rng);
    try {
      (void)nativebin::NativeLibrary::deserialize(mutated);
    } catch (const support::ParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "mutations never exercised a rejection path";
}

TEST(FuzzRoundTripTest, MutationsAreSeedDeterministic) {
  const auto app = sample_app();
  support::Rng a(0xF0220005);
  support::Rng b(0xF0220005);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(appgen::mutate_bytes(app.apk, a),
              appgen::mutate_bytes(app.apk, b));
  }
}

}  // namespace
}  // namespace dydroid
