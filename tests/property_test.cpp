// Property-based sweeps (parameterized over seeds):
//   * container round-trips are identities for arbitrary generated content,
//   * corrupted/truncated inputs NEVER crash — they throw ParseError or
//     fail cleanly (the robustness behind "stable operation with little
//     manual intervention"),
//   * the interpreter is deterministic,
//   * the whole pipeline is total over random corpus apps under random
//     runtime configurations.
#include <gtest/gtest.h>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "dex/builder.hpp"
#include "dex/disassembler.hpp"
#include "malware/families.hpp"
#include "nativebin/native_library.hpp"

namespace dydroid {
namespace {

using support::Bytes;
using support::ParseError;
using support::Rng;

/// Random well-formed dex via the family/benign generators (the richest
/// bytecode source we have).
dex::DexFile random_dex(Rng& rng) {
  const auto pick = rng.below(4);
  Bytes bytes;
  if (pick == 3) {
    bytes = malware::generate_benign_payload(rng);
  } else {
    const auto family = malware::family_at(
        static_cast<int>(rng.below(malware::kNumFamilies)));
    malware::PayloadOptions options;
    bytes = malware::generate_payload(family, options, rng);
    if (nativebin::looks_like_native(bytes)) {
      return nativebin::NativeLibrary::deserialize(bytes).code();
    }
  }
  return dex::DexFile::deserialize(bytes);
}

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Round-trip identities.
// ---------------------------------------------------------------------------

class DexRoundTrip : public SeededTest {};

TEST_P(DexRoundTrip, SerializeDeserializeIsIdentity) {
  Rng rng(GetParam());
  const auto dexfile = random_dex(rng);
  const auto bytes = dexfile.serialize();
  const auto back = dex::DexFile::deserialize(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.classes().size(), dexfile.classes().size());
  EXPECT_EQ(back.instruction_count(), dexfile.instruction_count());
  EXPECT_EQ(back.validate(), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DexRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

class DisassemblyTotal : public SeededTest {};

TEST_P(DisassemblyTotal, EveryGeneratedDexDisassembles) {
  Rng rng(GetParam() + 1000);
  const auto dexfile = random_dex(rng);
  const auto text = dex::disassemble(dexfile);
  EXPECT_FALSE(text.empty());
  // Every class appears in the listing.
  for (const auto& cls : dexfile.classes()) {
    EXPECT_NE(text.find(cls.name), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisassemblyTotal,
                         ::testing::Range<std::uint64_t>(0, 10));

class ApkRoundTrip : public SeededTest {};

TEST_P(ApkRoundTrip, GeneratedAppsRoundTrip) {
  Rng rng(GetParam());
  appgen::AppSpec spec;
  spec.package = "com.prop.rt" + std::to_string(GetParam());
  spec.category = "Tools";
  spec.ad_sdk = rng.chance(0.5);
  spec.analytics_sdk = rng.chance(0.3);
  spec.own_native_dcl = rng.chance(0.3);
  spec.lexical = rng.chance(0.5);
  const auto app = appgen::build_app(spec, rng);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  EXPECT_EQ(apk.serialize(), app.apk);
  EXPECT_TRUE(apk.verify_signature());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApkRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 15));

// ---------------------------------------------------------------------------
// Corruption never crashes.
// ---------------------------------------------------------------------------

class CorruptionRobustness : public SeededTest {};

TEST_P(CorruptionRobustness, BitFlippedDexThrowsOrParses) {
  Rng rng(GetParam());
  auto bytes = random_dex(rng).serialize();
  // Flip a handful of random bytes (past the magic so parsing proceeds).
  for (int i = 0; i < 8; ++i) {
    const auto pos = 5 + rng.below(bytes.size() - 5);
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
  try {
    const auto parsed = dex::DexFile::deserialize(bytes);
    // If it parsed, it must also be internally valid (deserialize
    // validates) and re-serializable.
    EXPECT_EQ(parsed.validate(), std::nullopt);
    (void)parsed.serialize();
  } catch (const ParseError&) {
    // Clean rejection is the expected common case.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionRobustness,
                         ::testing::Range<std::uint64_t>(0, 40));

class TruncationRobustness : public SeededTest {};

TEST_P(TruncationRobustness, EveryPrefixThrowsCleanly) {
  Rng rng(GetParam());
  const auto bytes = random_dex(rng).serialize();
  // A spread of prefix lengths, including 0 and len-1.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 1}) {
    Bytes prefix(bytes.begin(),
                 bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)dex::DexFile::deserialize(prefix), ParseError)
        << "prefix " << keep << "/" << bytes.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationRobustness,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(CorruptionRobustnessSingle, RandomBytesAlwaysRejected) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_THROW((void)dex::DexFile::deserialize(junk), ParseError);
    EXPECT_THROW((void)apk::ApkFile::deserialize(junk), ParseError);
    EXPECT_THROW((void)nativebin::NativeLibrary::deserialize(junk),
                 ParseError);
  }
}

// ---------------------------------------------------------------------------
// Determinism & pipeline totality.
// ---------------------------------------------------------------------------

class PipelineTotality : public SeededTest {};

TEST_P(PipelineTotality, RandomSpecsUnderRandomConfigsNeverCrashHost) {
  Rng rng(GetParam() * 31 + 7);
  appgen::AppSpec spec;
  spec.package = "com.prop.total" + std::to_string(GetParam());
  spec.category = "Tools";
  spec.ad_sdk = rng.chance(0.6);
  spec.baidu_remote_sdk = rng.chance(0.2);
  spec.analytics_sdk = rng.chance(0.3);
  spec.own_dex_dcl = rng.chance(0.3);
  spec.sdk_native_dcl = rng.chance(0.4);
  spec.own_native_dcl = rng.chance(0.2);
  spec.lexical = rng.chance(0.5);
  spec.reflection = rng.chance(0.3);
  spec.dex_encryption = rng.chance(0.15);
  spec.anti_repackaging = rng.chance(0.1);
  spec.write_external_permission = rng.chance(0.7);
  spec.crash_on_start = rng.chance(0.05);
  spec.no_activity = rng.chance(0.05);
  if (rng.chance(0.2)) {
    spec.malware.push_back(appgen::MalwarePayloadSpec{
        malware::family_at(static_cast<int>(rng.below(3))),
        {appgen::MalwareTrigger::Connectivity}});
  }
  if (rng.chance(0.2)) {
    spec.vuln = rng.chance(0.5) ? appgen::VulnKind::DexExternalStorage
                                : appgen::VulnKind::NativeOtherAppInternal;
    spec.min_sdk = 16;
  }
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  options.runtime.airplane_mode = rng.chance(0.3);
  options.runtime.wifi_enabled = rng.chance(0.7);
  options.runtime.location_enabled = rng.chance(0.7);
  if (rng.chance(0.3)) {
    options.runtime.time_ms = appgen::kReleaseTimeMs - 1000;
  }
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  core::DyDroid pipeline(std::move(options));
  // Must never throw out of the pipeline, whatever the app does inside.
  const auto report = pipeline.analyze(app.apk, GetParam());
  // Sanity: a status was assigned and the package recovered.
  if (!report.decompile_failed) {
    EXPECT_EQ(report.package, spec.package);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTotality,
                         ::testing::Range<std::uint64_t>(0, 60));

class PipelineDeterminism : public SeededTest {};

TEST_P(PipelineDeterminism, SameSeedSameReport) {
  Rng rng(GetParam());
  appgen::AppSpec spec;
  spec.package = "com.prop.det";
  spec.category = "Tools";
  spec.ad_sdk = true;
  spec.analytics_sdk = true;
  spec.sdk_leaks = privacy::mask_of(privacy::DataType::Imei);
  const auto app = appgen::build_app(spec, rng);

  auto run = [&]() {
    core::PipelineOptions options;
    options.scenario_setup = [&app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
    core::DyDroid pipeline(std::move(options));
    return pipeline.analyze(app.apk, GetParam());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.binaries.size(), b.binaries.size());
  for (std::size_t i = 0; i < a.binaries.size(); ++i) {
    EXPECT_EQ(a.binaries[i].binary.path, b.binaries[i].binary.path);
    EXPECT_EQ(a.binaries[i].binary.bytes, b.binaries[i].binary.bytes);
    EXPECT_EQ(a.binaries[i].privacy.leaks.size(),
              b.binaries[i].privacy.leaks.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDeterminism,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace dydroid
