// Dynamic taint tracking tests: label propagation through registers,
// arithmetic, fields, calls, reflection and streams; sink reporting with
// concrete URIs; comparison against the static backend's blind spots.
#include <gtest/gtest.h>

#include "core/dynamic_taint.hpp"
#include "dex/builder.hpp"
#include "os/device.hpp"
#include "privacy/flowdroid.hpp"

namespace dydroid::core {
namespace {

using privacy::DataType;
using privacy::mask_of;

class DynamicTaintTest : public ::testing::Test {
 protected:
  /// Build an app from a body for static method T.t, run it under taint
  /// tracking, return the leaks.
  std::vector<DynamicLeak> run(
      const std::function<void(dex::DexBuilder&)>& define) {
    dex::DexBuilder b;
    define(b);
    dexfile_ = b.build();
    manifest::Manifest man;
    man.package = "com.taint.app";
    man.add_permission(manifest::kInternet);
    apk::ApkFile apk;
    apk.write_manifest(man);
    apk.write_classes_dex(dexfile_);
    apk.sign("k");
    EXPECT_TRUE(device_.install(apk).ok());
    vm::AppContext app;
    app.manifest = man;
    vm_ = std::make_unique<vm::Vm>(device_, std::move(app));
    EXPECT_TRUE(vm_->load_app(apk).ok());
    DynamicTaintTracker tracker(*vm_);
    (void)vm_->call_static("com.taint.app.T", "t");
    return tracker.leaks();
  }

  privacy::TaintMask dynamic_mask(
      const std::function<void(dex::DexBuilder&)>& define) {
    privacy::TaintMask mask = 0;
    for (const auto& leak : run(define)) mask |= leak.mask;
    return mask;
  }

  os::Device device_;
  std::unique_ptr<vm::Vm> vm_;
  dex::DexFile dexfile_;
};

TEST_F(DynamicTaintTest, DirectSourceToSink) {
  const auto leaks = run([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
    m.move_result(0);
    m.invoke_static("android.util.Log", "d", {0, 0});
    m.done();
  });
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].mask, mask_of(DataType::Imei));
  EXPECT_EQ(leaks[0].sink_api, "android.util.Log.d");
  EXPECT_EQ(leaks[0].call_site_class, "com.taint.app.T");
}

TEST_F(DynamicTaintTest, PropagatesThroughConcatAndArith) {
  const auto mask = dynamic_mask([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.location.LocationManager",
                    "getLastKnownLocation");
    m.move_result(0);
    m.const_str(1, "loc=");
    m.concat(2, 1, 0);
    m.invoke_static("android.util.Log", "d", {1, 2});
    m.done();
  });
  EXPECT_EQ(mask, mask_of(DataType::Location));
}

TEST_F(DynamicTaintTest, OverwriteClearsLabel) {
  const auto mask = dynamic_mask([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
    m.move_result(0);
    m.const_str(0, "clean");
    m.invoke_static("android.util.Log", "d", {0, 0});
    m.done();
  });
  EXPECT_EQ(mask, 0u);
}

TEST_F(DynamicTaintTest, FlowsThroughFieldsAndCalls) {
  const auto mask = dynamic_mask([](dex::DexBuilder& b) {
    auto holder = b.cls("com.taint.app.Holder");
    holder.static_field("stash");
    auto put = holder.static_method("collect", 0);
    put.invoke_static("android.accounts.AccountManager", "getAccounts");
    put.move_result(0);
    put.sput(0, "com.taint.app.Holder", "stash");
    put.done();
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("com.taint.app.Holder", "collect");
    m.sget(1, "com.taint.app.Holder", "stash");
    m.invoke_static("android.util.Log", "d", {1, 1});
    m.done();
  });
  EXPECT_EQ(mask, mask_of(DataType::Account));
}

TEST_F(DynamicTaintTest, ConcreteUriResolvesProviderType) {
  const auto mask = dynamic_mask([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    // The URI is assembled at runtime — static constant tracking can lose
    // this; dynamic sees the concrete value.
    m.const_str(0, "content://");
    m.const_str(1, "call_log");
    m.concat(2, 0, 1);
    m.invoke_static("android.content.ContentResolver", "query", {2});
    m.move_result(3);
    m.invoke_static("android.util.Log", "d", {3, 3});
    m.done();
  });
  EXPECT_EQ(mask, mask_of(DataType::CallLog));
}

TEST_F(DynamicTaintTest, ReflectionDoesNotBreakTracking) {
  // The classic static-analysis blind spot: the sink lives behind a
  // reflective dispatch with a tainted parameter.
  auto define = [](dex::DexBuilder& b) {
    auto ship = b.cls("com.taint.app.Out").static_method("ship", 1);
    ship.invoke_static("android.util.Log", "d", {0, 0});
    ship.done();
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.telephony.TelephonyManager", "getSubscriberId");
    m.move_result(0);
    m.const_str(1, "com.taint.app.Out");
    m.invoke_static("java.lang.Class", "forName", {1});
    m.move_result(2);
    m.const_str(3, "ship");
    m.invoke_virtual("java.lang.Class", "getMethod", {2, 3});
    m.move_result(4);
    // Method.invoke(method, null_receiver, tainted_arg)
    m.const_int(5, 0);
    m.invoke_virtual("java.lang.reflect.Method", "invoke", {4, 5, 0});
    m.done();
  };
  EXPECT_EQ(dynamic_mask(define), mask_of(DataType::Imsi));

  // And the static backend indeed misses it: the reflective edge is not in
  // its call graph, and Out.ship's parameter is never seeded.
  const auto static_report = privacy::analyze_privacy(dexfile_);
  EXPECT_EQ(static_report.leaked_mask(), 0u);
}

TEST_F(DynamicTaintTest, DeadBranchInvisibleToDynamicButSeenStatically) {
  auto define = [](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.const_int(0, 0);
    m.if_eqz(0, "skip");  // always taken: the leak below never executes
    m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
    m.move_result(1);
    m.invoke_static("android.util.Log", "d", {1, 1});
    m.label("skip");
    m.return_void();
    m.done();
  };
  EXPECT_EQ(dynamic_mask(define), 0u);  // never ran
  // Static analysis (path-insensitive) reports it.
  const auto static_report = privacy::analyze_privacy(dexfile_);
  EXPECT_EQ(static_report.leaked_mask(), mask_of(DataType::Imei));
}

TEST_F(DynamicTaintTest, TaintSurvivesStringBytesRoundTrip) {
  const auto mask = dynamic_mask([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.telephony.TelephonyManager",
                    "getSimSerialNumber");
    m.move_result(0);
    m.invoke_static("java.lang.String", "getBytes", {0});
    m.move_result(1);
    m.invoke_static("libc", "exec", {1});
    m.done();
  });
  EXPECT_EQ(mask, mask_of(DataType::Iccid));
}

TEST_F(DynamicTaintTest, UntaintedSinkCallsNotReported) {
  const auto leaks = run([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.const_str(0, "hello");
    m.invoke_static("android.util.Log", "d", {0, 0});
    m.done();
  });
  EXPECT_TRUE(leaks.empty());
}

TEST_F(DynamicTaintTest, MultipleSourcesAccumulate) {
  const auto leaks = run([](dex::DexBuilder& b) {
    auto m = b.cls("com.taint.app.T").static_method("t", 0);
    m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
    m.move_result(0);
    m.invoke_static("android.telephony.TelephonyManager", "getLine1Number");
    m.move_result(1);
    m.concat(2, 0, 1);
    m.invoke_static("android.telephony.SmsManager", "sendTextMessage",
                    {1, 2});
    m.done();
  });
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].mask,
            mask_of(DataType::Imei) | mask_of(DataType::PhoneNumber));
  EXPECT_EQ(leaks[0].sink_api,
            "android.telephony.SmsManager.sendTextMessage");
}

}  // namespace
}  // namespace dydroid::core
