// AppGen tests: spec -> app compilation invariants and corpus quota
// properties (populations, behaviours, determinism).
#include <gtest/gtest.h>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/static_filter.hpp"
#include "obfuscation/detector.hpp"

namespace dydroid::appgen {
namespace {

AppSpec spec_of(const std::string& pkg) {
  AppSpec spec;
  spec.package = pkg;
  spec.category = "Tools";
  return spec;
}

dex::DexFile dex_of(const GeneratedApp& app) {
  const auto apk = apk::ApkFile::deserialize(app.apk);
  return *apk.read_classes_dex();
}

TEST(Generator, PlainAppHasLauncherAndNoDcl) {
  support::Rng rng(1);
  const auto app = build_app(spec_of("com.a.plain"), rng);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  const auto man = apk.read_manifest();
  EXPECT_NE(man.launcher_activity(), nullptr);
  const auto filter = core::scan_dcl_apis(dex_of(app));
  EXPECT_FALSE(filter.any());
  EXPECT_TRUE(app.scenario.hosted_urls.empty());
}

TEST(Generator, AdSdkAppCarriesPayloadAssetAndDclCode) {
  auto spec = spec_of("com.a.ads");
  spec.ad_sdk = true;
  support::Rng rng(2);
  const auto app = build_app(spec, rng);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  EXPECT_TRUE(apk.contains("assets/ad_payload.bin"));
  EXPECT_TRUE(core::scan_dcl_apis(dex_of(app)).dex_dcl);
}

TEST(Generator, BaiduAppHostsItsPayloadUrl) {
  auto spec = spec_of("com.a.baidu");
  spec.baidu_remote_sdk = true;
  support::Rng rng(3);
  const auto app = build_app(spec, rng);
  ASSERT_EQ(app.scenario.hosted_urls.size(), 1u);
  EXPECT_EQ(app.scenario.hosted_urls[0].first,
            "http://mobads.baidu.com/ads/pa/com.a.baidu.jar");
  EXPECT_TRUE(apk::looks_like_apk(app.scenario.hosted_urls[0].second));
}

TEST(Generator, NativeVulnAppShipsCompanion) {
  auto spec = spec_of("com.a.air");
  spec.vuln = VulnKind::NativeOtherAppInternal;
  support::Rng rng(4);
  const auto app = build_app(spec, rng);
  ASSERT_EQ(app.scenario.companion_apks.size(), 1u);
  const auto companion =
      apk::ApkFile::deserialize(app.scenario.companion_apks[0]);
  EXPECT_EQ(companion.read_manifest().package, "com.adobe.air");
  EXPECT_TRUE(companion.contains("lib/armeabi/libCore.so"));
}

TEST(Generator, DeadDclNeverHostsOrLeaks) {
  auto spec = spec_of("com.a.dormant");
  spec.dead_dex_dcl = true;
  spec.dead_native_dcl = true;
  support::Rng rng(5);
  const auto app = build_app(spec, rng);
  const auto filter = core::scan_dcl_apis(dex_of(app));
  EXPECT_TRUE(filter.dex_dcl);
  EXPECT_TRUE(filter.native_dcl);
}

TEST(Generator, PackedAppStructure) {
  auto spec = spec_of("com.a.packed");
  spec.ad_sdk = true;
  spec.dex_encryption = true;
  support::Rng rng(6);
  const auto app = build_app(spec, rng);
  const auto report = obfuscation::analyze_obfuscation(app.apk);
  EXPECT_TRUE(report.dex_encryption);
  // The original ad payload asset survives packing (assets are copied).
  const auto apk = apk::ApkFile::deserialize(app.apk);
  EXPECT_TRUE(apk.contains("assets/ad_payload.bin"));
  EXPECT_TRUE(apk.contains("assets/shield_payload.bin"));
}

TEST(Generator, NoActivityAppHasNoLauncher) {
  auto spec = spec_of("com.a.headless");
  spec.no_activity = true;
  support::Rng rng(7);
  const auto app = build_app(spec, rng);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  EXPECT_EQ(apk.read_manifest().launcher_activity(), nullptr);
}

TEST(Generator, MinSdkAndPermissionRespected) {
  auto spec = spec_of("com.a.old");
  spec.min_sdk = 16;
  spec.write_external_permission = false;
  support::Rng rng(8);
  const auto app = build_app(spec, rng);
  const auto man = apk::ApkFile::deserialize(app.apk).read_manifest();
  EXPECT_EQ(man.min_sdk, 16);
  EXPECT_FALSE(man.has_permission(manifest::kWriteExternalStorage));
}

TEST(Generator, DeterministicGivenSeed) {
  auto spec = spec_of("com.a.det");
  spec.ad_sdk = true;
  spec.malware.push_back(
      MalwarePayloadSpec{malware::Family::SwissCodeMonkeys, {}});
  support::Rng r1(9);
  support::Rng r2(9);
  EXPECT_EQ(build_app(spec, r1).apk, build_app(spec, r2).apk);
}

TEST(Generator, TriggerNames) {
  EXPECT_EQ(trigger_name(MalwareTrigger::SystemTime), "system-time");
  EXPECT_EQ(trigger_name(MalwareTrigger::Location), "location");
}

// ---------------------------------------------------------------------------
// Corpus quota properties.
// ---------------------------------------------------------------------------

class CorpusTest : public ::testing::Test {
 protected:
  static const Corpus& corpus() {
    static const Corpus* c = [] {
      CorpusConfig config;
      config.scale = 0.02;
      return new Corpus(generate_corpus(config));
    }();
    return *c;
  }
};

TEST_F(CorpusTest, PopulationScales) {
  EXPECT_NEAR(static_cast<double>(corpus().apps.size()), 58739 * 0.02, 2.0);
}

TEST_F(CorpusTest, PackagesUnique) {
  std::set<std::string> pkgs;
  for (const auto& app : corpus().apps) pkgs.insert(app.spec.package);
  EXPECT_EQ(pkgs.size(), corpus().apps.size());
}

TEST_F(CorpusTest, DexAndNativeCodeQuotas) {
  std::size_t dex = 0, native = 0, any = 0;
  for (const auto& app : corpus().apps) {
    const bool d = app.spec.any_dex_dcl_code();
    const bool nv = app.spec.any_native_code();
    if (d) ++dex;
    if (nv) ++native;
    if (d || nv) ++any;
  }
  const double s = corpus().config.scale;
  EXPECT_NEAR(static_cast<double>(dex), 40849 * s, 40849 * s * 0.1);
  EXPECT_NEAR(static_cast<double>(native), 25287 * s, 25287 * s * 0.1);
  EXPECT_NEAR(static_cast<double>(any), 46000 * s, 46000 * s * 0.1);
}

TEST_F(CorpusTest, SpecialBehavioursPresent) {
  std::size_t baidu = 0, malware_apps = 0, vulns = 0, packed = 0, anti = 0;
  for (const auto& app : corpus().apps) {
    if (app.spec.baidu_remote_sdk) ++baidu;
    if (!app.spec.malware.empty()) ++malware_apps;
    if (app.spec.vuln != VulnKind::None && !app.spec.vuln_integrity_check) {
      ++vulns;
    }
    if (app.spec.dex_encryption) ++packed;
    if (app.spec.anti_decompilation) ++anti;
  }
  EXPECT_GE(baidu, 1u);
  EXPECT_GE(malware_apps, 3u);  // all three DCL families represented
  EXPECT_GE(vulns, 2u);         // both Table IX categories
  EXPECT_GE(packed, 1u);
  EXPECT_GE(anti, 1u);
}

TEST_F(CorpusTest, VulnDexAppsSupportPre44) {
  for (const auto& app : corpus().apps) {
    if (app.spec.vuln == VulnKind::DexExternalStorage) {
      EXPECT_LT(app.spec.min_sdk, 19);
    }
  }
}

TEST_F(CorpusTest, MalwareAppsArePopular) {
  for (const auto& app : corpus().apps) {
    if (!app.spec.malware.empty()) {
      EXPECT_GE(app.spec.popularity.downloads, 10'000'000);
    }
  }
}

TEST_F(CorpusTest, TriggerGatesAssigned) {
  std::size_t gated = 0;
  for (const auto& app : corpus().apps) {
    for (const auto& m : app.spec.malware) {
      if (!m.triggers.empty()) ++gated;
    }
  }
  EXPECT_GE(gated, 1u);
}

TEST_F(CorpusTest, DeterministicAcrossCalls) {
  CorpusConfig config;
  config.scale = 0.01;
  const auto a = generate_corpus(config);
  const auto b = generate_corpus(config);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    ASSERT_EQ(a.apps[i].apk, b.apps[i].apk);
  }
}

class CorpusScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorpusScaleSweep, QuotaProportionsStableAcrossScales) {
  CorpusConfig config;
  config.scale = GetParam();
  const auto corpus = generate_corpus(config);
  const double n = static_cast<double>(corpus.apps.size());
  double dex = 0, native = 0, lexical = 0, reflection = 0;
  for (const auto& app : corpus.apps) {
    if (app.spec.any_dex_dcl_code()) dex += 1;
    if (app.spec.any_native_code()) native += 1;
    if (app.spec.lexical) lexical += 1;
    if (app.spec.reflection) reflection += 1;
  }
  // Paper proportions, generous tolerance for rounding at small scales.
  EXPECT_NEAR(dex / n, 40849.0 / 58739.0, 0.03);
  EXPECT_NEAR(native / n, 25287.0 / 58739.0, 0.03);
  EXPECT_NEAR(lexical / n, 0.8995, 0.02);
  EXPECT_NEAR(reflection / n, 0.522, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Scales, CorpusScaleSweep,
                         ::testing::Values(0.01, 0.03, 0.08));

TEST(Corpus, BadScaleRejected) {
  CorpusConfig config;
  config.scale = 0;
  EXPECT_THROW((void)generate_corpus(config), std::invalid_argument);
  config.scale = 1.5;
  EXPECT_THROW((void)generate_corpus(config), std::invalid_argument);
}

TEST(Corpus, ScaleFromEnvFallback) {
  EXPECT_DOUBLE_EQ(scale_from_env(0.07), 0.07);
}

TEST(Corpus, CategoriesListed) {
  EXPECT_EQ(play_categories().size(), 42u);
}

}  // namespace
}  // namespace dydroid::appgen
