// Sharded corpus execution and the deterministic shard-journal merge
// (docs/SHARDING.md): N independent `--shard I/N` runs, folded by
// merge_shard_journals into one journal whose replay is byte-identical to
// an unsharded run — at any worker count, faults on or off. Plus the loud
// failure matrix (missing/duplicated shards, overlapping residues,
// mismatched fingerprints, corrupt metadata), the kill-one-shard →
// resume → merge recovery path, and the validation boundaries for the
// seed-overflow and trace-context-narrowing bugfixes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "driver/shard_merge.hpp"
#include "support/fault.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dydroid::driver {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_shard_" + tag + "_" +
            std::to_string(::getpid()) + ".jrnl";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

void expect_same_counts(const AggregateStats& got,
                        const AggregateStats& want) {
  EXPECT_EQ(got.apps, want.apps);
  EXPECT_EQ(got.not_run, want.not_run);
  EXPECT_EQ(got.rewriting_failure, want.rewriting_failure);
  EXPECT_EQ(got.no_activity, want.no_activity);
  EXPECT_EQ(got.crashed, want.crashed);
  EXPECT_EQ(got.exercised, want.exercised);
  EXPECT_EQ(got.decompile_failed, want.decompile_failed);
  EXPECT_EQ(got.static_dcl, want.static_dcl);
  EXPECT_EQ(got.intercepted, want.intercepted);
  EXPECT_EQ(got.remote_loaders, want.remote_loaders);
  EXPECT_EQ(got.malware_carriers, want.malware_carriers);
  EXPECT_EQ(got.vulnerable, want.vulnerable);
  EXPECT_EQ(got.privacy_leaking, want.privacy_leaking);
  EXPECT_EQ(got.binaries, want.binaries);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.retried, want.retried);
  EXPECT_EQ(got.quarantined, want.quarantined);
}

RunnerConfig shard_config(std::uint32_t index, std::uint32_t count,
                          const std::string& journal, std::size_t jobs = 1) {
  RunnerConfig config;
  config.jobs = jobs;
  config.shard_index = index;
  config.shard_count = count;
  config.journal_path = journal;
  return config;
}

/// Run all N shards of `corpus` through `pipeline`, journaling each shard
/// into journals[i].path().
void run_shards(const core::DyDroid& pipeline, const appgen::Corpus& corpus,
                const std::vector<TempFile>& journals, std::size_t jobs) {
  const std::uint32_t count = static_cast<std::uint32_t>(journals.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto result =
        CorpusRunner(pipeline, shard_config(i, count, journals[i].path(), jobs))
            .run(corpus);
    ASSERT_FALSE(result.interrupted);
    ASSERT_EQ(result.analyzed, result.shard_apps);
    ASSERT_EQ(result.shard_apps,
              shard_app_count(corpus.apps.size(), i, count));
  }
}

std::vector<std::string> journal_paths(const std::vector<TempFile>& journals) {
  std::vector<std::string> paths;
  for (const auto& journal : journals) paths.push_back(journal.path());
  return paths;
}

/// Expect merge_shard_journals to fail with a message containing `needle`.
void expect_merge_failure(const std::string& out,
                          const std::vector<std::string>& inputs,
                          const std::string& needle) {
  const auto merged = merge_shard_journals(out, inputs);
  ASSERT_FALSE(merged.ok()) << "merge unexpectedly succeeded";
  EXPECT_NE(merged.error().find(needle), std::string::npos)
      << "error was: " << merged.error();
}

// ---------------------------------------------------------------------------
// Golden equivalence: unsharded vs N shards merged, at every worker count,
// faults off and on.
// ---------------------------------------------------------------------------

void check_golden_equivalence(const core::DyDroid& pipeline,
                              const appgen::Corpus& corpus) {
  const std::size_t n = corpus.apps.size();
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, golden_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      std::vector<TempFile> journals;
      journals.reserve(shards);
      for (std::uint32_t i = 0; i < shards; ++i) {
        journals.emplace_back("gold_n" + std::to_string(shards) + "_w" +
                              std::to_string(workers) + "_s" +
                              std::to_string(i));
      }
      run_shards(pipeline, corpus, journals, workers);

      TempFile merged_out("gold_merged_n" + std::to_string(shards) + "_w" +
                          std::to_string(workers));
      const auto merged =
          merge_shard_journals(merged_out.path(), journal_paths(journals));
      ASSERT_TRUE(merged.ok()) << merged.error();
      EXPECT_EQ(merged.value().shard_count, shards);
      EXPECT_EQ(merged.value().corpus_size, n);
      EXPECT_EQ(merged.value().records_merged, n);
      EXPECT_EQ(merged.value().duplicates_dropped, 0u);
      EXPECT_EQ(merged.value().torn_bytes, 0u);

      // The merged journal replays like any plain journal: every outcome
      // restored, none re-analyzed, reports byte-identical to the
      // uninterrupted unsharded run.
      RunnerConfig replay_config;
      replay_config.jobs = 2;
      replay_config.journal_path = merged_out.path();
      replay_config.resume = true;
      const auto replayed =
          CorpusRunner(pipeline, replay_config).run(corpus);
      EXPECT_EQ(replayed.replayed, n);
      EXPECT_EQ(replayed.analyzed, 0u);
      const auto replayed_json = report_jsons(replayed);
      ASSERT_EQ(replayed_json.size(), golden_json.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(replayed_json[i], golden_json[i])
            << "shards=" << shards << " workers=" << workers << " app=" << i;
      }
      expect_same_counts(replayed.stats, golden.stats);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(replayed.outcomes[i].seed,
                  seed_for_app(kDefaultSeedBase, i));
      }
    }
  }
}

TEST(ShardMerge, GoldenEquivalenceAcrossShardAndWorkerCounts) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  ASSERT_GT(corpus.apps.size(), 10u);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  check_golden_equivalence(pipeline, corpus);
}

TEST(ShardMerge, GoldenEquivalenceWithFaultsAndRetries) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  auto plan = support::FaultPlan::parse("device.boot=p:0.4");
  ASSERT_TRUE(plan.ok());
  core::PipelineOptions options;
  options.faults = &plan.value();
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));
  check_golden_equivalence(pipeline, corpus);
}

// ---------------------------------------------------------------------------
// Journal format: shard journals lead with metadata; the merged journal is
// a plain journal preserving the winning payloads verbatim.
// ---------------------------------------------------------------------------

TEST(ShardMerge, ShardJournalLeadsWithItsMetadataRecord) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("meta");
  const auto result =
      CorpusRunner(pipeline, shard_config(1, 3, journal.path())).run(corpus);
  EXPECT_EQ(result.shard_apps, shard_app_count(corpus.apps.size(), 1, 3));

  auto read = support::read_journal(journal.path());
  ASSERT_TRUE(read.ok());
  const auto& records = read.value().records;
  ASSERT_EQ(records.size(), result.shard_apps + 1);  // meta + outcomes
  ASSERT_TRUE(support::is_shard_meta(records.front()));
  const auto meta = support::decode_shard_meta(records.front());
  EXPECT_EQ(meta.shard_index, 1u);
  EXPECT_EQ(meta.shard_count, 3u);
  EXPECT_EQ(meta.seed_base, kDefaultSeedBase);
  EXPECT_EQ(meta.corpus_size, corpus.apps.size());
  EXPECT_EQ(meta.outcome_codec_version, kOutcomeCodecVersion);
  // Every outcome record stays in the shard's residue class.
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_FALSE(support::is_shard_meta(records[i]));
    EXPECT_EQ(decode_outcome(records[i]).index % 3, 1u);
  }
}

TEST(ShardMerge, UnshardedJournalCarriesNoMetadataRecord) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("nometa");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  (void)CorpusRunner(pipeline, config).run(corpus);
  auto read = support::read_journal(journal.path());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), corpus.apps.size());
  for (const auto& record : read.value().records) {
    EXPECT_FALSE(support::is_shard_meta(record));
  }
}

TEST(ShardMerge, MergedJournalIsPlainAndBytePreserving) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  std::vector<TempFile> journals;
  for (std::uint32_t i = 0; i < 2; ++i) {
    journals.emplace_back("preserve_s" + std::to_string(i));
  }
  run_shards(pipeline, corpus, journals, 1);

  // Index the shard journals' outcome payloads by global index.
  std::vector<support::Bytes> expected(n);
  for (const auto& journal : journals) {
    auto read = support::read_journal(journal.path());
    ASSERT_TRUE(read.ok());
    for (std::size_t i = 1; i < read.value().records.size(); ++i) {
      const auto& record = read.value().records[i];
      expected[decode_outcome(record).index] = record;
    }
  }

  TempFile merged_out("preserve_merged");
  const auto merged =
      merge_shard_journals(merged_out.path(), journal_paths(journals));
  ASSERT_TRUE(merged.ok()) << merged.error();
  auto read = support::read_journal(merged_out.path());
  ASSERT_TRUE(read.ok());
  const auto& records = read.value().records;
  ASSERT_EQ(records.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(support::is_shard_meta(records[i]));
    EXPECT_EQ(decode_outcome(records[i]).index, i);  // ascending order
    EXPECT_EQ(records[i], expected[i]);              // verbatim bytes
  }
}

TEST(ShardMerge, DuplicateRecordsWithinAShardResolveLastWriterWins) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  std::vector<TempFile> journals;
  for (std::uint32_t i = 0; i < 2; ++i) {
    journals.emplace_back("dup_s" + std::to_string(i));
  }
  run_shards(pipeline, corpus, journals, 1);

  // Forge a newer record for app 0 (shard 0's residue class, correct seed)
  // — the artifact a kill-during-resume leaves behind.
  const auto shard0 =
      CorpusRunner(pipeline, shard_config(0, 2, "")).run(corpus);
  AppOutcome forged = shard0.outcomes[0];
  forged.report.package = "com.example.superseded.by.this";
  {
    auto writer = support::JournalWriter::open(journals[0].path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().append(encode_outcome(0, forged)).ok());
  }

  TempFile merged_out("dup_merged");
  const auto merged =
      merge_shard_journals(merged_out.path(), journal_paths(journals));
  ASSERT_TRUE(merged.ok()) << merged.error();
  EXPECT_EQ(merged.value().duplicates_dropped, 1u);

  RunnerConfig replay_config;
  replay_config.jobs = 1;
  replay_config.journal_path = merged_out.path();
  replay_config.resume = true;
  const auto replayed = CorpusRunner(pipeline, replay_config).run(corpus);
  EXPECT_EQ(replayed.analyzed, 0u);
  EXPECT_EQ(replayed.outcomes[0].report.package,
            "com.example.superseded.by.this");
}

// ---------------------------------------------------------------------------
// Kill one shard mid-run, resume it, merge — back to golden.
// ---------------------------------------------------------------------------

TEST(ShardMerge, KilledShardResumesThenMergesToGolden) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  const core::DyDroid golden_pipeline{core::PipelineOptions{}};
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden =
      CorpusRunner(golden_pipeline, golden_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  std::vector<TempFile> journals;
  for (std::uint32_t i = 0; i < 3; ++i) {
    journals.emplace_back("kill_s" + std::to_string(i));
  }
  // Every shard runs under the SAME kill plan (the fault plan is part of
  // the config fingerprint, so mixing a faulted shard with fault-free
  // shards is — correctly — a merge error). Each shard dies after its
  // 35th outcome append and is resumed, under the same plan, until done;
  // the resumed round replays the 35 and appends the remaining few
  // without re-reaching the kill threshold.
  const std::size_t k = 35;
  bool checked_premature = false;
  for (std::uint32_t i = 0; i < 3; ++i) {
    bool complete = false;
    bool killed = false;
    for (int round = 0; round < 4 && !complete; ++round) {
      auto plan = support::FaultPlan::parse("driver.kill=nth:" +
                                            std::to_string(k));
      ASSERT_TRUE(plan.ok());
      core::PipelineOptions options;
      options.faults = &plan.value();
      const core::DyDroid pipeline(std::move(options));
      RunnerConfig config = shard_config(i, 3, journals[i].path());
      config.resume = round > 0;
      try {
        const auto result = CorpusRunner(pipeline, config).run(corpus);
        EXPECT_EQ(result.completed(), result.shard_apps);
        complete = true;
      } catch (const RunAborted& aborted) {
        killed = true;
        if (round == 0) {
          // The shard-metadata record counts as an append, so a killed
          // fresh sharded run reports k outcomes + 1 meta record.
          EXPECT_EQ(aborted.journaled(), k + 1);
        }
      }
    }
    ASSERT_TRUE(complete) << "shard " << i << " never completed";
    ASSERT_TRUE(killed) << "shard " << i
                        << " was never killed — raise the corpus scale";
    if (i == 0 && !checked_premature) {
      // With only one complete shard, merging fails loudly and points at
      // the missing shards.
      checked_premature = true;
      TempFile premature("kill_premature");
      expect_merge_failure(premature.path(),
                           {journals[0].path()},
                           "missing the journal for shard");
    }
  }
  // An artificially truncated shard (drop the tail record) fails the
  // coverage check and points at resuming that shard.
  {
    TempFile clipped("kill_clipped");
    auto read = support::read_journal(journals[1].path());
    ASSERT_TRUE(read.ok());
    // Re-journal all but the last record of shard 1 into a copy.
    {
      support::JournalWriterOptions options;
      options.truncate = true;
      auto writer = support::JournalWriter::open(clipped.path(), options);
      ASSERT_TRUE(writer.ok());
      for (std::size_t r = 0; r + 1 < read.value().records.size(); ++r) {
        ASSERT_TRUE(writer.value().append(read.value().records[r]).ok());
      }
    }
    TempFile premature("kill_premature2");
    expect_merge_failure(
        premature.path(),
        {journals[0].path(), clipped.path(), journals[2].path()},
        "resume that shard to completion");
  }

  // The killed-and-resumed shard journals hold golden-grade outcomes: the
  // driver.kill fault only ever fired at the driver's append boundary,
  // never inside an app's analysis.
  TempFile merged_out("kill_merged");
  const auto merged =
      merge_shard_journals(merged_out.path(), journal_paths(journals));
  ASSERT_TRUE(merged.ok()) << merged.error();

  RunnerConfig replay_config;
  replay_config.jobs = 2;
  replay_config.journal_path = merged_out.path();
  replay_config.resume = true;
  const auto replayed =
      CorpusRunner(golden_pipeline, replay_config).run(corpus);
  EXPECT_EQ(replayed.replayed, n);
  const auto replayed_json = report_jsons(replayed);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(replayed_json[i], golden_json[i]) << "app " << i;
  }
  expect_same_counts(replayed.stats, golden.stats);
}

// ---------------------------------------------------------------------------
// Loud merge failures: never a silent partial or wrong merge.
// ---------------------------------------------------------------------------

class ShardFailures : public testing::Test {
 protected:
  void SetUp() override {
    support::set_log_level(support::LogLevel::Error);
    corpus_ = small_corpus();
    for (std::uint32_t i = 0; i < 2; ++i) {
      journals_.emplace_back("fail_s" + std::to_string(i));
    }
    const core::DyDroid pipeline{core::PipelineOptions{}};
    run_shards(pipeline, corpus_, journals_, 1);
  }

  appgen::Corpus corpus_;
  std::vector<TempFile> journals_;
};

TEST_F(ShardFailures, EmptyInputFailsLoudly) {
  TempFile out("fail_empty");
  expect_merge_failure(out.path(), {}, "no shard journals given");
}

TEST_F(ShardFailures, MissingShardFailsLoudly) {
  TempFile out("fail_missing");
  expect_merge_failure(out.path(), {journals_[0].path()},
                       "missing the journal for shard 1/2");
}

TEST_F(ShardFailures, DuplicatedShardInputFailsLoudly) {
  TempFile out("fail_dupshard");
  expect_merge_failure(
      out.path(),
      {journals_[0].path(), journals_[1].path(), journals_[0].path()},
      "appears in more than one input journal");
}

TEST_F(ShardFailures, UnshardedJournalRejected) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile plain("fail_plain");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = plain.path();
  (void)CorpusRunner(pipeline, config).run(corpus_);
  TempFile out("fail_plain_merged");
  expect_merge_failure(out.path(), {plain.path(), journals_[1].path()},
                       "not a shard journal");
}

TEST_F(ShardFailures, ConfigFingerprintMismatchFailsLoudly) {
  // Re-run shard 1 through a differently configured pipeline (the retry
  // policy is part of the config fingerprint).
  core::PipelineOptions options;
  options.retry_on_crash = true;
  const core::DyDroid other(std::move(options));
  TempFile other_journal("fail_fingerprint");
  (void)CorpusRunner(other, shard_config(1, 2, other_journal.path()))
      .run(corpus_);
  TempFile out("fail_fingerprint_merged");
  expect_merge_failure(out.path(),
                       {journals_[0].path(), other_journal.path()},
                       "config fingerprint");
}

TEST_F(ShardFailures, SeedBaseMismatchFailsLoudly) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config = shard_config(1, 2, "");
  TempFile other_journal("fail_seedbase");
  config.journal_path = other_journal.path();
  config.seed_base = kDefaultSeedBase + 1;
  (void)CorpusRunner(pipeline, config).run(corpus_);
  TempFile out("fail_seedbase_merged");
  expect_merge_failure(out.path(),
                       {journals_[0].path(), other_journal.path()},
                       "seed base");
}

TEST_F(ShardFailures, ShardCountMismatchFailsLoudly) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile other_journal("fail_count");
  (void)CorpusRunner(pipeline, shard_config(1, 3, other_journal.path()))
      .run(corpus_);
  TempFile out("fail_count_merged");
  expect_merge_failure(out.path(),
                       {journals_[0].path(), other_journal.path()},
                       "metadata disagrees");
}

TEST_F(ShardFailures, OverlappingResidueRecordFailsLoudly) {
  // Forge a record for app 1 (≡ 1 mod 2) into shard 0's journal: an
  // overlap between shards, even with the correct derived seed.
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig full_config;
  full_config.jobs = 1;
  const auto full = CorpusRunner(pipeline, full_config).run(corpus_);
  {
    auto writer = support::JournalWriter::open(journals_[0].path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().append(encode_outcome(1, full.outcomes[1])).ok());
  }
  TempFile out("fail_overlap_merged");
  expect_merge_failure(out.path(), journal_paths(journals_),
                       "does not belong to shard 0/2");
}

TEST_F(ShardFailures, OutOfRangeRecordFailsLoudly) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig full_config;
  full_config.jobs = 1;
  const auto full = CorpusRunner(pipeline, full_config).run(corpus_);
  AppOutcome forged = full.outcomes[0];
  const std::size_t bogus = corpus_.apps.size() + 2;  // even: shard 0's class
  forged.seed = seed_for_app(kDefaultSeedBase, bogus);
  {
    auto writer = support::JournalWriter::open(journals_[0].path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().append(encode_outcome(bogus, forged)).ok());
  }
  TempFile out("fail_range_merged");
  expect_merge_failure(out.path(), journal_paths(journals_),
                       "but the corpus has");
}

TEST_F(ShardFailures, FailedMergeNeverTouchesTheOutputPath) {
  TempFile out("fail_notouch");
  const std::vector<std::string> inputs = {journals_[0].path()};
  const auto merged = merge_shard_journals(out.path(), inputs);
  ASSERT_FALSE(merged.ok());
  // Validation failed before the output was opened: no file left behind.
  EXPECT_NE(::access(out.path().c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// Per-shard resume validation: a journal only resumes under the exact
// shard configuration that produced it.
// ---------------------------------------------------------------------------

void expect_run_failure(const core::DyDroid& pipeline,
                        const RunnerConfig& config,
                        const appgen::Corpus& corpus,
                        const std::string& needle) {
  try {
    (void)CorpusRunner(pipeline, config).run(corpus);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(ShardResume, ShardedJournalRefusesUnshardedResume) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("resume_unsharded");
  (void)CorpusRunner(pipeline, shard_config(0, 2, journal.path()))
      .run(corpus);
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  config.resume = true;
  expect_run_failure(pipeline, config, corpus,
                     "belongs to a sharded run");
}

TEST(ShardResume, ShardedJournalRefusesTheWrongShard) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("resume_wrongshard");
  (void)CorpusRunner(pipeline, shard_config(0, 2, journal.path()))
      .run(corpus);
  RunnerConfig config = shard_config(1, 2, journal.path());
  config.resume = true;
  expect_run_failure(pipeline, config, corpus,
                     "journal does not match this run");
}

TEST(ShardResume, UnshardedJournalRefusesShardedResume) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("resume_plain");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  (void)CorpusRunner(pipeline, config).run(corpus);
  RunnerConfig sharded = shard_config(0, 2, journal.path());
  sharded.resume = true;
  expect_run_failure(pipeline, sharded, corpus,
                     "no shard-metadata record");
}

TEST(ShardResume, CompletedShardResumesAsANoOp) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("resume_noop");
  const auto first =
      CorpusRunner(pipeline, shard_config(1, 2, journal.path())).run(corpus);
  RunnerConfig config = shard_config(1, 2, journal.path());
  config.resume = true;
  const auto resumed = CorpusRunner(pipeline, config).run(corpus);
  EXPECT_EQ(resumed.analyzed, 0u);
  EXPECT_EQ(resumed.replayed, first.shard_apps);
  EXPECT_FALSE(resumed.interrupted);
  // And the journal still holds exactly one metadata record (the resume
  // must not stamp a second one).
  auto read = support::read_journal(journal.path());
  ASSERT_TRUE(read.ok());
  std::size_t metas = 0;
  for (const auto& record : read.value().records) {
    if (support::is_shard_meta(record)) ++metas;
  }
  EXPECT_EQ(metas, 1u);
}

// ---------------------------------------------------------------------------
// Validation boundaries: the seed-overflow and index-narrowing bugfixes.
// ---------------------------------------------------------------------------

TEST(ShardValidation, SeedOverflowBoundary) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // Empty and single-app corpora never wrap.
  static_assert(!seed_range_overflows(kMax, 0));
  static_assert(!seed_range_overflows(kMax, 1));
  // Exactly at the boundary: base + (count-1) == UINT64_MAX is fine...
  static_assert(!seed_range_overflows(kMax - 9, 10));
  // ...one more app wraps.
  static_assert(seed_range_overflows(kMax - 9, 11));
  static_assert(seed_range_overflows(kMax, 2));
  static_assert(!seed_range_overflows(0, kMax));

  RunnerConfig config;
  config.seed_base = kMax - 9;
  EXPECT_NO_THROW(validate_runner_config(config, 10));
  try {
    validate_runner_config(config, 11);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
        << e.what();
  }
}

TEST(ShardValidation, SeedOverflowIsCaughtBeforeAnyAppRuns) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.seed_base = std::numeric_limits<std::uint64_t>::max() - 1;
  expect_run_failure(pipeline, config, corpus, "overflows");
}

TEST(ShardValidation, CorpusCeilingGuardsTheTraceContextNarrowing) {
  // Global indices thread through the u32 trace context; the validator
  // rejects any corpus whose indices could not survive the narrowing
  // (kTraceNoApp 0xFFFFFFFF is reserved as the no-app sentinel).
  RunnerConfig config;
  EXPECT_NO_THROW(validate_runner_config(config, kMaxCorpusApps));
  try {
    validate_runner_config(config, kMaxCorpusApps + 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ceiling"), std::string::npos)
        << e.what();
  }
}

TEST(ShardValidation, ShardFieldRejections) {
  RunnerConfig config;
  config.shard_index = 1;  // index set without a count
  EXPECT_THROW(validate_runner_config(config, 10), std::runtime_error);
  config.shard_count = 2;
  config.shard_index = 2;  // out of range
  EXPECT_THROW(validate_runner_config(config, 10), std::runtime_error);
  config.shard_index = 1;
  EXPECT_NO_THROW(validate_runner_config(config, 10));
}

TEST(ShardValidation, ShardAppCountPartitionsTheCorpus) {
  for (const std::uint64_t corpus : {0ull, 1ull, 7ull, 12ull, 100ull}) {
    EXPECT_EQ(shard_app_count(corpus, 0, 0), corpus);  // unsharded
    for (const std::uint32_t shards : {1u, 2u, 3u, 8u, 16u}) {
      std::uint64_t total = 0;
      for (std::uint32_t i = 0; i < shards; ++i) {
        total += shard_app_count(corpus, i, shards);
      }
      EXPECT_EQ(total, corpus) << "corpus=" << corpus
                               << " shards=" << shards;
    }
  }
  // More shards than apps: the high shards own nothing and their runs are
  // empty successes, not errors.
  EXPECT_EQ(shard_app_count(2, 5, 8), 0u);
}

TEST(ShardValidation, ShardWithNoAppsCompletesEmpty) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::uint32_t shards =
      static_cast<std::uint32_t>(corpus.apps.size()) + 3;
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempFile journal("emptyshard");
  const auto result =
      CorpusRunner(pipeline,
                   shard_config(shards - 1, shards, journal.path()))
          .run(corpus);
  EXPECT_EQ(result.shard_apps, 0u);
  EXPECT_EQ(result.analyzed, 0u);
  EXPECT_FALSE(result.interrupted);
}

}  // namespace
}  // namespace dydroid::driver
