// Unit tests for support: byte IO, hashing, RNG determinism, strings.
#include <gtest/gtest.h>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace dydroid::support {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.blob(to_bytes("payload"));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(to_string(r.blob()), "payload");
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), ParseError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // declares 100 bytes but provides none
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), ParseError);
}

TEST(Hash, Fnv1aKnownProperties) {
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("dydroid"), fnv1a64("dydroid"));
  EXPECT_NE(fnv1a64(""), 0u);
}

TEST(Hash, Crc32MatchesIeeeVector) {
  // Standard check value for "123456789".
  const auto data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, PackageOf) {
  EXPECT_EQ(package_of("com.example.app.Main"), "com.example.app");
  EXPECT_EQ(package_of("Main"), "");
}

TEST(Strings, PackagePrefixBoundaries) {
  EXPECT_TRUE(package_has_prefix("com.foo.bar", "com.foo"));
  EXPECT_TRUE(package_has_prefix("com.foo", "com.foo"));
  EXPECT_FALSE(package_has_prefix("com.foobar", "com.foo"));
  EXPECT_FALSE(package_has_prefix("com.foo", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  auto bad = Result<int>::failure("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(Status, DefaultOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  auto f = Status::failure("nope");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error(), "nope");
}

}  // namespace
}  // namespace dydroid::support
