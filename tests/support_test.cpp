// Unit tests for support: byte IO, hashing, RNG determinism, strings.
#include <gtest/gtest.h>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace dydroid::support {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.blob(to_bytes("payload"));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(to_string(r.blob()), "payload");
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), ParseError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // declares 100 bytes but provides none
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), ParseError);
}

TEST(Hash, Fnv1aKnownProperties) {
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("dydroid"), fnv1a64("dydroid"));
  EXPECT_NE(fnv1a64(""), 0u);
}

TEST(Hash, Crc32MatchesIeeeVector) {
  // Standard check value for "123456789".
  const auto data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// NIST FIPS 180-4 test vectors (the one-block, two-block and empty-message
// cases from the SHA-256 examples plus the million-'a' stress vector).
TEST(Hash, Sha256NistVectors) {
  EXPECT_EQ(
      sha256("").hex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256("abc").hex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  const std::string million(1000000, 'a');
  EXPECT_EQ(
      sha256(million).hex(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// The digest must not depend on update() chunking: byte-at-a-time, odd
// block-straddling splits and one-shot all agree.
TEST(Hash, Sha256IncrementalChunkingEquivalence) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, 256 bits at a time, "
      "until the corpus of 58,739 apps is deduplicated by content.";
  const auto oneshot = sha256(message);
  Sha256 bytewise;
  for (char c : message) bytewise.update(std::string_view(&c, 1));
  EXPECT_EQ(bytewise.digest(), oneshot);
  for (std::size_t split : {1u, 55u, 56u, 63u, 64u, 65u, 100u}) {
    Sha256 h;
    h.update(std::string_view(message).substr(0, split));
    h.update(std::string_view(message).substr(split));
    EXPECT_EQ(h.digest(), oneshot) << "split at " << split;
  }
}

TEST(Hash, Sha256DigestHelpers) {
  const auto d = sha256("abc");
  EXPECT_EQ(d.hex().size(), 64u);
  // prefix64 reads like the leading hex digits.
  EXPECT_EQ(d.prefix64(), 0xba7816bf8f01cfeaull);
  EXPECT_EQ(Sha256DigestHash{}(d), Sha256DigestHash{}(sha256("abc")));
  EXPECT_NE(sha256("abc"), sha256("abd"));
  EXPECT_LT(d, sha256(""));  // ba... orders before e3... bytewise
}

// The weak-fingerprint regression (ISSUE 7): 64-bit FNV-1a collisions are
// craftable, so identity decisions must route through SHA-256. These two
// 13-byte inputs were crafted by a birthday search over the FNV state
// space: they collide under fnv1a64 yet are different content.
TEST(Hash, CraftedFnvCollisionDistinctUnderSha256) {
  const std::string a = std::string("adhkfmajpgmp") + '\x61';
  const std::string b = std::string("dknbajjdhieb") + '\x17';
  ASSERT_NE(a, b);
  EXPECT_EQ(fnv1a64(a), fnv1a64(b));           // FNV conflates them...
  EXPECT_EQ(fnv1a64(a), 0x163793a619fe055cull);
  EXPECT_NE(sha256(a), sha256(b));             // ...SHA-256 does not.
  // Second independent pair, same property.
  const std::string c = std::string("olbnmgppjhkk") + '\x61';
  const std::string d = std::string("amllapgdikhd") + '\x92';
  EXPECT_EQ(fnv1a64(c), fnv1a64(d));
  EXPECT_NE(sha256(c), sha256(d));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, PackageOf) {
  EXPECT_EQ(package_of("com.example.app.Main"), "com.example.app");
  EXPECT_EQ(package_of("Main"), "");
}

TEST(Strings, PackagePrefixBoundaries) {
  EXPECT_TRUE(package_has_prefix("com.foo.bar", "com.foo"));
  EXPECT_TRUE(package_has_prefix("com.foo", "com.foo"));
  EXPECT_FALSE(package_has_prefix("com.foobar", "com.foo"));
  EXPECT_FALSE(package_has_prefix("com.foo", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  auto bad = Result<int>::failure("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(Status, DefaultOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  auto f = Status::failure("nope");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error(), "nope");
}

}  // namespace
}  // namespace dydroid::support
