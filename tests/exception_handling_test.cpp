// Try/catch (TryEnter/TryExit) semantics: handler dispatch, nesting,
// scoping, uncatchable budget violations, and the realistic use case —
// SDKs that survive offline errors instead of crashing the host app.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "monkey/monkey.hpp"
#include "os/device.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {
namespace {

struct Env {
  os::Device device;
  std::unique_ptr<Vm> vm;
};

Env boot(dex::DexFile dexfile, VmLimits limits = {}) {
  Env env;
  manifest::Manifest man;
  man.package = "com.trycatch.app";
  man.add_permission(manifest::kInternet);
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(std::move(dexfile));
  apk.sign("k");
  EXPECT_TRUE(env.device.install(apk).ok());
  AppContext app;
  app.manifest = man;
  env.vm = std::make_unique<Vm>(env.device, std::move(app), limits);
  EXPECT_TRUE(env.vm->load_app(apk).ok());
  return env;
}

TEST(TryCatch, CatchesThrowAndReceivesMessage) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.const_str(1, "boom");
  m.throw_str(1);
  m.label("handler");
  m.ret(0);  // returns the caught message
  m.done();
  auto env = boot(b.build());
  EXPECT_EQ(env.vm->call_static("a.T", "f").as_str(), "boom");
}

TEST(TryCatch, NoExceptionSkipsHandler) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.const_int(1, 7);
  m.try_exit();
  m.ret(1);
  m.label("handler");
  m.const_int(1, -1);
  m.ret(1);
  m.done();
  auto env = boot(b.build());
  EXPECT_EQ(env.vm->call_static("a.T", "f").as_int(), 7);
}

TEST(TryCatch, CatchesExceptionsFromCallees) {
  dex::DexBuilder b;
  b.cls("a.Deep").static_method("die", 0)
      .const_str(0, "from callee")
      .throw_str(0)
      .done();
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.invoke_static("a.Deep", "die");
  m.const_int(1, 0);
  m.ret(1);
  m.label("handler");
  m.const_int(1, 1);
  m.ret(1);
  m.done();
  auto env = boot(b.build());
  EXPECT_EQ(env.vm->call_static("a.T", "f").as_int(), 1);
}

TEST(TryCatch, CatchesFrameworkExceptions) {
  // IOException from loading a missing file is catchable.
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.new_instance(1, "java.io.FileInputStream");
  m.const_str(2, "/no/such/file");
  m.invoke_virtual("java.io.FileInputStream", "<init>", {1, 2});
  m.const_str(3, "opened?!");
  m.ret(3);
  m.label("handler");
  m.ret(0);
  m.done();
  auto env = boot(b.build());
  EXPECT_NE(env.vm->call_static("a.T", "f").as_str().find(
                "FileNotFoundException"),
            std::string::npos);
}

TEST(TryCatch, NestedHandlersUnwindInnermostFirst) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "outer");
  m.try_enter(1, "inner");
  m.const_str(2, "x");
  m.throw_str(2);
  m.label("inner");
  m.const_int(3, 10);
  // Re-throw from the inner handler: the outer one catches.
  m.const_str(2, "y");
  m.throw_str(2);
  m.label("outer");
  m.ret(0);
  m.done();
  auto env = boot(b.build());
  EXPECT_EQ(env.vm->call_static("a.T", "f").as_str(), "y");
}

TEST(TryCatch, HandlerScopeEndsAtTryExit) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.nop();
  m.try_exit();
  m.const_str(1, "after scope");
  m.throw_str(1);  // no active handler anymore
  m.label("handler");
  m.const_str(2, "caught?!");
  m.ret(2);
  m.done();
  auto env = boot(b.build());
  EXPECT_THROW((void)env.vm->call_static("a.T", "f"), VmException);
}

TEST(TryCatch, AnrIsNotCatchable) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "handler");
  m.label("spin");
  m.jump("spin");
  m.label("handler");
  m.return_void();
  m.done();
  VmLimits limits;
  limits.max_steps_per_entry = 1000;
  auto env = boot(b.build(), limits);
  try {
    (void)env.vm->call_static("a.T", "f");
    FAIL();
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("ANR"), std::string::npos);
  }
}

TEST(TryCatch, StackOverflowIsNotCatchable) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("rec", 0);
  m.try_enter(0, "handler");
  m.invoke_static("a.T", "rec");
  m.label("handler");
  m.return_void();
  m.done();
  VmLimits limits;
  limits.max_call_depth = 8;
  auto env = boot(b.build(), limits);
  // Each frame pushes a handler, but the overflow must still surface:
  // the topmost frame's guard rethrows past every handler...
  // ...and the OUTER frames' handlers must not swallow it either.
  EXPECT_THROW((void)env.vm->call_static("a.T", "rec"), VmException);
}

TEST(TryCatch, RoundTripsThroughSerialization) {
  dex::DexBuilder b;
  auto m = b.cls("a.T").static_method("f", 0);
  m.try_enter(0, "h");
  m.try_exit();
  m.label("h");
  m.return_void();
  m.done();
  const auto dexfile = b.build();
  const auto back = dex::DexFile::deserialize(dexfile.serialize());
  EXPECT_EQ(back.validate(), std::nullopt);
  const auto& code = back.find_class("a.T")->methods[0].code;
  EXPECT_EQ(code[0].op, dex::Op::TryEnter);
  EXPECT_EQ(code[1].op, dex::Op::TryExit);
}

// The realistic pattern: an update SDK that tolerates being offline. The
// host app keeps running (Table II "exercised", not "crash") and the DCL
// simply does not happen in that session.
TEST(TryCatch, OfflineTolerantSdkDoesNotCrashHost) {
  dex::DexBuilder b;
  auto sdk = b.cls("com.updates.sdk.Fetcher").static_method("boot", 0);
  sdk.try_enter(0, "offline");
  sdk.new_instance(1, "java.net.URL");
  sdk.const_str(2, "http://updates.example/u.dex");
  sdk.invoke_virtual("java.net.URL", "<init>", {1, 2});
  sdk.invoke_virtual("java.net.URL", "openStream", {1});  // throws offline
  sdk.move_result(3);
  sdk.try_exit();
  sdk.label("offline");
  sdk.return_void();
  sdk.done();
  auto m = b.cls("com.trycatch.app.Main", "android.app.Activity")
               .method("onCreate", 1);
  m.invoke_static("com.updates.sdk.Fetcher", "boot");
  m.done();

  manifest::Manifest man;
  man.package = "com.trycatch.app";
  man.add_permission(manifest::kInternet);
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.trycatch.app.Main", true});
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("k");
  os::Device device;
  ASSERT_TRUE(device.install(apk).ok());
  device.services().set_airplane_mode(true);
  device.services().set_wifi_enabled(false);
  AppContext app;
  app.manifest = man;
  Vm vm(device, std::move(app));
  ASSERT_TRUE(vm.load_app(apk).ok());
  monkey::MonkeyConfig config;
  support::Rng rng(1);
  const auto result = monkey::run_monkey(vm, config, rng);
  EXPECT_EQ(result.outcome, monkey::Outcome::kExercised)
      << result.crash_message;
}

}  // namespace
}  // namespace dydroid::vm
