// Fuzz suite for the result-cache persistence layer (docs/CACHE.md),
// mirroring journal_fuzz_test.cpp: structurally mutated cache store files
// must open (recovering a valid prefix of entries) or fail loudly on a
// destroyed magic — never crash, never serve a record that is not an
// original, never trip a sanitizer (tools/run_sanitizer_matrix.sh runs
// this suite under ASan/UBSan). The cache is advisory, so the bar is
// higher than the journal's: damaged *contents* must never fail the open.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/faulty.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/result_cache.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace dydroid::driver {
namespace {

constexpr int kIterations = 300;

using support::Bytes;

const support::Sha256Digest kFuzzConfig = support::sha256("fuzz-config");

struct SampleEntry {
  CacheKey key;
  std::string package;
};

/// Real cache entries: outcomes of a small corpus run keyed by synthetic
/// apk digests.
const std::vector<SampleEntry>& sample_entries() {
  static const std::vector<SampleEntry> entries = [] {
    support::set_log_level(support::LogLevel::Error);
    appgen::CorpusConfig config;
    config.scale = 0.002;
    const auto corpus = appgen::generate_corpus(config);
    const core::DyDroid pipeline{core::PipelineOptions{}};
    driver::RunnerConfig runner_config;
    runner_config.jobs = 2;
    const auto result =
        driver::CorpusRunner(pipeline, runner_config).run(corpus);
    std::vector<SampleEntry> out;
    out.reserve(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      SampleEntry entry;
      entry.key.apk = support::sha256("fuzz-app-" + std::to_string(i));
      entry.key.config = kFuzzConfig;
      entry.key.seed = result.outcomes[i].seed;
      entry.package = result.outcomes[i].report.package;
      out.push_back(std::move(entry));
    }
    return out;
  }();
  return entries;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_cachefuzz_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Bytes of a sealed store holding every sample entry.
Bytes sample_store_bytes() {
  static const Bytes bytes = [] {
    TempDir dir("seed");
    std::string store_path;
    {
      appgen::CorpusConfig config;
      config.scale = 0.002;
      const auto corpus = appgen::generate_corpus(config);
      const core::DyDroid pipeline{core::PipelineOptions{}};
      driver::RunnerConfig runner_config;
      runner_config.jobs = 2;
      const auto result =
          driver::CorpusRunner(pipeline, runner_config).run(corpus);
      auto opened = ResultCache::open(dir.path(), kFuzzConfig);
      EXPECT_TRUE(opened.ok());
      auto cache = std::move(opened).take();
      for (std::size_t i = 0; i < sample_entries().size(); ++i) {
        cache.insert(sample_entries()[i].key, result.outcomes[i]);
      }
      store_path = cache.store_path();
      EXPECT_TRUE(cache.seal().ok());
    }
    std::ifstream in(store_path, std::ios::binary);
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }();
  return bytes;
}

/// Write `bytes` as DIR/results.dyc and open the cache over them.
support::Result<ResultCache> open_over(const TempDir& dir,
                                       const Bytes& bytes) {
  std::filesystem::create_directories(dir.path());
  const auto store =
      std::filesystem::path(dir.path()) / std::string(kCacheFileName);
  std::ofstream out(store, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return ResultCache::open(dir.path(), kFuzzConfig);
}

TEST(CacheFuzz, MutatedStoreBytesOpenOrFailLoudly) {
  const Bytes intact = sample_store_bytes();
  {  // Sanity: the intact store replays every entry.
    TempDir dir("intact");
    auto opened = open_over(dir, intact);
    ASSERT_TRUE(opened.ok()) << opened.error();
    EXPECT_EQ(opened.value().stats().loaded, sample_entries().size());
  }
  support::set_log_level(support::LogLevel::Error);
  support::Rng rng(0x10021703);
  int opened_full = 0;
  int opened_partial = 0;
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto mutated = appgen::mutate_bytes(intact, rng);
    TempDir dir("mut" + std::to_string(i));
    auto opened = open_over(dir, mutated);
    if (!opened.ok()) {
      // Only a destroyed magic may fail the open (the file is no longer
      // ours); damaged contents must always be recovered around.
      EXPECT_NE(opened.error().find("magic"), std::string::npos)
          << opened.error();
      ++rejected;
      continue;
    }
    auto cache = std::move(opened).take();
    const auto loaded = cache.stats().loaded;
    EXPECT_LE(loaded, sample_entries().size());
    if (loaded == sample_entries().size()) {
      ++opened_full;
    } else {
      ++opened_partial;
    }
    // Every surviving entry must be one of the originals: a lookup either
    // misses or replays a genuine outcome whose report serializes cleanly.
    for (const auto& entry : sample_entries()) {
      const auto hit = cache.lookup(entry.key);
      if (!hit.has_value()) continue;
      EXPECT_EQ(hit->report.package, entry.package);
      (void)core::report_to_json(hit->report);
    }
  }
  // Damaged-but-openable stores must actually occur across the iterations
  // (how often the magic itself is destroyed depends on the mutator).
  EXPECT_GT(opened_partial, 0);
  EXPECT_EQ(opened_full + opened_partial + rejected, kIterations);
}

TEST(CacheFuzz, DestroyedMagicFailsLoudly) {
  Bytes bytes = sample_store_bytes();
  ASSERT_GT(bytes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) bytes[i] ^= 0xA5;
  TempDir dir("badmagic");
  auto opened = open_over(dir, bytes);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.error().find("magic"), std::string::npos);
}

TEST(CacheFuzz, TruncatedStoreNeverLosesTheValidPrefix) {
  const Bytes intact = sample_store_bytes();
  support::set_log_level(support::LogLevel::Error);
  // Every truncation point (step 13 keeps the loop affordable): the open
  // must succeed with an exact prefix of the original entries — pre-magic
  // cuts yield an empty cache, never an error (a fresh store is empty too).
  for (std::size_t cut = 0; cut <= intact.size(); cut += 13) {
    const Bytes torn(intact.begin(), intact.begin() + static_cast<long>(cut));
    TempDir dir("cut" + std::to_string(cut));
    auto opened = open_over(dir, torn);
    if (!opened.ok()) {
      // A partial magic is indistinguishable from a foreign file.
      ASSERT_GT(cut, 0u);
      ASSERT_LT(cut, support::kJournalMagic.size()) << "cut " << cut;
      continue;
    }
    auto cache = std::move(opened).take();
    const auto loaded = cache.stats().loaded;
    ASSERT_LE(loaded, sample_entries().size());
    // The loaded prefix is exact: the first `loaded` keys hit, the rest
    // miss (insertion order is the on-disk order of a sealed store).
    std::size_t hits = 0;
    for (const auto& entry : sample_entries()) {
      const auto hit = cache.lookup(entry.key);
      if (hit.has_value()) {
        EXPECT_EQ(hit->report.package, entry.package);
        ++hits;
      }
    }
    EXPECT_EQ(hits, loaded) << "cut " << cut;
  }
}

TEST(CacheFuzz, MutationsNeverCorruptSubsequentRuns) {
  // End-to-end belt: a cache dir whose store was mutated must still serve
  // a full corpus run with byte-identical reports.
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.002;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, golden_config).run(corpus);
  std::vector<std::string> golden_json;
  for (const auto& outcome : golden.outcomes) {
    golden_json.push_back(core::report_to_json(outcome.report));
  }

  TempDir dir("endtoend");
  RunnerConfig cached_config;
  cached_config.jobs = 2;
  cached_config.cache_dir = dir.path();
  (void)CorpusRunner(pipeline, cached_config).run(corpus);  // populate

  const auto store =
      std::filesystem::path(dir.path()) / std::string(kCacheFileName);
  support::Rng rng(0x10021704);
  for (int round = 0; round < 8; ++round) {
    Bytes bytes;
    {
      std::ifstream in(store, std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    }
    const auto mutated = appgen::mutate_bytes(bytes, rng);
    {
      std::ofstream out(store, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(mutated.data()),
                static_cast<std::streamsize>(mutated.size()));
    }
    CorpusResult result;
    try {
      result = CorpusRunner(pipeline, cached_config).run(corpus);
    } catch (const std::runtime_error& e) {
      // Only the loud bad-magic failure is acceptable; reset the store.
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
          << e.what();
      // Reset to a fresh, repopulated store so the next round has real
      // bytes to mutate.
      std::filesystem::remove(store);
      (void)CorpusRunner(pipeline, cached_config).run(corpus);
      continue;
    }
    ASSERT_EQ(result.outcomes.size(), golden.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      ASSERT_EQ(core::report_to_json(result.outcomes[i].report),
                golden_json[i])
          << "round " << round << " app " << i;
    }
    EXPECT_EQ(result.stats.cache_hits + result.stats.cache_misses,
              corpus.apps.size());
  }
}

}  // namespace
}  // namespace dydroid::driver
