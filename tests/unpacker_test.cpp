// Runtime unpacker tests: packed app -> recovered original (the
// DexHunter/AppSpear capability the paper discusses in §VI).
#include <gtest/gtest.h>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "core/unpacker.hpp"
#include "obfuscation/packer.hpp"

namespace dydroid::core {
namespace {

appgen::GeneratedApp make_packed(bool trap = false) {
  appgen::AppSpec spec;
  spec.package = "com.packed.victim";
  spec.category = "Entertainment";
  spec.ad_sdk = true;  // interesting original behaviour worth recovering
  spec.dex_encryption = true;
  spec.anti_repackaging = trap;
  support::Rng rng(55);
  return appgen::build_app(spec, rng);
}

TEST(Unpacker, RecoversOriginalClassesDex) {
  const auto packed = make_packed();
  const auto result = unpack_packed_app(packed.apk);
  ASSERT_TRUE(result.ok()) << result.error();
  const auto& recovered = result.value().apk;
  // The recovered dex contains the ORIGINAL app classes, which the packed
  // stub hid.
  const auto dexfile = recovered.read_classes_dex();
  ASSERT_TRUE(dexfile.has_value());
  EXPECT_NE(dexfile->find_class("com.google.ads.sdk.MediaLoader"), nullptr);
  EXPECT_EQ(dexfile->find_class("com.shield.core.StubApplication"), nullptr);
  // Container artifacts removed, android:name cleared.
  EXPECT_FALSE(recovered.contains("assets/shield_payload.bin"));
  EXPECT_FALSE(recovered.contains("lib/armeabi/libshield.so"));
  EXPECT_TRUE(recovered.read_manifest().application_name.empty());
  EXPECT_NE(result.value().payload_path.find(".shield"), std::string::npos);
}

TEST(Unpacker, RecoveredAppIsAnalyzableAndRunnable) {
  const auto packed = make_packed();
  const auto result = unpack_packed_app(packed.apk);
  ASSERT_TRUE(result.ok()) << result.error();
  const auto bytes = result.value().apk.serialize();

  // Static analysis now sees the original DCL code...
  DyDroid pipeline;
  const auto report = pipeline.analyze(bytes, 3);
  EXPECT_FALSE(report.obfuscation.dex_encryption);
  EXPECT_TRUE(report.static_dcl.dex_dcl);  // the ad SDK is visible again
  // ...and the app still runs end to end.
  EXPECT_EQ(report.status, DynamicStatus::kExercised)
      << report.crash_message;
  EXPECT_TRUE(report.intercepted(CodeKind::Dex));
}

TEST(Unpacker, WorksDespiteAntiRepackagingTrap) {
  // The trap crashes the REWRITER; the unpacker runs the app instead and
  // strips the trap from its output.
  const auto packed = make_packed(/*trap=*/true);
  const auto result = unpack_packed_app(packed.apk);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_FALSE(result.value().apk.has_crc_trap());
}

TEST(Unpacker, RejectsUnpackedApps) {
  appgen::AppSpec spec;
  spec.package = "com.not.packed";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(1);
  const auto app = appgen::build_app(spec, rng);
  const auto result = unpack_packed_app(app.apk);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("packer pattern"), std::string::npos);
}

TEST(Unpacker, RejectsGarbage) {
  EXPECT_FALSE(unpack_packed_app(support::to_bytes("junk")).ok());
}

TEST(Unpacker, RoundTripPackUnpackPreservesBehaviour) {
  // pack(unpack(pack(app))) — the recovered dex byte-equals the original.
  appgen::AppSpec spec;
  spec.package = "com.roundtrip.app";
  spec.category = "Tools";
  spec.own_dex_dcl = true;
  support::Rng rng(7);
  const auto original = appgen::build_app(spec, rng);
  const auto original_apk = apk::ApkFile::deserialize(original.apk);
  const auto original_dex = *original_apk.get(apk::kClassesDexEntry);

  const auto packed = obfuscation::pack(original_apk, {});
  const auto result = unpack_packed_app(packed.serialize());
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(*result.value().apk.get(apk::kClassesDexEntry), original_dex);
}

}  // namespace
}  // namespace dydroid::core
