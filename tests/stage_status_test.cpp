// Table-driven status-propagation tests: force each pipeline stage to fail
// (via injected faults at its site, via spec'd pathologies, or via custom
// stage lists) and assert the app lands in exactly the Table II bucket the
// failure taxonomy predicts — never in an aborted batch or a torn-down
// worker.
#include <gtest/gtest.h>

#include <stdexcept>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"

namespace dydroid {
namespace {

using core::DynamicStatus;

appgen::GeneratedApp make_app(bool write_permission, bool native,
                              bool no_activity = false,
                              bool crash_on_start = false) {
  appgen::AppSpec spec;
  spec.package = "com.example.stagestatus";
  spec.category = "TOOLS";
  spec.write_external_permission = write_permission;
  spec.own_dex_dcl = true;
  spec.own_native_dcl = native;
  spec.no_activity = no_activity;
  spec.crash_on_start = crash_on_start;
  support::Rng rng(0x57A9E);
  return appgen::build_app(spec, rng);
}

core::AppReport analyze(const appgen::GeneratedApp& app,
                        const support::FaultPlan* plan,
                        std::uint64_t seed = 0x1234) {
  core::PipelineOptions options;
  options.faults = plan;
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  const core::DyDroid pipeline(std::move(options));
  return pipeline.analyze(app.apk, seed);
}

class StageStatusTest : public ::testing::Test {
 protected:
  void SetUp() override { support::set_log_level(support::LogLevel::Error); }
};

// ---- fault-driven buckets, one row per injection site ----------------------

TEST_F(StageStatusTest, EachFaultSiteLandsInItsTableTwoBucket) {
  struct Row {
    const char* plan;
    DynamicStatus expected;
    bool decompile_failed;
    const char* message_fragment;  // nullptr = don't check
  };
  // One DCL app that needs the permission rewrite: it traverses every
  // stage, so each armed site is reachable.
  const auto app = make_app(/*write_permission=*/false, /*native=*/false);
  const Row rows[] = {
      {"apk.deserialize=always", DynamicStatus::kNotRun, true, nullptr},
      {"manifest.parse=always", DynamicStatus::kNotRun, true, nullptr},
      {"dex.parse=always", DynamicStatus::kNotRun, true, nullptr},
      {"rewrite.repack=always", DynamicStatus::kRewritingFailure, false,
       "fault(rewrite.repack)"},
      {"device.boot=always", DynamicStatus::kCrash, false,
       "fault(device.boot)"},
      {"device.install=always", DynamicStatus::kCrash, false,
       "fault(device.install)"},
  };
  for (const auto& row : rows) {
    SCOPED_TRACE(row.plan);
    const auto plan = support::FaultPlan::parse(row.plan);
    ASSERT_TRUE(plan.ok()) << plan.error();
    const auto report = analyze(app, &plan.value());
    EXPECT_EQ(report.status, row.expected)
        << "got " << core::dynamic_status_name(report.status);
    EXPECT_EQ(report.decompile_failed, row.decompile_failed);
    EXPECT_TRUE(report.binaries.empty());
    if (row.message_fragment != nullptr) {
      EXPECT_NE(report.crash_message.find(row.message_fragment),
                std::string::npos)
          << report.crash_message;
    }
  }
}

TEST_F(StageStatusTest, BaselineAppIsExercised) {
  const auto app = make_app(/*write_permission=*/false, /*native=*/false);
  const auto report = analyze(app, nullptr);
  EXPECT_EQ(report.status, DynamicStatus::kExercised);
  EXPECT_FALSE(report.binaries.empty());
}

TEST_F(StageStatusTest, InterceptorFaultKeepsBucketButDropsBinaries) {
  const auto app = make_app(/*write_permission=*/false, /*native=*/false);
  const auto baseline = analyze(app, nullptr);
  const auto plan = support::FaultPlan::parse("interceptor.io=always");
  ASSERT_TRUE(plan.ok());
  const auto report = analyze(app, &plan.value());
  EXPECT_EQ(report.status, baseline.status);
  EXPECT_EQ(report.events.size(), baseline.events.size());
  EXPECT_TRUE(report.binaries.empty());
  EXPECT_FALSE(baseline.binaries.empty());
}

TEST_F(StageStatusTest, NativeLoadFaultCrashesNativeLoaders) {
  const auto app = make_app(/*write_permission=*/true, /*native=*/true);
  const auto plan = support::FaultPlan::parse("native.load=always");
  ASSERT_TRUE(plan.ok());
  const auto report = analyze(app, &plan.value());
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
}

// ---- spec'd pathologies (Table II failure rows) -----------------------------

TEST_F(StageStatusTest, NoActivityAppLandsInNoActivity) {
  const auto app = make_app(/*write_permission=*/true, /*native=*/false,
                            /*no_activity=*/true);
  const auto report = analyze(app, nullptr);
  EXPECT_EQ(report.status, DynamicStatus::kNoActivity);
}

TEST_F(StageStatusTest, CrashOnStartAppLandsInCrash) {
  const auto app = make_app(/*write_permission=*/true, /*native=*/false,
                            /*no_activity=*/false, /*crash_on_start=*/true);
  const auto report = analyze(app, nullptr);
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
}

TEST_F(StageStatusTest, DclFreeAppIsNotRun) {
  appgen::AppSpec spec;
  spec.package = "com.example.nodcl";
  spec.category = "TOOLS";
  support::Rng rng(0x57A9F);
  const auto app = appgen::build_app(spec, rng);
  const auto report = analyze(app, nullptr);
  EXPECT_EQ(report.status, DynamicStatus::kNotRun);
  EXPECT_FALSE(report.decompile_failed);
  EXPECT_TRUE(report.binaries.empty());
}

// ---- custom stage lists: the no-exceptions boundary ------------------------

class FailingStage final : public core::Stage {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "FailingStage";
  }
  [[nodiscard]] core::StageResult run(core::AnalysisContext&) const override {
    return core::StageResult::failure("forced failure");
  }
};

class ThrowingStage final : public core::Stage {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "ThrowingStage";
  }
  [[nodiscard]] core::StageResult run(core::AnalysisContext&) const override {
    throw std::runtime_error("boom");
  }
};

class StoppingStage final : public core::Stage {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "StoppingStage";
  }
  [[nodiscard]] core::StageResult run(core::AnalysisContext& ctx) const override {
    ctx.report.status = DynamicStatus::kNoActivity;
    return core::StageAction::kStop;
  }
};

TEST_F(StageStatusTest, ExplicitStageFailureBecomesCrashOutcome) {
  std::vector<std::unique_ptr<const core::Stage>> stages;
  stages.push_back(std::make_unique<FailingStage>());
  const core::DyDroid pipeline({}, std::move(stages));
  const auto report = pipeline.analyze(support::Blob{}, 1);
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
  EXPECT_EQ(report.crash_message, "forced failure");
}

TEST_F(StageStatusTest, EscapingExceptionIsNamedAfterItsStage) {
  std::vector<std::unique_ptr<const core::Stage>> stages;
  stages.push_back(std::make_unique<ThrowingStage>());
  const core::DyDroid pipeline({}, std::move(stages));
  const auto report = pipeline.analyze(support::Blob{}, 1);
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
  EXPECT_EQ(report.crash_message, "ThrowingStage: boom");
}

TEST_F(StageStatusTest, StopIsASuccessfulShortCircuit) {
  std::vector<std::unique_ptr<const core::Stage>> stages;
  stages.push_back(std::make_unique<StoppingStage>());
  stages.push_back(std::make_unique<ThrowingStage>());  // must not run
  const core::DyDroid pipeline({}, std::move(stages));
  const auto report = pipeline.analyze(support::Blob{}, 1);
  EXPECT_EQ(report.status, DynamicStatus::kNoActivity);
  EXPECT_TRUE(report.crash_message.empty());
}

TEST_F(StageStatusTest, RealStageFailureStillKeepsEarlierStageOutput) {
  const auto app = make_app(/*write_permission=*/true, /*native=*/false);
  std::vector<std::unique_ptr<const core::Stage>> stages;
  stages.push_back(std::make_unique<core::StaticStage>());
  stages.push_back(std::make_unique<FailingStage>());
  const core::DyDroid pipeline({}, std::move(stages));
  const auto report = pipeline.analyze(app.apk, 1);
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
  EXPECT_EQ(report.crash_message, "forced failure");
  EXPECT_EQ(report.package, "com.example.stagestatus");  // StaticStage ran
}

}  // namespace
}  // namespace dydroid
