// Unit tests for SimNative libraries.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "nativebin/native_library.hpp"

namespace dydroid::nativebin {
namespace {

NativeLibrary make_lib() {
  NativeLibrary lib("libhook", Arch::Arm);
  dex::DexBuilder b;
  auto cls = b.cls("native.hook.Core");
  cls.static_method("attach", 1).invoke_static("libc", "ptrace", {0}).done();
  cls.static_method("decrypt", 2)
      .invoke_static("libc", "xor_decrypt", {0, 1})
      .move_result(2)
      .ret(2)
      .done();
  cls.method("helper", 1).return_void().done();  // instance: not exported
  lib.code() = b.build();
  return lib;
}

TEST(NativeLibrary, SymbolsAreStaticMethods) {
  const auto lib = make_lib();
  EXPECT_TRUE(lib.find_symbol("attach").has_value());
  EXPECT_TRUE(lib.find_symbol("decrypt").has_value());
  EXPECT_FALSE(lib.find_symbol("helper").has_value());
  EXPECT_FALSE(lib.find_symbol("missing").has_value());
}

TEST(NativeLibrary, ExportedSymbolList) {
  const auto symbols = make_lib().exported_symbols();
  EXPECT_EQ(symbols.size(), 2u);
}

TEST(NativeLibrary, SerializeRoundTrip) {
  const auto lib = make_lib();
  const auto bytes = lib.serialize();
  EXPECT_TRUE(looks_like_native(bytes));
  const auto back = NativeLibrary::deserialize(bytes);
  EXPECT_EQ(back.soname(), "libhook");
  EXPECT_EQ(back.arch(), Arch::Arm);
  EXPECT_TRUE(back.find_symbol("attach").has_value());
}

TEST(NativeLibrary, X86ArchPreserved) {
  NativeLibrary lib("libx", Arch::X86);
  const auto back = NativeLibrary::deserialize(lib.serialize());
  EXPECT_EQ(back.arch(), Arch::X86);
  EXPECT_EQ(arch_name(back.arch()), "x86");
}

TEST(NativeLibrary, BadMagicThrows) {
  auto bytes = make_lib().serialize();
  bytes[1] = 'Q';
  EXPECT_THROW((void)NativeLibrary::deserialize(bytes), support::ParseError);
}

TEST(NativeLibrary, CorruptInnerDexThrows) {
  auto bytes = make_lib().serialize();
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW((void)NativeLibrary::deserialize(bytes), support::ParseError);
}

TEST(NativeLibrary, MapLibraryName) {
  EXPECT_EQ(map_library_name("hook"), "libhook.so");
  EXPECT_EQ(map_library_name(""), "lib.so");
}

TEST(NativeLibrary, DexMagicIsNotNative) {
  dex::DexBuilder b;
  b.cls("a.B").method("f", 0).return_void().done();
  EXPECT_FALSE(looks_like_native(b.build().serialize()));
}

}  // namespace
}  // namespace dydroid::nativebin
