// Unit tests for the AndroidManifest analogue.
#include <gtest/gtest.h>

#include "manifest/manifest.hpp"

namespace dydroid::manifest {
namespace {

Manifest make_sample() {
  Manifest m;
  m.package = "com.example.game";
  m.version_name = "2.3";
  m.min_sdk = 16;
  m.application_name = "com.shield.Container";
  m.add_permission(kInternet);
  m.add_permission(kReadPhoneState);
  m.components.push_back(
      Component{ComponentKind::Activity, "com.example.game.Main", true});
  m.components.push_back(
      Component{ComponentKind::Service, "com.example.game.Sync", false});
  m.components.push_back(
      Component{ComponentKind::Receiver, "com.example.game.Boot", false});
  return m;
}

TEST(Manifest, TextRoundTrip) {
  const auto m = make_sample();
  const auto back = Manifest::from_text(m.to_text());
  EXPECT_EQ(back.package, m.package);
  EXPECT_EQ(back.version_name, "2.3");
  EXPECT_EQ(back.min_sdk, 16);
  EXPECT_EQ(back.application_name, "com.shield.Container");
  EXPECT_EQ(back.permissions, m.permissions);
  ASSERT_EQ(back.components.size(), 3u);
  EXPECT_EQ(back.components[0].name, "com.example.game.Main");
  EXPECT_TRUE(back.components[0].launcher);
  EXPECT_EQ(back.components[1].kind, ComponentKind::Service);
  EXPECT_FALSE(back.components[1].launcher);
}

TEST(Manifest, EmptyApplicationNameOmitted) {
  Manifest m;
  m.package = "a.b";
  const auto text = m.to_text();
  EXPECT_EQ(text.find("name=\""), std::string::npos);
  EXPECT_TRUE(Manifest::from_text(text).application_name.empty());
}

TEST(Manifest, AddPermissionIdempotent) {
  Manifest m;
  m.add_permission(kInternet);
  m.add_permission(kInternet);
  EXPECT_EQ(m.permissions.size(), 1u);
  EXPECT_TRUE(m.has_permission(kInternet));
  EXPECT_FALSE(m.has_permission(kSendSms));
}

TEST(Manifest, LauncherActivityFound) {
  const auto m = make_sample();
  const auto* launcher = m.launcher_activity();
  ASSERT_NE(launcher, nullptr);
  EXPECT_EQ(launcher->name, "com.example.game.Main");
}

TEST(Manifest, NoLauncherReturnsNull) {
  Manifest m;
  m.package = "a.b";
  m.components.push_back(
      Component{ComponentKind::Activity, "a.b.Hidden", false});
  EXPECT_EQ(m.launcher_activity(), nullptr);
}

TEST(Manifest, HasComponent) {
  const auto m = make_sample();
  EXPECT_TRUE(m.has_component("com.example.game.Sync"));
  EXPECT_FALSE(m.has_component("com.example.game.Missing"));
}

TEST(Manifest, MissingPackageThrows) {
  EXPECT_THROW((void)Manifest::from_text("<application/>"),
               support::ParseError);
}

TEST(Manifest, BadMinSdkThrows) {
  const auto text =
      "<manifest package=\"a.b\">\n  <uses-sdk minSdkVersion=\"abc\"/>\n";
  EXPECT_THROW((void)Manifest::from_text(text), support::ParseError);
}

TEST(Manifest, ComponentWithoutNameThrows) {
  const auto text = "<manifest package=\"a.b\">\n  <activity launcher=\"true\"/>\n";
  EXPECT_THROW((void)Manifest::from_text(text), support::ParseError);
}

TEST(Manifest, UnterminatedAttributeThrows) {
  EXPECT_THROW((void)Manifest::from_text("<manifest package=\"a.b>\n"),
               support::ParseError);
}

}  // namespace
}  // namespace dydroid::manifest
