// End-to-end pipeline tests: AppGen specs -> SimApk -> DyDroid pipeline,
// asserting the pipeline *recovers* each spec'd behaviour from binaries
// alone (interception, provenance, entity, malware, privacy, vulns).
#include <gtest/gtest.h>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "malware/families.hpp"

namespace dydroid::core {
namespace {

using appgen::AppSpec;
using appgen::MalwareTrigger;
using appgen::VulnKind;

AppSpec base_spec(const std::string& pkg) {
  AppSpec spec;
  spec.package = pkg;
  spec.category = "Tools";
  spec.write_external_permission = true;
  return spec;
}

/// Run the pipeline over a freshly generated app.
AppReport run_pipeline(const AppSpec& spec, PipelineOptions options = {},
                       std::uint64_t seed = 7) {
  support::Rng rng(seed);
  auto app = appgen::build_app(spec, rng);
  options.scenario_setup = [scenario = app.scenario](os::Device& device) {
    appgen::apply_scenario(scenario, device);
  };
  DyDroid pipeline(std::move(options));
  return pipeline.analyze(app.apk, seed);
}

// ---------------------------------------------------------------------------
// Ad SDK: temp-file dex loading, third-party entity, local provenance.
// ---------------------------------------------------------------------------

TEST(Pipeline, AdSdkInterceptedDespiteDeletion) {
  auto spec = base_spec("com.example.photo");
  spec.ad_sdk = true;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  ASSERT_TRUE(report.intercepted(CodeKind::Dex));
  // The ad payload was captured even though the SDK deleted it after load.
  ASSERT_EQ(report.binaries.size(), 1u);
  EXPECT_NE(report.binaries[0].binary.path.find("/cache/ad1.dex"),
            std::string::npos);
  // Entity: the Google-Ads-like SDK package, not the app.
  EXPECT_EQ(report.binaries[0].binary.entity, Entity::ThirdParty);
  EXPECT_EQ(report.binaries[0].binary.call_site_class,
            "com.google.ads.sdk.MediaLoader");
  // Locally packed: no origin URL.
  EXPECT_FALSE(report.binaries[0].origin_url.has_value());
  // The ad library reads only device settings (paper §V-B(f)).
  const auto mask = report.binaries[0].privacy.leaked_mask();
  EXPECT_EQ(mask, privacy::mask_of(privacy::DataType::Settings));
}

TEST(Pipeline, AdPayloadFileStillOnDiskAfterRun) {
  // Direct engine-level check that the delete was silently blocked.
  auto spec = base_spec("com.example.photo");
  spec.ad_sdk = true;
  support::Rng rng(3);
  auto app = appgen::build_app(spec, rng);
  os::Device device;
  appgen::apply_scenario(app.scenario, device);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  ASSERT_TRUE(device.install(apk).ok());
  auto man = apk.read_manifest();
  support::Rng run_rng(5);
  const auto result = run_app(device, apk, man, run_rng);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised);
  EXPECT_GE(result.blocked_mutations, 1u);
  EXPECT_TRUE(
      device.vfs().exists("/data/data/com.example.photo/cache/ad1.dex"));
}

// ---------------------------------------------------------------------------
// Remote fetch (Baidu): Table V provenance.
// ---------------------------------------------------------------------------

TEST(Pipeline, BaiduRemoteFetchTrackedToUrl) {
  auto spec = base_spec("com.classicalmuseumad.cnad");
  spec.baidu_remote_sdk = true;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  const auto remote = report.remote_loaded();
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(*remote[0]->origin_url,
            "http://mobads.baidu.com/ads/pa/com.classicalmuseumad.cnad.jar");
  EXPECT_EQ(remote[0]->binary.entity, Entity::ThirdParty);
}

TEST(Pipeline, LocalLoadersAreNotRemote) {
  auto spec = base_spec("com.example.local");
  spec.ad_sdk = true;
  spec.own_dex_dcl = true;
  const auto report = run_pipeline(spec);
  EXPECT_EQ(report.status, DynamicStatus::kExercised);
  EXPECT_TRUE(report.remote_loaded().empty());
}

// ---------------------------------------------------------------------------
// Entity identification (Table IV).
// ---------------------------------------------------------------------------

TEST(Pipeline, OwnDclAttributedToDeveloper) {
  auto spec = base_spec("com.indie.game");
  spec.own_dex_dcl = true;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  const auto use = report.entity_use(CodeKind::Dex);
  EXPECT_TRUE(use.own);
  EXPECT_FALSE(use.third_party);
}

TEST(Pipeline, MixedEntityDetected) {
  auto spec = base_spec("com.indie.game");
  spec.own_dex_dcl = true;
  spec.analytics_sdk = true;
  const auto report = run_pipeline(spec);
  const auto use = report.entity_use(CodeKind::Dex);
  EXPECT_TRUE(use.own);
  EXPECT_TRUE(use.third_party);
}

TEST(Pipeline, NativeEntitySplit) {
  auto spec = base_spec("com.indie.game");
  spec.sdk_native_dcl = true;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  const auto use = report.entity_use(CodeKind::Native);
  EXPECT_TRUE(use.third_party);
  EXPECT_FALSE(use.own);
  EXPECT_TRUE(report.intercepted(CodeKind::Native));
}

// ---------------------------------------------------------------------------
// Table II outcomes.
// ---------------------------------------------------------------------------

TEST(Pipeline, DeadDclCodePassesFilterButNothingIntercepted) {
  auto spec = base_spec("com.example.dormant");
  spec.dead_dex_dcl = true;
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.static_dcl.dex_dcl);
  EXPECT_EQ(report.status, DynamicStatus::kExercised);
  EXPECT_TRUE(report.binaries.empty());
}

TEST(Pipeline, NoDclAppNotExercised) {
  const auto report = run_pipeline(base_spec("com.example.plain"));
  EXPECT_FALSE(report.static_dcl.any());
  EXPECT_EQ(report.status, DynamicStatus::kNotRun);
}

TEST(Pipeline, CrashOnStartReported) {
  auto spec = base_spec("com.example.broken");
  spec.ad_sdk = true;
  spec.crash_on_start = true;
  const auto report = run_pipeline(spec);
  EXPECT_EQ(report.status, DynamicStatus::kCrash);
  EXPECT_TRUE(report.binaries.empty());
}

TEST(Pipeline, NoActivityReported) {
  auto spec = base_spec("com.example.headless");
  spec.ad_sdk = true;
  spec.no_activity = true;
  const auto report = run_pipeline(spec);
  EXPECT_EQ(report.status, DynamicStatus::kNoActivity);
}

TEST(Pipeline, AntiRepackagingCausesRewritingFailure) {
  auto spec = base_spec("com.example.armored");
  spec.ad_sdk = true;
  spec.anti_repackaging = true;
  spec.write_external_permission = false;  // forces the rewrite attempt
  const auto report = run_pipeline(spec);
  EXPECT_EQ(report.status, DynamicStatus::kRewritingFailure);
}

TEST(Pipeline, MissingPermissionRewrittenSuccessfully) {
  auto spec = base_spec("com.example.needsrw");
  spec.ad_sdk = true;
  spec.write_external_permission = false;  // no trap: rewrite succeeds
  const auto report = run_pipeline(spec);
  EXPECT_EQ(report.status, DynamicStatus::kExercised);
  EXPECT_TRUE(report.intercepted(CodeKind::Dex));
}

TEST(Pipeline, AntiDecompilationStopsStaticAnalysis) {
  auto spec = base_spec("com.example.poisoned");
  spec.ad_sdk = true;
  spec.anti_decompilation = true;
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.decompile_failed);
  EXPECT_TRUE(report.obfuscation.anti_decompilation);
  EXPECT_EQ(report.status, DynamicStatus::kNotRun);
}

// ---------------------------------------------------------------------------
// DEX encryption (packer) end to end.
// ---------------------------------------------------------------------------

TEST(Pipeline, PackedAppRunsAndIsDetected) {
  auto spec = base_spec("com.smarttv.remote");
  spec.dex_encryption = true;
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.obfuscation.dex_encryption);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  // The container's decrypt-then-load produced an intercepted binary whose
  // content is the ORIGINAL classes.dex (the packer is defeated at runtime).
  ASSERT_TRUE(report.intercepted(CodeKind::Dex));
  bool saw_decrypted = false;
  for (const auto& b : report.binaries) {
    if (b.binary.path.find(".shield/dec.dex") != std::string::npos) {
      saw_decrypted = true;
      EXPECT_TRUE(dex::looks_like_dex(b.binary.bytes));
    }
  }
  EXPECT_TRUE(saw_decrypted);
}

TEST(Pipeline, UnpackedAppNotFlaggedAsEncrypted) {
  auto spec = base_spec("com.example.open");
  spec.ad_sdk = true;
  const auto report = run_pipeline(spec);
  EXPECT_FALSE(report.obfuscation.dex_encryption);
}

// ---------------------------------------------------------------------------
// Malware (Tables VII & VIII).
// ---------------------------------------------------------------------------

malware::DroidNative trained_detector() {
  malware::DroidNative detector(0.9);
  support::Rng rng(99);
  for (int f = 0; f < malware::kNumFamilies; ++f) {
    const auto samples = malware::generate_training_samples(
        malware::family_at(f), 4, rng);
    for (const auto& sample : samples) {
      detector.train(malware::family_name(malware::family_at(f)), sample);
    }
  }
  return detector;
}

TEST(Pipeline, HiddenDexMalwareDetected) {
  const auto detector = trained_detector();
  auto spec = base_spec("com.sktelecom.hoppin.mobile");
  spec.malware.push_back(
      appgen::MalwarePayloadSpec{malware::Family::SwissCodeMonkeys, {}});
  PipelineOptions options;
  options.detector = &detector;
  const auto report = run_pipeline(spec, std::move(options));
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  const auto hits = report.malware_loaded();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->malware->family, "Swiss code monkeys");
  EXPECT_GE(hits[0]->malware->score, 0.9);
  // The payload actually ran: it exfiltrated and executed a C2 command.
  bool saw_sms = false;
  for (const auto& e : report.vm_events) saw_sms |= (e.kind == "sms");
  EXPECT_TRUE(saw_sms);
}

TEST(Pipeline, NativeMalwareDetectedAndPtraceObserved) {
  const auto detector = trained_detector();
  auto spec = base_spec("com.com2us.tinyfarm");
  spec.malware.push_back(
      appgen::MalwarePayloadSpec{malware::Family::ChathookPtrace, {}});
  PipelineOptions options;
  options.detector = &detector;
  const auto report = run_pipeline(spec, std::move(options));
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  const auto hits = report.malware_loaded();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->malware->family, "Chathook ptrace");
  EXPECT_EQ(hits[0]->binary.kind, CodeKind::Native);
  bool saw_ptrace = false;
  for (const auto& e : report.vm_events) saw_ptrace |= (e.kind == "ptrace");
  EXPECT_TRUE(saw_ptrace);
}

TEST(Pipeline, BenignBinariesNotFlagged) {
  const auto detector = trained_detector();
  auto spec = base_spec("com.example.clean");
  spec.ad_sdk = true;
  spec.own_dex_dcl = true;
  PipelineOptions options;
  options.detector = &detector;
  const auto report = run_pipeline(spec, std::move(options));
  EXPECT_TRUE(report.malware_loaded().empty());
}

class TriggerGateTest : public ::testing::TestWithParam<MalwareTrigger> {};

TEST_P(TriggerGateTest, GateBlocksLoadUnderMatchingConfig) {
  const auto trigger = GetParam();
  auto spec = base_spec("com.example.gated");
  spec.malware.push_back(appgen::MalwarePayloadSpec{
      malware::Family::AdwareAirpushMinimob, {trigger}});

  // Default environment: payload loads.
  {
    const auto report = run_pipeline(spec);
    ASSERT_EQ(report.status, DynamicStatus::kExercised)
        << report.crash_message;
    EXPECT_TRUE(report.intercepted(CodeKind::Dex));
  }
  // Matching Table VIII config: payload stays hidden.
  {
    PipelineOptions options;
    switch (trigger) {
      case MalwareTrigger::SystemTime:
        options.runtime.time_ms = appgen::kReleaseTimeMs - 86'400'000;
        break;
      case MalwareTrigger::AirplaneMode:
        options.runtime.airplane_mode = true;
        options.runtime.wifi_enabled = true;
        break;
      case MalwareTrigger::Connectivity:
        options.runtime.airplane_mode = true;
        options.runtime.wifi_enabled = false;
        break;
      case MalwareTrigger::Location:
        options.runtime.location_enabled = false;
        break;
    }
    const auto report = run_pipeline(spec, std::move(options));
    ASSERT_EQ(report.status, DynamicStatus::kExercised)
        << report.crash_message;
    EXPECT_FALSE(report.intercepted(CodeKind::Dex));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTriggers, TriggerGateTest,
                         ::testing::Values(MalwareTrigger::SystemTime,
                                           MalwareTrigger::AirplaneMode,
                                           MalwareTrigger::Connectivity,
                                           MalwareTrigger::Location));

TEST(Pipeline, AirplaneGatedStillLoadsWithWifiOverride) {
  // Connectivity-gated (not airplane-gated) malware loads in the
  // "Airplane mode / WiFi ON" config — the distinction behind Table VIII's
  // 56 vs 53 split.
  auto spec = base_spec("com.example.connected");
  spec.malware.push_back(appgen::MalwarePayloadSpec{
      malware::Family::AdwareAirpushMinimob, {MalwareTrigger::Connectivity}});
  PipelineOptions options;
  options.runtime.airplane_mode = true;
  options.runtime.wifi_enabled = true;  // overrides airplane mode
  const auto report = run_pipeline(spec, std::move(options));
  EXPECT_TRUE(report.intercepted(CodeKind::Dex));
}

// ---------------------------------------------------------------------------
// Vulnerabilities (Table IX).
// ---------------------------------------------------------------------------

TEST(Pipeline, ExternalStorageDexLoadFlagged) {
  auto spec = base_spec("com.longtukorea.snmg");
  spec.vuln = VulnKind::DexExternalStorage;
  spec.min_sdk = 16;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  ASSERT_EQ(report.vulns.size(), 1u);
  EXPECT_EQ(report.vulns[0].category, VulnCategory::ExternalStorage);
  EXPECT_EQ(report.vulns[0].kind, CodeKind::Dex);
  EXPECT_NE(report.vulns[0].path.find("/mnt/sdcard/"), std::string::npos);
}

TEST(Pipeline, ExternalStorageNotFlaggedWhenMinSdkModern) {
  auto spec = base_spec("com.example.modern");
  spec.vuln = VulnKind::DexExternalStorage;
  spec.min_sdk = 21;  // no pre-4.4 devices: not exploitable per the paper
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.vulns.empty());
}

TEST(Pipeline, OtherAppInternalNativeLoadFlagged) {
  auto spec = base_spec("com.devicescape.usc.wifinow");
  spec.vuln = VulnKind::NativeOtherAppInternal;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  ASSERT_EQ(report.vulns.size(), 1u);
  EXPECT_EQ(report.vulns[0].category,
            VulnCategory::OtherAppInternalStorage);
  EXPECT_EQ(report.vulns[0].kind, CodeKind::Native);
  EXPECT_NE(report.vulns[0].path.find("com.adobe.air"), std::string::npos);
}

TEST(Pipeline, IntegrityCheckedLoadNotFlagged) {
  auto spec = base_spec("com.example.careful");
  spec.vuln = VulnKind::DexExternalStorage;
  spec.vuln_integrity_check = true;
  spec.min_sdk = 16;
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  EXPECT_TRUE(report.vulns.empty());
}

// ---------------------------------------------------------------------------
// Privacy in loaded code (Table X).
// ---------------------------------------------------------------------------

TEST(Pipeline, AnalyticsPayloadLeaksRecovered) {
  auto spec = base_spec("com.example.tracked");
  spec.analytics_sdk = true;
  spec.sdk_leaks = privacy::mask_of(privacy::DataType::Imei) |
                   privacy::mask_of(privacy::DataType::Location) |
                   privacy::mask_of(privacy::DataType::Settings);
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  privacy::TaintMask mask = 0;
  for (const auto& b : report.binaries) mask |= b.privacy.leaked_mask();
  EXPECT_EQ(mask, spec.sdk_leaks);
  // All leaking classes live in the SDK's namespace (exclusively 3rd-party).
  for (const auto& b : report.binaries) {
    for (const auto& leak : b.privacy.leaks) {
      EXPECT_TRUE(leak.sink_class.starts_with("com.flurry.analytics"));
    }
  }
}

TEST(Pipeline, OwnPluginLeakAttributedToAppNamespace) {
  auto spec = base_spec("com.example.owned");
  spec.own_dex_dcl = true;
  spec.own_leaks = privacy::mask_of(privacy::DataType::Contact);
  const auto report = run_pipeline(spec);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  bool saw = false;
  for (const auto& b : report.binaries) {
    for (const auto& leak : b.privacy.leaks) {
      if (leak.type == privacy::DataType::Contact) {
        saw = true;
        EXPECT_TRUE(leak.sink_class.starts_with("com.example.owned"));
      }
    }
  }
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Engine robustness.
// ---------------------------------------------------------------------------

TEST(Pipeline, ModernDeviceBlocksUnprivilegedSdcardWrite) {
  // On an API >= 19 device, writing external storage requires the
  // permission; an app without it crashes with IOException instead of
  // planting loadable bytecode there.
  auto spec = base_spec("com.example.legacywriter");
  spec.vuln = VulnKind::DexExternalStorage;
  spec.min_sdk = 16;
  spec.write_external_permission = false;  // rewriter re-adds it...
  PipelineOptions options;
  options.device.api_level = 25;
  const auto report = run_pipeline(spec, std::move(options));
  // ...so after rewriting the app CAN write (holds the permission), and the
  // vuln is still flagged because the manifest admits pre-4.4 devices.
  EXPECT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  EXPECT_FALSE(report.vulns.empty());

  // Without the permission (no rewrite path: keep it, then strip device
  // write access by API level), the write itself fails.
  os::Vfs vfs(25);
  os::Principal p;
  p.pkg = "com.example.legacywriter";
  p.has_write_external = false;
  EXPECT_FALSE(
      vfs.write_file(p, "/mnt/sdcard/x.dex", support::to_bytes("d")).ok());
}

TEST(Pipeline, StorageFullRecoveredAutomatically) {
  auto spec = base_spec("com.example.bulky");
  spec.ad_sdk = true;
  PipelineOptions options;
  // Tight but survivable capacity: the first run may hit "storage full",
  // the engine clears caches and retries.
  options.device.storage_capacity_bytes = 64 * 1024;
  const auto report = run_pipeline(spec, std::move(options));
  EXPECT_TRUE(report.status == DynamicStatus::kExercised ||
              report.storage_recovered)
      << report.crash_message;
}

TEST(Pipeline, ReflectionFlagSurvivesPipeline) {
  auto spec = base_spec("com.example.meta");
  spec.ad_sdk = true;
  spec.reflection = true;
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.obfuscation.reflection);
  EXPECT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
}

TEST(Pipeline, LexicalObfuscatedAppStillRunsAndIsFlagged) {
  auto spec = base_spec("com.example.renamed");
  spec.ad_sdk = true;
  spec.lexical = true;
  const auto report = run_pipeline(spec);
  EXPECT_TRUE(report.obfuscation.lexical);
  ASSERT_EQ(report.status, DynamicStatus::kExercised) << report.crash_message;
  EXPECT_TRUE(report.intercepted(CodeKind::Dex));
}

TEST(Pipeline, UnobfuscatedAppNotFlaggedLexical) {
  auto spec = base_spec("com.example.readable");
  spec.ad_sdk = true;
  const auto report = run_pipeline(spec);
  EXPECT_FALSE(report.obfuscation.lexical);
}

}  // namespace
}  // namespace dydroid::core
