// End-to-end code-injection attack & defense (paper §III-B(b), Table IX,
// and the Grab'n-Run-style mitigation of Falsina et al. the paper cites).
//
// Attack 1: a co-installed app with nothing but SD-card write access
// replaces a victim's externally cached bytecode; the victim executes the
// attacker's code with all of the victim's permissions.
// Attack 2: a malicious variant of a runtime app (com.adobe.air) serves a
// trojanized libCore.so to every app that blindly loads it.
// Defense: pinning the payload hash (vuln_integrity_check) aborts the load.
#include <gtest/gtest.h>

#include "appgen/generator.hpp"
#include "core/engine.hpp"
#include "dex/builder.hpp"
#include "nativebin/native_library.hpp"

namespace dydroid::core {
namespace {

using support::to_bytes;

constexpr const char* kVictimPkg = "com.longtukorea.snmg";
constexpr const char* kSdcardJar =
    "/mnt/sdcard/im_sdk/jar/yayavoice_for_assets.jar";

/// The attacker's payload impersonates the class the victim loads, but
/// sends a premium SMS when run.
support::Bytes evil_dex_payload() {
  dex::DexBuilder b;
  auto m = b.cls("com.yayavoice.sdk.dynamic.Voice").method("run", 1);
  m.const_str(1, "+1900PREMIUM");
  m.const_str(2, "OWNED");
  m.invoke_static("android.telephony.SmsManager", "sendTextMessage", {1, 2});
  m.return_void();
  m.done();
  return b.build().serialize();
}

/// Attacker app: only WRITE_EXTERNAL_STORAGE; drops the fake jar on boot.
apk::ApkFile attacker_apk() {
  manifest::Manifest man;
  man.package = "com.attacker.flashlight";
  man.add_permission(manifest::kWriteExternalStorage);
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.attacker.flashlight.Main",
      true});
  dex::DexBuilder b;
  auto m = b.cls("com.attacker.flashlight.Main", "android.app.Activity")
               .method("onCreate", 1);
  m.const_str(1, "evil.bin");
  m.invoke_static("android.content.res.AssetManager", "open", {1});
  m.move_result(2);
  m.new_instance(3, "java.io.FileOutputStream");
  m.const_str(4, kSdcardJar);
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {3, 4});
  m.label("copy");
  m.invoke_virtual("java.io.InputStream", "read", {2});
  m.move_result(5);
  m.if_eqz(5, "done");
  m.invoke_virtual("java.io.OutputStream", "write", {3, 5});
  m.jump("copy");
  m.label("done");
  m.return_void();
  m.done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.put("assets/evil.bin", evil_dex_payload());
  apk.sign("attacker");
  return apk;
}

/// Run one app on an existing device, returning engine results.
RunResult run_on(os::Device& device, const apk::ApkFile& apk,
                 std::uint64_t seed) {
  EXPECT_TRUE(device.install(apk).ok());
  const auto man = apk.read_manifest();
  support::Rng rng(seed);
  return run_app(device, apk, man, rng);
}

appgen::GeneratedApp victim_app(bool verified) {
  appgen::AppSpec spec;
  spec.package = kVictimPkg;
  spec.category = "Game Casual";
  spec.min_sdk = 16;
  spec.vuln = appgen::VulnKind::DexExternalStorage;
  spec.vuln_integrity_check = verified;
  support::Rng rng(404);
  return appgen::build_app(spec, rng);
}

bool sent_sms(const RunResult& result) {
  for (const auto& e : result.vm_events) {
    if (e.kind == "sms") return true;
  }
  return false;
}

TEST(CodeInjection, VictimAloneRunsGenuinePayload) {
  os::Device device;
  const auto victim = victim_app(/*verified=*/false);
  const auto result =
      run_on(device, apk::ApkFile::deserialize(victim.apk), 1);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  ASSERT_FALSE(result.binaries.empty());
  EXPECT_FALSE(sent_sms(result));  // genuine payload is benign
}

TEST(CodeInjection, AttackerHijacksVulnerableVictim) {
  os::Device device;
  // 1. Attacker runs first and poisons the shared cache location.
  const auto attacker = run_on(device, attacker_apk(), 2);
  ASSERT_EQ(attacker.monkey.outcome, monkey::Outcome::kExercised)
      << attacker.monkey.crash_message;
  ASSERT_TRUE(device.vfs().exists(kSdcardJar));

  // 2. Victim starts, sees the cached file, loads it — and executes the
  //    attacker's code with the victim's identity.
  const auto victim = victim_app(/*verified=*/false);
  const auto result =
      run_on(device, apk::ApkFile::deserialize(victim.apk), 3);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  EXPECT_TRUE(sent_sms(result));  // the premium SMS went out

  // 3. The interceptor captured the attacker's binary from the victim's
  //    process — forensics shows exactly what ran.
  bool captured_evil = false;
  for (const auto& binary : result.binaries) {
    if (binary.path == kSdcardJar) {
      captured_evil = (binary.bytes == evil_dex_payload());
    }
  }
  EXPECT_TRUE(captured_evil);
}

TEST(CodeInjection, VerifiedLoaderDefeatsTheAttack) {
  os::Device device;
  (void)run_on(device, attacker_apk(), 4);
  ASSERT_TRUE(device.vfs().exists(kSdcardJar));

  const auto victim = victim_app(/*verified=*/true);
  const auto result =
      run_on(device, apk::ApkFile::deserialize(victim.apk), 5);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  // Hash pinning: the tampered file is rejected, no SMS, no load of the
  // attacker's code.
  EXPECT_FALSE(sent_sms(result));
  for (const auto& binary : result.binaries) {
    EXPECT_NE(binary.bytes, evil_dex_payload());
  }
}

TEST(CodeInjection, VerifiedLoaderStillLoadsGenuinePayload) {
  os::Device device;  // no attacker
  const auto victim = victim_app(/*verified=*/true);
  const auto result =
      run_on(device, apk::ApkFile::deserialize(victim.apk), 6);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  bool loaded_genuine = false;
  for (const auto& binary : result.binaries) {
    if (binary.path == kSdcardJar) loaded_genuine = true;
  }
  EXPECT_TRUE(loaded_genuine);
}

// ---------------------------------------------------------------------------
// Variant 2: trojanized runtime app (other-app internal storage).
// ---------------------------------------------------------------------------

support::Bytes evil_native_lib() {
  nativebin::NativeLibrary lib("libCore", nativebin::Arch::Arm);
  dex::DexBuilder b;
  auto m = b.cls("evil.air.Core").static_method("airInit", 0);
  m.const_str(0, "steal_everything");
  m.invoke_static("libc", "exec", {0});
  m.const_int(1, 0);
  m.ret(1);
  m.done();
  lib.code() = b.build();
  return lib.serialize();
}

apk::ApkFile trojan_air_runtime() {
  manifest::Manifest man;
  man.package = "com.adobe.air";  // impersonated package
  dex::DexBuilder b;
  b.cls("com.adobe.air.Runtime").method("onCreate", 1).return_void().done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.put("lib/armeabi/libCore.so", evil_native_lib());
  apk.sign("definitely-not-adobe");
  return apk;
}

TEST(CodeInjection, TrojanizedRuntimeHijacksNativeLoaders) {
  appgen::AppSpec spec;
  spec.package = "com.devicescape.usc.wifinow";
  spec.category = "Tools";
  spec.vuln = appgen::VulnKind::NativeOtherAppInternal;
  support::Rng rng(99);
  const auto victim = appgen::build_app(spec, rng);

  os::Device device;
  // The trojan replaces the genuine companion runtime.
  ASSERT_TRUE(device.install(trojan_air_runtime()).ok());
  const auto result =
      run_on(device, apk::ApkFile::deserialize(victim.apk), 7);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  bool executed_evil = false;
  for (const auto& e : result.vm_events) {
    if (e.kind == "exec" && e.detail == "steal_everything") {
      executed_evil = true;
    }
  }
  EXPECT_TRUE(executed_evil);
}

}  // namespace
}  // namespace dydroid::core
