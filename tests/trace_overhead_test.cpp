// Observability cost contract (docs/OBSERVABILITY.md), tier 2:
//
//   (a) Instrumentation never feeds back into analysis: per-app JSON
//       reports are byte-identical with tracing+metrics on vs. off, at
//       1, 2 and 8 workers.
//   (b) A disabled span is cheap — a single relaxed atomic load. We bound
//       the *relative* cost against an uninstrumented baseline loop rather
//       than asserting an absolute nanosecond figure (CI machines vary).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/pipeline.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "support/trace.hpp"

namespace dydroid::driver {
namespace {

std::vector<std::string> survey_jsons(const appgen::Corpus& corpus,
                                      std::size_t jobs) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = jobs;
  const auto result = CorpusRunner(pipeline, config).run(corpus);
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

TEST(TraceOverhead, ReportsAreByteIdenticalTracingOnOrOff) {
  appgen::CorpusConfig config;
  config.scale = 0.002;
  const auto corpus = appgen::generate_corpus(config);
  ASSERT_GT(corpus.apps.size(), 10u);

  support::set_trace_enabled(false);
  support::set_metrics_enabled(false);
  const auto baseline = survey_jsons(corpus, 1);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    support::set_trace_enabled(true);
    support::set_metrics_enabled(true);
    support::metrics_reset();
    const auto traced = survey_jsons(corpus, jobs);
    support::set_trace_enabled(false);
    support::set_metrics_enabled(false);

    ASSERT_EQ(traced.size(), baseline.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(traced[i], baseline[i])
          << "report diverged with tracing on: jobs=" << jobs << " app=" << i;
    }
  }

  // The instrumented runs actually recorded something (the A/B proved
  // nothing if the instrumentation never fired).
  const auto events = support::trace_collect();
  EXPECT_FALSE(events.empty());
  bool saw_stage = false;
  for (const auto& event : events) saw_stage |= event.cat == "stage";
  EXPECT_TRUE(saw_stage);
  support::trace_reset();
  support::metrics_reset();
}

TEST(TraceOverhead, StageSpanPerAppStageAttempt) {
  // One "stage"-category span per (app, stage-entered, attempt): for a
  // single-attempt run, every app emits between 1 (static stop) and 5
  // (full pipeline) stage spans, and no (app, name) pair repeats within
  // an attempt.
  appgen::CorpusConfig config;
  config.scale = 0.002;
  const auto corpus = appgen::generate_corpus(config);

  support::set_trace_enabled(true);
  (void)survey_jsons(corpus, 2);
  support::set_trace_enabled(false);
  const auto events = support::trace_collect();

  std::vector<std::vector<std::string>> per_app(corpus.apps.size());
  for (const auto& event : events) {
    if (event.cat != "stage") continue;
    ASSERT_LT(event.app, corpus.apps.size());
    EXPECT_EQ(event.attempt, 0u);  // no retry policy in this run
    const std::string name(event.name);
    for (const auto& seen : per_app[event.app]) {
      EXPECT_NE(seen, name) << "duplicate stage span for app " << event.app;
    }
    per_app[event.app].push_back(name);
  }
  for (std::size_t i = 0; i < per_app.size(); ++i) {
    EXPECT_GE(per_app[i].size(), 1u) << "app " << i << " emitted no stage span";
    EXPECT_LE(per_app[i].size(), 5u);
  }
  support::trace_reset();
}

TEST(TraceOverhead, DisabledSpanCostIsBounded) {
  support::set_trace_enabled(false);
  support::set_metrics_enabled(false);

  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 2'000'000;

  // Baseline: the loop body minus the span — a volatile sink keeps the
  // compiler from deleting either loop.
  volatile std::uint64_t sink = 0;
  const auto base_start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink = sink + 1;
  }
  const auto base_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - base_start)
                           .count();

  const auto span_start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    TRACE_SPAN("test", "disabled");
    sink = sink + 1;
  }
  const auto span_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - span_start)
                           .count();

  const double per_span_ns =
      static_cast<double>(span_ns - base_ns) / static_cast<double>(kIters);
  // One relaxed load + a branch: single-digit ns on anything modern. The
  // bound is generous (50 ns) to survive noisy CI; the point is that a
  // disabled span can never cost microseconds (no clock read, no buffer).
  EXPECT_LT(per_span_ns, 50.0)
      << "disabled span cost " << per_span_ns << " ns (base loop "
      << base_ns / kIters << " ns/iter)";
}

TEST(TraceOverhead, EnabledSpanCostIsBounded) {
  // With metrics on, a closing span resolves its histogram through the
  // thread-local span-slot cache: one pointer-identity probe, no string
  // join, no registry scan. Two clock reads + a few relaxed atomics is
  // ~100 ns; the 2 µs bound only exists to catch the cache regressing
  // back to a per-close linear scan over a full registry.
  support::set_trace_enabled(false);
  support::set_metrics_enabled(true);
  support::metrics_reset();

  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 200'000;
  volatile std::uint64_t sink = 0;
  const auto base_start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink = sink + 1;
  }
  const auto base_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - base_start)
                           .count();
  const auto span_start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    TRACE_SPAN("test", "enabled");
    sink = sink + 1;
  }
  const auto span_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - span_start)
                           .count();
  support::set_metrics_enabled(false);

  const auto metrics = support::metrics_snapshot();
  const auto* hist = metrics.histogram("test.enabled");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->observations, static_cast<std::uint64_t>(kIters));

  const double per_span_ns =
      static_cast<double>(span_ns - base_ns) / static_cast<double>(kIters);
  EXPECT_LT(per_span_ns, 2000.0)
      << "enabled span cost " << per_span_ns << " ns";
  support::metrics_reset();
}

TEST(TraceOverhead, MetricsCorpusOverheadWithinBudget) {
  // The whole-corpus cost contract (docs/OBSERVABILITY.md): running with
  // metrics enabled must stay within low single digits of the
  // uninstrumented wall time. Three interleaved A/B pairs, compared at
  // their minima — a lone pair on a shared 1-vCPU runner once measured a
  // 39% "regression" that was pure scheduler noise. The bound is 15%, a
  // few times the expected overhead but far below a real hot-path
  // regression (the pre-cache slot scan showed up as >30%).
  appgen::CorpusConfig config;
  config.scale = 0.01;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig runner_config;
  runner_config.jobs = 1;
  const CorpusRunner runner(pipeline, runner_config);

  support::set_trace_enabled(false);
  support::set_metrics_enabled(false);
  double plain_ms = 0.0;
  double metered_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto plain = runner.run(corpus);
    support::set_metrics_enabled(true);
    support::metrics_reset();
    const auto metered = runner.run(corpus);
    support::set_metrics_enabled(false);
    plain_ms = rep == 0 ? plain.wall_ms : std::min(plain_ms, plain.wall_ms);
    metered_ms =
        rep == 0 ? metered.wall_ms : std::min(metered_ms, metered.wall_ms);
  }
  support::metrics_reset();

  ASSERT_GT(plain_ms, 0.0);
  const double overhead_pct = 100.0 * (metered_ms - plain_ms) / plain_ms;
  EXPECT_LT(overhead_pct, 15.0)
      << "metrics overhead " << overhead_pct << "% (plain " << plain_ms
      << " ms, metered " << metered_ms << " ms)";
}

}  // namespace
}  // namespace dydroid::driver
