// Fuzz suite for the crash-safety persistence layer (docs/CHECKPOINT.md):
// structurally mutated journal files must parse (recovering a valid
// prefix) or fail loudly, and mutated outcome payloads must decode or
// raise support::ParseError — never crash, never over-allocate, never
// trip a sanitizer (tools/run_sanitizer_matrix.sh runs this suite under
// ASan/UBSan).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/faulty.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "support/error.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace dydroid {
namespace {

constexpr int kIterations = 400;

using support::Bytes;

/// Real journal payloads: outcomes of a small corpus run.
const std::vector<Bytes>& sample_payloads() {
  static const std::vector<Bytes> payloads = [] {
    support::set_log_level(support::LogLevel::Error);
    appgen::CorpusConfig config;
    config.scale = 0.002;
    const auto corpus = appgen::generate_corpus(config);
    const core::DyDroid pipeline{core::PipelineOptions{}};
    driver::RunnerConfig runner_config;
    runner_config.jobs = 2;
    const auto result =
        driver::CorpusRunner(pipeline, runner_config).run(corpus);
    std::vector<Bytes> out;
    out.reserve(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      out.push_back(driver::encode_outcome(i, result.outcomes[i]));
    }
    return out;
  }();
  return payloads;
}

/// A sealed journal holding every sample payload.
Bytes sample_journal_bytes() {
  const std::string path = testing::TempDir() + "dydroid_fuzz_" +
                           std::to_string(::getpid()) + ".jrnl";
  std::remove(path.c_str());
  {
    auto writer = support::JournalWriter::open(path);
    EXPECT_TRUE(writer.ok());
    for (const auto& payload : sample_payloads()) {
      EXPECT_TRUE(writer.value().append(payload).ok());
    }
  }
  std::ifstream in(path, std::ios::binary);
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

TEST(JournalFuzz, MutatedJournalBytesParseOrFailLoudly) {
  const Bytes intact = sample_journal_bytes();
  {
    const auto parsed = support::parse_journal(intact);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().records.size(), sample_payloads().size());
  }
  support::Rng rng(0x10021701);
  int recovered_all = 0;
  int recovered_prefix = 0;
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto mutated = appgen::mutate_bytes(intact, rng);
    const auto parsed = support::parse_journal(mutated);
    if (!parsed.ok()) {
      ++rejected;  // magic destroyed — loud failure, never a silent empty
      continue;
    }
    // Whatever the damage, every recovered record must be one of the
    // originals, in order (a prefix possibly followed by re-synchronized
    // noise is NOT acceptable — recovery stops at the first bad frame).
    const auto& records = parsed.value().records;
    bool prefix_intact = true;
    for (std::size_t r = 0;
         r < records.size() && r < sample_payloads().size(); ++r) {
      if (records[r] != sample_payloads()[r]) {
        prefix_intact = false;
        break;
      }
    }
    // Mutations inside a payload keep its CRC-consistency only if the
    // mutation also fixed the CRC — astronomically unlikely; flag it.
    if (prefix_intact && records.size() == sample_payloads().size()) {
      ++recovered_all;
    } else if (prefix_intact) {
      ++recovered_prefix;
    }
    // Every surviving record must decode or throw ParseError (the decode
    // guards are the second line of defence behind the CRC).
    for (const auto& record : records) {
      try {
        (void)driver::decode_outcome(record);
      } catch (const support::ParseError&) {
        // acceptable: framed garbage rejected at the codec layer
      }
    }
  }
  // The distribution depends on the mutator, but all three outcomes must
  // actually occur across 400 iterations.
  EXPECT_GT(recovered_prefix, 0);
  EXPECT_GT(rejected + recovered_all + recovered_prefix, kIterations / 2);
}

TEST(JournalFuzz, MutatedOutcomePayloadsDecodeOrThrowParseError) {
  support::Rng rng(0x10021702);
  int decoded_ok = 0;
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto& base = sample_payloads()[static_cast<std::size_t>(i) %
                                         sample_payloads().size()];
    const auto mutated = appgen::mutate_bytes(base, rng);
    try {
      const auto decoded = driver::decode_outcome(mutated);
      // Decoded garbage must still be serializable (no poisoned strings /
      // out-of-range enums slipped through the range checks).
      (void)core::report_to_json(decoded.outcome.report);
      ++decoded_ok;
    } catch (const support::ParseError&) {
      ++rejected;
    }
    // Any other exception type or a crash fails the test.
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(decoded_ok + rejected, kIterations);
}

TEST(JournalFuzz, TruncatedJournalNeverLosesTheValidPrefix) {
  const Bytes intact = sample_journal_bytes();
  // Every truncation point: the parse must succeed (or reject pre-magic
  // cuts) and recovered records must be an exact prefix.
  for (std::size_t cut = 0; cut <= intact.size(); cut += 7) {
    const Bytes torn(intact.begin(), intact.begin() + static_cast<long>(cut));
    const auto parsed = support::parse_journal(torn);
    if (!parsed.ok()) {
      ASSERT_LT(cut, support::kJournalMagic.size()) << "cut " << cut;
      continue;
    }
    if (cut == 0) continue;  // empty file: valid empty journal
    const auto& records = parsed.value().records;
    ASSERT_LE(records.size(), sample_payloads().size());
    for (std::size_t r = 0; r < records.size(); ++r) {
      ASSERT_EQ(records[r], sample_payloads()[r])
          << "cut " << cut << " record " << r;
    }
  }
}

}  // namespace
}  // namespace dydroid
