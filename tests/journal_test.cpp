// support::Journal unit tests (docs/CHECKPOINT.md): framing round-trips,
// reopen-and-append, magic validation, and the recovery rules — a torn
// tail or a bit-flipped record costs the damaged suffix, never the valid
// prefix, and never the process.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/journal.hpp"

namespace dydroid::support {
namespace {

/// Unique-ish temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_journal_" + tag + "_" +
            std::to_string(::getpid()) + ".jrnl";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

Bytes file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(Journal, AppendThenReadRoundTrips) {
  TempFile file("roundtrip");
  const std::vector<Bytes> records = {
      bytes_of({1, 2, 3}), bytes_of({}), bytes_of({0xff, 0x00, 0x7f, 0x80})};
  {
    auto writer = JournalWriter::open(file.path());
    ASSERT_TRUE(writer.ok()) << writer.error();
    auto w = std::move(writer).take();
    for (const auto& record : records) {
      ASSERT_TRUE(w.append(record).ok());
    }
    EXPECT_EQ(w.appended(), records.size());
    ASSERT_TRUE(w.seal().ok());
    EXPECT_FALSE(w.is_open());
  }
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_FALSE(read.value().torn());
  EXPECT_EQ(read.value().bytes_discarded, 0u);
  ASSERT_EQ(read.value().records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read.value().records[i], records[i]) << "record " << i;
  }
}

TEST(Journal, ReopenAppendsAfterExistingRecords) {
  TempFile file("reopen");
  {
    auto w = JournalWriter::open(file.path());
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().append(bytes_of({1})).ok());
  }  // destructor seals
  {
    auto w = JournalWriter::open(file.path());  // append mode (no truncate)
    ASSERT_TRUE(w.ok()) << w.error();
    ASSERT_TRUE(w.value().append(bytes_of({2})).ok());
    // appended() counts only this writer's records.
    EXPECT_EQ(w.value().appended(), 1u);
  }
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 2u);
  EXPECT_EQ(read.value().records[0], bytes_of({1}));
  EXPECT_EQ(read.value().records[1], bytes_of({2}));
}

TEST(Journal, TruncateStartsFresh) {
  TempFile file("truncate");
  {
    auto w = JournalWriter::open(file.path());
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().append(bytes_of({1, 1, 1})).ok());
  }
  JournalWriterOptions options;
  options.truncate = true;
  {
    auto w = JournalWriter::open(file.path(), options);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().append(bytes_of({9})).ok());
  }
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0], bytes_of({9}));
}

TEST(Journal, FsyncEachRecordStillRoundTrips) {
  TempFile file("fsync");
  JournalWriterOptions options;
  options.fsync_each_record = true;
  auto w = JournalWriter::open(file.path(), options);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value().append(bytes_of({5, 6})).ok());
  ASSERT_TRUE(w.value().sync().ok());
  ASSERT_TRUE(w.value().seal().ok());
  // seal() is idempotent.
  ASSERT_TRUE(w.value().seal().ok());
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 1u);
}

// ---------------------------------------------------------------------------
// Loud failures: a journal that is *absent* or *not a journal* must never
// read as a valid empty one (that would silently restart a resumed run).
// ---------------------------------------------------------------------------

TEST(Journal, MissingFileFailsLoudly) {
  auto read = read_journal(testing::TempDir() + "does_not_exist.jrnl");
  EXPECT_FALSE(read.ok());
}

TEST(Journal, WrongMagicFailsLoudly) {
  TempFile file("magic");
  write_file(file.path(), bytes_of({'N', 'O', 'T', 'A', 'J', 'R', 'N', 'L'}));
  EXPECT_FALSE(read_journal(file.path()).ok());
  // The writer refuses to append to it, too.
  EXPECT_FALSE(JournalWriter::open(file.path()).ok());
}

TEST(Journal, ShortMagicFailsLoudly) {
  TempFile file("short");
  write_file(file.path(), bytes_of({'D', 'Y', 'J'}));
  EXPECT_FALSE(read_journal(file.path()).ok());
}

TEST(Journal, EmptyBytesParseAsEmptyJournal) {
  // parse_journal on zero bytes == freshly created, never-written journal.
  const auto parsed = parse_journal({});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records.empty());
  EXPECT_FALSE(parsed.value().torn());
}

TEST(Journal, MagicOnlyFileIsEmptyJournal) {
  TempFile file("magiconly");
  { ASSERT_TRUE(JournalWriter::open(file.path()).ok()); }
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().torn());
}

// ---------------------------------------------------------------------------
// Recovery: damage costs the suffix, never the prefix.
// ---------------------------------------------------------------------------

/// A sealed three-record journal to damage.
Bytes intact_journal(const std::string& path) {
  auto w = JournalWriter::open(path);
  EXPECT_TRUE(w.ok());
  EXPECT_TRUE(w.value().append(bytes_of({1, 2, 3, 4})).ok());
  EXPECT_TRUE(w.value().append(bytes_of({5, 6})).ok());
  EXPECT_TRUE(w.value().append(bytes_of({7, 8, 9})).ok());
  EXPECT_TRUE(w.value().seal().ok());
  return file_bytes(path);
}

TEST(Journal, TornTailRecoversPrefix) {
  TempFile file("torn");
  const Bytes intact = intact_journal(file.path());
  // Truncate mid-way through the last frame at every possible cut point:
  // the first two records always survive.
  const std::size_t last_frame_start =
      intact.size() - (kJournalFrameOverhead + 3);
  for (std::size_t cut = last_frame_start + 1; cut < intact.size(); ++cut) {
    Bytes torn(intact.begin(), intact.begin() + static_cast<long>(cut));
    const auto parsed = parse_journal(torn);
    ASSERT_TRUE(parsed.ok()) << "cut at " << cut;
    EXPECT_EQ(parsed.value().records.size(), 2u) << "cut at " << cut;
    EXPECT_TRUE(parsed.value().torn()) << "cut at " << cut;
  }
}

TEST(Journal, BitFlipAnywhereInLastFrameDropsOnlyThatRecord) {
  TempFile file("flip");
  const Bytes intact = intact_journal(file.path());
  const std::size_t last_frame_start =
      intact.size() - (kJournalFrameOverhead + 3);
  // Flip every bit of the last frame (len, crc and payload bytes): the
  // reader must keep the first two records and drop the damaged one.
  for (std::size_t pos = last_frame_start; pos < intact.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = intact;
      flipped[pos] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = parse_journal(flipped);
      ASSERT_TRUE(parsed.ok()) << "flip at " << pos << " bit " << bit;
      // A flipped length can make the frame look short (torn) or the CRC
      // fail; either way at most the last record is lost and the first two
      // are byte-identical.
      ASSERT_GE(parsed.value().records.size(), 2u)
          << "flip at " << pos << " bit " << bit;
      EXPECT_EQ(parsed.value().records[0], bytes_of({1, 2, 3, 4}));
      EXPECT_EQ(parsed.value().records[1], bytes_of({5, 6}));
    }
  }
}

TEST(Journal, BitFlipInFirstRecordDropsEverything) {
  TempFile file("flipfirst");
  Bytes intact = intact_journal(file.path());
  // Corrupt the first payload byte (after magic + len + crc).
  intact[kJournalMagic.size() + kJournalFrameOverhead] ^= 0x01;
  const auto parsed = parse_journal(intact);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records.empty());
  EXPECT_TRUE(parsed.value().torn());
}

TEST(Journal, LengthPastEofIsTornNotOverread) {
  TempFile file("hugelen");
  Bytes data(kJournalMagic.begin(), kJournalMagic.end());
  // Frame claiming a 4GiB-ish payload with only 2 bytes behind it.
  for (std::uint8_t b : {0xff, 0xff, 0xff, 0x7f}) data.push_back(b);
  for (int i = 0; i < 6; ++i) data.push_back(0xab);
  const auto parsed = parse_journal(data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records.empty());
  EXPECT_TRUE(parsed.value().torn());
}

TEST(Journal, TruncateThenAppendResumesCleanly) {
  // The resume dance for a torn journal: read (recovering the prefix),
  // chop the damaged tail, reopen for append. The new record must be
  // readable after the surviving ones.
  TempFile file("truncappend");
  const Bytes intact = intact_journal(file.path());
  write_file(file.path(), Bytes(intact.begin(), intact.end() - 2));  // tear
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().torn());
  ASSERT_EQ(read.value().records.size(), 2u);
  ASSERT_TRUE(
      truncate_journal(file.path(), read.value().bytes_recovered).ok());
  {
    auto w = JournalWriter::open(file.path());
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().append(bytes_of({42})).ok());
  }
  auto reread = read_journal(file.path());
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().torn());
  ASSERT_EQ(reread.value().records.size(), 3u);
  EXPECT_EQ(reread.value().records[0], bytes_of({1, 2, 3, 4}));
  EXPECT_EQ(reread.value().records[1], bytes_of({5, 6}));
  EXPECT_EQ(reread.value().records[2], bytes_of({42}));
}

TEST(Journal, TruncateFsyncsTheParentDirectory) {
  // A truncate(2) is only crash-durable once the parent directory is
  // fsynced; dir_fsyncs() is the test hook proving that path actually ran
  // (the bug was a silent no-op: both files synced, the directory not).
  TempFile file("dirsync");
  const Bytes intact = intact_journal(file.path());
  write_file(file.path(), Bytes(intact.begin(), intact.end() - 2));  // tear
  auto read = read_journal(file.path());
  ASSERT_TRUE(read.ok());
  const std::uint64_t before = dir_fsyncs();
  ASSERT_TRUE(
      truncate_journal(file.path(), read.value().bytes_recovered).ok());
  EXPECT_GT(dir_fsyncs(), before);
}

TEST(Journal, RecoveredByteAccountingAddsUp) {
  TempFile file("accounting");
  const Bytes intact = intact_journal(file.path());
  Bytes torn(intact.begin(), intact.end() - 2);
  const auto parsed = parse_journal(torn);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().bytes_recovered + parsed.value().bytes_discarded,
            torn.size());
}

// ---------------------------------------------------------------------------
// Shard-metadata record codec (docs/SHARDING.md).
// ---------------------------------------------------------------------------

ShardMeta sample_meta() {
  ShardMeta meta;
  meta.shard_index = 2;
  meta.shard_count = 8;
  meta.seed_base = 0xBE9C0000ull;
  meta.corpus_size = 58739;
  meta.outcome_codec_version = 2;
  for (std::size_t i = 0; i < meta.config_fingerprint.size(); ++i) {
    meta.config_fingerprint[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  return meta;
}

TEST(ShardMeta, RoundTripsAllFields) {
  const ShardMeta meta = sample_meta();
  const Bytes encoded = encode_shard_meta(meta);
  ASSERT_TRUE(is_shard_meta(encoded));
  EXPECT_EQ(encoded.front(), kShardMetaTag);
  EXPECT_EQ(decode_shard_meta(encoded), meta);
}

TEST(ShardMeta, OutcomeRecordsAreNotMistakenForMetadata) {
  // Outcome payloads lead with a codec version byte counting up from 1 —
  // never the 0xF5 tag — so the first byte alone separates the kinds.
  EXPECT_FALSE(is_shard_meta(bytes_of({1, 2, 3})));
  EXPECT_FALSE(is_shard_meta(bytes_of({2})));
  EXPECT_FALSE(is_shard_meta(Bytes{}));
}

TEST(ShardMeta, DecodeIsStrict) {
  const Bytes good = encode_shard_meta(sample_meta());
  // Wrong leading tag.
  Bytes wrong_tag = good;
  wrong_tag[0] = 1;
  EXPECT_THROW((void)decode_shard_meta(wrong_tag), ParseError);
  // Unsupported format version.
  Bytes wrong_version = good;
  wrong_version[1] = kShardMetaVersion + 1;
  EXPECT_THROW((void)decode_shard_meta(wrong_version), ParseError);
  // Truncations at every length.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)decode_shard_meta(Bytes(good.begin(),
                                               good.begin() + len)),
                 ParseError)
        << "length " << len;
  }
  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_shard_meta(trailing), ParseError);
}

TEST(ShardMeta, DecodeRejectsInconsistentShardFields) {
  ShardMeta meta = sample_meta();
  meta.shard_count = 0;  // a shard of nothing
  EXPECT_THROW((void)decode_shard_meta(encode_shard_meta(meta)), ParseError);
  meta.shard_count = 4;
  meta.shard_index = 4;  // out of range
  EXPECT_THROW((void)decode_shard_meta(encode_shard_meta(meta)), ParseError);
}

}  // namespace
}  // namespace dydroid::support
