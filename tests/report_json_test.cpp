// JSON report serialization tests.
#include <gtest/gtest.h>

#include "appgen/generator.hpp"
#include "core/report_json.hpp"

namespace dydroid::core {
namespace {

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

AppReport sample_report() {
  appgen::AppSpec spec;
  spec.package = "com.json.sample";
  spec.category = "Tools";
  spec.ad_sdk = true;
  spec.vuln = appgen::VulnKind::DexExternalStorage;
  spec.min_sdk = 16;
  support::Rng rng(1);
  const auto app = appgen::build_app(spec, rng);
  PipelineOptions options;
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  DyDroid pipeline(std::move(options));
  return pipeline.analyze(app.apk, 1);
}

TEST(ReportJson, ContainsAllSections) {
  const auto json = report_to_json(sample_report());
  EXPECT_NE(json.find("\"package\": \"com.json.sample\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"exercised\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": ["), std::string::npos);
  EXPECT_NE(json.find("\"binaries\": ["), std::string::npos);
  EXPECT_NE(json.find("\"vulnerabilities\": ["), std::string::npos);
  EXPECT_NE(json.find("\"call_site\": \"com.google.ads.sdk.MediaLoader\""),
            std::string::npos);
  EXPECT_NE(json.find("External storage"), std::string::npos);
}

TEST(ReportJson, BinarySummarizedNotEmbedded) {
  const auto report = sample_report();
  const auto json = report_to_json(report);
  // Size and hash present; raw bytes are not.
  EXPECT_NE(json.find("\"size\": "), std::string::npos);
  EXPECT_NE(json.find("\"sha256\": "), std::string::npos);
  ASSERT_FALSE(report.binaries.empty());
  EXPECT_LT(json.size(), 16 * 1024u);  // compact even with several binaries
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  const auto json = report_to_json(sample_report());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, NullOriginForLocalLoads) {
  const auto json = report_to_json(sample_report());
  EXPECT_NE(json.find("\"origin_url\": null"), std::string::npos);
}

TEST(ReportJson, EmptyReportSerializes) {
  AppReport report;
  report.package = "com.empty";
  const auto json = report_to_json(report);
  EXPECT_NE(json.find("\"package\": \"com.empty\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"not-run\""), std::string::npos);
}

}  // namespace
}  // namespace dydroid::core
