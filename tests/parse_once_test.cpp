// Parse-once pipeline guard (docs/PIPELINE.md): the subject APK container is
// deserialized exactly once per analysis attempt. Every later consumer — the
// rewriter, the device install, the VM loader — works from the shared
// ApkImage (or a cheap Blob view of it), never from a re-parse. The
// `pipeline.parses` counter is incremented only by ApkImage::parse, so this
// test pins the whole-pipeline parse count and fails if a re-parse sneaks
// back into any stage.
#include <gtest/gtest.h>

#include <cstdint>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace dydroid {
namespace {

appgen::GeneratedApp make_app(bool write_permission) {
  appgen::AppSpec spec;
  spec.package = "com.example.parseonce";
  spec.category = "TOOLS";
  spec.write_external_permission = write_permission;
  spec.own_dex_dcl = true;
  support::Rng rng(0x9A25E01);
  return appgen::build_app(spec, rng);
}

std::uint64_t counter_value(const support::MetricsSnapshot& snapshot,
                            std::string_view name) {
  const auto* counter = snapshot.counter(name);
  return counter == nullptr ? 0u : counter->value;
}

support::MetricsSnapshot analyze_with_metrics(
    const appgen::GeneratedApp& app) {
  support::set_log_level(support::LogLevel::Error);
  support::set_metrics_enabled(true);
  support::metrics_reset();
  core::PipelineOptions options;
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  const core::DyDroid pipeline(std::move(options));
  const auto report = pipeline.analyze(app.apk, 0x1234);
  EXPECT_NE(report.status, core::DynamicStatus::kNotRun)
      << "guard app must traverse the dynamic stage";
  auto snapshot = support::metrics_snapshot();
  support::set_metrics_enabled(false);
  return snapshot;
}

TEST(ParseOnce, NonRewrittenAppParsesItsContainerExactlyOnce) {
  // The app already holds WRITE_EXTERNAL_STORAGE, so no rewrite happens and
  // the StaticStage parse is the only container deserialization.
  const auto snapshot = analyze_with_metrics(make_app(true));
  EXPECT_EQ(counter_value(snapshot, "pipeline.parses"), 1u);
}

TEST(ParseOnce, RewrittenAppStillParsesExactlyOnce) {
  // The permission rewrite repacks the container (ApkImage::from_file — a
  // serialize, counted as copied bytes), but must not re-parse it: the
  // install and the VM consume the rewritten image directly.
  const auto snapshot = analyze_with_metrics(make_app(false));
  EXPECT_EQ(counter_value(snapshot, "pipeline.parses"), 1u);
  EXPECT_GT(counter_value(snapshot, "pipeline.bytes_copied"), 0u);
}

}  // namespace
}  // namespace dydroid
