// MiniFlowDroid tests: source/sink catalogs and the inter-procedural taint
// analysis over intercepted DEX (arbitrary entry points, field and return
// propagation, URI-resolved content-provider sources).
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "privacy/flowdroid.hpp"

namespace dydroid::privacy {
namespace {

bool leaks_type(const PrivacyReport& report, DataType type) {
  return (report.leaked_mask() & mask_of(type)) != 0;
}

TEST(Catalog, SourceApis) {
  EXPECT_EQ(source_api("android.telephony.TelephonyManager", "getDeviceId"),
            DataType::Imei);
  EXPECT_EQ(source_api("android.location.LocationManager",
                       "getLastKnownLocation"),
            DataType::Location);
  EXPECT_EQ(source_api("android.util.Log", "d"), std::nullopt);
}

TEST(Catalog, SourceUris) {
  EXPECT_EQ(source_uri("content://contacts"), DataType::Contact);
  EXPECT_EQ(source_uri("content://settings"), DataType::Settings);
  EXPECT_EQ(source_uri("content://unknown"), std::nullopt);
}

TEST(Catalog, Sinks) {
  EXPECT_TRUE(is_sink_api("android.util.Log", "d"));
  EXPECT_TRUE(is_sink_api("java.io.OutputStream", "write"));
  EXPECT_TRUE(is_sink_api("android.telephony.SmsManager", "sendTextMessage"));
  EXPECT_FALSE(is_sink_api("java.lang.System", "currentTimeMillis"));
}

TEST(Catalog, CategoriesCoverAllTypes) {
  int counts[5] = {};
  for (int i = 0; i < kNumDataTypes; ++i) {
    counts[static_cast<int>(category_of(static_cast<DataType>(i)))]++;
  }
  EXPECT_EQ(counts[static_cast<int>(Category::L)], 1);
  EXPECT_EQ(counts[static_cast<int>(Category::PI)], 3);
  EXPECT_EQ(counts[static_cast<int>(Category::UI)], 2);
  EXPECT_EQ(counts[static_cast<int>(Category::UP)], 2);
  EXPECT_EQ(counts[static_cast<int>(Category::CP)], 10);
}

TEST(Catalog, MaskHelpers) {
  const auto mask = mask_of(DataType::Imei) | mask_of(DataType::Sms);
  const auto types = types_in(mask);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], DataType::Imei);
  EXPECT_EQ(types[1], DataType::Sms);
}

// ---------------------------------------------------------------------------
// Direct flows.
// ---------------------------------------------------------------------------

TEST(FlowDroid, DirectSourceToSink) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.const_str(2, "tag");
  m.invoke_static("android.util.Log", "d", {2, 1});
  m.done();
  const auto report = analyze_privacy(b.build());
  ASSERT_EQ(report.leaks.size(), 1u);
  EXPECT_EQ(report.leaks[0].type, DataType::Imei);
  EXPECT_EQ(report.leaks[0].sink_class, "sdk.Tracker");
  EXPECT_EQ(report.leaks[0].sink_api, "android.util.Log.d");
}

TEST(FlowDroid, NoLeakWithoutSinkReach) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.const_str(2, "const only");
  m.invoke_static("android.util.Log", "d", {2, 2});  // logs a constant
  m.done();
  EXPECT_TRUE(analyze_privacy(b.build()).leaks.empty());
}

TEST(FlowDroid, TaintThroughArithAndConcat) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.invoke_static("android.location.LocationManager", "getLastKnownLocation");
  m.move_result(1);
  m.const_str(2, "loc=");
  m.concat(3, 2, 1);
  m.invoke_static("android.util.Log", "d", {2, 3});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::Location));
}

TEST(FlowDroid, OverwriteKillsTaint) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.const_str(1, "clean");  // strong update on the register
  m.invoke_static("android.util.Log", "d", {1, 1});
  m.done();
  EXPECT_TRUE(analyze_privacy(b.build()).leaks.empty());
}

TEST(FlowDroid, UriResolvedContentProviderSource) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.const_str(1, "content://call_log");
  m.invoke_static("android.content.ContentResolver", "query", {1});
  m.move_result(2);
  m.invoke_static("android.util.Log", "d", {1, 2});
  m.done();
  const auto report = analyze_privacy(b.build());
  ASSERT_EQ(report.leaks.size(), 1u);
  EXPECT_EQ(report.leaks[0].type, DataType::CallLog);
}

TEST(FlowDroid, UnknownUriQueryIsNotASource) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Tracker").method("run", 1);
  m.const_str(1, "content://com.custom.provider");
  m.invoke_static("android.content.ContentResolver", "query", {1});
  m.move_result(2);
  m.invoke_static("android.util.Log", "d", {1, 2});
  m.done();
  EXPECT_TRUE(analyze_privacy(b.build()).leaks.empty());
}

// ---------------------------------------------------------------------------
// Inter-procedural / field flows.
// ---------------------------------------------------------------------------

TEST(FlowDroid, ReturnValuePropagation) {
  dex::DexBuilder b;
  b.cls("sdk.Source").static_method("grab", 0)
      .invoke_static("android.telephony.TelephonyManager", "getSubscriberId")
      .move_result(0)
      .ret(0)
      .done();
  auto m = b.cls("sdk.Sink").method("run", 1);
  m.invoke_static("sdk.Source", "grab");
  m.move_result(1);
  m.invoke_static("android.util.Log", "d", {1, 1});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::Imsi));
  // The leak is attributed to the class CONTAINING the sink call.
  ASSERT_FALSE(report.leaks.empty());
  EXPECT_EQ(report.leaks[0].sink_class, "sdk.Sink");
}

TEST(FlowDroid, ParameterPropagation) {
  dex::DexBuilder b;
  b.cls("sdk.Out").static_method("ship", 1)
      .invoke_static("android.util.Log", "d", {0, 0})
      .done();
  auto m = b.cls("sdk.Main").method("run", 1);
  m.invoke_static("android.accounts.AccountManager", "getAccounts");
  m.move_result(1);
  m.invoke_static("sdk.Out", "ship", {1});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::Account));
  ASSERT_FALSE(report.leaks.empty());
  EXPECT_EQ(report.leaks[0].sink_class, "sdk.Out");
}

TEST(FlowDroid, FieldPropagationAcrossMethods) {
  dex::DexBuilder b;
  auto cls = b.cls("sdk.Store");
  cls.static_field("stash");
  auto put = cls.static_method("collect", 0);
  put.invoke_static("android.telephony.TelephonyManager", "getLine1Number");
  put.move_result(0);
  put.sput(0, "sdk.Store", "stash");
  put.done();
  auto get = cls.static_method("exfil", 0);
  get.sget(0, "sdk.Store", "stash");
  get.invoke_static("android.telephony.SmsManager", "sendTextMessage", {0, 0});
  get.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::PhoneNumber));
  ASSERT_FALSE(report.leaks.empty());
  EXPECT_EQ(report.leaks[0].sink_api,
            "android.telephony.SmsManager.sendTextMessage");
}

TEST(FlowDroid, InstanceFieldFlow) {
  dex::DexBuilder b;
  auto cls = b.cls("sdk.Holder");
  cls.instance_field("data");
  auto m = cls.method("run", 1);
  m.invoke_static("android.content.pm.PackageManager",
                  "getInstalledPackages");
  m.move_result(1);
  m.iput(1, 0, "data");
  m.iget(2, 0, "data");
  m.invoke_static("android.util.Log", "d", {2, 2});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::InstalledPackages));
}

TEST(FlowDroid, LoopCarriedTaint) {
  // Taint enters the sink only through a back edge.
  dex::DexBuilder b;
  auto m = b.cls("sdk.Loop").method("run", 1);
  m.const_str(1, "seed");
  m.const_int(2, 3);
  m.label("top");
  m.if_eqz(2, "end");
  m.invoke_static("android.util.Log", "d", {1, 1});  // leaks on pass >= 2
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.const_int(3, 1);
  m.sub(2, 2, 3);
  m.jump("top");
  m.label("end");
  m.return_void();
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::Imei));
}

TEST(FlowDroid, MultipleTypesAccumulate) {
  dex::DexBuilder b;
  auto m = b.cls("sdk.Multi").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.invoke_static("android.location.LocationManager", "getLastKnownLocation");
  m.move_result(2);
  m.concat(3, 1, 2);
  m.invoke_static("android.util.Log", "d", {3, 3});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_TRUE(leaks_type(report, DataType::Imei));
  EXPECT_TRUE(leaks_type(report, DataType::Location));
  EXPECT_EQ(report.of_type(DataType::Imei).size(), 1u);
}

TEST(FlowDroid, PassThroughFrameworkCallsPropagate) {
  // String.getBytes is not a source/sink; taint must pass through it.
  dex::DexBuilder b;
  auto m = b.cls("sdk.Enc").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getSimSerialNumber");
  m.move_result(1);
  m.invoke_static("java.lang.String", "getBytes", {1});
  m.move_result(2);
  m.invoke_static("android.util.Log", "d", {2, 2});
  m.done();
  EXPECT_TRUE(leaks_type(analyze_privacy(b.build()), DataType::Iccid));
}

TEST(FlowDroid, EmptyDexNoLeaks) {
  dex::DexFile empty;
  EXPECT_TRUE(analyze_privacy(empty).leaks.empty());
}

TEST(FlowDroid, DuplicateLeaksDeduplicated) {
  // Same (class, method, sink, type) reported once even under fixpoint
  // iteration.
  dex::DexBuilder b;
  auto m = b.cls("sdk.Dup").method("run", 1);
  m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
  m.move_result(1);
  m.invoke_static("android.util.Log", "d", {1, 1});
  m.done();
  const auto report = analyze_privacy(b.build());
  EXPECT_EQ(report.leaks.size(), 1u);
}

}  // namespace
}  // namespace dydroid::privacy
