// Canonical binary codec tests (docs/CHECKPOINT.md): an AppReport (and its
// driver::AppOutcome journal framing) must survive a serialize/deserialize
// round trip exactly — the JSON of the decoded report is byte-identical to
// the original for every Table II–X field — and the decoder must reject
// damaged payloads with ParseError, never undefined behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/report_codec.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "privacy/sources.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid {
namespace {

using core::AppReport;
using support::ByteReader;
using support::ByteWriter;
using support::Bytes;
using support::ParseError;

Bytes encode_report(const AppReport& report) {
  ByteWriter w;
  core::serialize_report(w, report);
  return w.take();
}

AppReport decode_report(const Bytes& bytes) {
  ByteReader r(bytes);
  AppReport report = core::deserialize_report(r);
  EXPECT_TRUE(r.at_end());
  return report;
}

/// A report exercising every serialized field at least once: obfuscation
/// flags (Fig. 3), DCL events with traces (Table III/IV), intercepted
/// binaries with remote provenance, malware hits and privacy leaks
/// (Tables VI–X), VM events and vulnerability findings (Table IX).
AppReport all_fields_report() {
  AppReport report;
  report.package = "com.example.everything";
  report.decompile_failed = false;
  report.static_dcl.dex_dcl = true;
  report.static_dcl.native_dcl = true;
  report.obfuscation.lexical = true;
  report.obfuscation.reflection = true;
  report.obfuscation.native_code = false;
  report.obfuscation.dex_encryption = true;
  report.obfuscation.anti_decompilation = false;
  report.min_sdk = 16;
  report.status = core::DynamicStatus::kExercised;
  report.crash_message = "";
  report.storage_recovered = true;

  core::DclEvent event;
  event.kind = core::CodeKind::Dex;
  event.paths = {"/sdcard/payload.dex", "/data/data/app/code.dex"};
  event.optimized_dir = "/data/data/app/odex";
  event.call_site_class = "Lcom/ads/Loader;";
  event.entity = core::Entity::ThirdParty;
  event.system_binary = false;
  event.integrity_check_before = true;
  vm::StackTraceElement frame;
  frame.class_name = "Lcom/ads/Loader;";
  frame.method_name = "fetch";
  event.trace.push_back(frame);
  frame.method_name = "run";
  event.trace.push_back(frame);
  report.events.push_back(event);

  core::DclEvent native_event;
  native_event.kind = core::CodeKind::Native;
  native_event.paths = {"/system/lib/libc.so"};
  native_event.entity = core::Entity::Own;
  native_event.system_binary = true;
  report.events.push_back(native_event);

  core::BinaryReport binary;
  binary.binary.kind = core::CodeKind::Dex;
  binary.binary.path = "/sdcard/payload.dex";
  binary.binary.bytes =
      support::Blob::take(Bytes{0xde, 0xad, 0x00, 0xbe, 0xef});
  binary.binary.call_site_class = "Lcom/ads/Loader;";
  binary.binary.entity = core::Entity::ThirdParty;
  binary.origin_url = "http://cdn.example.com/payload.dex";
  malware::Detection detection;
  detection.family = "swiss_code_monkeys";
  detection.score = 0.97265625;
  detection.matched_sample = "swiss-03";
  binary.malware = detection;
  privacy::Leak leak;
  leak.type = privacy::DataType::Imei;
  leak.sink_api = "HttpURLConnection.write";
  leak.sink_class = "Lcom/ads/Beacon;";
  leak.sink_method = "send";
  binary.privacy.leaks.push_back(leak);
  report.binaries.push_back(binary);

  core::BinaryReport bare;  // no optionals set
  bare.binary.kind = core::CodeKind::Native;
  bare.binary.path = "/data/data/app/lib/libfoo.so";
  report.binaries.push_back(bare);

  vm::VmEvent vm_event;
  vm_event.kind = "reflection";
  vm_event.detail = "Class.forName(com.hidden.Impl)";
  report.vm_events.push_back(vm_event);

  core::VulnFinding vuln;
  vuln.kind = core::CodeKind::Dex;
  vuln.category = core::VulnCategory::ExternalStorage;
  vuln.path = "/sdcard/payload.dex";
  report.vulns.push_back(vuln);
  return report;
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(ReportCodec, AllFieldsRoundTripJsonIdentical) {
  const AppReport original = all_fields_report();
  const AppReport decoded = decode_report(encode_report(original));
  EXPECT_EQ(core::report_to_json(decoded), core::report_to_json(original));
  // Fields the JSON may summarize still round-trip exactly.
  ASSERT_EQ(decoded.binaries.size(), original.binaries.size());
  EXPECT_EQ(decoded.binaries[0].binary.bytes, original.binaries[0].binary.bytes);
  ASSERT_TRUE(decoded.binaries[0].malware.has_value());
  EXPECT_EQ(decoded.binaries[0].malware->score,
            original.binaries[0].malware->score);
  EXPECT_FALSE(decoded.binaries[1].origin_url.has_value());
  EXPECT_FALSE(decoded.binaries[1].malware.has_value());
  ASSERT_EQ(decoded.events.size(), 2u);
  EXPECT_EQ(decoded.events[0].trace.size(), 2u);
  EXPECT_TRUE(decoded.events[0].integrity_check_before);
  EXPECT_TRUE(decoded.events[1].system_binary);
}

TEST(ReportCodec, DefaultReportRoundTrips) {
  const AppReport decoded = decode_report(encode_report(AppReport{}));
  EXPECT_EQ(core::report_to_json(decoded), core::report_to_json(AppReport{}));
}

TEST(ReportCodec, EveryStatusRoundTrips) {
  for (int s = 0; s < 5; ++s) {
    AppReport report;
    report.status = static_cast<core::DynamicStatus>(s);
    report.crash_message = s == 3 ? "boom" : "";
    const AppReport decoded = decode_report(encode_report(report));
    EXPECT_EQ(decoded.status, report.status) << "status " << s;
    EXPECT_EQ(decoded.crash_message, report.crash_message);
  }
}

TEST(ReportCodec, CorpusReportsRoundTripJsonIdentical) {
  // Every report a real (small) corpus run produces survives the codec.
  appgen::CorpusConfig config;
  config.scale = 0.002;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  driver::RunnerConfig runner_config;
  runner_config.jobs = 2;
  const auto result = driver::CorpusRunner(pipeline, runner_config).run(corpus);
  ASSERT_GT(result.outcomes.size(), 10u);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& report = result.outcomes[i].report;
    const AppReport decoded = decode_report(encode_report(report));
    ASSERT_EQ(core::report_to_json(decoded), core::report_to_json(report))
        << "app index " << i;
  }
}

// ---------------------------------------------------------------------------
// Outcome framing (the journal payload).
// ---------------------------------------------------------------------------

TEST(OutcomeCodec, OutcomeRoundTripsWithDriverFields) {
  driver::AppOutcome outcome;
  outcome.report = all_fields_report();
  outcome.seed = 0xBE9C0042ull;
  outcome.wall_ms = 12.625;
  outcome.attempts = 2;
  outcome.timed_out = true;
  outcome.quarantined = true;
  const Bytes payload = driver::encode_outcome(17, outcome);
  const auto decoded = driver::decode_outcome(payload);
  EXPECT_EQ(decoded.index, 17u);
  EXPECT_EQ(decoded.outcome.seed, outcome.seed);
  EXPECT_EQ(decoded.outcome.wall_ms, outcome.wall_ms);
  EXPECT_EQ(decoded.outcome.attempts, 2u);
  EXPECT_TRUE(decoded.outcome.timed_out);
  EXPECT_TRUE(decoded.outcome.quarantined);
  EXPECT_TRUE(decoded.outcome.completed);
  EXPECT_TRUE(decoded.outcome.replayed);
  EXPECT_EQ(core::report_to_json(decoded.outcome.report),
            core::report_to_json(outcome.report));
}

// ---------------------------------------------------------------------------
// Defensive decode: damage -> ParseError, never UB or a giant allocation.
// ---------------------------------------------------------------------------

TEST(ReportCodec, TruncationAtEveryPointThrowsParseError) {
  const Bytes payload = encode_report(all_fields_report());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    Bytes truncated(payload.begin(), payload.begin() + static_cast<long>(cut));
    ByteReader r(truncated);
    EXPECT_THROW((void)core::deserialize_report(r), ParseError)
        << "cut at " << cut;
  }
}

TEST(ReportCodec, BadEnumThrowsParseError) {
  AppReport report;
  report.status = static_cast<core::DynamicStatus>(4);  // last valid
  Bytes payload = encode_report(report);
  // The status byte follows the empty package (u32 len) + 8 bools +
  // i64 min_sdk.
  const std::size_t status_pos = 4 + 8 + 8;
  ASSERT_LT(status_pos, payload.size());
  payload[status_pos] = 7;  // out of range
  ByteReader r(payload);
  EXPECT_THROW((void)core::deserialize_report(r), ParseError);
}

TEST(ReportCodec, ImplausibleCountThrowsInsteadOfAllocating) {
  AppReport report;
  const Bytes payload = encode_report(report);
  // The events count is the last 16 bytes from the end in an empty report
  // (4 counts of 4 bytes each); inflate it to ~4 billion.
  Bytes inflated = payload;
  const std::size_t events_count_pos = payload.size() - 16;
  inflated[events_count_pos + 0] = 0xff;
  inflated[events_count_pos + 1] = 0xff;
  inflated[events_count_pos + 2] = 0xff;
  inflated[events_count_pos + 3] = 0x7f;
  ByteReader r(inflated);
  EXPECT_THROW((void)core::deserialize_report(r), ParseError);
}

TEST(OutcomeCodec, VersionMismatchAndTrailingBytesThrow) {
  driver::AppOutcome outcome;
  outcome.seed = 1;
  Bytes payload = driver::encode_outcome(0, outcome);
  Bytes wrong_version = payload;
  wrong_version[0] = driver::kOutcomeCodecVersion + 1;
  EXPECT_THROW((void)driver::decode_outcome(wrong_version), ParseError);
  Bytes trailing = payload;
  trailing.push_back(0x00);
  EXPECT_THROW((void)driver::decode_outcome(trailing), ParseError);
  Bytes bad_flags = payload;
  // flags byte sits after version(1) + index(8) + seed(8) + wall(8) +
  // attempts(4).
  bad_flags[1 + 8 + 8 + 8 + 4] = 0xf0;
  EXPECT_THROW((void)driver::decode_outcome(bad_flags), ParseError);
}

}  // namespace
}  // namespace dydroid
