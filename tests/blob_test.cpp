// Blob ownership primitive (docs/FORMATS.md, "Buffer ownership & zero-copy
// views"): refcount semantics, aliasing slices, lifetime extension, and the
// VFS snapshot guarantee that read views never dangle. The lifetime cases
// here are the ones AddressSanitizer turns from "happens to work" into hard
// failures — run them under `tools/run_sanitizer_matrix.sh asan` after any
// change to Blob or the VFS storage model.
#include <gtest/gtest.h>

#include <utility>

#include "os/vfs.hpp"
#include "support/blob.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid {
namespace {

using support::Blob;
using support::Bytes;

Bytes sample_bytes() {
  Bytes out;
  for (int i = 0; i < 64; ++i) out.push_back(static_cast<std::uint8_t>(i));
  return out;
}

TEST(Blob, DefaultIsEmpty) {
  const Blob b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.span().empty());
  EXPECT_EQ(b, Blob{});
}

TEST(Blob, CopyOfDuplicatesTheBytes) {
  const auto src = sample_bytes();
  const auto b = Blob::copy_of(src);
  EXPECT_EQ(b, src);
  // Two independent copies own distinct buffers.
  EXPECT_FALSE(b.shares_buffer_with(Blob::copy_of(src)));
}

TEST(Blob, TakeAdoptsWithoutCopying) {
  auto src = sample_bytes();
  const auto* raw = src.data();
  const auto b = Blob::take(std::move(src));
  EXPECT_EQ(b.data(), raw);
}

TEST(Blob, OfStringCopiesCharacters) {
  const auto b = Blob::of_string("hello");
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[4], 'o');
}

TEST(Blob, CopyIsARefcountBumpNotAByteCopy) {
  const auto a = Blob::copy_of(sample_bytes());
  const Blob b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(b.shares_buffer_with(a));
  EXPECT_EQ(b.data(), a.data());
}

TEST(Blob, SliceAliasesTheParentBuffer) {
  const auto parent = Blob::take(sample_bytes());
  const auto child = parent.slice(8, 16);
  EXPECT_TRUE(child.shares_buffer_with(parent));
  EXPECT_EQ(child.data(), parent.data() + 8);
  ASSERT_EQ(child.size(), 16u);
  EXPECT_EQ(child[0], 8);
  EXPECT_EQ(child[15], 23);
}

TEST(Blob, SliceKeepsTheBufferAliveAfterTheParentDies) {
  Blob child;
  {
    const auto parent = Blob::take(sample_bytes());
    child = parent.slice(4, 8);
  }  // parent Blob destroyed; the slice must keep the backing buffer alive
  ASSERT_EQ(child.size(), 8u);
  for (std::size_t i = 0; i < child.size(); ++i) {
    EXPECT_EQ(child[i], static_cast<std::uint8_t>(4 + i));
  }
}

TEST(Blob, SliceEdgeCases) {
  const auto parent = Blob::take(sample_bytes());
  // Whole-buffer slice: same view, same owner.
  const auto whole = parent.slice(0, parent.size());
  EXPECT_EQ(whole, parent);
  EXPECT_TRUE(whole.shares_buffer_with(parent));
  // Empty slice at the very end is legal.
  const auto empty = parent.slice(parent.size(), 0);
  EXPECT_TRUE(empty.empty());
  // Slice of a slice composes offsets.
  const auto nested = parent.slice(16, 32).slice(8, 4);
  ASSERT_EQ(nested.size(), 4u);
  EXPECT_EQ(nested[0], 24);
  EXPECT_TRUE(nested.shares_buffer_with(parent));
}

TEST(Blob, SliceOutOfRangeThrows) {
  const auto parent = Blob::take(sample_bytes());
  EXPECT_THROW((void)parent.slice(0, parent.size() + 1), support::ParseError);
  EXPECT_THROW((void)parent.slice(parent.size() + 1, 0), support::ParseError);
  EXPECT_THROW((void)parent.slice(60, 8), support::ParseError);
  EXPECT_THROW((void)Blob{}.slice(1, 0), support::ParseError);
}

TEST(Blob, ContentEqualityAgainstByteRanges) {
  const auto src = sample_bytes();
  const auto b = Blob::copy_of(src);
  EXPECT_EQ(b, src);                       // heterogeneous Blob == Bytes
  EXPECT_EQ(b, Blob::copy_of(src));        // content, not identity
  EXPECT_FALSE(b == Blob::of_string("x"));
  EXPECT_EQ(b.to_bytes(), src);
}

// ---------------------------------------------------------------------------
// VFS snapshot guarantee: a read_file() view must stay valid (and keep the
// contents it had at read time) across delete and overwrite. Before Blobs,
// read_file returned a raw pointer into the file map — deleting the file
// while a reader held the pointer was a dangling read.
// ---------------------------------------------------------------------------

TEST(VfsSnapshot, ReadViewSurvivesDelete) {
  os::Vfs vfs;
  const auto who = os::Principal{.pkg = "com.example.a"};
  const auto path = os::internal_storage_dir("com.example.a") + "/payload.dex";
  ASSERT_TRUE(vfs.write_file(who, path, support::to_bytes("original")).ok());

  const auto view = vfs.read_file(path);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(vfs.delete_file(who, path).ok());
  EXPECT_FALSE(vfs.exists(path));
  // The deleted file's bytes live on through the reader's view.
  EXPECT_EQ(view->to_bytes(), support::to_bytes("original"));
}

TEST(VfsSnapshot, ReadViewIsASnapshotAcrossOverwrite) {
  os::Vfs vfs;
  const auto who = os::Principal{.pkg = "com.example.a"};
  const auto path = os::internal_storage_dir("com.example.a") + "/cfg.bin";
  ASSERT_TRUE(vfs.write_file(who, path, support::to_bytes("v1")).ok());

  const auto before = vfs.read_file(path);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(vfs.write_file(who, path, support::to_bytes("v2-longer")).ok());

  EXPECT_EQ(before->to_bytes(), support::to_bytes("v1"));
  const auto after = vfs.read_file(path);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->to_bytes(), support::to_bytes("v2-longer"));
  EXPECT_FALSE(before->shares_buffer_with(*after));
}

}  // namespace
}  // namespace dydroid
