// Persistent sandbox worker-pool suite (docs/ISOLATION.md §pool):
// support::PoolWorker RPC facts (framed round trips, graceful EOF
// shutdown, deadline kills, death detection), the request/response codec,
// and the CorpusRunner integration — pool mode must reproduce thread-mode
// reports byte-for-byte at any worker count (faults on and off, recycling
// on and off), classify worker deaths exactly like fork-per-app mode,
// re-dispatch the in-flight app of an externally killed worker, and
// interoperate with the journal and the result cache.
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/sandbox.hpp"
#include "support/fault.hpp"
#include "support/io.hpp"
#include "support/journal.hpp"
#include "support/subprocess.hpp"
#include "support/trace.hpp"
#include "support/worker_pool.hpp"

namespace dydroid::driver {
namespace {

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

/// Jobs replicating one generated app N times; scenarios may be overridden
/// to misbehave (hang, kill themselves) inside the pooled worker.
struct OneAppJobs {
  appgen::GeneratedApp app;
  std::vector<AppJob> jobs;
};

OneAppJobs replicated_jobs(std::size_t count, std::uint64_t rng_seed = 23) {
  OneAppJobs out;
  appgen::AppSpec spec;
  spec.package = "com.pool.app";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(rng_seed);
  out.app = appgen::build_app(spec, rng);
  out.jobs.resize(count);
  for (auto& job : out.jobs) {
    job.apk = out.app.apk;
    job.scenario = [&app = out.app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
  }
  return out;
}

class TempPath {
 public:
  explicit TempPath(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_pool_" + tag + "_" +
            std::to_string(::getpid());
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr std::array<std::uint8_t, 8> kEchoMagic = {'D', 'Y', 'T', 'E',
                                                    'S', 'T', 'R', '1'};

/// A serve loop that echoes every framed message back verbatim.
int echo_serve(int request_fd, int response_fd) {
  for (;;) {
    std::uint8_t header[support::kPoolMessageHeader];
    const ssize_t got = support::read_exact(request_fd, header, sizeof header);
    if (got == 0) return 0;
    if (got != static_cast<ssize_t>(sizeof header)) return 3;
    const std::uint32_t len = static_cast<std::uint32_t>(header[8]) |
                              (static_cast<std::uint32_t>(header[9]) << 8) |
                              (static_cast<std::uint32_t>(header[10]) << 16) |
                              (static_cast<std::uint32_t>(header[11]) << 24);
    std::vector<std::uint8_t> message(header, header + sizeof header);
    message.resize(sizeof header + len);
    if (len > 0 && support::read_exact(request_fd, message.data() + sizeof header,
                                       len) != static_cast<ssize_t>(len)) {
      return 3;
    }
    if (!support::write_fully(response_fd, message.data(), message.size())) {
      return 3;
    }
  }
}

support::Bytes framed_echo_message(std::string_view text) {
  support::ByteWriter payload;
  for (const char c : text) payload.u8(static_cast<std::uint8_t>(c));
  support::ByteWriter stream;
  stream.raw(kEchoMagic);
  support::encode_frame(stream, payload.data());
  return stream.take();
}

// ---------------------------------------------------------------------------
// support::PoolWorker: raw RPC supervision facts.
// ---------------------------------------------------------------------------

TEST(PoolWorker, FramedRequestsRoundTripAndCountServedApps) {
  auto spawned = support::PoolWorker::spawn(echo_serve, {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto worker = std::move(spawned).take();
  EXPECT_GT(worker.pid(), 0);
  EXPECT_TRUE(worker.alive());

  for (int i = 0; i < 5; ++i) {
    const auto request = framed_echo_message("ping-" + std::to_string(i));
    const auto result = worker.call(request, kEchoMagic);
    ASSERT_EQ(result.status, support::PoolRpcResult::Status::kOk)
        << result.error;
    EXPECT_EQ(result.message, request);  // one long-lived child served all 5
  }
  EXPECT_EQ(worker.served(), 5u);
  EXPECT_GT(worker.rss_bytes(), 0u);
  worker.shutdown();
  EXPECT_FALSE(worker.alive());
}

TEST(PoolWorker, ShutdownIsGracefulEofNotAKill) {
  auto spawned = support::PoolWorker::spawn(echo_serve, {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto worker = std::move(spawned).take();
  const pid_t pid = worker.pid();
  worker.shutdown();  // closes the request pipe; the loop sees EOF, exits 0
  EXPECT_FALSE(worker.alive());
  // The pid is fully reaped — no zombie left behind.
  EXPECT_EQ(::kill(pid, 0), -1);
}

TEST(PoolWorker, DyingWorkerIsDetectedAndClassifiedBySignal) {
  auto spawned = support::PoolWorker::spawn(
      [](int request_fd, int) {
        std::uint8_t header[support::kPoolMessageHeader];
        (void)support::read_exact(request_fd, header, sizeof header);
        ::raise(SIGABRT);  // die mid-request, before any response bytes
        return 0;
      },
      {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto worker = std::move(spawned).take();
  const auto result = worker.call(framed_echo_message("doomed"), kEchoMagic);
  EXPECT_EQ(result.status, support::PoolRpcResult::Status::kWorkerExit);
  EXPECT_FALSE(result.exited);
  EXPECT_EQ(result.term_signal, SIGABRT);
  EXPECT_FALSE(worker.alive());
}

TEST(PoolWorker, HangingWorkerIsDeadlineKilled) {
  auto spawned = support::PoolWorker::spawn(
      [](int, int) {
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return 0;  // unreachable
      },
      {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto worker = std::move(spawned).take();
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      worker.call(framed_echo_message("stuck"), kEchoMagic, 300.0);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_EQ(result.status, support::PoolRpcResult::Status::kTimeout);
  EXPECT_FALSE(worker.alive());  // SIGKILLed and reaped by the deadline path
  EXPECT_LT(elapsed_ms, 15000);
}

TEST(PoolWorker, GarbageResponseKillsTheWorker) {
  auto spawned = support::PoolWorker::spawn(
      [](int request_fd, int response_fd) {
        std::uint8_t header[support::kPoolMessageHeader];
        (void)support::read_exact(request_fd, header, sizeof header);
        const char junk[] = "not a framed message at all............";
        (void)support::write_fully(
            response_fd, reinterpret_cast<const std::uint8_t*>(junk),
            sizeof junk);
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return 0;  // unreachable
      },
      {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto worker = std::move(spawned).take();
  const auto result = worker.call(framed_echo_message("x"), kEchoMagic);
  EXPECT_EQ(result.status, support::PoolRpcResult::Status::kError);
  EXPECT_FALSE(worker.alive());  // a desynchronized stream retires the worker
}

// ---------------------------------------------------------------------------
// Request/response codec.
// ---------------------------------------------------------------------------

TEST(PoolCodec, RequestRoundTripsAllFields) {
  PoolRequest request;
  request.app_index = 0x1122334455ull;
  request.attempt = 3;
  request.seed = 0xDEADBEEFCAFEull;
  request.worker = 7;
  request.crash_child = true;
  const auto encoded = encode_pool_request(request);
  const auto decoded = decode_pool_request(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().app_index, request.app_index);
  EXPECT_EQ(decoded.value().attempt, request.attempt);
  EXPECT_EQ(decoded.value().seed, request.seed);
  EXPECT_EQ(decoded.value().worker, request.worker);
  EXPECT_TRUE(decoded.value().crash_child);
}

TEST(PoolCodec, DamagedRequestsFailCleanly) {
  PoolRequest request;
  request.app_index = 12;
  request.seed = 34;
  auto encoded = encode_pool_request(request);
  // Truncations at every boundary: never throw, never misdecode.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const auto truncated =
        support::Bytes(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(decode_pool_request(truncated).ok()) << "cut=" << cut;
  }
  // A flipped payload byte must fail the CRC.
  encoded[encoded.size() - 1] ^= 0x40;
  EXPECT_FALSE(decode_pool_request(encoded).ok());
}

TEST(PoolCodec, ResponseRoundTripsAnOutcome) {
  AppOutcome outcome;
  outcome.report.package = "com.pool.codec";
  outcome.report.status = core::DynamicStatus::kExercised;
  outcome.seed = 0xFEED5EED;
  outcome.attempts = 2;
  const auto encoded = encode_pool_response(41, outcome);
  const auto decoded = decode_pool_response(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().index, 41u);
  EXPECT_EQ(decoded.value().outcome.seed, outcome.seed);
  EXPECT_EQ(core::report_to_json(decoded.value().outcome.report),
            core::report_to_json(outcome.report));
  // The sandbox result codec and the pool RPC share the frame layer but
  // not the magic: a fork-mode result is not a valid pool response.
  EXPECT_FALSE(decode_pool_response(encode_sandbox_result(41, outcome)).ok());
}

// ---------------------------------------------------------------------------
// Golden equivalence: pool mode reproduces thread mode byte-for-byte.
// ---------------------------------------------------------------------------

TEST(WorkerPool, PoolModeMatchesThreadModeAtAnyWorkerCount) {
  const auto corpus = small_corpus();
  ASSERT_GT(corpus.apps.size(), 10u);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    RunnerConfig config;
    config.jobs = jobs;
    config.isolation_mode = IsolationMode::kPool;
    const auto pooled = CorpusRunner(pipeline, config).run(corpus);
    ASSERT_EQ(pooled.outcomes.size(), corpus.apps.size());
    const auto pooled_json = report_jsons(pooled);
    for (std::size_t i = 0; i < golden_json.size(); ++i) {
      EXPECT_EQ(pooled_json[i], golden_json[i])
          << "app " << i << " at jobs=" << jobs;
      EXPECT_EQ(pooled.outcomes[i].sandbox_fate, SandboxFate::kNone);
      EXPECT_EQ(pooled.outcomes[i].seed, golden.outcomes[i].seed);
      EXPECT_EQ(pooled.outcomes[i].attempts, golden.outcomes[i].attempts);
    }
    EXPECT_EQ(pooled.stats.crashed, golden.stats.crashed);
    EXPECT_EQ(pooled.stats.exercised, golden.stats.exercised);
    EXPECT_EQ(pooled.stats.intercepted, golden.stats.intercepted);
    EXPECT_EQ(pooled.stats.sandbox_crashed, 0u);
  }
}

TEST(WorkerPool, PoolModeMatchesThreadModeUnderFaultInjection) {
  const auto corpus = small_corpus();
  const auto plan_result = support::FaultPlan::parse("device.install=p:0.3");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig thread_config;
  thread_config.jobs = 2;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kPool;
  const auto pooled = CorpusRunner(pipeline, config).run(corpus);

  // The worker runs the identical per-app fault session, so injected
  // pipeline crashes, retries and quarantines reproduce exactly.
  const auto golden_json = report_jsons(golden);
  const auto pooled_json = report_jsons(pooled);
  ASSERT_EQ(pooled_json.size(), golden_json.size());
  for (std::size_t i = 0; i < golden_json.size(); ++i) {
    EXPECT_EQ(pooled_json[i], golden_json[i]) << "app " << i;
    EXPECT_EQ(pooled.outcomes[i].attempts, golden.outcomes[i].attempts);
    EXPECT_EQ(pooled.outcomes[i].quarantined, golden.outcomes[i].quarantined);
    EXPECT_EQ(pooled.outcomes[i].timed_out, golden.outcomes[i].timed_out);
  }
}

TEST(WorkerPool, PoolModeMatchesForkModeUnderSandboxCrashInjection) {
  // The three isolation modes must agree app-by-app even when the sandbox
  // *itself* is under attack: the injected kill decision is drawn in the
  // supervisor from the same per-app session in both modes, and the
  // synthesized crash_message strings are identical — which is what keeps
  // journals from the two modes mutually replayable.
  const auto corpus = small_corpus();
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=p:0.4");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig fork_config;
  fork_config.jobs = 2;
  fork_config.isolation_mode = IsolationMode::kForkPerApp;
  const auto forked = CorpusRunner(pipeline, fork_config).run(corpus);
  ASSERT_GT(forked.stats.sandbox_crashed, 0u);
  ASSERT_LT(forked.stats.sandbox_crashed, corpus.apps.size());

  RunnerConfig pool_config;
  pool_config.jobs = 2;
  pool_config.isolation_mode = IsolationMode::kPool;
  const auto pooled = CorpusRunner(pipeline, pool_config).run(corpus);

  const auto forked_json = report_jsons(forked);
  const auto pooled_json = report_jsons(pooled);
  ASSERT_EQ(pooled_json.size(), forked_json.size());
  for (std::size_t i = 0; i < forked_json.size(); ++i) {
    EXPECT_EQ(pooled_json[i], forked_json[i]) << "app " << i;
    EXPECT_EQ(pooled.outcomes[i].sandbox_fate, forked.outcomes[i].sandbox_fate);
    EXPECT_EQ(pooled.outcomes[i].fatal_signal, forked.outcomes[i].fatal_signal);
    EXPECT_EQ(pooled.outcomes[i].quarantined, forked.outcomes[i].quarantined);
  }
  EXPECT_EQ(pooled.stats.sandbox_crashed, forked.stats.sandbox_crashed);
  EXPECT_EQ(pooled.stats.quarantined, forked.stats.quarantined);
}

// ---------------------------------------------------------------------------
// Classification: a worker death is an app fate, not a campaign fate.
// ---------------------------------------------------------------------------

TEST(WorkerPool, InjectedCrashClassifiesAndPoolKeepsServing) {
  // Each app draws the kill decision from its own per-seed fault session,
  // so p:0.5 deterministically fates *some* of the replicas: the fated
  // ones abort their worker (classified SIGABRT, quarantined), and a
  // fresh worker serves the spared ones with golden-identical reports —
  // one poisoned app never takes the pool down.
  auto fixture = replicated_jobs(6);
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=p:0.5");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  const core::DyDroid clean{core::PipelineOptions{}};
  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(clean, thread_config).run(fixture.jobs);

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  ASSERT_EQ(result.outcomes.size(), 6u);
  std::size_t fated = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& outcome = result.outcomes[i];
    if (outcome.sandbox_fate == SandboxFate::kCrashed) {
      ++fated;
      EXPECT_EQ(outcome.fatal_signal, SIGABRT);
      EXPECT_TRUE(outcome.quarantined);
      EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
      EXPECT_NE(outcome.report.crash_message.find("signal"),
                std::string::npos);
    } else {
      EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kNone);
      EXPECT_EQ(core::report_to_json(outcome.report),
                core::report_to_json(golden.outcomes[i].report))
          << "app " << i;
    }
  }
  ASSERT_GT(fated, 0u);   // the injection actually hit...
  ASSERT_LT(fated, 6u);   // ...and spared apps for the recovery claim
  EXPECT_EQ(result.stats.sandbox_crashed, fated);
  EXPECT_EQ(result.stats.crashed, fated);
}

TEST(WorkerPool, HangingAppIsDeadlineKilledAndPoolRecovers) {
  auto fixture = replicated_jobs(2);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(fixture.jobs);

  fixture.jobs[0].scenario = [](os::Device&) {
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  config.sandbox_deadline_ms = 300.0;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& hung = result.outcomes[0];
  EXPECT_EQ(hung.sandbox_fate, SandboxFate::kTimedOut);
  EXPECT_EQ(hung.fatal_signal, SIGKILL);
  EXPECT_TRUE(hung.timed_out);
  EXPECT_TRUE(hung.quarantined);
  EXPECT_LT(hung.wall_ms, 15000.0);
  // The replacement worker serves the next app cleanly.
  EXPECT_EQ(result.outcomes[1].sandbox_fate, SandboxFate::kNone);
  EXPECT_EQ(core::report_to_json(result.outcomes[1].report),
            core::report_to_json(golden.outcomes[1].report));
  EXPECT_EQ(result.stats.killed_timeout, 1u);
}

TEST(WorkerPool, MemoryExplodingAppIsKilledOomAndQuarantined) {
  if (!support::address_space_limit_supported()) {
    GTEST_SKIP() << "RLIMIT_AS unsupported under this sanitizer";
  }
  auto fixture = replicated_jobs(1);
  fixture.jobs[0].scenario = [](os::Device&) {
    std::vector<std::byte*> hog;
    for (;;) hog.push_back(new std::byte[64 << 20]);  // runs in the worker
  };

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  config.sandbox_mem_limit_bytes = 3ull << 30;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
  EXPECT_EQ(result.stats.killed_oom, 1u);
}

// ---------------------------------------------------------------------------
// External SIGKILL: the in-flight app re-dispatches to a fresh worker.
// ---------------------------------------------------------------------------

TEST(WorkerPool, ExternallyKilledWorkerRedispatchesInFlightApp) {
  auto fixture = replicated_jobs(1);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(fixture.jobs);

  // First execution SIGKILLs its own worker mid-app (indistinguishable
  // from an external kill); the marker makes the re-dispatched run clean.
  TempPath marker("redispatch");
  fixture.jobs[0].scenario = [&app = fixture.app,
                              path = marker.path()](os::Device& device) {
    if (!std::filesystem::exists(path)) {
      std::ofstream(path) << "killed once";
      ::raise(SIGKILL);
    }
    appgen::apply_scenario(app.scenario, device);
  };

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  EXPECT_TRUE(std::filesystem::exists(marker.path()));  // the kill happened
  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kNone);
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(core::report_to_json(outcome.report),
            core::report_to_json(golden.outcomes[0].report));
  EXPECT_EQ(result.stats.killed_oom, 0u);
  EXPECT_EQ(result.stats.sandbox_crashed, 0u);
}

TEST(WorkerPool, RepeatedExternalSigkillEscalatesToOomClassification) {
  auto fixture = replicated_jobs(1);
  fixture.jobs[0].scenario = [](os::Device&) { ::raise(SIGKILL); };

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_EQ(outcome.fatal_signal, SIGKILL);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(result.stats.killed_oom, 1u);
  EXPECT_EQ(result.stats.crashed, 1u);
}

// ---------------------------------------------------------------------------
// Recycling: between-attempt worker retirement never changes a report.
// ---------------------------------------------------------------------------

TEST(WorkerPool, RecycleAfterKAppsIsInvisibleInReports) {
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  support::set_metrics_enabled(true);
  support::metrics_reset();
  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kPool;
  config.pool_recycle_apps = 3;  // retire every worker every 3 apps
  const auto recycled = CorpusRunner(pipeline, config).run(corpus);
  support::set_metrics_enabled(false);
  const auto metrics = support::metrics_snapshot();
  support::metrics_reset();

  const auto recycled_json = report_jsons(recycled);
  ASSERT_EQ(recycled_json.size(), golden_json.size());
  for (std::size_t i = 0; i < golden_json.size(); ++i) {
    EXPECT_EQ(recycled_json[i], golden_json[i]) << "app " << i;
  }
  // The knob actually did something: with ~dozens of apps per worker and
  // K=3, many recycles (and therefore many spawns) must have happened.
  const auto* recycles = metrics.counter("sandbox.pool.recycled");
  const auto* spawns = metrics.counter("sandbox.pool.spawned");
  ASSERT_NE(recycles, nullptr);
  ASSERT_NE(spawns, nullptr);
  EXPECT_GE(recycles->value, corpus.apps.size() / 4);
  // Every recycle forces a later spawn, except one that lands exactly on a
  // worker's final app (the thread epilogue then finds an empty slot).
  EXPECT_GE(spawns->value, recycles->value);
}

TEST(WorkerPool, RssRecycleKnobIsInvisibleInReports) {
  auto fixture = replicated_jobs(4);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(fixture.jobs);

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  config.pool_recycle_rss_bytes = 1;  // absurd floor: recycle after every app
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  ASSERT_EQ(result.outcomes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(core::report_to_json(result.outcomes[i].report),
              core::report_to_json(golden.outcomes[i].report));
  }
}

// ---------------------------------------------------------------------------
// Pool fault sites: supervisor-side plumbing failures quarantine one app.
// ---------------------------------------------------------------------------

TEST(WorkerPool, InjectedSpawnFailureQuarantinesEveryApp) {
  auto fixture = replicated_jobs(2);
  const auto plan_result = support::FaultPlan::parse("sandbox.pool.spawn=always");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kCrashed);
    EXPECT_TRUE(outcome.quarantined);
    EXPECT_NE(outcome.report.crash_message.find("spawn failed"),
              std::string::npos);
  }
  EXPECT_EQ(result.stats.sandbox_crashed, 2u);
}

TEST(WorkerPool, InjectedRpcTearQuarantinesAndRetiresTheWorker) {
  auto fixture = replicated_jobs(6);
  const auto plan_result =
      support::FaultPlan::parse("sandbox.pool.rpc=p:0.5");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  const core::DyDroid clean{core::PipelineOptions{}};
  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(clean, thread_config).run(fixture.jobs);

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  std::size_t torn = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& outcome = result.outcomes[i];
    if (outcome.sandbox_fate == SandboxFate::kCrashed) {
      ++torn;
      EXPECT_TRUE(outcome.quarantined);
    } else {
      // An app after a torn RPC is served by a fresh worker, cleanly.
      EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kNone);
      EXPECT_EQ(core::report_to_json(outcome.report),
                core::report_to_json(golden.outcomes[i].report))
          << "app " << i;
    }
  }
  ASSERT_GT(torn, 0u);
  ASSERT_LT(torn, 6u);
}

TEST(WorkerPool, InjectedRecycleIsInvisibleInReports) {
  const auto corpus = small_corpus();
  const auto plan_result =
      support::FaultPlan::parse("sandbox.pool.recycle=p:0.5");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  const core::DyDroid clean{core::PipelineOptions{}};
  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(clean, thread_config).run(corpus);

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));
  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kPool;
  const auto result = CorpusRunner(pipeline, config).run(corpus);

  // Recycling happens strictly between attempts: even firing on every
  // other app it can never perturb a single report.
  const auto golden_json = report_jsons(golden);
  const auto result_json = report_jsons(result);
  ASSERT_EQ(result_json.size(), golden_json.size());
  for (std::size_t i = 0; i < golden_json.size(); ++i) {
    EXPECT_EQ(result_json[i], golden_json[i]) << "app " << i;
  }
  EXPECT_EQ(result.stats.sandbox_crashed, 0u);
  EXPECT_EQ(result.stats.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Journal and cache interplay.
// ---------------------------------------------------------------------------

TEST(WorkerPool, FatedOutcomesJournalAndReplayIdentically) {
  TempPath journal("journal");
  const auto corpus = small_corpus();
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=p:0.4");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kPool;
  config.journal_path = journal.path();
  const auto live = CorpusRunner(pipeline, config).run(corpus);
  ASSERT_GT(live.stats.sandbox_crashed, 0u);
  ASSERT_LT(live.stats.sandbox_crashed, corpus.apps.size());

  config.resume = true;
  const auto resumed = CorpusRunner(pipeline, config).run(corpus);
  EXPECT_EQ(resumed.replayed, corpus.apps.size());
  EXPECT_EQ(resumed.analyzed, 0u);
  const auto live_json = report_jsons(live);
  const auto resumed_json = report_jsons(resumed);
  for (std::size_t i = 0; i < corpus.apps.size(); ++i) {
    EXPECT_TRUE(resumed.outcomes[i].replayed);
    EXPECT_EQ(resumed.outcomes[i].sandbox_fate, live.outcomes[i].sandbox_fate);
    EXPECT_EQ(resumed_json[i], live_json[i]) << "app " << i;
  }
}

TEST(WorkerPool, CleanPooledOutcomesCacheAndServeIdentically) {
  TempPath cache("cache");
  auto fixture = replicated_jobs(4);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kPool;
  config.cache_dir = cache.path();

  const auto cold = CorpusRunner(pipeline, config).run(fixture.jobs);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  const auto warm = CorpusRunner(pipeline, config).run(fixture.jobs);
  EXPECT_EQ(warm.stats.cache_hits, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(core::report_to_json(warm.outcomes[i].report),
              core::report_to_json(cold.outcomes[i].report));
  }
}

TEST(WorkerPool, ShardedPoolRunMatchesUnshardedThreadRun) {
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  // Two pool-mode shards cover the corpus; every analyzed app must match
  // its thread-mode report, and the residue classes must partition.
  std::vector<bool> covered(corpus.apps.size(), false);
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    RunnerConfig config;
    config.jobs = 2;
    config.isolation_mode = IsolationMode::kPool;
    config.shard_index = shard;
    config.shard_count = 2;
    const auto result = CorpusRunner(pipeline, config).run(corpus);
    for (std::size_t i = 0; i < corpus.apps.size(); ++i) {
      if (i % 2 != shard) continue;
      EXPECT_FALSE(covered[i]);
      covered[i] = true;
      EXPECT_EQ(core::report_to_json(result.outcomes[i].report),
                golden_json[i])
          << "app " << i << " in shard " << shard;
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_TRUE(covered[i]) << "app " << i << " analyzed by neither shard";
  }
}

}  // namespace
}  // namespace dydroid::driver
