// Unit tests for core building blocks: call-site extraction, entity
// classification, download tracker graph queries, static filter,
// vulnerability rules, interceptor bookkeeping.
#include <gtest/gtest.h>

#include "core/download_tracker.hpp"
#include "core/pipeline.hpp"
#include "core/dcl_log.hpp"
#include "core/static_filter.hpp"
#include "core/vulnerability.hpp"
#include "dex/builder.hpp"

namespace dydroid::core {
namespace {

using vm::FlowNode;
using vm::FlowNodeKind;
using vm::StackTrace;
using vm::StackTraceElement;

// ---------------------------------------------------------------------------
// Call-site extraction (Fig. 2).
// ---------------------------------------------------------------------------

TEST(CallSite, SkipsFrameworkFrames) {
  const StackTrace trace = {
      {"dalvik.system.DexClassLoader", "<init>"},
      {"com.adsdk.core.AdLoader", "boot"},
      {"com.example.app.Main", "onCreate"},
  };
  EXPECT_EQ(call_site_of(trace), "com.adsdk.core.AdLoader");
}

TEST(CallSite, NestedFrameworkWrappersSkipped) {
  const StackTrace trace = {
      {"dalvik.system.DexClassLoader", "<init>"},
      {"java.lang.ClassLoader", "loadClass"},
      {"android.app.LoadedApk", "makeApplication"},
      {"com.example.app.Boot", "init"},
  };
  EXPECT_EQ(call_site_of(trace), "com.example.app.Boot");
}

TEST(CallSite, AllFrameworkYieldsEmpty) {
  const StackTrace trace = {
      {"dalvik.system.PathClassLoader", "<init>"},
      {"android.app.ActivityThread", "main"},
  };
  EXPECT_EQ(call_site_of(trace), "");
}

TEST(Entity, OwnWhenInAppPackage) {
  EXPECT_EQ(classify_entity("com.example.app.Main", "com.example.app"),
            Entity::Own);
  EXPECT_EQ(classify_entity("com.example.app.sub.Helper", "com.example.app"),
            Entity::Own);
}

TEST(Entity, ThirdPartyOtherwise) {
  EXPECT_EQ(classify_entity("com.google.ads.Loader", "com.example.app"),
            Entity::ThirdParty);
  // Prefix similarity without a package boundary is NOT own.
  EXPECT_EQ(classify_entity("com.example.appx.Main", "com.example.app"),
            Entity::ThirdParty);
}

// ---------------------------------------------------------------------------
// Download tracker (Table I).
// ---------------------------------------------------------------------------

FlowNode url_node(std::uint64_t id, std::string spec) {
  return FlowNode{FlowNodeKind::Url, id, std::move(spec)};
}
FlowNode obj(FlowNodeKind kind, std::uint64_t id) {
  return FlowNode{kind, id, ""};
}
FlowNode file_node(std::string path) {
  return FlowNode{FlowNodeKind::File, 0, std::move(path)};
}

TEST(DownloadTracker, FullChainResolves) {
  DownloadTracker tracker;
  const auto url = url_node(1, "http://cdn/x.dex");
  tracker.add_url(url);
  tracker.add_flow(url, obj(FlowNodeKind::InputStream, 2));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 2),
                   obj(FlowNodeKind::Buffer, 3));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 3),
                   obj(FlowNodeKind::OutputStream, 4));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 4), file_node("/d/x.dex"));
  const auto origin = tracker.origin_url("/d/x.dex");
  ASSERT_TRUE(origin.has_value());
  EXPECT_EQ(*origin, "http://cdn/x.dex");
}

TEST(DownloadTracker, FileToFileCopyPropagates) {
  DownloadTracker tracker;
  const auto url = url_node(1, "http://cdn/y.bin");
  tracker.add_flow(url, obj(FlowNodeKind::InputStream, 2));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 2),
                   obj(FlowNodeKind::Buffer, 3));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 3),
                   obj(FlowNodeKind::OutputStream, 4));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 4), file_node("/d/tmp"));
  tracker.add_flow(file_node("/d/tmp"), file_node("/d/final.dex"));
  tracker.add_flow(file_node("/d/final.dex"), file_node("/d/third.dex"));
  EXPECT_TRUE(tracker.origin_url("/d/third.dex").has_value());
}

TEST(DownloadTracker, LocalFileHasNoOrigin) {
  DownloadTracker tracker;
  tracker.add_flow(file_node("/apk"), obj(FlowNodeKind::InputStream, 5));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 5),
                   obj(FlowNodeKind::Buffer, 6));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 6),
                   obj(FlowNodeKind::OutputStream, 7));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 7), file_node("/d/l.dex"));
  EXPECT_FALSE(tracker.origin_url("/d/l.dex").has_value());
}

TEST(DownloadTracker, UnknownFileIsNullopt) {
  DownloadTracker tracker;
  EXPECT_FALSE(tracker.origin_url("/never/seen").has_value());
}

TEST(DownloadTracker, TwoUrlsTwoFilesKeptApart) {
  DownloadTracker tracker;
  tracker.add_flow(url_node(1, "http://a/1"), obj(FlowNodeKind::InputStream, 2));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 2),
                   obj(FlowNodeKind::Buffer, 3));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 3),
                   obj(FlowNodeKind::OutputStream, 4));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 4), file_node("/f1"));
  tracker.add_flow(url_node(10, "http://b/2"),
                   obj(FlowNodeKind::InputStream, 11));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 11),
                   obj(FlowNodeKind::Buffer, 12));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 12),
                   obj(FlowNodeKind::OutputStream, 13));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 13), file_node("/f2"));
  EXPECT_EQ(*tracker.origin_url("/f1"), "http://a/1");
  EXPECT_EQ(*tracker.origin_url("/f2"), "http://b/2");
  EXPECT_EQ(tracker.remote_files().size(), 2u);
}

TEST(DownloadTracker, CycleSafe) {
  DownloadTracker tracker;
  tracker.add_flow(file_node("/a"), file_node("/b"));
  tracker.add_flow(file_node("/b"), file_node("/a"));
  EXPECT_FALSE(tracker.origin_url("/a").has_value());
}

TEST(DownloadTracker, StreamWrappingChainsResolve) {
  // URL -> InputStream -> BufferedInputStream (wrap) -> Buffer -> ... -> File
  DownloadTracker tracker;
  tracker.add_flow(url_node(1, "http://w/x"), obj(FlowNodeKind::InputStream, 2));
  tracker.add_flow(obj(FlowNodeKind::InputStream, 2),
                   obj(FlowNodeKind::InputStream, 3));  // wrapper
  tracker.add_flow(obj(FlowNodeKind::InputStream, 3),
                   obj(FlowNodeKind::Buffer, 4));
  tracker.add_flow(obj(FlowNodeKind::Buffer, 4),
                   obj(FlowNodeKind::OutputStream, 5));
  tracker.add_flow(obj(FlowNodeKind::OutputStream, 5), file_node("/w.dex"));
  EXPECT_TRUE(tracker.origin_url("/w.dex").has_value());
}

// ---------------------------------------------------------------------------
// Static filter.
// ---------------------------------------------------------------------------

TEST(StaticFilter, DetectsDexLoaderInstantiation) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 0);
  m.new_instance(0, "dalvik.system.DexClassLoader");
  m.done();
  const auto result = scan_dcl_apis(b.build());
  EXPECT_TRUE(result.dex_dcl);
  EXPECT_FALSE(result.native_dcl);
}

TEST(StaticFilter, DetectsPathLoaderToo) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 0);
  m.new_instance(0, "dalvik.system.PathClassLoader");
  m.done();
  EXPECT_TRUE(scan_dcl_apis(b.build()).dex_dcl);
}

TEST(StaticFilter, DetectsEveryNativeLoadApi) {
  for (const auto* api : {"load", "loadLibrary", "load0"}) {
    for (const auto* cls : {"java.lang.System", "java.lang.Runtime"}) {
      dex::DexBuilder b;
      auto m = b.cls("a.B").static_method("f", 0);
      m.const_str(0, "x");
      m.invoke_static(cls, api, {0});
      m.done();
      EXPECT_TRUE(scan_dcl_apis(b.build()).native_dcl)
          << cls << "." << api;
    }
  }
}

TEST(StaticFilter, NativeMethodCountsAsNative) {
  dex::DexBuilder b;
  b.cls("a.B").native_method("jniInit", 0);
  EXPECT_TRUE(scan_dcl_apis(b.build()).native_dcl);
}

TEST(StaticFilter, CleanAppHasNeither) {
  dex::DexBuilder b;
  b.cls("a.B").static_method("f", 0).const_int(0, 1).ret(0).done();
  const auto result = scan_dcl_apis(b.build());
  EXPECT_FALSE(result.any());
}

TEST(StaticFilter, DeadCodeStillDetected) {
  // Presence, not reachability (paper: "We do not verify the reachability").
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("unreachable", 0);
  m.return_void();
  m.new_instance(0, "dalvik.system.DexClassLoader");  // after return
  m.done();
  EXPECT_TRUE(scan_dcl_apis(b.build()).dex_dcl);
}

// ---------------------------------------------------------------------------
// Vulnerability rules.
// ---------------------------------------------------------------------------

DclEvent event_loading(CodeKind kind, std::string path,
                       bool integrity = false) {
  DclEvent e;
  e.kind = kind;
  e.paths.push_back(std::move(path));
  e.integrity_check_before = integrity;
  return e;
}

TEST(Vulnerability, ExternalStorageRequiresOldMinSdk) {
  const std::vector<DclEvent> events = {
      event_loading(CodeKind::Dex, "/mnt/sdcard/cache/x.jar")};
  EXPECT_EQ(analyze_vulnerabilities(events, "com.a", 16).size(), 1u);
  EXPECT_TRUE(analyze_vulnerabilities(events, "com.a", 19).empty());
}

TEST(Vulnerability, OtherAppInternalFlaggedAnySdk) {
  const std::vector<DclEvent> events = {
      event_loading(CodeKind::Native, "/data/data/com.other/lib/l.so")};
  const auto findings = analyze_vulnerabilities(events, "com.a", 23);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].category, VulnCategory::OtherAppInternalStorage);
}

TEST(Vulnerability, OwnInternalStorageIsSafe) {
  const std::vector<DclEvent> events = {
      event_loading(CodeKind::Dex, "/data/data/com.a/files/p.dex")};
  EXPECT_TRUE(analyze_vulnerabilities(events, "com.a", 16).empty());
}

TEST(Vulnerability, SystemLibIsSafe) {
  const std::vector<DclEvent> events = {
      event_loading(CodeKind::Native, "/system/lib/libc.so")};
  EXPECT_TRUE(analyze_vulnerabilities(events, "com.a", 16).empty());
}

TEST(Vulnerability, IntegrityCheckExcludes) {
  const std::vector<DclEvent> events = {
      event_loading(CodeKind::Dex, "/mnt/sdcard/x.jar", /*integrity=*/true)};
  EXPECT_TRUE(analyze_vulnerabilities(events, "com.a", 16).empty());
}

TEST(Vulnerability, MultiplePathsMultipleFindings) {
  DclEvent e;
  e.kind = CodeKind::Dex;
  e.paths = {"/mnt/sdcard/a.jar", "/data/data/com.b/x.dex",
             "/data/data/com.a/ok.dex"};
  const auto findings = analyze_vulnerabilities({e}, "com.a", 16);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(Names, EnumFormatters) {
  EXPECT_EQ(code_kind_name(CodeKind::Dex), "DEX");
  EXPECT_EQ(code_kind_name(CodeKind::Native), "Native");
  EXPECT_EQ(entity_name(Entity::Own), "Own");
  EXPECT_EQ(entity_name(Entity::ThirdParty), "3rd-party");
  EXPECT_EQ(vuln_category_name(VulnCategory::ExternalStorage),
            "External storage (< Android 4.4)");
  EXPECT_EQ(dynamic_status_name(DynamicStatus::kExercised), "exercised");
}

}  // namespace
}  // namespace dydroid::core
