// Observability layer tests (docs/OBSERVABILITY.md): span collection and
// nesting, ambient context inheritance, deterministic merge order across
// threads, Chrome trace_event JSON export, histogram bucketing/quantiles,
// counters and the checked numeric parsers the CLI/env hardening rides on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dydroid::support {
namespace {

/// RAII: every test leaves both facilities off and empty.
struct InstrumentationGuard {
  InstrumentationGuard() {
    set_trace_enabled(false);
    set_metrics_enabled(false);
    trace_reset();
    metrics_reset();
  }
  ~InstrumentationGuard() {
    set_trace_enabled(false);
    set_metrics_enabled(false);
    trace_reset();
    metrics_reset();
  }
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  InstrumentationGuard guard;
  {
    TRACE_SPAN("test", "noop");
    TRACE_SPAN("test", "nested");
  }
  EXPECT_TRUE(trace_collect().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST(Trace, SpansRecordNestingDepthAndAmbientContext) {
  InstrumentationGuard guard;
  set_trace_enabled(true);
  {
    const TraceContextScope context(7, 1, 3);
    TRACE_SPAN("stage", "outer");
    {
      TRACE_SPAN("phase", "inner");
    }
  }
  {
    TRACE_SPAN("runner", "orphan");  // outside any app context
  }
  set_trace_enabled(false);
  const auto events = trace_collect();
  ASSERT_EQ(events.size(), 3u);
  // Deterministic order is by begin time: outer opened first but closes
  // last; begin(outer) <= begin(inner) <= begin(orphan).
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].cat, "stage");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].app, 7u);
  EXPECT_EQ(events[0].attempt, 1u);
  EXPECT_EQ(events[0].worker, 3u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);  // nested under "outer"
  EXPECT_EQ(events[1].app, 7u);
  EXPECT_GE(events[0].dur_ns, events[1].dur_ns);  // outer encloses inner
  EXPECT_EQ(events[2].name, "orphan");
  EXPECT_EQ(events[2].app, kTraceNoApp);
  EXPECT_EQ(events[2].depth, 0u);
}

TEST(Trace, ContextScopesRestoreOnExit) {
  InstrumentationGuard guard;
  set_trace_enabled(true);
  {
    const TraceContextScope outer(1, 0, 0);
    {
      const TraceContextScope inner(2, 1, 0);
      TRACE_SPAN("test", "in_inner");
    }
    TRACE_SPAN("test", "in_outer");
  }
  set_trace_enabled(false);
  const auto events = trace_collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].app, 2u);
  EXPECT_EQ(events[0].attempt, 1u);
  EXPECT_EQ(events[1].app, 1u);  // restored after the inner scope ended
  EXPECT_EQ(events[1].attempt, 0u);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  InstrumentationGuard guard;
  trace_reset(/*ring_capacity=*/8);
  set_trace_enabled(true);  // re-arms with the 8-slot capacity just set
  for (int i = 0; i < 20; ++i) {
    TRACE_SPAN("test", "tick");
  }
  set_trace_enabled(false);
  EXPECT_EQ(trace_collect().size(), 8u);
  EXPECT_EQ(trace_dropped(), 12u);
}

TEST(Trace, MultiThreadedCollectionMergesDeterministically) {
  InstrumentationGuard guard;
  set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::jthread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      const TraceContextScope context(static_cast<std::uint32_t>(t), 0,
                                      static_cast<std::uint32_t>(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN("test", "work");
      }
    });
  }
  pool.clear();  // join
  set_trace_enabled(false);
  const auto first = trace_collect();
  const auto second = trace_collect();
  ASSERT_EQ(first.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].begin_ns, second[i].begin_ns);
    EXPECT_EQ(first[i].app, second[i].app);
    EXPECT_EQ(first[i].worker, second[i].worker);
  }
  // Sorted by begin time regardless of which thread's buffer came first.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].begin_ns, first[i].begin_ns);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------------

TEST(Trace, ChromeJsonShapeAndEscaping) {
  std::vector<TraceEvent> events(2);
  events[0].begin_ns = 1500;  // 1.5 us
  events[0].dur_ns = 2'000'000;
  events[0].cat = "stage";
  events[0].name = "has\"quote";
  events[0].app = 3;
  events[0].attempt = 1;
  events[0].worker = 2;
  events[0].depth = 0;
  events[1].cat = "runner";
  events[1].name = "attempt";
  events[1].app = kTraceNoApp;  // no app args emitted
  const auto json = trace_to_chrome_json(events);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"has\\\"quote\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"app\":3,\"attempt\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Braces and brackets balance (cheap well-formedness proxy; none of the
  // emitted strings contain unescaped structural characters).
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // The second event has no app args at all.
  EXPECT_EQ(json.find("\"app\":4294967295"), std::string::npos);
}

TEST(Trace, WriteChromeJsonRoundTripsThroughDisk) {
  InstrumentationGuard guard;
  set_trace_enabled(true);
  {
    const TraceContextScope context(0, 0, 0);
    TRACE_SPAN("stage", "static");
  }
  set_trace_enabled(false);
  const std::string path =
      ::testing::TempDir() + "/dydroid_trace_roundtrip.json";
  const auto status = trace_write_chrome_json(path);
  ASSERT_TRUE(status.ok()) << status.error();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, trace_to_chrome_json(trace_collect()));
  EXPECT_NE(on_disk.find("\"name\":\"static\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Histograms + counters
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramBucketBoundaries) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(1023), 10u);
  EXPECT_EQ(histogram_bucket(1024), 11u);
  // Bucket b >= 1 holds [2^(b-1), 2^b).
  for (std::size_t b = 1; b < kHistogramBuckets - 1; ++b) {
    EXPECT_EQ(histogram_bucket(histogram_bucket_lo(b)), b);
    EXPECT_EQ(histogram_bucket(histogram_bucket_lo(b + 1) - 1), b);
  }
  // Everything past the last boundary clamps into the final bucket.
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(Metrics, ObservationsFeedBucketsSumAndMax) {
  InstrumentationGuard guard;
  set_metrics_enabled(true);
  observe_us("test.latency", 0);
  observe_us("test.latency", 3);
  observe_us("test.latency", 3);
  observe_us("test.latency", 100);
  const auto snapshot = metrics_snapshot();
  const auto* h = snapshot.histogram("test.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->observations, 4u);
  EXPECT_EQ(h->sum_us, 106u);
  EXPECT_EQ(h->max_us, 100u);
  EXPECT_EQ(h->buckets[0], 1u);                     // the zero
  EXPECT_EQ(h->buckets[histogram_bucket(3)], 2u);   // the threes
  EXPECT_EQ(h->buckets[histogram_bucket(100)], 1u);
  EXPECT_DOUBLE_EQ(h->mean_us(), 106.0 / 4.0);
  // Quantiles are monotone and clamped to the true max.
  EXPECT_LE(h->quantile_us(0.50), h->quantile_us(0.95));
  EXPECT_LE(h->quantile_us(0.95), h->quantile_us(1.0));
  EXPECT_LE(h->quantile_us(1.0), static_cast<double>(h->max_us));
}

TEST(Metrics, QuantileOfUniformBucketIsInsideIt) {
  HistogramValue h;
  h.observations = 100;
  h.max_us = 1000;
  h.buckets[histogram_bucket(512)] = 100;  // all in [512, 1024)
  EXPECT_GE(h.quantile_us(0.5), 512.0);
  EXPECT_LE(h.quantile_us(0.5), 1000.0);
  EXPECT_GE(h.quantile_us(0.95), h.quantile_us(0.05));
}

TEST(Metrics, CountersAccumulateAndResetClears) {
  InstrumentationGuard guard;
  set_metrics_enabled(true);
  count("test.ticks");
  count("test.ticks", 4);
  count("test.bytes", 1000);
  auto snapshot = metrics_snapshot();
  const auto* ticks = snapshot.counter("test.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->value, 5u);
  ASSERT_NE(snapshot.counter("test.bytes"), nullptr);
  EXPECT_EQ(snapshot.counter("test.bytes")->value, 1000u);

  metrics_reset();
  snapshot = metrics_snapshot();
  // Names survive the reset; values are zeroed.
  ASSERT_NE(snapshot.counter("test.ticks"), nullptr);
  EXPECT_EQ(snapshot.counter("test.ticks")->value, 0u);
}

TEST(Metrics, DisabledObservationsAreDropped) {
  InstrumentationGuard guard;
  count("test.off");
  observe_us("test.off_lat", 42);
  const auto snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.counter("test.off"), nullptr);
  EXPECT_EQ(snapshot.histogram("test.off_lat"), nullptr);
}

TEST(Metrics, SpansFeedDottedHistogramsWhenMetricsOn) {
  InstrumentationGuard guard;
  set_metrics_enabled(true);  // tracing stays OFF: metrics alone suffice
  {
    TRACE_SPAN("stage", "static");
  }
  const auto snapshot = metrics_snapshot();
  const auto* h = snapshot.histogram("stage.static");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->observations, 1u);
  EXPECT_TRUE(trace_collect().empty());  // no trace buffer touched
}

TEST(Metrics, SnapshotIsNameSorted) {
  InstrumentationGuard guard;
  set_metrics_enabled(true);
  count("zeta");
  count("alpha");
  count("mid");
  const auto snapshot = metrics_snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST(Metrics, LatencyTableFiltersByPrefix) {
  InstrumentationGuard guard;
  set_metrics_enabled(true);
  observe_us("stage.static", 500);
  observe_us("other.thing", 700);
  const auto snapshot = metrics_snapshot();
  constexpr std::string_view kPrefixes[] = {"stage."};
  const auto table = format_latency_table(snapshot, kPrefixes);
  EXPECT_NE(table.find("stage.static"), std::string::npos);
  EXPECT_EQ(table.find("other.thing"), std::string::npos);
  const auto all = format_latency_table(snapshot);
  EXPECT_NE(all.find("other.thing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checked numeric parsing (the CLI/env hardening satellites)
// ---------------------------------------------------------------------------

TEST(ParseU64, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_u64("0").value(), 0u);
  EXPECT_EQ(parse_u64("42").value(), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615").value(), ~std::uint64_t{0});
}

TEST(ParseU64, RejectsMalformedInput) {
  EXPECT_FALSE(parse_u64("").ok());
  EXPECT_FALSE(parse_u64("abc").ok());
  EXPECT_FALSE(parse_u64("4x").ok());          // trailing garbage
  EXPECT_FALSE(parse_u64("1 ").ok());          // trailing space
  EXPECT_FALSE(parse_u64(" 1").ok());          // leading space
  EXPECT_FALSE(parse_u64("-1").ok());          // strtoull would wrap this
  EXPECT_FALSE(parse_u64("+1").ok());
  EXPECT_FALSE(parse_u64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(parse_u64("0x10").ok());        // base 10 only
}

TEST(ParseDouble, AcceptsFiniteValues) {
  EXPECT_DOUBLE_EQ(parse_double("0.02").value(), 0.02);
  EXPECT_DOUBLE_EQ(parse_double("-3.5").value(), -3.5);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
}

TEST(ParseDouble, RejectsMalformedAndNonFinite) {
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("abc").ok());
  EXPECT_FALSE(parse_double("1.5x").ok());
  EXPECT_FALSE(parse_double("1e999").ok());  // overflows to inf
  EXPECT_FALSE(parse_double("nan").ok());
  EXPECT_FALSE(parse_double("inf").ok());
}

TEST(ParseU64List, ParsesToleratingEmptyFields) {
  const auto list = parse_u64_list("1,2,8");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value(), (std::vector<std::uint64_t>{1, 2, 8}));
  // Trailing comma and doubled delimiters are tolerated.
  EXPECT_EQ(parse_u64_list("1,2,").value(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(parse_u64_list("1,,2").value(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(ParseU64List, RejectsBadElementsAndEmptyLists) {
  EXPECT_FALSE(parse_u64_list("").ok());
  EXPECT_FALSE(parse_u64_list(",").ok());
  EXPECT_FALSE(parse_u64_list("1,2x,3").ok());
  EXPECT_FALSE(parse_u64_list("1,-2").ok());
}

}  // namespace
}  // namespace dydroid::support
