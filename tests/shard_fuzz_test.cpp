// Tier-2 merge fuzz belt (docs/SHARDING.md): no mutation of the shard
// journals — truncations, bit flips, duplicated inputs — may ever produce
// a silently corrupted merged survey. Every merge either fails loudly or
// yields a journal whose replay is byte-identical to the unsharded golden
// run. Mirrors the journal/cache fuzz belts: deterministic RNG, file
// copies mutated in place, the originals untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/shard_merge.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dydroid::driver {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "dydroid_shfuzz_" + tag + "_" +
         std::to_string(::getpid()) + ".jrnl";
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Shared fixture state: golden per-app reports and pristine shard-journal
/// bytes, produced once for the whole belt.
class ShardFuzz : public testing::Test {
 protected:
  static constexpr std::uint32_t kShards = 3;

  static void SetUpTestSuite() {
    support::set_log_level(support::LogLevel::Error);
    corpus_ = new appgen::Corpus;
    appgen::CorpusConfig config;
    config.scale = 0.002;
    *corpus_ = appgen::generate_corpus(config);

    const core::DyDroid pipeline{core::PipelineOptions{}};
    RunnerConfig golden_config;
    golden_config.jobs = 1;
    const auto golden = CorpusRunner(pipeline, golden_config).run(*corpus_);
    golden_json_ = new std::vector<std::string>;
    for (const auto& outcome : golden.outcomes) {
      golden_json_->push_back(core::report_to_json(outcome.report));
    }

    shard_bytes_ = new std::vector<std::vector<std::uint8_t>>;
    for (std::uint32_t i = 0; i < kShards; ++i) {
      const std::string path = temp_path("pristine" + std::to_string(i));
      RunnerConfig config;
      config.jobs = 1;
      config.shard_index = i;
      config.shard_count = kShards;
      config.journal_path = path;
      (void)CorpusRunner(pipeline, config).run(*corpus_);
      shard_bytes_->push_back(slurp(path));
      std::remove(path.c_str());
      ASSERT_FALSE(shard_bytes_->back().empty());
    }
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete golden_json_;
    delete shard_bytes_;
    corpus_ = nullptr;
    golden_json_ = nullptr;
    shard_bytes_ = nullptr;
  }

  /// Merge the given shard-journal byte images; if the merge succeeds, the
  /// merged journal MUST replay byte-identical to golden. Returns whether
  /// the merge succeeded.
  static bool merge_never_corrupts(
      const std::vector<std::vector<std::uint8_t>>& images,
      const std::string& tag) {
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < images.size(); ++i) {
      paths.push_back(temp_path(tag + "_in" + std::to_string(i)));
      spit(paths[i], images[i]);
    }
    const std::string out = temp_path(tag + "_out");
    std::remove(out.c_str());
    const auto merged = merge_shard_journals(out, paths);
    if (merged.ok()) {
      // The belt's whole point: success implies byte-identical replay.
      const core::DyDroid pipeline{core::PipelineOptions{}};
      RunnerConfig replay;
      replay.jobs = 2;
      replay.journal_path = out;
      replay.resume = true;
      const auto replayed = CorpusRunner(pipeline, replay).run(*corpus_);
      EXPECT_EQ(replayed.replayed, corpus_->apps.size()) << tag;
      EXPECT_EQ(replayed.analyzed, 0u) << tag;
      for (std::size_t i = 0; i < golden_json_->size(); ++i) {
        EXPECT_EQ(core::report_to_json(replayed.outcomes[i].report),
                  (*golden_json_)[i])
            << tag << " app " << i;
      }
    } else {
      // Loud failure: the message names the problem, and the output path
      // was never created.
      EXPECT_FALSE(merged.error().empty()) << tag;
      EXPECT_NE(::access(out.c_str(), F_OK), 0) << tag;
    }
    for (const auto& path : paths) std::remove(path.c_str());
    std::remove(out.c_str());
    return merged.ok();
  }

  static appgen::Corpus* corpus_;
  static std::vector<std::string>* golden_json_;
  static std::vector<std::vector<std::uint8_t>>* shard_bytes_;
};

appgen::Corpus* ShardFuzz::corpus_ = nullptr;
std::vector<std::string>* ShardFuzz::golden_json_ = nullptr;
std::vector<std::vector<std::uint8_t>>* ShardFuzz::shard_bytes_ = nullptr;

TEST_F(ShardFuzz, PristineShardsMergeToGolden) {
  EXPECT_TRUE(merge_never_corrupts(*shard_bytes_, "pristine"));
}

TEST_F(ShardFuzz, TruncationSweepNeverCorrupts) {
  // Chop each shard at a spread of lengths, from empty through mid-frame
  // cuts to one-byte-short. A truncated shard loses records, so the merge
  // must fail on missing coverage (or missing metadata) — the only
  // acceptable success is a cut that removed nothing.
  support::Rng rng(0x5A4D01);
  std::size_t merged_ok = 0;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    const auto& pristine = (*shard_bytes_)[shard];
    std::vector<std::size_t> cuts = {0, 1, pristine.size() - 1,
                                     pristine.size()};
    for (int i = 0; i < 6; ++i) cuts.push_back(rng.below(pristine.size()));
    for (const std::size_t cut : cuts) {
      auto images = *shard_bytes_;
      images[shard].resize(cut);
      const std::string tag = "trunc_s" + std::to_string(shard) + "_c" +
                              std::to_string(cut);
      const bool ok = merge_never_corrupts(images, tag);
      if (ok) ++merged_ok;
      if (cut < pristine.size()) {
        EXPECT_FALSE(ok) << tag << ": a real cut must lose a record";
      }
    }
  }
  EXPECT_EQ(merged_ok, kShards);  // only the no-op cuts merged
}

TEST_F(ShardFuzz, BitFlipSweepNeverCorrupts) {
  // Flip one random bit per round, in one shard per round. The CRC frame
  // layer turns flips into torn tails; the merge then fails on missing or
  // mismatched records — or, if the flip landed in already-discarded
  // bytes, succeeds with the golden result. Never a wrong merge.
  support::Rng rng(0xB17F11);
  for (int round = 0; round < 48; ++round) {
    const std::uint32_t shard =
        static_cast<std::uint32_t>(rng.below(kShards));
    auto images = *shard_bytes_;
    auto& bytes = images[shard];
    const std::size_t pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    merge_never_corrupts(images, "flip_r" + std::to_string(round));
  }
}

TEST_F(ShardFuzz, GarbageAppendNeverCorrupts) {
  // Random garbage appended after the sealed tail is torn-tail territory:
  // recovery drops it, the real records all survive, the merge succeeds
  // and must still replay to golden.
  support::Rng rng(0x6A4BA6);
  for (int round = 0; round < 8; ++round) {
    const std::uint32_t shard =
        static_cast<std::uint32_t>(rng.below(kShards));
    auto images = *shard_bytes_;
    const std::size_t extra = 1 + rng.below(64);
    for (std::size_t i = 0; i < extra; ++i) {
      images[shard].push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    merge_never_corrupts(images, "garbage_r" + std::to_string(round));
  }
}

TEST_F(ShardFuzz, DuplicatedShardFileNeverCorrupts) {
  // The same shard supplied twice must fail loudly, not double-count.
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    auto images = *shard_bytes_;
    images.push_back((*shard_bytes_)[shard]);
    EXPECT_FALSE(
        merge_never_corrupts(images, "dupfile_s" + std::to_string(shard)));
  }
}

TEST_F(ShardFuzz, SwappedAndRepeatedInputsNeverCorrupt) {
  // Order must not matter; a full permutation still merges to golden.
  std::vector<std::vector<std::uint8_t>> reversed(shard_bytes_->rbegin(),
                                                  shard_bytes_->rend());
  EXPECT_TRUE(merge_never_corrupts(reversed, "reversed"));
  // Replacing one shard with a copy of another (N journals, N-1 distinct
  // shards) must fail loudly.
  auto images = *shard_bytes_;
  images[2] = images[0];
  EXPECT_FALSE(merge_never_corrupts(images, "replaced"));
}

TEST_F(ShardFuzz, CrossMutationRoundsNeverCorrupt) {
  // Compound damage: each round applies two independent mutations drawn
  // from {flip, truncate, append-garbage} across random shards.
  support::Rng rng(0xC0FFEE5);
  for (int round = 0; round < 24; ++round) {
    auto images = *shard_bytes_;
    for (int m = 0; m < 2; ++m) {
      auto& bytes = images[rng.below(kShards)];
      switch (rng.below(3)) {
        case 0:
          if (bytes.empty()) break;  // fully truncated by a prior round
          bytes[rng.below(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
          break;
        case 1:
          bytes.resize(rng.below(bytes.size() + 1));
          break;
        default:
          bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
          break;
      }
    }
    merge_never_corrupts(images, "cross_r" + std::to_string(round));
  }
}

}  // namespace
}  // namespace dydroid::driver
