// Behavioural verification of the malware family payloads: each family's
// characteristic actions are observable as VM events when the payload runs
// — grounding the Table VII descriptions in executed behaviour.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "malware/families.hpp"
#include "nativebin/native_library.hpp"
#include "os/device.hpp"
#include "vm/vm.hpp"

namespace dydroid::malware {
namespace {

constexpr const char* kPkg = "com.family.host";

struct Harness {
  os::Device device;
  std::unique_ptr<vm::Vm> vm;

  bool saw(const std::string& kind, const std::string& detail_part = "") {
    for (const auto& e : vm->events()) {
      if (e.kind != kind) continue;
      if (detail_part.empty() ||
          e.detail.find(detail_part) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

/// Load a dex-family payload into a VM and invoke its run() entry.
Harness run_dex_payload(Family family, const std::string& payload_class,
                        const std::string& c2_body) {
  Harness h;
  PayloadOptions options;
  options.c2_url = "http://c2.test/gate";
  support::Rng rng(1);
  const auto payload = generate_payload(family, options, rng);

  manifest::Manifest man;
  man.package = kPkg;
  man.add_permission(manifest::kInternet);
  dex::DexBuilder b;
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1, "/data/data/com.family.host/files/p.dex");
  m.const_str(2, "");
  m.new_instance(3, "dalvik.system.DexClassLoader");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  m.const_str(4, payload_class);
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(5);
  m.invoke_virtual(payload_class, "run", {5});
  m.return_void();
  m.done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("k");
  EXPECT_TRUE(h.device.install(apk).ok());
  EXPECT_TRUE(h.device.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.family.host/files/p.dex",
                              payload)
                  .ok());
  if (!c2_body.empty()) {
    h.device.network().host("http://c2.test/gate",
                            support::to_bytes(c2_body));
  }
  vm::AppContext app;
  app.manifest = man;
  h.vm = std::make_unique<vm::Vm>(h.device, std::move(app));
  EXPECT_TRUE(h.vm->load_app(apk).ok());
  auto main = h.vm->instantiate(std::string(kPkg) + ".Main");
  (void)h.vm->call_method(main, "go");
  return h;
}

TEST(SwissCodeMonkeys, ExfiltratesIdentifiersAndObeysSmsCommand) {
  auto h = run_dex_payload(Family::SwissCodeMonkeys,
                           "com.swisscodemonkeys.payload.CoreService", "sms");
  // Identifier exfil goes out over the C2 connection...
  EXPECT_TRUE(h.saw("net_write"));
  // ...and the remote "sms" command triggers a premium text.
  EXPECT_TRUE(h.saw("sms", "PREMIUM"));
}

TEST(SwissCodeMonkeys, ObeysInstallCommand) {
  auto h = run_dex_payload(Family::SwissCodeMonkeys,
                           "com.swisscodemonkeys.payload.CoreService",
                           "install");
  EXPECT_TRUE(h.saw("exec", "pm install"));
  EXPECT_FALSE(h.saw("sms"));
}

TEST(SwissCodeMonkeys, ObeysNavigateCommand) {
  auto h = run_dex_payload(Family::SwissCodeMonkeys,
                           "com.swisscodemonkeys.payload.CoreService",
                           "navigate");
  EXPECT_TRUE(h.saw("homepage", "landing.blackhole.example"));
}

TEST(SwissCodeMonkeys, SurvivesDeadC2WithoutCrashing) {
  // Regression: the command-loop fetch is guarded by try/catch, so an
  // unreachable C2 leaves the payload silent instead of crashing the host
  // (and the try-enter handler target must survive variant mutation).
  auto h = run_dex_payload(Family::SwissCodeMonkeys,
                           "com.swisscodemonkeys.payload.CoreService",
                           /*c2_body=*/"");  // C2 not hosted
  EXPECT_TRUE(h.saw("net_write"));  // exfil attempt still recorded
  EXPECT_FALSE(h.saw("sms"));       // no command ever arrived
}

TEST(AdwareAirpushMinimob, PushesAdsShortcutsAndHomepage) {
  auto h = run_dex_payload(Family::AdwareAirpushMinimob,
                           "com.airpush.minimob.AdEngine", "");
  EXPECT_TRUE(h.saw("notification", "HOT DEALS"));
  EXPECT_TRUE(h.saw("shortcut", "FreeCoins"));
  EXPECT_TRUE(h.saw("homepage"));
}

TEST(ChathookPtrace, RootsHooksAndExfiltratesChats) {
  // Native family: load the .so and call its exported inject symbol.
  Harness h;
  PayloadOptions options;
  support::Rng rng(2);
  const auto lib = generate_payload(Family::ChathookPtrace, options, rng);
  ASSERT_TRUE(nativebin::looks_like_native(lib));

  manifest::Manifest man;
  man.package = kPkg;
  dex::DexBuilder b;
  auto cls = b.cls(std::string(kPkg) + ".Main", "android.app.Activity");
  cls.native_method("inject", 0);
  auto m = cls.method("go", 1);
  m.const_str(1, "/data/data/com.family.host/lib/libchat.so");
  m.invoke_static("java.lang.System", "load", {1});
  m.invoke_static(std::string(kPkg) + ".Main", "inject");
  m.move_result(2);
  m.ret(2);
  m.done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("k");
  ASSERT_TRUE(h.device.install(apk).ok());
  ASSERT_TRUE(h.device.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.family.host/lib/libchat.so",
                              lib)
                  .ok());
  vm::AppContext app;
  app.manifest = man;
  h.vm = std::make_unique<vm::Vm>(h.device, std::move(app));
  ASSERT_TRUE(h.vm->load_app(apk).ok());
  auto main = h.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_EQ(h.vm->call_method(main, "go").as_int(), 1);

  // The paper's description, step by step: root, ptrace both chat apps,
  // hook the chat window, dump and exfiltrate.
  EXPECT_TRUE(h.saw("su"));
  EXPECT_TRUE(h.saw("ptrace", "com.tencent.mobileqq"));
  EXPECT_TRUE(h.saw("ptrace", "com.tencent.mm"));
  EXPECT_TRUE(h.saw("hook", "ChatWindow"));
  EXPECT_TRUE(h.saw("exec", "dump_chat_history"));
  EXPECT_TRUE(h.saw("net_write"));
}

}  // namespace
}  // namespace dydroid::malware
