// Tests for the support::FaultInjector subsystem (docs/FAULTS.md): the
// FaultPlan grammar, the seed-pure per-session decision function, the
// ambient FaultScope, the FaultyCorpus byte-corruption generator — and the
// golden-corpus differential matrix proving that arming each injection
// site moves every app only into its predicted Table II bucket, with
// byte-identical reports across 1/2/8 workers.
#include <gtest/gtest.h>

#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/faulty.hpp"
#include "driver/fault_matrix.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace dydroid {
namespace {

using support::FaultPlan;
using support::FaultScope;
using support::FaultSession;
using support::FaultSite;
using support::FaultSpec;

// ---- FaultPlan grammar -----------------------------------------------------

TEST(FaultPlanTest, ParsesAllModes) {
  const auto plan = FaultPlan::parse(
      "apk.deserialize=always,device.install=p:0.25,dex.parse=nth:2");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().spec(FaultSite::kApkDeserialize).mode,
            FaultSpec::Mode::kAlways);
  EXPECT_EQ(plan.value().spec(FaultSite::kDeviceInstall).mode,
            FaultSpec::Mode::kProbability);
  EXPECT_DOUBLE_EQ(plan.value().spec(FaultSite::kDeviceInstall).probability,
                   0.25);
  EXPECT_EQ(plan.value().spec(FaultSite::kDexParse).mode,
            FaultSpec::Mode::kNth);
  EXPECT_EQ(plan.value().spec(FaultSite::kDexParse).nth, 2u);
  EXPECT_EQ(plan.value().spec(FaultSite::kDeviceBoot).mode,
            FaultSpec::Mode::kNever);
  EXPECT_FALSE(plan.value().empty());
}

TEST(FaultPlanTest, EmptyTextIsEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
  EXPECT_EQ(plan.value().to_string(), "");
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  const char* text = "apk.deserialize=always,dex.parse=nth:3,native.load=p:0.5";
  const auto plan = FaultPlan::parse(text);
  ASSERT_TRUE(plan.ok()) << plan.error();
  const auto reparsed = FaultPlan::parse(plan.value().to_string());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value().to_string(), plan.value().to_string());
  for (const auto site : support::all_fault_sites()) {
    EXPECT_EQ(reparsed.value().spec(site).mode, plan.value().spec(site).mode);
  }
}

TEST(FaultPlanTest, RejectsMalformedEntries) {
  EXPECT_FALSE(FaultPlan::parse("bogus.site=always").ok());
  EXPECT_FALSE(FaultPlan::parse("apk.deserialize=maybe").ok());
  EXPECT_FALSE(FaultPlan::parse("apk.deserialize").ok());
  EXPECT_FALSE(FaultPlan::parse("apk.deserialize=nth:0").ok());
  EXPECT_FALSE(FaultPlan::parse("apk.deserialize=p:1.5").ok());
  EXPECT_FALSE(FaultPlan::parse("apk.deserialize=p:-0.1").ok());
}

TEST(FaultSiteTest, NamesRoundTrip) {
  for (const auto site : support::all_fault_sites()) {
    const auto back = support::fault_site_from_name(fault_site_name(site));
    ASSERT_TRUE(back.ok()) << fault_site_name(site);
    EXPECT_EQ(back.value(), site);
  }
  EXPECT_FALSE(support::fault_site_from_name("nope").ok());
}

// ---- FaultSession decision function ----------------------------------------

TEST(FaultSessionTest, AlwaysFiresEveryHit) {
  FaultPlan plan;
  plan.set(FaultSite::kDeviceBoot, FaultSpec::always());
  FaultSession session(plan, 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(session.should_fire(FaultSite::kDeviceBoot));
    EXPECT_FALSE(session.should_fire(FaultSite::kDeviceInstall));
  }
  EXPECT_EQ(session.fired(), 5u);
  EXPECT_EQ(session.hits(FaultSite::kDeviceBoot), 5u);
}

TEST(FaultSessionTest, NthFiresExactlyOnNthHit) {
  FaultPlan plan;
  plan.set(FaultSite::kDexParse, FaultSpec::on_nth(3));
  FaultSession session(plan, 7);
  EXPECT_FALSE(session.should_fire(FaultSite::kDexParse));
  EXPECT_FALSE(session.should_fire(FaultSite::kDexParse));
  EXPECT_TRUE(session.should_fire(FaultSite::kDexParse));
  EXPECT_FALSE(session.should_fire(FaultSite::kDexParse));
  EXPECT_EQ(session.fired(), 1u);
}

TEST(FaultSessionTest, ProbabilityIsSeedDeterministic) {
  FaultPlan plan;
  plan.set(FaultSite::kInterceptorIo, FaultSpec::with_probability(0.5));
  FaultSession a(plan, 0xABCD);
  FaultSession b(plan, 0xABCD);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.should_fire(FaultSite::kInterceptorIo),
              b.should_fire(FaultSite::kInterceptorIo));
  }
}

TEST(FaultSessionTest, ProbabilityApproximatesRate) {
  FaultPlan plan;
  plan.set(FaultSite::kNativeLoad, FaultSpec::with_probability(0.5));
  FaultSession session(plan, 99);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (session.should_fire(FaultSite::kNativeLoad)) ++fired;
  }
  EXPECT_GT(fired, 400);
  EXPECT_LT(fired, 600);
}

TEST(FaultSessionTest, DecisionsAreInterleavingIndependent) {
  // The draw for (site, hit k) must not depend on how *other* sites were
  // hit in between — this is what makes per-app runs reproducible no
  // matter which code paths interleave.
  FaultPlan plan;
  plan.set(FaultSite::kApkDeserialize, FaultSpec::with_probability(0.5));
  plan.set(FaultSite::kDexParse, FaultSpec::with_probability(0.5));
  FaultSession grouped(plan, 0xFEED);
  FaultSession alternating(plan, 0xFEED);
  std::vector<bool> ga, gd, aa, ad;
  for (int i = 0; i < 32; ++i) {
    ga.push_back(grouped.should_fire(FaultSite::kApkDeserialize));
  }
  for (int i = 0; i < 32; ++i) {
    gd.push_back(grouped.should_fire(FaultSite::kDexParse));
  }
  for (int i = 0; i < 32; ++i) {
    aa.push_back(alternating.should_fire(FaultSite::kApkDeserialize));
    ad.push_back(alternating.should_fire(FaultSite::kDexParse));
  }
  EXPECT_EQ(ga, aa);
  EXPECT_EQ(gd, ad);
}

TEST(FaultSessionTest, AttemptSaltsTheSessionSeed) {
  EXPECT_NE(support::fault_session_seed(42, 0),
            support::fault_session_seed(42, 1));
  EXPECT_EQ(support::fault_session_seed(42, 1),
            support::fault_session_seed(42, 1));
}

// ---- FaultScope ambient install --------------------------------------------

TEST(FaultScopeTest, NoAmbientSessionNeverFires) {
  ASSERT_EQ(support::current_fault_session(), nullptr);
  EXPECT_FALSE(support::fault_fire(FaultSite::kApkDeserialize));
}

TEST(FaultScopeTest, InstallsAndRestoresOnNesting) {
  FaultPlan plan;
  plan.set(FaultSite::kDeviceBoot, FaultSpec::always());
  FaultSession outer(plan, 1);
  FaultSession inner(plan, 2);
  {
    FaultScope outer_scope(&outer);
    EXPECT_EQ(support::current_fault_session(), &outer);
    EXPECT_TRUE(support::fault_fire(FaultSite::kDeviceBoot));
    {
      FaultScope inner_scope(&inner);
      EXPECT_EQ(support::current_fault_session(), &inner);
      EXPECT_TRUE(support::fault_fire(FaultSite::kDeviceBoot));
    }
    EXPECT_EQ(support::current_fault_session(), &outer);
  }
  EXPECT_EQ(support::current_fault_session(), nullptr);
  EXPECT_EQ(outer.hits(FaultSite::kDeviceBoot), 1u);
  EXPECT_EQ(inner.hits(FaultSite::kDeviceBoot), 1u);
}

TEST(FaultMessageTest, NamesTheSite) {
  EXPECT_EQ(support::fault_message(FaultSite::kDeviceInstall),
            "fault(device.install): injected failure");
}

// ---- FaultyCorpus byte corruption ------------------------------------------

appgen::Corpus small_corpus() {
  appgen::CorpusConfig config;
  config.scale = 0.002;  // ~120 apps
  return appgen::generate_corpus(config);
}

TEST(FaultyCorpusTest, SelectionAndMutationAreDeterministic) {
  const auto clean = small_corpus();
  appgen::FaultyCorpusConfig config;
  config.fraction = 0.3;
  config.layer = appgen::CorruptionLayer::kContainer;
  const auto a = appgen::corrupt_corpus(clean, config);
  const auto b = appgen::corrupt_corpus(clean, config);
  ASSERT_EQ(a.corrupted, b.corrupted);
  ASSERT_FALSE(a.corrupted.empty());
  ASSERT_LT(a.corrupted.size(), clean.apps.size());
  for (std::size_t i = 0; i < clean.apps.size(); ++i) {
    EXPECT_EQ(a.corpus.apps[i].apk, b.corpus.apps[i].apk) << "app " << i;
  }
}

TEST(FaultyCorpusTest, NonSelectedAppsStayByteIdentical) {
  const auto clean = small_corpus();
  appgen::FaultyCorpusConfig config;
  config.fraction = 0.3;
  config.layer = appgen::CorruptionLayer::kContainer;
  const auto faulty = appgen::corrupt_corpus(clean, config);
  std::vector<bool> corrupted(clean.apps.size(), false);
  for (const auto index : faulty.corrupted) corrupted[index] = true;
  for (std::size_t i = 0; i < clean.apps.size(); ++i) {
    if (corrupted[i]) {
      EXPECT_NE(faulty.corpus.apps[i].apk, clean.apps[i].apk) << "app " << i;
    } else {
      EXPECT_EQ(faulty.corpus.apps[i].apk, clean.apps[i].apk) << "app " << i;
    }
  }
}

TEST(FaultyCorpusTest, MutateBytesIsSeedDeterministic) {
  const auto clean = small_corpus();
  const auto& apk = clean.apps.front().apk;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    support::Rng a(seed);
    support::Rng b(seed);
    EXPECT_EQ(appgen::mutate_bytes(apk, a), appgen::mutate_bytes(apk, b));
  }
}

// ---- Golden-corpus differential matrix -------------------------------------

TEST(FaultMatrixTest, EverySiteShiftsOnlyItsPredictedBucket) {
  driver::FaultCheckOptions options;  // ~200 apps, workers 1/2/8
  const auto report = driver::run_fault_matrix(options);
  EXPECT_TRUE(report.passed()) << driver::format_fault_check(report);
  ASSERT_GT(report.apps, 100u);
  // 8 per-app pipeline sites + 4 corruption layers. The driver-level
  // crash-recovery sites (journal.append, driver.kill) are deliberately
  // NOT part of the matrix — they abort the run instead of shifting a
  // Table II bucket, and are exercised by tests/kill_resume_test.cpp
  // (docs/CHECKPOINT.md).
  ASSERT_EQ(report.cases.size(), 12u);

  const auto find = [&](const std::string& name) -> const auto& {
    for (const auto& c : report.cases) {
      if (c.name == name) return c;
    }
    ADD_FAILURE() << "missing case " << name;
    return report.cases.front();
  };

  // Killing any parse layer lands *every* app in Table II "not run".
  for (const char* name : {"apk.deserialize", "manifest.parse", "dex.parse"}) {
    const auto& c = find(name);
    EXPECT_EQ(c.histogram[static_cast<std::size_t>(
                  core::DynamicStatus::kNotRun)],
              report.apps)
        << name;
  }
  // Device faults leave no app exercised and crash every dynamic entrant.
  for (const char* name : {"device.boot", "device.install"}) {
    const auto& c = find(name);
    EXPECT_EQ(c.histogram[static_cast<std::size_t>(
                  core::DynamicStatus::kExercised)],
              0u)
        << name;
    EXPECT_GT(c.shifted, 0u) << name;
  }
  // Interceptor I/O faults never move the outcome histogram at all.
  EXPECT_EQ(find("interceptor.io").histogram, report.baseline);
  EXPECT_EQ(find("interceptor.io").shifted, 0u);
  // Each remaining case disturbed at least one app.
  EXPECT_GT(find("rewrite.repack").shifted, 0u);
  EXPECT_GT(find("native.load").shifted, 0u);
  // Byte-corruption cases: the corrupted fraction visibly changes reports
  // (the crc-trap layer is covered by the per-app predictions above — its
  // trap entry is deliberately invisible to most apps).
  for (const char* name :
       {"corrupt:container", "corrupt:manifest", "corrupt:dex"}) {
    EXPECT_LT(find(name).identical, report.apps) << name;
  }
}

}  // namespace
}  // namespace dydroid
