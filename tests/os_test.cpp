// Unit tests for the SimDevice substrate: VFS permission semantics, network
// gating, package manager, system services.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "os/device.hpp"

namespace dydroid::os {
namespace {

using support::to_bytes;

Principal app(std::string pkg, bool write_ext = false) {
  Principal p;
  p.pkg = std::move(pkg);
  p.has_write_external = write_ext;
  return p;
}

TEST(PathClassify, Domains) {
  EXPECT_EQ(classify_path("/system/lib/libc.so").domain, PathDomain::kSystem);
  const auto info = classify_path("/data/data/com.a.b/files/x.dex");
  EXPECT_EQ(info.domain, PathDomain::kAppPrivate);
  EXPECT_EQ(info.owner, "com.a.b");
  EXPECT_EQ(classify_path("/mnt/sdcard/dl/x.jar").domain,
            PathDomain::kExternalStorage);
  EXPECT_EQ(classify_path("/tmp/x").domain, PathDomain::kOther);
}

TEST(Vfs, OwnerWritesOwnInternalStorage) {
  Vfs vfs(18);
  EXPECT_TRUE(
      vfs.write_file(app("com.a"), "/data/data/com.a/files/f", to_bytes("x")));
  EXPECT_TRUE(vfs.exists("/data/data/com.a/files/f"));
}

TEST(Vfs, ForeignInternalStorageDenied) {
  Vfs vfs(18);
  const auto s =
      vfs.write_file(app("com.evil"), "/data/data/com.a/files/f", to_bytes("x"));
  EXPECT_FALSE(s.ok());
}

TEST(Vfs, ForeignInternalStorageReadable) {
  // Pre-scoped-storage: other apps' files are readable — this is the
  // "internal storage of other apps" DCL vulnerability variant.
  Vfs vfs(18);
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/lib/l.so",
                             to_bytes("lib")));
  EXPECT_TRUE(vfs.read_file("/data/data/com.a/lib/l.so").has_value());
}

TEST(Vfs, ExternalStorageWritableByAnyonePre44) {
  Vfs vfs(18);  // API 18 < 19 (Android 4.4)
  EXPECT_TRUE(
      vfs.write_file(app("any.app"), "/mnt/sdcard/x.dex", to_bytes("d")));
}

TEST(Vfs, ExternalStorageNeedsPermissionFrom44) {
  Vfs vfs(19);
  EXPECT_FALSE(
      vfs.write_file(app("no.perm"), "/mnt/sdcard/x.dex", to_bytes("d")).ok());
  EXPECT_TRUE(
      vfs.write_file(app("with.perm", true), "/mnt/sdcard/x.dex", to_bytes("d"))
          .ok());
}

TEST(Vfs, SystemPathsAppDenied) {
  Vfs vfs(18);
  EXPECT_FALSE(
      vfs.write_file(app("com.a"), "/system/lib/evil.so", to_bytes("x")).ok());
  EXPECT_TRUE(vfs.write_file(Principal::system(), "/system/lib/ok.so",
                             to_bytes("x"))
                  .ok());
}

TEST(Vfs, DeleteRespectsPermissions) {
  Vfs vfs(18);
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("x")));
  EXPECT_FALSE(vfs.delete_file(app("com.b"), "/data/data/com.a/f").ok());
  EXPECT_TRUE(vfs.delete_file(app("com.a"), "/data/data/com.a/f").ok());
  EXPECT_FALSE(vfs.exists("/data/data/com.a/f"));
}

TEST(Vfs, RenameMovesContent) {
  Vfs vfs(18);
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("x")));
  EXPECT_TRUE(
      vfs.rename(app("com.a"), "/data/data/com.a/f", "/data/data/com.a/g").ok());
  EXPECT_FALSE(vfs.exists("/data/data/com.a/f"));
  EXPECT_EQ(support::to_string(*vfs.read_file("/data/data/com.a/g")), "x");
}

TEST(Vfs, RenameToUnwritableDestinationFails) {
  Vfs vfs(18);
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("x")));
  EXPECT_FALSE(
      vfs.rename(app("com.a"), "/data/data/com.a/f", "/system/lib/f").ok());
  EXPECT_TRUE(vfs.exists("/data/data/com.a/f"));  // source preserved
}

TEST(Vfs, CapacityEnforced) {
  Vfs vfs(18, 10);
  EXPECT_TRUE(
      vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("12345")));
  const auto s =
      vfs.write_file(app("com.a"), "/data/data/com.a/g", to_bytes("123456"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.error().find("full"), std::string::npos);
}

TEST(Vfs, OverwriteAccountsUsedBytes) {
  Vfs vfs(18, 10);
  ASSERT_TRUE(
      vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("12345678")));
  // Overwriting with a smaller file frees space.
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/f", to_bytes("1")));
  EXPECT_EQ(vfs.used_bytes(), 1u);
  EXPECT_TRUE(
      vfs.write_file(app("com.a"), "/data/data/com.a/g", to_bytes("123456789")));
}

TEST(Vfs, ListDirPrefixBoundary) {
  Vfs vfs(18);
  ASSERT_TRUE(vfs.write_file(app("com.a"), "/data/data/com.a/x", to_bytes("1")));
  ASSERT_TRUE(
      vfs.write_file(app("com.ab"), "/data/data/com.ab/y", to_bytes("2")));
  const auto files = vfs.list_dir("/data/data/com.a");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], "/data/data/com.a/x");
}

TEST(Vfs, RelativePathRejected) {
  Vfs vfs(18);
  EXPECT_FALSE(vfs.write_file(app("com.a"), "relative/path", to_bytes("x")).ok());
}

TEST(Network, FetchHostedPayload) {
  SystemServices services;
  Network net(&services);
  net.host("http://cdn.example.com/p.dex", to_bytes("payload"));
  auto r = net.fetch("http://cdn.example.com/p.dex");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(support::to_string(r.value()), "payload");
  ASSERT_EQ(net.fetch_log().size(), 1u);
  EXPECT_TRUE(net.fetch_log()[0].succeeded);
}

TEST(Network, UnknownUrl404) {
  SystemServices services;
  Network net(&services);
  EXPECT_FALSE(net.fetch("http://nowhere/x").ok());
}

TEST(Network, AirplaneModeBlocks) {
  SystemServices services;
  Network net(&services);
  net.host("http://a/b", to_bytes("x"));
  services.set_airplane_mode(true);
  services.set_wifi_enabled(false);
  EXPECT_FALSE(net.fetch("http://a/b").ok());
  // WiFi back on overrides airplane mode (Table VIII config 2).
  services.set_wifi_enabled(true);
  EXPECT_TRUE(net.fetch("http://a/b").ok());
}

TEST(Network, DynamicHandlerGates) {
  SystemServices services;
  Network net(&services);
  bool serve = false;
  net.host_dynamic("http://gate/x", [&]() -> std::optional<support::Bytes> {
    if (!serve) return std::nullopt;
    return to_bytes("now");
  });
  EXPECT_FALSE(net.fetch("http://gate/x").ok());
  serve = true;
  EXPECT_TRUE(net.fetch("http://gate/x").ok());
}

apk::ApkFile tiny_apk(const std::string& pkg) {
  manifest::Manifest m;
  m.package = pkg;
  dex::DexBuilder b;
  b.cls(pkg + ".Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();
  apk::ApkFile apk;
  apk.write_manifest(m);
  apk.write_classes_dex(b.build());
  apk.put("lib/armeabi/libfoo.so", to_bytes("native"));
  apk.sign("key-" + pkg);
  return apk;
}

TEST(PackageManager, InstallRegistersAndExtracts) {
  Device device;
  ASSERT_TRUE(device.install(tiny_apk("com.a.b")).ok());
  EXPECT_TRUE(device.package_manager().is_installed("com.a.b"));
  EXPECT_TRUE(device.vfs().exists("/data/app/com.a.b.apk"));
  // Native libs extracted into the app's private lib dir.
  EXPECT_TRUE(device.vfs().exists("/data/data/com.a.b/lib/libfoo.so"));
}

TEST(PackageManager, UninstallCleansUp) {
  Device device;
  ASSERT_TRUE(device.install(tiny_apk("com.a.b")).ok());
  ASSERT_TRUE(device.package_manager().uninstall("com.a.b").ok());
  EXPECT_FALSE(device.package_manager().is_installed("com.a.b"));
  EXPECT_FALSE(device.vfs().exists("/data/app/com.a.b.apk"));
  EXPECT_TRUE(device.vfs().list_dir("/data/data/com.a.b").empty());
}

TEST(PackageManager, InstalledPackagesListed) {
  Device device;
  ASSERT_TRUE(device.install(tiny_apk("com.a")).ok());
  ASSERT_TRUE(device.install(tiny_apk("com.b")).ok());
  const auto pkgs = device.package_manager().installed_packages();
  EXPECT_EQ(pkgs.size(), 2u);
}

TEST(PackageManager, MalformedApkRejected) {
  Device device;
  apk::ApkFile bad;  // no manifest
  EXPECT_FALSE(device.install(bad).ok());
}

TEST(Device, SystemLibsPreinstalled) {
  Device device;
  EXPECT_TRUE(device.vfs().exists("/system/lib/libc.so"));
}

TEST(Services, ClockAdvances) {
  SystemServices services;
  const auto t0 = services.current_time_ms();
  services.advance_ms(1000);
  EXPECT_EQ(services.current_time_ms(), t0 + 1000);
  services.set_time_ms(5);
  EXPECT_EQ(services.current_time_ms(), 5);
}

TEST(Services, LocationGating) {
  SystemServices services;
  EXPECT_FALSE(services.last_known_location().empty());
  services.set_location_enabled(false);
  EXPECT_TRUE(services.last_known_location().empty());
}

TEST(Services, ContentProviders) {
  Device device;
  EXPECT_FALSE(device.services().query_provider(kUriContacts).empty());
  EXPECT_TRUE(device.services().query_provider("content://unknown").empty());
}

}  // namespace
}  // namespace dydroid::os
