// Systematic coverage of the framework intrinsics: files & streams, URLs,
// privacy sources, sinks & events, system services, strings/crypto, libc —
// each exercised from real bytecode.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "os/device.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {
namespace {

constexpr const char* kPkg = "com.fw.app";

/// Harness: builds a single static method "t" from a callback, runs it.
class FrameworkTest : public ::testing::Test {
 protected:
  Value run(const std::function<void(dex::MethodBuilder&)>& body) {
    dex::DexBuilder b;
    {
      auto m = b.cls("com.fw.app.T").static_method("t", 0);
      body(m);
      m.done();
    }
    manifest::Manifest man;
    man.package = kPkg;
    man.add_permission(manifest::kInternet);
    man.add_permission(manifest::kWriteExternalStorage);
    apk::ApkFile apk;
    apk.write_manifest(man);
    apk.write_classes_dex(b.build());
    apk.sign("k");
    EXPECT_TRUE(device_.install(apk).ok());
    AppContext app;
    app.manifest = man;
    vm_ = std::make_unique<Vm>(device_, std::move(app));
    EXPECT_TRUE(vm_->load_app(apk).ok());
    return vm_->call_static("com.fw.app.T", "t");
  }

  bool saw_event(const std::string& kind) const {
    for (const auto& e : vm_->events()) {
      if (e.kind == kind) return true;
    }
    return false;
  }

  os::Device device_;
  std::unique_ptr<Vm> vm_;
};

// ---------------------------------------------------------------------------
// Files.
// ---------------------------------------------------------------------------

TEST_F(FrameworkTest, FileExistsAndLength) {
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.fw.app/files/x",
                              support::to_bytes("12345"))
                  .ok());
  const auto result = run([](dex::MethodBuilder& m) {
    m.new_instance(0, "java.io.File");
    m.const_str(1, "/data/data/com.fw.app/files/x");
    m.invoke_virtual("java.io.File", "<init>", {0, 1});
    m.invoke_virtual("java.io.File", "exists", {0});
    m.move_result(2);
    m.invoke_virtual("java.io.File", "length", {0});
    m.move_result(3);
    m.mul(4, 2, 3);
    m.ret(4);
  });
  EXPECT_EQ(result.as_int(), 5);
}

TEST_F(FrameworkTest, FileTwoArgConstructorJoinsPath) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.new_instance(0, "java.io.File");
    m.const_str(1, "/data/data/com.fw.app");
    m.const_str(2, "cache/z.bin");
    m.invoke_virtual("java.io.File", "<init>", {0, 1, 2});
    m.invoke_virtual("java.io.File", "getPath", {0});
    m.move_result(3);
    m.ret(3);
  });
  EXPECT_EQ(result.as_str(), "/data/data/com.fw.app/cache/z.bin");
}

TEST_F(FrameworkTest, WritePermissionViolationThrows) {
  EXPECT_THROW(run([](dex::MethodBuilder& m) {
                 m.new_instance(0, "java.io.FileOutputStream");
                 m.const_str(1, "/data/data/com.other.app/files/x");
                 m.invoke_virtual("java.io.FileOutputStream", "<init>",
                                  {0, 1});
                 m.const_str(2, "d");
                 m.invoke_static("java.lang.String", "getBytes", {2});
                 m.move_result(3);
                 m.invoke_virtual("java.io.OutputStream", "write", {0, 3});
               }),
               VmException);
}

TEST_F(FrameworkTest, StreamCopyPreservesBytes) {
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.fw.app/files/in",
                              support::Bytes(10000, 0x5a))
                  .ok());
  (void)run([](dex::MethodBuilder& m) {
    m.new_instance(0, "java.io.FileInputStream");
    m.const_str(1, "/data/data/com.fw.app/files/in");
    m.invoke_virtual("java.io.FileInputStream", "<init>", {0, 1});
    m.new_instance(2, "java.io.FileOutputStream");
    m.const_str(3, "/data/data/com.fw.app/files/out");
    m.invoke_virtual("java.io.FileOutputStream", "<init>", {2, 3});
    m.label("l");
    m.invoke_virtual("java.io.InputStream", "read", {0});
    m.move_result(4);
    m.if_eqz(4, "e");
    m.invoke_virtual("java.io.OutputStream", "write", {2, 4});
    m.jump("l");
    m.label("e");
  });
  const auto out = device_.vfs().read_file("/data/data/com.fw.app/files/out");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, support::Bytes(10000, 0x5a));
}

TEST_F(FrameworkTest, MissingFileInputThrows) {
  EXPECT_THROW(run([](dex::MethodBuilder& m) {
                 m.new_instance(0, "java.io.FileInputStream");
                 m.const_str(1, "/no/such/file");
                 m.invoke_virtual("java.io.FileInputStream", "<init>", {0, 1});
               }),
               VmException);
}

// ---------------------------------------------------------------------------
// Privacy sources return device data; sinks record events.
// ---------------------------------------------------------------------------

struct SourceCase {
  const char* cls;
  const char* method;
};

class SourceTest : public FrameworkTest,
                   public ::testing::WithParamInterface<SourceCase> {};

TEST_P(SourceTest, ReturnsNonEmptyString) {
  const auto param = GetParam();
  const auto result = run([&](dex::MethodBuilder& m) {
    m.invoke_static(param.cls, param.method);
    m.move_result(0);
    m.ret(0);
  });
  EXPECT_TRUE(result.is_str());
  EXPECT_FALSE(result.as_str().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSources, SourceTest,
    ::testing::Values(
        SourceCase{"android.telephony.TelephonyManager", "getDeviceId"},
        SourceCase{"android.telephony.TelephonyManager", "getSubscriberId"},
        SourceCase{"android.telephony.TelephonyManager", "getSimSerialNumber"},
        SourceCase{"android.telephony.TelephonyManager", "getLine1Number"},
        SourceCase{"android.location.LocationManager", "getLastKnownLocation"},
        SourceCase{"android.accounts.AccountManager", "getAccounts"},
        SourceCase{"android.content.pm.PackageManager",
                   "getInstalledApplications"},
        SourceCase{"android.content.pm.PackageManager",
                   "getInstalledPackages"}));

TEST_F(FrameworkTest, ContentResolverQueriesProviders) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.const_str(0, "content://contacts");
    m.invoke_static("android.content.ContentResolver", "query", {0});
    m.move_result(1);
    m.ret(1);
  });
  EXPECT_NE(result.as_str().find("Alice"), std::string::npos);
}

struct EventCase {
  const char* cls;
  const char* method;
  const char* event;
};

class SinkEventTest : public FrameworkTest,
                      public ::testing::WithParamInterface<EventCase> {};

TEST_P(SinkEventTest, RecordsVmEvent) {
  const auto param = GetParam();
  (void)run([&](dex::MethodBuilder& m) {
    m.const_str(0, "arg0");
    m.const_str(1, "arg1");
    m.invoke_static(param.cls, param.method, {0, 1});
  });
  EXPECT_TRUE(saw_event(param.event)) << param.event;
}

INSTANTIATE_TEST_SUITE_P(
    AllSinks, SinkEventTest,
    ::testing::Values(
        EventCase{"android.util.Log", "d", "log"},
        EventCase{"android.telephony.SmsManager", "sendTextMessage", "sms"},
        EventCase{"android.app.NotificationManager", "notify",
                  "notification"},
        EventCase{"com.android.launcher.Shortcut", "install", "shortcut"},
        EventCase{"android.provider.Browser", "setHomepage", "homepage"},
        EventCase{"libc", "exec", "exec"},
        EventCase{"libc", "ptrace", "ptrace"},
        EventCase{"libc", "hook_method", "hook"}));

// ---------------------------------------------------------------------------
// Services / environment.
// ---------------------------------------------------------------------------

TEST_F(FrameworkTest, CurrentTimeTracksServiceClock) {
  device_.services().set_time_ms(123456789);
  const auto result = run([](dex::MethodBuilder& m) {
    m.invoke_static("java.lang.System", "currentTimeMillis");
    m.move_result(0);
    m.ret(0);
  });
  EXPECT_EQ(result.as_int(), 123456789);
}

TEST_F(FrameworkTest, ThreadSleepAdvancesClock) {
  const auto before = device_.services().current_time_ms();
  (void)run([](dex::MethodBuilder& m) {
    m.const_int(0, 5000);
    m.invoke_static("java.lang.Thread", "sleep", {0});
  });
  EXPECT_EQ(device_.services().current_time_ms(), before + 5000);
}

TEST_F(FrameworkTest, AirplaneFlagAndConnectivityDiffer) {
  device_.services().set_airplane_mode(true);
  device_.services().set_wifi_enabled(true);
  const auto result = run([](dex::MethodBuilder& m) {
    m.invoke_static("android.provider.Settings", "isAirplaneModeOn");
    m.move_result(0);
    m.invoke_static("android.net.ConnectivityManager", "isConnected");
    m.move_result(1);
    m.const_int(2, 10);
    m.mul(0, 0, 2);
    m.add(0, 0, 1);
    m.ret(0);
  });
  // Airplane flag on (1) * 10 + connected (1, via WiFi) = 11.
  EXPECT_EQ(result.as_int(), 11);
}

TEST_F(FrameworkTest, ExternalStorageDirConstant) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.invoke_static("android.os.Environment", "getExternalStorageDirectory");
    m.move_result(0);
    m.ret(0);
  });
  EXPECT_EQ(result.as_str(), "/mnt/sdcard");
}

TEST_F(FrameworkTest, ContextDirsScopedToApp) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.invoke_static("android.content.Context", "getFilesDir");
    m.move_result(0);
    m.invoke_static("android.content.Context", "getCacheDir");
    m.move_result(1);
    m.concat(2, 0, 1);
    m.ret(2);
  });
  EXPECT_EQ(result.as_str(),
            "/data/data/com.fw.app/files/data/data/com.fw.app/cache");
}

// ---------------------------------------------------------------------------
// Strings & crypto.
// ---------------------------------------------------------------------------

TEST_F(FrameworkTest, StringBytesRoundTrip) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.const_str(0, "round-trip-me");
    m.invoke_static("java.lang.String", "getBytes", {0});
    m.move_result(1);
    m.invoke_static("java.lang.String", "valueOf", {1});
    m.move_result(2);
    m.ret(2);
  });
  EXPECT_EQ(result.as_str(), "round-trip-me");
}

TEST_F(FrameworkTest, XorDecryptIsInvolution) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.const_str(0, "secret-data!");
    m.invoke_static("java.lang.String", "getBytes", {0});
    m.move_result(1);
    m.const_str(2, "k3y!");
    m.invoke_static("libc", "xor_decrypt", {1, 2});
    m.move_result(3);
    m.invoke_static("libc", "xor_decrypt", {3, 2});
    m.move_result(4);
    m.invoke_static("java.lang.String", "valueOf", {4});
    m.move_result(5);
    m.ret(5);
  });
  EXPECT_EQ(result.as_str(), "secret-data!");
}

TEST_F(FrameworkTest, DigestStableAndContentSensitive) {
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.fw.app/files/f1",
                              support::to_bytes("content-a"))
                  .ok());
  const auto result = run([](dex::MethodBuilder& m) {
    m.const_str(0, "/data/data/com.fw.app/files/f1");
    m.invoke_static("java.security.MessageDigest", "digest", {0});
    m.move_result(1);
    m.invoke_static("java.security.MessageDigest", "digest", {0});
    m.move_result(2);
    m.cmp_eq(3, 1, 2);
    m.ret(3);
  });
  EXPECT_EQ(result.as_int(), 1);
}

TEST_F(FrameworkTest, MapLibraryName) {
  const auto result = run([](dex::MethodBuilder& m) {
    m.const_str(0, "engine");
    m.invoke_static("java.lang.System", "mapLibraryName", {0});
    m.move_result(1);
    m.ret(1);
  });
  EXPECT_EQ(result.as_str(), "libengine.so");
}

TEST_F(FrameworkTest, UnknownIntrinsicThrowsNoSuchMethod) {
  try {
    (void)run([](dex::MethodBuilder& m) {
      m.invoke_static("android.never.Heard", "ofIt");
    });
    FAIL();
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("NoSuchMethodError"),
              std::string::npos);
  }
}

TEST_F(FrameworkTest, NetWriteRecordsEvent) {
  device_.network().host("http://sink.example/up", support::to_bytes("ok"));
  (void)run([](dex::MethodBuilder& m) {
    m.new_instance(0, "java.net.URL");
    m.const_str(1, "http://sink.example/up");
    m.invoke_virtual("java.net.URL", "<init>", {0, 1});
    m.invoke_virtual("java.net.URL", "openConnection", {0});
    m.move_result(2);
    m.invoke_virtual("java.net.URLConnection", "getOutputStream", {2});
    m.move_result(3);
    m.const_str(4, "exfil");
    m.invoke_static("java.lang.String", "getBytes", {4});
    m.move_result(5);
    m.invoke_virtual("java.io.OutputStream", "write", {3, 5});
  });
  EXPECT_TRUE(saw_event("net_write"));
}

TEST_F(FrameworkTest, ResponseCodeReflectsHosting) {
  device_.network().host("http://up.example/x", support::to_bytes("y"));
  const auto result = run([](dex::MethodBuilder& m) {
    m.new_instance(0, "java.net.URL");
    m.const_str(1, "http://up.example/x");
    m.invoke_virtual("java.net.URL", "<init>", {0, 1});
    m.invoke_virtual("java.net.URL", "openConnection", {0});
    m.move_result(2);
    m.invoke_virtual("java.net.HttpURLConnection", "getResponseCode", {2});
    m.move_result(3);
    m.new_instance(4, "java.net.URL");
    m.const_str(5, "http://down.example/x");
    m.invoke_virtual("java.net.URL", "<init>", {4, 5});
    m.invoke_virtual("java.net.URL", "openConnection", {4});
    m.move_result(6);
    m.invoke_virtual("java.net.HttpURLConnection", "getResponseCode", {6});
    m.move_result(7);
    m.const_int(8, 1000);
    m.mul(3, 3, 8);
    m.add(3, 3, 7);
    m.ret(3);
  });
  EXPECT_EQ(result.as_int(), 200 * 1000 + 404);
}

}  // namespace
}  // namespace dydroid::vm
