// Content-addressed result cache (docs/CACHE.md): hit/miss semantics, LRU
// eviction order, config-fingerprint invalidation, corrupted-store
// recovery (skip-and-recompute, never crash), the crafted-FNV-collision
// identity regression, and the golden equivalence suite — cached and
// uncached corpus runs must produce byte-identical per-app reports at any
// worker count, with fault injection on and off, plus the journal+cache
// interplay (killed run resumed against a warm cache).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/report_json.hpp"
#include "support/bytes.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "driver/result_cache.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"

namespace dydroid::driver {
namespace {

class TempCacheDir {
 public:
  explicit TempCacheDir(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_cache_" + tag + "_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(path_);
  }
  ~TempCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class TempJournal {
 public:
  explicit TempJournal(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_cachejr_" + tag + "_" +
            std::to_string(::getpid()) + ".jrnl";
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const support::Sha256Digest kTestConfig = support::sha256("test-config-A");

AppOutcome make_outcome(const std::string& package, std::uint64_t seed = 7) {
  AppOutcome outcome;
  outcome.report.package = package;
  outcome.seed = seed;
  outcome.wall_ms = 1.25;
  outcome.attempts = 1;
  outcome.completed = true;
  return outcome;
}

CacheKey key_of(std::string_view apk_tag, std::uint64_t seed = 0,
                const support::Sha256Digest& config = kTestConfig) {
  CacheKey key;
  key.apk = support::sha256(apk_tag);
  key.config = config;
  key.seed = seed;
  return key;
}

ResultCache open_or_die(const std::string& dir,
                        const support::Sha256Digest& config = kTestConfig,
                        CacheConfig cache_config = {}) {
  auto opened = ResultCache::open(dir, config, cache_config);
  EXPECT_TRUE(opened.ok()) << opened.error();
  return std::move(opened).take();
}

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

/// Measurement stats must agree between cached and uncached runs; the
/// cache_hits/cache_misses provenance counters intentionally differ.
void expect_same_counts(const AggregateStats& got,
                        const AggregateStats& want) {
  EXPECT_EQ(got.apps, want.apps);
  EXPECT_EQ(got.not_run, want.not_run);
  EXPECT_EQ(got.rewriting_failure, want.rewriting_failure);
  EXPECT_EQ(got.no_activity, want.no_activity);
  EXPECT_EQ(got.crashed, want.crashed);
  EXPECT_EQ(got.exercised, want.exercised);
  EXPECT_EQ(got.decompile_failed, want.decompile_failed);
  EXPECT_EQ(got.static_dcl, want.static_dcl);
  EXPECT_EQ(got.intercepted, want.intercepted);
  EXPECT_EQ(got.remote_loaders, want.remote_loaders);
  EXPECT_EQ(got.malware_carriers, want.malware_carriers);
  EXPECT_EQ(got.vulnerable, want.vulnerable);
  EXPECT_EQ(got.privacy_leaking, want.privacy_leaking);
  EXPECT_EQ(got.binaries, want.binaries);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.retried, want.retried);
  EXPECT_EQ(got.quarantined, want.quarantined);
}

// ---------------------------------------------------------------------------
// Store semantics: hit/miss, persistence, LRU, invalidation, recovery.
// ---------------------------------------------------------------------------

TEST(ResultCache, HitMissSemanticsAndPersistence) {
  TempCacheDir dir("hitmiss");
  const auto key = key_of("app-one", 42);
  {
    auto cache = open_or_die(dir.path());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, make_outcome("com.example.one", 42));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.package, "com.example.one");
    EXPECT_EQ(hit->seed, 42u);
    EXPECT_TRUE(hit->completed);
    EXPECT_FALSE(hit->replayed);   // a cache hit is not a journal replay
    EXPECT_FALSE(hit->cache_hit);  // provenance is stamped by the runner
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_TRUE(cache.seal().ok());
  }
  // The entry survives a close/reopen cycle.
  auto cache = open_or_die(dir.path());
  EXPECT_EQ(cache.stats().loaded, 1u);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report.package, "com.example.one");
  // A different seed on the same bytes+config is a different identity.
  EXPECT_FALSE(cache.lookup(key_of("app-one", 43)).has_value());
}

TEST(ResultCache, SealCompactionFsyncsTheParentDirectory) {
  // Seal-time compaction swaps the store via an atomic rename; the rename
  // is only crash-durable once the directory itself is fsynced. dir_fsyncs()
  // proves the path actually ran on a dirty seal.
  TempCacheDir dir("dirsync");
  auto cache = open_or_die(dir.path());
  // An overwrite dirties the store: the superseded frame must be compacted
  // away at seal time, which is what triggers the rename + directory sync.
  cache.insert(key_of("app", 1), make_outcome("com.example.v1", 1));
  cache.insert(key_of("app", 1), make_outcome("com.example.v2", 1));
  const std::uint64_t before = support::dir_fsyncs();
  ASSERT_TRUE(cache.seal().ok());
  EXPECT_GT(support::dir_fsyncs(), before);
}

TEST(ResultCache, OverwriteIsLastWriterWins) {
  TempCacheDir dir("overwrite");
  const auto key = key_of("app", 1);
  {
    auto cache = open_or_die(dir.path());
    cache.insert(key, make_outcome("com.example.v1", 1));
    cache.insert(key, make_outcome("com.example.v2", 1));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup(key)->report.package, "com.example.v2");
  }
  // Reopen: the duplicate frames on disk resolve last-writer-wins, and the
  // seal-time compaction has collapsed them to one.
  auto cache = open_or_die(dir.path());
  EXPECT_EQ(cache.stats().loaded, 1u);
  EXPECT_EQ(cache.lookup(key)->report.package, "com.example.v2");
  auto read = support::read_journal(cache.store_path(), kCacheMagic);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records.size(), 1u);
}

TEST(ResultCache, LruEvictionOrderAndRecencyAcrossReopen) {
  TempCacheDir dir("lru");
  CacheConfig bounds;
  bounds.max_entries = 3;
  const auto k1 = key_of("a"), k2 = key_of("b"), k3 = key_of("c"),
             k4 = key_of("d");
  {
    auto cache = open_or_die(dir.path(), kTestConfig, bounds);
    cache.insert(k1, make_outcome("com.a"));
    cache.insert(k2, make_outcome("com.b"));
    cache.insert(k3, make_outcome("com.c"));
    EXPECT_EQ(cache.lru_order(), (std::vector<CacheKey>{k1, k2, k3}));
    // A hit refreshes recency: k1 moves off the chopping block...
    ASSERT_TRUE(cache.lookup(k1).has_value());
    EXPECT_EQ(cache.lru_order(), (std::vector<CacheKey>{k2, k3, k1}));
    // ...so the next insert evicts k2, the least recently used.
    cache.insert(k4, make_outcome("com.d"));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lru_order(), (std::vector<CacheKey>{k3, k1, k4}));
    EXPECT_FALSE(cache.lookup(k2).has_value());
  }
  // Compaction wrote the survivors in LRU order: recency survives reopen.
  auto cache = open_or_die(dir.path(), kTestConfig, bounds);
  EXPECT_EQ(cache.stats().loaded, 3u);
  EXPECT_EQ(cache.lru_order(), (std::vector<CacheKey>{k3, k1, k4}));
}

TEST(ResultCache, ByteBoundEvicts) {
  TempCacheDir dir("bytes");
  const auto probe = encode_outcome(0, make_outcome("com.probe"));
  CacheConfig bounds;
  bounds.max_bytes = probe.size() * 2 + probe.size() / 2;  // fits 2, not 3
  auto cache = open_or_die(dir.path(), kTestConfig, bounds);
  cache.insert(key_of("a"), make_outcome("com.probe"));
  cache.insert(key_of("b"), make_outcome("com.probe"));
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(key_of("c"), make_outcome("com.probe"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.payload_bytes(), bounds.max_bytes);
}

TEST(ResultCache, StaleConfigFingerprintInvalidatesLoudly) {
  TempCacheDir dir("invalidate");
  const auto fp_b = support::sha256("test-config-B");
  {
    auto cache = open_or_die(dir.path());  // fingerprint A
    cache.insert(key_of("a"), make_outcome("com.a"));
    cache.insert(key_of("b"), make_outcome("com.b"));
  }
  {
    // A semantic config change: every entry drops, none served stale.
    testing::internal::CaptureStderr();
    auto cache = open_or_die(dir.path(), fp_b);
    const std::string warning = testing::internal::GetCapturedStderr();
    EXPECT_NE(warning.find("invalidated 2 entries"), std::string::npos);
    EXPECT_NE(warning.find(fp_b.hex()), std::string::npos);
    EXPECT_EQ(cache.stats().invalidated, 2u);
    EXPECT_EQ(cache.stats().loaded, 0u);
    EXPECT_FALSE(
        cache.lookup(key_of("a", 0, fp_b)).has_value());
    cache.insert(key_of("c", 0, fp_b), make_outcome("com.c"));
  }
  // The stale frames were compacted away; the new-config entry remains.
  auto cache = open_or_die(dir.path(), fp_b);
  EXPECT_EQ(cache.stats().loaded, 1u);
  EXPECT_EQ(cache.stats().invalidated, 0u);
  ASSERT_TRUE(cache.lookup(key_of("c", 0, fp_b)).has_value());
}

TEST(ResultCache, TornTailIsRecoveredNotFatal) {
  TempCacheDir dir("torn");
  std::string store;
  {
    auto cache = open_or_die(dir.path());
    cache.insert(key_of("a"), make_outcome("com.a"));
    cache.insert(key_of("b"), make_outcome("com.b"));
    store = cache.store_path();
  }
  {  // Tear the tail: half a fake frame of garbage after the real records.
    std::ofstream out(store, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00torn-frame";
    out.write(garbage, sizeof(garbage) - 1);
  }
  testing::internal::CaptureStderr();
  auto cache = open_or_die(dir.path());
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("torn tail"), std::string::npos);
  EXPECT_TRUE(cache.stats().torn_tail);
  EXPECT_EQ(cache.stats().loaded, 2u);  // intact prefix fully recovered
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
  EXPECT_TRUE(cache.lookup(key_of("b")).has_value());
}

TEST(ResultCache, CorruptedMidFileRecordDropsTheSuffixNotTheRun) {
  TempCacheDir dir("corrupt");
  std::string store;
  std::uintmax_t after_first = 0;
  {
    auto cache = open_or_die(dir.path());
    cache.insert(key_of("a"), make_outcome("com.a"));
    (void)cache.seal();
    after_first = std::filesystem::file_size(cache.store_path());
    store = cache.store_path();
  }
  {
    auto cache = open_or_die(dir.path());
    cache.insert(key_of("b"), make_outcome("com.b"));
    cache.insert(key_of("c"), make_outcome("com.c"));
  }
  {  // Flip one byte inside the second record's frame.
    std::fstream f(store, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(after_first) + 8);
    const char flip = '\xff';
    f.write(&flip, 1);
  }
  // Journal-style recovery stops at the first damaged frame: record "a"
  // survives, "b"/"c" recompute. Never a crash, never a failed open.
  auto cache = open_or_die(dir.path());
  EXPECT_TRUE(cache.stats().torn_tail);
  EXPECT_EQ(cache.stats().loaded, 1u);
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
  EXPECT_FALSE(cache.lookup(key_of("b")).has_value());
  EXPECT_FALSE(cache.lookup(key_of("c")).has_value());
}

TEST(ResultCache, ForeignFileMagicFailsLoudly) {
  TempCacheDir dir("magic");
  std::filesystem::create_directories(dir.path());
  const std::string store =
      (std::filesystem::path(dir.path()) / kCacheFileName).string();
  {  // An outcome *journal* squatting on the store path: not our format.
    auto writer = support::JournalWriter::open(store);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().append(support::to_bytes("not-a-cache")).ok());
  }
  auto opened = ResultCache::open(dir.path(), kTestConfig);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.error().find("magic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Identity: SHA-256, never FNV-1a. Two inputs crafted to collide under
// fnv1a64 (see tests/support_test.cpp for the pair's provenance) must land
// in distinct cache entries — the weak-fingerprint regression of ISSUE 7.
// ---------------------------------------------------------------------------

TEST(ResultCache, CraftedFnvCollisionLandsInDistinctEntries) {
  const std::string apk_a = std::string("adhkfmajpgmp") + '\x61';
  const std::string apk_b = std::string("dknbajjdhieb") + '\x17';
  ASSERT_EQ(support::fnv1a64(apk_a), support::fnv1a64(apk_b));
  ASSERT_NE(apk_a, apk_b);

  TempCacheDir dir("collision");
  auto cache = open_or_die(dir.path());
  CacheKey key_a = key_of(apk_a, 9);
  CacheKey key_b = key_of(apk_b, 9);
  EXPECT_NE(key_a, key_b);  // sha256 keeps the identities apart
  cache.insert(key_a, make_outcome("com.example.first", 9));
  cache.insert(key_b, make_outcome("com.example.second", 9));
  EXPECT_EQ(cache.size(), 2u);
  // Neither entry shadows the other: each set of bytes replays its own
  // result, not its FNV twin's.
  EXPECT_EQ(cache.lookup(key_a)->report.package, "com.example.first");
  EXPECT_EQ(cache.lookup(key_b)->report.package, "com.example.second");
}

// ---------------------------------------------------------------------------
// Golden equivalence: cached and uncached corpus runs are byte-identical —
// at 1/2/8 workers, cold and warm, with fault injection off and on.
// ---------------------------------------------------------------------------

TEST(CacheEquivalence, CachedRunsMatchUncachedAtAnyWorkerCount) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  ASSERT_GT(n, 10u);

  for (const bool faults_on : {false, true}) {
    auto plan = support::FaultPlan::parse("device.boot=p:0.3");
    ASSERT_TRUE(plan.ok());
    core::PipelineOptions options;
    if (faults_on) options.faults = &plan.value();
    const core::DyDroid pipeline(std::move(options));

    RunnerConfig golden_config;
    golden_config.jobs = 1;
    const auto golden = CorpusRunner(pipeline, golden_config).run(corpus);
    const auto golden_json = report_jsons(golden);

    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      TempCacheDir dir("equiv_f" + std::to_string(faults_on) + "_w" +
                       std::to_string(workers));
      RunnerConfig config;
      config.jobs = workers;
      config.cache_dir = dir.path();

      // Cold: every app analyzed and inserted.
      const auto cold = CorpusRunner(pipeline, config).run(corpus);
      EXPECT_EQ(cold.stats.cache_hits, 0u);
      EXPECT_EQ(cold.stats.cache_misses, n);
      const auto cold_json = report_jsons(cold);
      ASSERT_EQ(cold_json.size(), golden_json.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(cold_json[i], golden_json[i])
            << "cold faults=" << faults_on << " workers=" << workers
            << " app=" << i;
      }
      expect_same_counts(cold.stats, golden.stats);

      // Warm: every app served from the store, still byte-identical.
      const auto warm = CorpusRunner(pipeline, config).run(corpus);
      EXPECT_EQ(warm.stats.cache_hits, n);
      EXPECT_EQ(warm.stats.cache_misses, 0u);
      const auto warm_json = report_jsons(warm);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(warm_json[i], golden_json[i])
            << "warm faults=" << faults_on << " workers=" << workers
            << " app=" << i;
      }
      expect_same_counts(warm.stats, golden.stats);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(warm.outcomes[i].cache_hit);
        EXPECT_EQ(warm.outcomes[i].seed, seed_for_app(kDefaultSeedBase, i));
      }
    }
  }
}

TEST(CacheEquivalence, CacheFaultInjectionDegradesWithoutChangingReports) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();

  const core::DyDroid golden_pipeline{core::PipelineOptions{}};
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden = CorpusRunner(golden_pipeline, golden_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  // Half of all cache reads and writes fail. The cache is advisory: the
  // run must produce byte-identical reports, just with fewer hits.
  auto plan = support::FaultPlan::parse("cache.read=p:0.5,cache.write=p:0.5");
  ASSERT_TRUE(plan.ok());
  core::PipelineOptions options;
  options.faults = &plan.value();
  const core::DyDroid pipeline(std::move(options));

  TempCacheDir dir("cachefaults");
  RunnerConfig config;
  config.jobs = 2;
  config.cache_dir = dir.path();
  const auto cold = CorpusRunner(pipeline, config).run(corpus);
  const auto warm = CorpusRunner(pipeline, config).run(corpus);
  for (const auto* run : {&cold, &warm}) {
    const auto json = report_jsons(*run);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(json[i], golden_json[i]) << "app " << i;
    }
    EXPECT_EQ(run->stats.cache_hits + run->stats.cache_misses, n);
  }
  // The injected write failures dropped entries, so the warm run cannot be
  // all hits — and read faults surface as misses, never as errors.
  EXPECT_GT(warm.stats.cache_hits, 0u);
  EXPECT_GT(warm.stats.cache_misses, 0u);
  EXPECT_GT(cold.cache_write_failures, 0u);
}

// ---------------------------------------------------------------------------
// Corpus-wide binary dedup (the paper's apps-vs-unique-binaries table).
// ---------------------------------------------------------------------------

TEST(CacheEquivalence, DedupStatsAndBlobStoreAreConsistent) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus(0.003);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  TempCacheDir dir("dedup");
  RunnerConfig config;
  config.jobs = 2;
  config.cache_dir = dir.path();
  const auto cold = CorpusRunner(pipeline, config).run(corpus);

  const auto& dedup = cold.dedup;
  ASSERT_GT(dedup.total, 0u) << "corpus intercepted no binaries";
  EXPECT_EQ(dedup.total, cold.stats.binaries);
  EXPECT_LE(dedup.unique, dedup.total);
  EXPECT_EQ(dedup.unique_dex + dedup.unique_native, dedup.unique);
  EXPECT_GE(dedup.max_reuse, 1u);
  EXPECT_LE(dedup.unique_bytes, dedup.total_bytes);
  EXPECT_EQ(dedup.duplicate_bytes(), dedup.total_bytes - dedup.unique_bytes);

  // Unique payloads persisted content-addressed, one blob per digest.
  EXPECT_EQ(dedup.blobs_written, dedup.unique);
  std::size_t blob_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(dir.path()) / "blobs")) {
    ++blob_files;
    EXPECT_EQ(entry.path().extension(), ".bin");
    // Content-addressed: the file's digest is its name.
    std::ifstream in(entry.path(), std::ios::binary);
    const support::Bytes bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    EXPECT_EQ(support::sha256(bytes).hex() + ".bin",
              entry.path().filename().string());
  }
  EXPECT_EQ(blob_files, dedup.unique);

  // A warm re-run finds every blob already stored and rewrites none, and
  // an uncached run computes the same table without persisting anything.
  const auto warm = CorpusRunner(pipeline, config).run(corpus);
  EXPECT_EQ(warm.dedup.unique, dedup.unique);
  EXPECT_EQ(warm.dedup.blobs_written, 0u);
  RunnerConfig plain;
  plain.jobs = 2;
  const auto uncached = CorpusRunner(pipeline, plain).run(corpus);
  EXPECT_EQ(uncached.dedup.unique, dedup.unique);
  EXPECT_EQ(uncached.dedup.total, dedup.total);
  EXPECT_EQ(uncached.dedup.blobs_written, 0u);
}

// ---------------------------------------------------------------------------
// Interplay with the write-ahead journal (docs/CHECKPOINT.md): a journaled
// run killed mid-corpus resumes against a warm cache to a result
// byte-identical to an uninterrupted uncached run, and the provenance
// accounting (hits + misses + replayed == apps) holds throughout.
// ---------------------------------------------------------------------------

TEST(CacheEquivalence, KilledJournaledRunResumesWarmFromCache) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  const std::size_t k = (2 * n) / 3;  // kill on the k-th journal append
  ASSERT_GT(k, n - k) << "resume would re-trigger the nth-append kill";

  // One pipeline for every phase, so the config fingerprint matches: the
  // per-app fault (with retries) shapes the reports; driver.kill only ever
  // fires where a journal is armed.
  auto plan = support::FaultPlan::parse("device.boot=p:0.3,driver.kill=nth:" +
                                        std::to_string(k));
  ASSERT_TRUE(plan.ok());
  core::PipelineOptions options;
  options.faults = &plan.value();
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  // Golden: uncached, unjournaled (driver.kill has no append to fire on).
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, golden_config).run(corpus);
  const auto golden_json = report_jsons(golden);
  ASSERT_GT(golden.stats.retried, 0u)
      << "fault plan produced no retries; the interplay test is vacuous";

  // Phase 1 — populate the cache (no journal: nothing for the kill to hit).
  TempCacheDir cache_dir("interplay");
  RunnerConfig populate_config;
  populate_config.jobs = 2;
  populate_config.cache_dir = cache_dir.path();
  const auto populated = CorpusRunner(pipeline, populate_config).run(corpus);
  EXPECT_EQ(populated.stats.cache_hits, 0u);
  EXPECT_EQ(populated.stats.cache_misses, n);  // hits + misses == apps

  // Phase 2 — journaled + cached run, killed on the k-th append.
  TempJournal journal("interplay");
  RunnerConfig killed_config = populate_config;
  killed_config.journal_path = journal.path();
  std::size_t journaled = 0;
  try {
    (void)CorpusRunner(pipeline, killed_config).run(corpus);
    FAIL() << "expected RunAborted";
  } catch (const RunAborted& aborted) {
    journaled = aborted.journaled();
  }
  EXPECT_EQ(journaled, k);

  // Phase 3 — resume: k outcomes replay from the journal, the rest come
  // warm from the cache. Byte-identical to the uninterrupted golden run.
  RunnerConfig resume_config = killed_config;
  resume_config.resume = true;
  const auto resumed = CorpusRunner(pipeline, resume_config).run(corpus);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.replayed, k);
  EXPECT_EQ(resumed.analyzed, n - k);
  EXPECT_EQ(resumed.stats.cache_hits, n - k);  // all warm
  EXPECT_EQ(resumed.stats.cache_misses, 0u);
  EXPECT_EQ(
      resumed.stats.cache_hits + resumed.stats.cache_misses + resumed.replayed,
      n);
  const auto resumed_json = report_jsons(resumed);
  ASSERT_EQ(resumed_json.size(), golden_json.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(resumed_json[i], golden_json[i]) << "app " << i;
  }
  expect_same_counts(resumed.stats, golden.stats);
  // Journal-replayed outcomes never consult the cache; their provenance
  // flags say so.
  for (std::size_t i = 0; i < n; ++i) {
    if (resumed.outcomes[i].replayed) {
      EXPECT_FALSE(resumed.outcomes[i].cache_checked);
    } else {
      EXPECT_TRUE(resumed.outcomes[i].cache_checked);
      EXPECT_TRUE(resumed.outcomes[i].cache_hit);
    }
  }
}

}  // namespace
}  // namespace dydroid::driver
