// Interpreter property tests: randomized arithmetic programs must agree
// with host-evaluated semantics; taint labels obey algebraic laws; the
// step/depth budgets always terminate runaway programs.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "os/device.hpp"
#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {
namespace {

struct Env {
  os::Device device;
  std::unique_ptr<Vm> vm;
};

Env boot(dex::DexFile dexfile, VmLimits limits = {}) {
  Env env;
  manifest::Manifest man;
  man.package = "com.prop.vm";
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(std::move(dexfile));
  apk.sign("k");
  EXPECT_TRUE(env.device.install(apk).ok());
  AppContext app;
  app.manifest = man;
  env.vm = std::make_unique<Vm>(env.device, std::move(app), limits);
  EXPECT_TRUE(env.vm->load_app(apk).ok());
  return env;
}

/// One random straight-line arithmetic program, evaluated both by the
/// interpreter and by a host-side shadow evaluator.
class RandomArithProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomArithProgram, InterpreterMatchesShadowEvaluation) {
  support::Rng rng(GetParam() * 2654435761u + 17);
  constexpr int kRegs = 6;
  std::int64_t shadow[kRegs];

  dex::DexBuilder b;
  auto m = b.cls("com.prop.vm.P").static_method("f", 0);
  for (int r = 0; r < kRegs; ++r) {
    const auto v = rng.range(-1000, 1000);
    shadow[r] = v;
    m.const_int(static_cast<std::uint16_t>(r), v);
  }
  const int steps = 10 + static_cast<int>(rng.below(30));
  for (int i = 0; i < steps; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(kRegs));
    const auto x = static_cast<std::uint16_t>(rng.below(kRegs));
    const auto y = static_cast<std::uint16_t>(rng.below(kRegs));
    switch (rng.below(5)) {
      case 0:
        m.add(a, x, y);
        shadow[a] = shadow[x] + shadow[y];
        break;
      case 1:
        m.sub(a, x, y);
        shadow[a] = shadow[x] - shadow[y];
        break;
      case 2:
        // Keep magnitudes bounded: multiply by a small constant instead of
        // another register.
        m.const_int(5, 3);
        m.mul(a, x, 5);
        shadow[5] = 3;
        shadow[a] = shadow[x] * 3;
        break;
      case 3:
        m.cmp_lt(a, x, y);
        shadow[a] = shadow[x] < shadow[y] ? 1 : 0;
        break;
      default:
        m.cmp_eq(a, x, y);
        shadow[a] = shadow[x] == shadow[y] ? 1 : 0;
        break;
    }
  }
  const auto out = static_cast<std::uint16_t>(rng.below(kRegs));
  m.ret(out);
  m.done();

  auto env = boot(b.build());
  EXPECT_EQ(env.vm->call_static("com.prop.vm.P", "f").as_int(), shadow[out]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArithProgram,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(ValueTaint, AlgebraicLaws) {
  Value v(5);
  EXPECT_EQ(v.taint(), 0u);
  v.add_taint(0b101);
  v.add_taint(0b011);
  EXPECT_EQ(v.taint(), 0b111u);  // union
  v.add_taint(0b101);
  EXPECT_EQ(v.taint(), 0b111u);  // idempotent
  Value copy = v;
  EXPECT_EQ(copy.taint(), 0b111u);  // copies carry labels
  copy.set_taint(0);
  EXPECT_EQ(v.taint(), 0b111u);  // clearing a copy leaves the original
}

TEST(Budgets, TightStepBudgetTerminatesLongLoops) {
  dex::DexBuilder b;
  auto m = b.cls("com.prop.vm.P").static_method("f", 1);
  m.label("top");
  m.if_eqz(0, "end");
  m.const_int(1, 1);
  m.sub(0, 0, 1);
  m.jump("top");
  m.label("end");
  m.return_void();
  m.done();
  VmLimits limits;
  limits.max_steps_per_entry = 100;  // loop of 1000 cannot finish
  auto env = boot(b.build(), limits);
  EXPECT_THROW(
      (void)env.vm->call_static("com.prop.vm.P", "f", {Value(1000)}),
      VmException);
  // A fresh entry gets a fresh budget: a short run still succeeds.
  EXPECT_NO_THROW(
      (void)env.vm->call_static("com.prop.vm.P", "f", {Value(3)}));
}

TEST(Budgets, DepthBudgetIndependentOfStepBudget) {
  dex::DexBuilder b;
  b.cls("com.prop.vm.P")
      .static_method("rec", 1)
      .invoke_static("com.prop.vm.P", "rec", {0})
      .done();
  VmLimits limits;
  limits.max_call_depth = 10;
  auto env = boot(b.build(), limits);
  try {
    (void)env.vm->call_static("com.prop.vm.P", "rec", {Value(0)});
    FAIL();
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("StackOverflow"), std::string::npos);
    // The trace depth reflects the configured limit.
    EXPECT_LE(e.trace().size(), 11u);
  }
}

TEST(ValueSemantics, DisplayAndEquality) {
  EXPECT_EQ(Value().display(), "null");
  EXPECT_EQ(Value(42).display(), "42");
  EXPECT_EQ(Value("s").display(), "s");
  EXPECT_TRUE(Value().equals(Value()));
  EXPECT_TRUE(Value(1).equals(Value(1)));
  EXPECT_FALSE(Value(1).equals(Value("1")));
  EXPECT_FALSE(Value(1).equals(Value()));
}

TEST(ValueSemantics, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_TRUE(Value(-1).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_TRUE(Value("x").truthy());
}

}  // namespace
}  // namespace dydroid::vm
