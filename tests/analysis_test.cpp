// Analysis-substrate tests: decompiler (apktool/baksmali analogue),
// rewriter (permission injection + anti-repackaging), CFG construction.
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/decompiler.hpp"
#include "analysis/rewriter.hpp"
#include "dex/builder.hpp"
#include "obfuscation/poison.hpp"

namespace dydroid::analysis {
namespace {

apk::ApkFile sample_apk() {
  manifest::Manifest m;
  m.package = "com.sample.app";
  m.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.sample.app.Main", true});
  dex::DexBuilder b;
  b.cls("com.sample.app.Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();
  apk::ApkFile apk;
  apk.write_manifest(m);
  apk.write_classes_dex(b.build());
  apk.put("assets/data.bin", support::to_bytes("x"));
  apk.sign("dev");
  return apk;
}

TEST(Decompiler, ProducesIr) {
  const auto result = decompile(sample_apk().serialize());
  ASSERT_TRUE(result.ok()) << result.error();
  const auto& ir = result.value();
  EXPECT_EQ(ir.manifest.package, "com.sample.app");
  ASSERT_TRUE(ir.classes_dex.has_value());
  EXPECT_NE(ir.smali.find(".class com.sample.app.Main"), std::string::npos);
  EXPECT_EQ(ir.entries.size(), 3u);
}

TEST(Decompiler, FailsOnPoisonedDex) {
  auto apk = sample_apk();
  auto dexfile = *apk.read_classes_dex();
  obfuscation::poison_anti_decompilation(dexfile);
  apk.write_classes_dex(dexfile);
  const auto result = decompile(apk.serialize());
  EXPECT_FALSE(result.ok());
}

TEST(Decompiler, FailsOnGarbage) {
  EXPECT_FALSE(decompile(support::to_bytes("not an apk")).ok());
}

TEST(Decompiler, ToleratesMissingDex) {
  apk::ApkFile apk;
  manifest::Manifest m;
  m.package = "a.b";
  apk.write_manifest(m);
  const auto result = decompile(apk.serialize());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().classes_dex.has_value());
  EXPECT_TRUE(result.value().smali.empty());
}

TEST(Decompiler, LocalBytecodeStoreDetection) {
  const auto with_assets = decompile(sample_apk().serialize());
  EXPECT_TRUE(has_local_bytecode_store(with_assets.value()));

  apk::ApkFile bare;
  manifest::Manifest m;
  m.package = "a.b";
  bare.write_manifest(m);
  dex::DexBuilder b;
  b.cls("a.b.Main").method("onCreate", 1).return_void().done();
  bare.write_classes_dex(b.build());
  const auto without = decompile(bare.serialize());
  EXPECT_FALSE(has_local_bytecode_store(without.value()));
}

TEST(Rewriter, InjectsPermissionAndResigns) {
  const auto rewritten = rewrite_with_permission(
      sample_apk().serialize(), manifest::kWriteExternalStorage);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error();
  const auto apk = apk::ApkFile::deserialize(rewritten.value());
  EXPECT_TRUE(
      apk.read_manifest().has_permission(manifest::kWriteExternalStorage));
  EXPECT_EQ(apk.signer(), kResignKey);
  EXPECT_TRUE(apk.verify_signature());
}

TEST(Rewriter, CrashesOnAntiRepackagingTrap) {
  auto apk = sample_apk();
  obfuscation::plant_anti_repackaging_trap(apk);
  apk.sign("dev");
  const auto rewritten = rewrite_with_permission(
      apk.serialize(), manifest::kWriteExternalStorage);
  EXPECT_FALSE(rewritten.ok());
  EXPECT_NE(rewritten.error().find("CRC"), std::string::npos);
}

TEST(Rewriter, TrappedApkStillInstallsOnDevice) {
  // The same bytes that crash the rewriter install fine (lenient device).
  auto apk = sample_apk();
  obfuscation::plant_anti_repackaging_trap(apk);
  apk.sign("dev");
  EXPECT_NO_THROW((void)apk::ApkFile::deserialize(apk.serialize(),
                                                  apk::ParseMode::kLenient));
}

// ---------------------------------------------------------------------------
// CFG.
// ---------------------------------------------------------------------------

dex::Method method_of(dex::DexFile& dexfile, const char* name = "f") {
  return *dexfile.classes().at(0).find_method(name);
}

TEST(Cfg, StraightLineIsOneBlock) {
  dex::DexBuilder b;
  b.cls("a.B").static_method("f", 0)
      .const_int(0, 1)
      .const_int(1, 2)
      .add(2, 0, 1)
      .ret(2)
      .done();
  auto dexfile = b.build();
  const auto cfg = build_cfg(method_of(dexfile));
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].successors.empty());
}

TEST(Cfg, BranchSplitsBlocks) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 1);
  m.if_eqz(0, "else");
  m.const_int(1, 1);
  m.ret(1);
  m.label("else");
  m.const_int(1, 2);
  m.ret(1);
  m.done();
  auto dexfile = b.build();
  const auto cfg = build_cfg(method_of(dexfile));
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].successors.size(), 2u);
  EXPECT_TRUE(cfg.blocks[1].successors.empty());
  EXPECT_TRUE(cfg.blocks[2].successors.empty());
}

TEST(Cfg, LoopHasBackEdge) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 1);
  m.label("top");
  m.if_eqz(0, "end");
  m.const_int(1, 1);
  m.sub(0, 0, 1);
  m.jump("top");
  m.label("end");
  m.return_void();
  m.done();
  auto dexfile = b.build();
  const auto cfg = build_cfg(method_of(dexfile));
  ASSERT_EQ(cfg.blocks.size(), 3u);
  // Body block loops back to the header.
  const auto& body = cfg.blocks[1];
  ASSERT_EQ(body.successors.size(), 1u);
  EXPECT_EQ(body.successors[0], 0u);
}

TEST(Cfg, EmptyMethodHasNoBlocks) {
  dex::Method m;
  EXPECT_TRUE(build_cfg(m).blocks.empty());
}

TEST(Cfg, BlockOfLocatesInstruction) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 1);
  m.if_eqz(0, "else");
  m.const_int(1, 1);
  m.ret(1);
  m.label("else");
  m.return_void();
  m.done();
  auto dexfile = b.build();
  const auto cfg = build_cfg(method_of(dexfile));
  EXPECT_EQ(cfg.block_of(0), 0u);
  EXPECT_EQ(cfg.block_of(1), 1u);
  EXPECT_EQ(cfg.block_of(3), 2u);
}

TEST(Cfg, BothBranchArmsToSameTargetDeduplicated) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 1);
  m.if_eqz(0, "next");
  m.label("next");
  m.return_void();
  m.done();
  auto dexfile = b.build();
  const auto cfg = build_cfg(method_of(dexfile));
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.blocks[0].successors.size(), 1u);
}

}  // namespace
}  // namespace dydroid::analysis
