// CLI argument hardening (ISSUE: malformed numeric flags used to escape as
// uncaught std::invalid_argument / std::out_of_range from bare std::stoull
// and std::stod, killing the process with exit 1 and a raw what() string).
// These tests drive the real dydroid binary: every malformed flag must
// print a usage error mentioning the flag and exit 2; valid invocations —
// including the new --trace/--metrics observability flags and a deliberately
// bogus DYDROID_JOBS — must still succeed.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define DYDROID_HAVE_SUBPROCESS 1
#endif

namespace {

#if defined(DYDROID_HAVE_SUBPROCESS)

struct RunResult {
  int exit_code = -1;
  int term_signal = 0;  // non-zero when the pipeline died to a signal
  std::string output;   // stdout + stderr, interleaved

  /// The run was ended by `sig` — either reported directly (the shell
  /// exec'd the binary) or via the shell's 128+N convention.
  bool died_to(int sig) const {
    return term_signal == sig || exit_code == 128 + sig;
  }
};

/// Run `dydroid <args>` (path from the DYDROID_CLI env var, wired up by
/// CMake) through the shell with stderr folded into stdout.
RunResult run_cli(const std::string& args, const std::string& env = "") {
  const char* cli = std::getenv("DYDROID_CLI");
  if (cli == nullptr || cli[0] == '\0') return {};
  const std::string command = env + (env.empty() ? "" : " ") +
                              std::string(cli) + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) result.term_signal = WTERMSIG(status);
  return result;
}

bool cli_available() {
  const char* cli = std::getenv("DYDROID_CLI");
  return cli != nullptr && cli[0] != '\0' && ::access(cli, X_OK) == 0;
}

#define REQUIRE_CLI()                                             \
  if (!cli_available()) {                                         \
    GTEST_SKIP() << "DYDROID_CLI not set (or not executable); "   \
                    "run via ctest";                              \
  }

TEST(CliArgs, SurveyRejectsNonNumericSeed) {
  REQUIRE_CLI();
  const auto result = run_cli("survey --seed abc");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --seed"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("abc"), std::string::npos) << result.output;
}

TEST(CliArgs, SurveyRejectsTrailingGarbageInJobs) {
  REQUIRE_CLI();
  const auto result = run_cli("survey --jobs 4x");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --jobs"), std::string::npos)
      << result.output;
}

TEST(CliArgs, SurveyRejectsNegativeJobs) {
  REQUIRE_CLI();
  // strtoull would silently wrap "-1" to 2^64-1; the checked parser
  // rejects the sign outright.
  const auto result = run_cli("survey --jobs -1");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --jobs"), std::string::npos)
      << result.output;
}

TEST(CliArgs, SurveyRejectsOverflowingScale) {
  REQUIRE_CLI();
  const auto result = run_cli("survey --scale 1e999");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --scale"), std::string::npos)
      << result.output;
}

TEST(CliArgs, SurveyRejectsOverflowingSeed) {
  REQUIRE_CLI();
  const auto result = run_cli("survey --seed 99999999999999999999");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --seed"), std::string::npos)
      << result.output;
}

TEST(CliArgs, GenRejectsBadSeed) {
  REQUIRE_CLI();
  const auto result =
      run_cli("gen " + testing::TempDir() + "/cli_args_gen.sapk --seed 1.5");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --seed"), std::string::npos)
      << result.output;
}

TEST(CliArgs, AnalyzeRejectsBadSeed) {
  REQUIRE_CLI();
  // Flag validation must fire even though the input file exists.
  const std::string apk = testing::TempDir() + "/cli_args_analyze.sapk";
  {
    std::ofstream out(apk, std::ios::binary);
    out << "placeholder";
  }
  const auto result = run_cli("analyze " + apk + " --seed seed");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --seed"), std::string::npos)
      << result.output;
  std::remove(apk.c_str());
}

TEST(CliArgs, FaultcheckRejectsMalformedJobsList) {
  REQUIRE_CLI();
  const auto result = run_cli("faultcheck --jobs 1,2x,8");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --jobs"), std::string::npos)
      << result.output;
}

TEST(CliArgs, FaultcheckRejectsEmptyJobsList) {
  REQUIRE_CLI();
  const auto result = run_cli("faultcheck --jobs ,");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(CliArgs, BogusDydroidJobsEnvWarnsAndStillRuns) {
  REQUIRE_CLI();
  const auto result =
      run_cli("survey --scale 0.002 --seed 7", "DYDROID_JOBS=nope");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("DYDROID_JOBS"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("surveyed"), std::string::npos)
      << result.output;
}

TEST(CliArgs, BogusDydroidScaleEnvWarnsAndStillRuns) {
  REQUIRE_CLI();
  // DYDROID_SCALE only steers the bench harness's scale_from_env, which the
  // survey command does not consult — but the CLI must not be affected by
  // it either way. Exercise the env-hook parser through a tiny survey.
  const auto result =
      run_cli("survey --scale 0.002 --seed 7 --jobs 1", "DYDROID_SCALE=huge");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(CliArgs, SurveyTraceAndMetricsProduceOutputs) {
  REQUIRE_CLI();
  const std::string trace_path =
      testing::TempDir() + "/cli_args_trace_" + std::to_string(::getpid()) +
      ".json";
  std::remove(trace_path.c_str());
  const auto result = run_cli("survey --scale 0.002 --seed 7 --jobs 2 " +
                              std::string("--trace ") + trace_path +
                              " --metrics --top 3");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  // --metrics: the latency table, counters and the slowest-app list.
  EXPECT_NE(result.output.find("latency (ms)"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("stage."), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("runner.apps"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("slowest apps"), std::string::npos)
      << result.output;
  // --trace: a Chrome trace_event file with stage-category spans.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << trace_path;
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runner\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(CliArgs, MetricsRejectsBadTopCount) {
  REQUIRE_CLI();
  const auto result =
      run_cli("survey --scale 0.002 --seed 7 --jobs 1 --metrics --top ten");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad --top"), std::string::npos)
      << result.output;
}

// --- corpus sharding flags (docs/SHARDING.md) ------------------------------

TEST(CliShard, RejectsMalformedShardSpecs) {
  REQUIRE_CLI();
  for (const char* spec : {"abc", "3/2", "2/2", "1/0", "2", "1/",
                           "/4", "-1/4", "1/4x"}) {
    const auto result =
        run_cli(std::string("survey --shard ") + spec);
    EXPECT_EQ(result.exit_code, 2) << spec << ": " << result.output;
    EXPECT_NE(result.output.find("bad --shard"), std::string::npos)
        << spec << ": " << result.output;
  }
}

TEST(CliShard, MergeNeedsAnOutputAndInputs) {
  REQUIRE_CLI();
  const auto result = run_cli("merge");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("merge: need"), std::string::npos)
      << result.output;
}

TEST(CliShard, MergeFailsLoudlyOnAMissingJournal) {
  REQUIRE_CLI();
  const std::string missing =
      testing::TempDir() + "/cli_shard_missing_" +
      std::to_string(::getpid()) + ".jrnl";
  const auto result =
      run_cli("merge " + missing + ".out " + missing);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("merge:"), std::string::npos)
      << result.output;
}

/// Lines that legitimately differ between a live run and a replay (timing
/// and journal bookkeeping).
bool is_timing_line(const std::string& line) {
  return line.find("ms on") != std::string::npos ||
         line.find("journal:") != std::string::npos ||
         line.find("shard ") != std::string::npos;
}

std::string stable_output(const std::string& output) {
  std::string stable;
  std::size_t start = 0;
  while (start < output.size()) {
    std::size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    const std::string line = output.substr(start, end - start);
    if (!is_timing_line(line)) stable += line + "\n";
    start = end + 1;
  }
  return stable;
}

TEST(CliShard, ShardedSurveysMergeAndReplayToTheUnshardedSummary) {
  REQUIRE_CLI();
  const std::string dir = testing::TempDir();
  const std::string tag = std::to_string(::getpid());
  const std::string base = "survey --scale 0.002 --seed 7 --jobs 2";

  const auto golden = run_cli(base);
  ASSERT_EQ(golden.exit_code, 0) << golden.output;
  ASSERT_NE(golden.output.find("surveyed"), std::string::npos)
      << golden.output;

  std::string merge_args;
  std::string shard0_output;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string journal =
        dir + "/cli_shard_" + tag + "_s" + std::to_string(shard) + ".jrnl";
    std::remove(journal.c_str());
    const auto run = run_cli(base + " --shard " + std::to_string(shard) +
                             "/2 --journal " + journal);
    ASSERT_EQ(run.exit_code, 0) << run.output;
    EXPECT_NE(run.output.find("shard " + std::to_string(shard) + "/2"),
              std::string::npos)
        << run.output;
    merge_args += " " + journal;
    if (shard == 0) shard0_output = run.output;
  }
  // Two half-corpus runs each cover strictly fewer apps than the golden.
  EXPECT_NE(stable_output(shard0_output), stable_output(golden.output));

  const std::string merged = dir + "/cli_shard_" + tag + "_merged.jrnl";
  std::remove(merged.c_str());
  const auto merge = run_cli("merge " + merged + merge_args);
  ASSERT_EQ(merge.exit_code, 0) << merge.output;
  EXPECT_NE(merge.output.find("merged 2 shard journal(s)"),
            std::string::npos)
      << merge.output;

  const auto replay = run_cli(base + " --resume " + merged);
  ASSERT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_EQ(stable_output(replay.output), stable_output(golden.output));

  for (int shard = 0; shard < 2; ++shard) {
    std::remove((dir + "/cli_shard_" + tag + "_s" + std::to_string(shard) +
                 ".jrnl")
                    .c_str());
  }
  std::remove(merged.c_str());
}

// --- signal-disposition regression (the leaked-handler bug) ----------------

TEST(CliSignals, StopHandlerIsRestoredBeforeReportPrinting) {
  REQUIRE_CLI();
  // A journaled run installs the graceful-stop SIGINT handler for the
  // duration of the run. DYDROID_TEST_RAISE_STOP simulates Ctrl-C at the
  // start of the report phase: with the disposition restored the process
  // must die to SIGINT before printing its summary. Under the old leaked
  // handler the raise only flipped the (no longer read) stop flag and the
  // full report printed with exit 0.
  const std::string journal =
      testing::TempDir() + "/cli_signal_" + std::to_string(::getpid()) +
      ".jrnl";
  std::remove(journal.c_str());
  const auto result =
      run_cli("survey --scale 0.002 --seed 7 --jobs 1 --journal " + journal,
              "DYDROID_TEST_RAISE_STOP=1");
  EXPECT_TRUE(result.died_to(SIGINT))
      << "exit=" << result.exit_code << " signal=" << result.term_signal
      << "\n" << result.output;
  EXPECT_EQ(result.output.find("surveyed"), std::string::npos)
      << result.output;
  std::remove(journal.c_str());
}

TEST(CliSignals, UnjournaledRunsKeepTheDefaultDisposition) {
  REQUIRE_CLI();
  // Without a journal no handler is ever installed; the test hook's raise
  // must kill the process the ordinary way.
  const auto result = run_cli("survey --scale 0.002 --seed 7 --jobs 1",
                              "DYDROID_TEST_RAISE_STOP=1");
  EXPECT_TRUE(result.died_to(SIGINT))
      << "exit=" << result.exit_code << " signal=" << result.term_signal;
}

#else  // !DYDROID_HAVE_SUBPROCESS

TEST(CliArgs, SkippedWithoutSubprocessSupport) {
  GTEST_SKIP() << "no fork/popen on this platform";
}

#endif

}  // namespace
