// Process-isolation sandbox suite (docs/ISOLATION.md): Subprocess
// supervision facts (pipe shipment, exit codes, signal deaths, deadline
// kills, OOM-limit exits), the sandbox result-pipe protocol, and the
// CorpusRunner integration — isolate-mode runs must reproduce thread-mode
// reports byte-for-byte at any worker count (faults on and off), while
// signal/OOM/deadline deaths classify into quarantined crash outcomes
// that journal, replay and interact with the result cache correctly.
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "driver/sandbox.hpp"
#include "support/fault.hpp"
#include "support/io.hpp"
#include "support/subprocess.hpp"

namespace dydroid::driver {
namespace {

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;  // every table row floored at 1 → a few dozen apps
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

/// Jobs that replicate one generated app N times; the scenario may be
/// overridden to misbehave (hang, hog memory) inside the sandboxed child.
struct OneAppJobs {
  appgen::GeneratedApp app;
  std::vector<AppJob> jobs;
};

OneAppJobs replicated_jobs(std::size_t count, std::uint64_t rng_seed = 17) {
  OneAppJobs out;
  appgen::AppSpec spec;
  spec.package = "com.isolation.app";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(rng_seed);
  out.app = appgen::build_app(spec, rng);
  out.jobs.resize(count);
  for (auto& job : out.jobs) {
    job.apk = out.app.apk;
    job.scenario = [&app = out.app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
  }
  return out;
}

void expect_same_counts(const AggregateStats& got, const AggregateStats& want) {
  EXPECT_EQ(got.apps, want.apps);
  EXPECT_EQ(got.not_run, want.not_run);
  EXPECT_EQ(got.rewriting_failure, want.rewriting_failure);
  EXPECT_EQ(got.no_activity, want.no_activity);
  EXPECT_EQ(got.crashed, want.crashed);
  EXPECT_EQ(got.exercised, want.exercised);
  EXPECT_EQ(got.decompile_failed, want.decompile_failed);
  EXPECT_EQ(got.static_dcl, want.static_dcl);
  EXPECT_EQ(got.intercepted, want.intercepted);
  EXPECT_EQ(got.remote_loaders, want.remote_loaders);
  EXPECT_EQ(got.malware_carriers, want.malware_carriers);
  EXPECT_EQ(got.vulnerable, want.vulnerable);
  EXPECT_EQ(got.privacy_leaking, want.privacy_leaking);
  EXPECT_EQ(got.binaries, want.binaries);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.retried, want.retried);
  EXPECT_EQ(got.quarantined, want.quarantined);
  EXPECT_EQ(got.sandbox_crashed, want.sandbox_crashed);
  EXPECT_EQ(got.killed_oom, want.killed_oom);
  EXPECT_EQ(got.killed_timeout, want.killed_timeout);
}

// ---------------------------------------------------------------------------
// support::Subprocess: raw supervision facts.
// ---------------------------------------------------------------------------

TEST(Subprocess, CleanChildShipsPipeBytesAndExitCode) {
  const std::vector<std::uint8_t> payload = {'s', 'b', 'o', 'x', 0x00, 0xff};
  auto spawned = support::Subprocess::spawn(
      [&payload](int fd) {
        return support::write_fully(fd, payload.data(), payload.size()) ? 0
                                                                        : 3;
      },
      {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  auto child = std::move(spawned).take();
  EXPECT_GT(child.pid(), 0);
  const auto result = child.wait();
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.term_signal, 0);
  EXPECT_FALSE(result.deadline_killed);
  EXPECT_FALSE(result.output_truncated);
  EXPECT_EQ(result.output, support::Bytes(payload.begin(), payload.end()));
  EXPECT_GT(result.wall_ms, 0.0);
}

TEST(Subprocess, LargePipePayloadDrainsWithoutDeadlock) {
  // More than any pipe buffer (64 KiB default): the poll-driven drain must
  // keep reading while the child is still writing.
  constexpr std::size_t kSize = 1 << 20;
  auto spawned = support::Subprocess::spawn(
      [](int fd) {
        support::Bytes big(kSize);
        for (std::size_t i = 0; i < big.size(); ++i) {
          big[i] = static_cast<std::uint8_t>(i * 31u);
        }
        return support::write_fully(fd, big.data(), big.size()) ? 0 : 3;
      },
      {});
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  const auto result = std::move(spawned).take().wait();
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.output.size(), kSize);
  for (std::size_t i = 0; i < kSize; i += 4099) {
    ASSERT_EQ(result.output[i], static_cast<std::uint8_t>(i * 31u));
  }
}

TEST(Subprocess, BodyReturnValueBecomesExitCode) {
  auto spawned = support::Subprocess::spawn([](int) { return 7; }, {});
  ASSERT_TRUE(spawned.ok());
  const auto result = std::move(spawned).take().wait();
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 7);
}

TEST(Subprocess, EscapedExceptionExitsWithReservedCode) {
  auto spawned = support::Subprocess::spawn(
      [](int) -> int { throw std::runtime_error("child boom"); }, {});
  ASSERT_TRUE(spawned.ok());
  const auto result = std::move(spawned).take().wait();
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, support::kChildExceptionExitCode);
}

TEST(Subprocess, SignalDeathIsReportedNotAbsorbed) {
  auto spawned = support::Subprocess::spawn(
      [](int) -> int {
        std::abort();
      },
      {});
  ASSERT_TRUE(spawned.ok());
  const auto result = std::move(spawned).take().wait();
  EXPECT_FALSE(result.exited);
  EXPECT_EQ(result.term_signal, SIGABRT);
  EXPECT_FALSE(result.deadline_killed);
}

TEST(Subprocess, InfiniteLoopIsDeadlineKilledWithinBudget) {
  support::SubprocessLimits limits;
  limits.wall_deadline_ms = 250.0;
  auto spawned = support::Subprocess::spawn(
      [](int) -> int {
        for (;;) ::usleep(10000);  // never returns on its own
      },
      limits);
  ASSERT_TRUE(spawned.ok());
  const auto result = std::move(spawned).take().wait();
  EXPECT_TRUE(result.deadline_killed);
  EXPECT_FALSE(result.exited);
  EXPECT_EQ(result.term_signal, SIGKILL);
  // The kill budget, not the child's infinite loop, bounds the wait.
  EXPECT_LT(result.wall_ms, 10000.0);
}

TEST(Subprocess, MemoryHogExitsWithReservedOomCode) {
  if (!support::address_space_limit_supported()) {
    GTEST_SKIP() << "RLIMIT_AS unsupported under this sanitizer";
  }
  support::SubprocessLimits limits;
  limits.max_memory_bytes = 3ull << 30;  // generous vs. the parent image
  auto spawned = support::Subprocess::spawn(
      [](int) -> int {
        std::vector<std::byte*> hog;
        for (;;) hog.push_back(new std::byte[64 << 20]);  // until new fails
      },
      limits);
  ASSERT_TRUE(spawned.ok());
  const auto result = std::move(spawned).take().wait();
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, support::kOomExitCode);
}

TEST(Subprocess, DestructorKillsAndReapsUnwaitedChild) {
  int pid = -1;
  {
    auto spawned = support::Subprocess::spawn(
        [](int) -> int {
          for (;;) ::usleep(10000);
        },
        {});
    ASSERT_TRUE(spawned.ok());
    pid = std::move(spawned).take().pid();
  }  // destructor: SIGKILL + reap
  EXPECT_EQ(::kill(pid, 0), -1);
  EXPECT_EQ(errno, ESRCH);
}

// ---------------------------------------------------------------------------
// Result-pipe protocol: magic + one CRC frame of outcome_codec payload.
// ---------------------------------------------------------------------------

AppOutcome fated_outcome() {
  AppOutcome outcome;
  outcome.report.package = "com.isolation.codec";
  outcome.report.status = core::DynamicStatus::kCrash;
  outcome.report.crash_message = "sandbox: child died on signal 11";
  outcome.seed = 0xBE9C0007ull;
  outcome.wall_ms = 12.5;
  outcome.attempts = 2;
  outcome.timed_out = true;
  outcome.quarantined = true;
  outcome.sandbox_fate = SandboxFate::kOomKilled;
  outcome.fatal_signal = SIGKILL;
  return outcome;
}

TEST(SandboxCodec, ResultStreamRoundTrips) {
  const AppOutcome outcome = fated_outcome();
  const support::Bytes stream = encode_sandbox_result(42, outcome);
  auto decoded = decode_sandbox_result(stream);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().index, 42u);
  const auto& shipped = decoded.value().outcome;
  EXPECT_EQ(shipped.seed, outcome.seed);
  EXPECT_EQ(shipped.attempts, outcome.attempts);
  EXPECT_TRUE(shipped.timed_out);
  EXPECT_TRUE(shipped.quarantined);
  EXPECT_EQ(shipped.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_EQ(shipped.fatal_signal, SIGKILL);
  EXPECT_EQ(core::report_to_json(shipped.report),
            core::report_to_json(outcome.report));
}

TEST(SandboxCodec, TornAndEmptyStreamsFailWithoutThrowing) {
  const support::Bytes stream = encode_sandbox_result(1, fated_outcome());
  EXPECT_FALSE(decode_sandbox_result({}).ok());  // child died pre-write
  for (const std::size_t keep :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{12},
        stream.size() - 1}) {
    const auto torn = decode_sandbox_result(
        std::span<const std::uint8_t>(stream.data(), keep));
    EXPECT_FALSE(torn.ok()) << "prefix of " << keep << " bytes decoded";
  }
  support::Bytes flipped = stream;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(decode_sandbox_result(flipped).ok());
}

TEST(OutcomeCodec, FateAndSignalRoundTripAndBadFateIsRejected) {
  const AppOutcome outcome = fated_outcome();
  const support::Bytes payload = encode_outcome(3, outcome);
  const auto decoded = decode_outcome(payload);
  EXPECT_EQ(decoded.outcome.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_EQ(decoded.outcome.fatal_signal, SIGKILL);
  // The fate byte sits after version(1) + index(8) + seed(8) + wall(8) +
  // attempts(4) + flags(1); values past kTimedOut are invalid.
  support::Bytes bad = payload;
  bad[1 + 8 + 8 + 8 + 4 + 1] = 0x07;
  EXPECT_THROW((void)decode_outcome(bad), support::ParseError);
}

// ---------------------------------------------------------------------------
// Golden equivalence: isolate mode reproduces thread mode byte-for-byte.
// ---------------------------------------------------------------------------

TEST(Isolation, IsolateModeMatchesThreadModeAtAnyWorkerCount) {
  const auto corpus = small_corpus();
  ASSERT_GT(corpus.apps.size(), 10u);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    RunnerConfig config;
    config.jobs = jobs;
    config.isolation_mode = IsolationMode::kForkPerApp;
    const auto isolated = CorpusRunner(pipeline, config).run(corpus);
    ASSERT_EQ(isolated.outcomes.size(), corpus.apps.size());
    const auto isolated_json = report_jsons(isolated);
    for (std::size_t i = 0; i < golden_json.size(); ++i) {
      EXPECT_EQ(isolated_json[i], golden_json[i])
          << "app " << i << " at jobs=" << jobs;
      EXPECT_EQ(isolated.outcomes[i].sandbox_fate, SandboxFate::kNone);
      EXPECT_EQ(isolated.outcomes[i].seed, golden.outcomes[i].seed);
      EXPECT_EQ(isolated.outcomes[i].attempts, golden.outcomes[i].attempts);
    }
    expect_same_counts(isolated.stats, golden.stats);
  }
}

TEST(Isolation, IsolateModeMatchesThreadModeUnderFaultInjection) {
  const auto corpus = small_corpus();
  const auto plan_result = support::FaultPlan::parse("device.install=p:0.3");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig thread_config;
  thread_config.jobs = 2;
  const auto golden = CorpusRunner(pipeline, thread_config).run(corpus);

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kForkPerApp;
  const auto isolated = CorpusRunner(pipeline, config).run(corpus);

  // The child runs the identical per-app fault session, so injected
  // pipeline crashes, retries and quarantines reproduce exactly.
  const auto golden_json = report_jsons(golden);
  const auto isolated_json = report_jsons(isolated);
  ASSERT_EQ(isolated_json.size(), golden_json.size());
  for (std::size_t i = 0; i < golden_json.size(); ++i) {
    EXPECT_EQ(isolated_json[i], golden_json[i]) << "app " << i;
    EXPECT_EQ(isolated.outcomes[i].attempts, golden.outcomes[i].attempts);
    EXPECT_EQ(isolated.outcomes[i].quarantined, golden.outcomes[i].quarantined);
    EXPECT_EQ(isolated.outcomes[i].timed_out, golden.outcomes[i].timed_out);
  }
  expect_same_counts(isolated.stats, golden.stats);
}

// ---------------------------------------------------------------------------
// Classification: signal death / OOM kill / deadline kill.
// ---------------------------------------------------------------------------

TEST(Isolation, InjectedChildCrashClassifiesWithFatalSignal) {
  auto fixture = replicated_jobs(3);
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=always");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kForkPerApp;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  ASSERT_EQ(result.outcomes.size(), 3u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kCrashed);
    EXPECT_EQ(outcome.fatal_signal, SIGABRT);  // a real abort in the child
    EXPECT_TRUE(outcome.quarantined);  // forced even with retries off
    EXPECT_EQ(outcome.attempts, 1u);
    EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
    EXPECT_NE(outcome.report.crash_message.find("signal"), std::string::npos);
    EXPECT_GT(outcome.wall_ms, 0.0);
  }
  EXPECT_EQ(result.stats.sandbox_crashed, 3u);
  EXPECT_EQ(result.stats.crashed, 3u);  // kills land in Table II `crashed`
  EXPECT_EQ(result.stats.killed_oom, 0u);
  EXPECT_EQ(result.stats.killed_timeout, 0u);
  EXPECT_EQ(result.stats.quarantined, 3u);
}

TEST(Isolation, MemoryExplodingAppIsKilledOomAndQuarantined) {
  if (!support::address_space_limit_supported()) {
    GTEST_SKIP() << "RLIMIT_AS unsupported under this sanitizer";
  }
  auto fixture = replicated_jobs(1);
  fixture.jobs[0].scenario = [](os::Device&) {
    std::vector<std::byte*> hog;
    for (;;) hog.push_back(new std::byte[64 << 20]);  // runs in the child
  };

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kForkPerApp;
  config.sandbox_mem_limit_bytes = 3ull << 30;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
  EXPECT_EQ(result.stats.killed_oom, 1u);
  EXPECT_EQ(result.stats.crashed, 1u);
  EXPECT_EQ(result.stats.sandbox_crashed, 0u);
}

TEST(Isolation, HangingAppIsDeadlineKilledWithinBudget) {
  auto fixture = replicated_jobs(1);
  fixture.jobs[0].scenario = [](os::Device&) {
    // An app stuck forever: only the supervisor's SIGKILL ends it.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kForkPerApp;
  config.sandbox_deadline_ms = 300.0;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kTimedOut);
  EXPECT_EQ(outcome.fatal_signal, SIGKILL);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
  // The deadline, not the hang, bounds the app's wall time.
  EXPECT_LT(outcome.wall_ms, 15000.0);
  EXPECT_EQ(result.stats.killed_timeout, 1u);
  EXPECT_EQ(result.stats.timed_out, 1u);
  EXPECT_EQ(result.stats.crashed, 1u);
}

class TempPath {
 public:
  explicit TempPath(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_isolation_" + tag + "_" +
            std::to_string(::getpid());
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // file or directory
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// External SIGKILL: transparent respawn, bounded escalation.
// ---------------------------------------------------------------------------

TEST(Isolation, ExternallyKilledChildRespawnsTransparently) {
  auto fixture = replicated_jobs(1);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig thread_config;
  thread_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, thread_config).run(fixture.jobs);

  // First execution of the app SIGKILLs its own child (indistinguishable
  // from an external kill); the marker file makes the respawn run clean.
  TempPath marker("respawn");
  fixture.jobs[0].scenario = [&app = fixture.app,
                              path = marker.path()](os::Device& device) {
    if (!std::filesystem::exists(path)) {
      std::ofstream(path) << "killed once";
      ::raise(SIGKILL);
    }
    appgen::apply_scenario(app.scenario, device);
  };

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kForkPerApp;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  EXPECT_TRUE(std::filesystem::exists(marker.path()));  // the kill happened
  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kNone);
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(core::report_to_json(outcome.report),
            core::report_to_json(golden.outcomes[0].report));
  EXPECT_EQ(result.stats.killed_oom, 0u);
  EXPECT_EQ(result.stats.sandbox_crashed, 0u);
}

TEST(Isolation, RepeatedExternalSigkillEscalatesToOomClassification) {
  auto fixture = replicated_jobs(1);
  // Every execution dies to SIGKILL: the respawn budget must run out and
  // the app classify as a kernel-style OOM kill, not loop forever.
  fixture.jobs[0].scenario = [](os::Device&) { ::raise(SIGKILL); };

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kForkPerApp;
  const auto result = CorpusRunner(pipeline, config).run(fixture.jobs);

  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kOomKilled);
  EXPECT_EQ(outcome.fatal_signal, SIGKILL);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
  EXPECT_EQ(result.stats.killed_oom, 1u);
  EXPECT_EQ(result.stats.crashed, 1u);
}

// ---------------------------------------------------------------------------
// Journal and cache interplay.
// ---------------------------------------------------------------------------

TEST(Isolation, FatedOutcomesJournalAndReplayIdentically) {
  TempPath journal("journal");
  const auto corpus = small_corpus();
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=p:0.4");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid pipeline(std::move(options));

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kForkPerApp;
  config.journal_path = journal.path();
  const auto live = CorpusRunner(pipeline, config).run(corpus);
  // The probabilistic injection must actually have fated some apps — and
  // spared some — or the replay assertion below is vacuous.
  ASSERT_GT(live.stats.sandbox_crashed, 0u);
  ASSERT_LT(live.stats.sandbox_crashed, corpus.apps.size());

  config.resume = true;
  const auto resumed = CorpusRunner(pipeline, config).run(corpus);
  EXPECT_EQ(resumed.replayed, corpus.apps.size());
  EXPECT_EQ(resumed.analyzed, 0u);
  const auto live_json = report_jsons(live);
  const auto resumed_json = report_jsons(resumed);
  for (std::size_t i = 0; i < corpus.apps.size(); ++i) {
    EXPECT_TRUE(resumed.outcomes[i].replayed);
    EXPECT_EQ(resumed.outcomes[i].sandbox_fate, live.outcomes[i].sandbox_fate);
    EXPECT_EQ(resumed.outcomes[i].fatal_signal, live.outcomes[i].fatal_signal);
    EXPECT_EQ(resumed_json[i], live_json[i]) << "app " << i;
  }
  expect_same_counts(resumed.stats, live.stats);
}

TEST(Isolation, FatedOutcomesAreNeverCachedButCleanOnesAre) {
  TempPath cache("cache");
  auto fixture = replicated_jobs(4);
  const auto plan_result = support::FaultPlan::parse("sandbox.crash=always");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  RunnerConfig config;
  config.jobs = 1;
  config.isolation_mode = IsolationMode::kForkPerApp;
  config.cache_dir = cache.path();

  {
    // Every app dies in the sandbox: a kill is an environment fact, not a
    // content fact, so nothing may be inserted.
    core::PipelineOptions options;
    options.faults = &plan;
    const core::DyDroid faulty(std::move(options));
    const auto first = CorpusRunner(faulty, config).run(fixture.jobs);
    EXPECT_EQ(first.stats.cache_misses, 4u);
    EXPECT_EQ(first.stats.cache_hits, 0u);
    const auto second = CorpusRunner(faulty, config).run(fixture.jobs);
    EXPECT_EQ(second.stats.cache_hits, 0u);  // nothing was cached
    EXPECT_EQ(second.stats.sandbox_crashed, 4u);
  }
  {
    // Clean sandboxed outcomes cache normally and serve identically.
    const core::DyDroid clean{core::PipelineOptions{}};
    const auto cold = CorpusRunner(clean, config).run(fixture.jobs);
    EXPECT_EQ(cold.stats.cache_hits, 0u);
    const auto warm = CorpusRunner(clean, config).run(fixture.jobs);
    EXPECT_EQ(warm.stats.cache_hits, 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(core::report_to_json(warm.outcomes[i].report),
                core::report_to_json(cold.outcomes[i].report));
    }
  }
  std::filesystem::remove_all(cache.path());
}

}  // namespace
}  // namespace dydroid::driver
