// Parallel corpus driver tests: (a) worker-count independence — the
// CorpusRunner produces byte-identical per-app JSON reports with 1 and N
// threads; (b) the AggregateStats reduction matches a serial re-count;
// (c) one failing app never aborts the batch; plus seed-scheme and stage
// unit coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "core/stages.hpp"
#include "driver/corpus_runner.hpp"

namespace dydroid::driver {
namespace {

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;  // every table row floored at 1 → a few dozen apps
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

// ---------------------------------------------------------------------------
// (a) Determinism: 1 worker == N workers, and both == direct serial calls.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, ParallelReportsIdenticalToSerial) {
  const auto corpus = small_corpus();
  ASSERT_GT(corpus.apps.size(), 10u);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig serial_config;
  serial_config.jobs = 1;
  const auto serial = CorpusRunner(pipeline, serial_config).run(corpus);

  RunnerConfig parallel_config;
  parallel_config.jobs = 4;
  const auto parallel = CorpusRunner(pipeline, parallel_config).run(corpus);

  ASSERT_EQ(serial.outcomes.size(), corpus.apps.size());
  ASSERT_EQ(parallel.outcomes.size(), corpus.apps.size());
  EXPECT_EQ(serial.threads, 1u);

  const auto serial_json = report_jsons(serial);
  const auto parallel_json = report_jsons(parallel);
  for (std::size_t i = 0; i < serial_json.size(); ++i) {
    EXPECT_EQ(serial_json[i], parallel_json[i]) << "app index " << i;
  }

  // Both agree with calling the pipeline directly with the index seed.
  for (std::size_t i = 0; i < corpus.apps.size(); i += 7) {
    const auto& app = corpus.apps[i];
    const std::function<void(os::Device&)> scenario =
        [&app](os::Device& device) {
          appgen::apply_scenario(app.scenario, device);
        };
    core::AnalysisRequest request;
    request.apk_bytes = app.apk;
    request.seed = seed_for_app(kDefaultSeedBase, i);
    request.scenario_setup = &scenario;
    EXPECT_EQ(core::report_to_json(pipeline.analyze(request)),
              serial_json[i])
        << "app index " << i;
  }
}

TEST(CorpusRunner, SeedDerivesFromIndexNotIterationOrder) {
  // Dropping apps in front of app N must not change app N's seed.
  EXPECT_EQ(seed_for_app(100, 5), 105u);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 2;
  const auto full = CorpusRunner(pipeline, config).run(corpus);
  for (std::size_t i = 0; i < full.outcomes.size(); ++i) {
    EXPECT_EQ(full.outcomes[i].seed, kDefaultSeedBase + i);
  }
}

// ---------------------------------------------------------------------------
// (b) Stats reduce correctly across workers.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, StatsMatchSerialRecount) {
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 4;
  const auto result = CorpusRunner(pipeline, config).run(corpus);

  AggregateStats expected;
  for (const auto& outcome : result.outcomes) expected.absorb(outcome);

  const auto& got = result.stats;
  EXPECT_EQ(got.apps, corpus.apps.size());
  EXPECT_EQ(got.apps, expected.apps);
  EXPECT_EQ(got.not_run, expected.not_run);
  EXPECT_EQ(got.rewriting_failure, expected.rewriting_failure);
  EXPECT_EQ(got.no_activity, expected.no_activity);
  EXPECT_EQ(got.crashed, expected.crashed);
  EXPECT_EQ(got.exercised, expected.exercised);
  EXPECT_EQ(got.decompile_failed, expected.decompile_failed);
  EXPECT_EQ(got.static_dcl, expected.static_dcl);
  EXPECT_EQ(got.intercepted, expected.intercepted);
  EXPECT_EQ(got.remote_loaders, expected.remote_loaders);
  EXPECT_EQ(got.malware_carriers, expected.malware_carriers);
  EXPECT_EQ(got.vulnerable, expected.vulnerable);
  EXPECT_EQ(got.privacy_leaking, expected.privacy_leaking);
  EXPECT_EQ(got.binaries, expected.binaries);
  EXPECT_EQ(got.events, expected.events);
  // Outcome histogram partitions the corpus.
  EXPECT_EQ(got.not_run + got.rewriting_failure + got.no_activity +
                got.crashed + got.exercised,
            got.apps);
  EXPECT_DOUBLE_EQ(got.total_app_ms, expected.total_app_ms);
  EXPECT_DOUBLE_EQ(got.max_app_ms, expected.max_app_ms);
}

TEST(AggregateStats, MergeIsComponentwiseSum) {
  AggregateStats a;
  a.apps = 3;
  a.exercised = 2;
  a.crashed = 1;
  a.max_app_ms = 5.0;
  a.total_app_ms = 9.0;
  AggregateStats b;
  b.apps = 2;
  b.exercised = 1;
  b.vulnerable = 1;
  b.max_app_ms = 7.5;
  b.total_app_ms = 8.0;
  a.merge(b);
  EXPECT_EQ(a.apps, 5u);
  EXPECT_EQ(a.exercised, 3u);
  EXPECT_EQ(a.crashed, 1u);
  EXPECT_EQ(a.vulnerable, 1u);
  EXPECT_DOUBLE_EQ(a.max_app_ms, 7.5);
  EXPECT_DOUBLE_EQ(a.total_app_ms, 17.0);
}

// ---------------------------------------------------------------------------
// (c) One bad app never aborts the batch.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, MalformedAppDoesNotAbortBatch) {
  appgen::AppSpec spec;
  spec.package = "com.driver.good";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(11);
  const auto good = appgen::build_app(spec, rng);

  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 'a', 'p',
                                             'k', 0xFF, 0x00, 0x7F};
  std::vector<AppJob> jobs(3);
  jobs[0].apk = good.apk;
  jobs[0].scenario = [&good](os::Device& device) {
    appgen::apply_scenario(good.scenario, device);
  };
  jobs[1].apk = garbage;  // decompiler rejects this outright
  jobs[2] = jobs[0];

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 3;
  const auto result = CorpusRunner(pipeline, config).run(jobs);

  ASSERT_EQ(result.outcomes.size(), 3u);
  // The bad app resolves to a per-app failure outcome...
  EXPECT_TRUE(result.outcomes[1].report.decompile_failed);
  // ...while its neighbours complete normally.
  EXPECT_EQ(result.outcomes[0].report.status, core::DynamicStatus::kExercised)
      << result.outcomes[0].report.crash_message;
  EXPECT_FALSE(result.outcomes[0].report.binaries.empty());
  EXPECT_EQ(result.outcomes[2].report.status, core::DynamicStatus::kExercised)
      << result.outcomes[2].report.crash_message;
  EXPECT_EQ(result.stats.apps, 3u);
  EXPECT_EQ(result.stats.decompile_failed, 1u);
}

// ---------------------------------------------------------------------------
// Stage-level unit coverage: the decomposed pipeline is testable per stage.
// ---------------------------------------------------------------------------

TEST(Stages, StaticStageStopsOnDclFreeApp) {
  appgen::AppSpec spec;
  spec.package = "com.driver.plain";
  spec.category = "Tools";  // no DCL behaviours at all
  support::Rng rng(3);
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  core::AnalysisContext ctx;
  ctx.apk_bytes = app.apk;
  ctx.bytes_to_run = app.apk;
  ctx.options = &options;

  const core::StaticStage stage;
  const auto result = stage.run(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), core::StageAction::kStop);
  EXPECT_FALSE(ctx.report.static_dcl.any());
  EXPECT_EQ(ctx.report.package, "com.driver.plain");
  EXPECT_EQ(ctx.report.status, core::DynamicStatus::kNotRun);
}

TEST(Stages, DynamicStageReportsCorruptContainerAsCrash) {
  appgen::AppSpec spec;
  spec.package = "com.driver.dcl";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(5);
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  core::AnalysisContext ctx;
  ctx.apk_bytes = app.apk;
  ctx.options = &options;
  ctx.seed = 1;

  const core::StaticStage static_stage;
  ASSERT_TRUE(static_stage.run(ctx).ok());

  // Corrupt the container after the static phase: the dynamic stage must
  // resolve it through the stage status, not an escaping ParseError.
  std::vector<std::uint8_t> truncated(app.apk.begin(),
                                      app.apk.begin() + app.apk.size() / 4);
  ctx.bytes_to_run = truncated;
  const core::DynamicStage dynamic_stage;
  const auto result = dynamic_stage.run(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), core::StageAction::kStop);
  EXPECT_EQ(ctx.report.status, core::DynamicStatus::kCrash);
  EXPECT_FALSE(ctx.report.crash_message.empty());
}

}  // namespace
}  // namespace dydroid::driver
