// Parallel corpus driver tests: (a) worker-count independence — the
// CorpusRunner produces byte-identical per-app JSON reports with 1 and N
// threads; (b) the AggregateStats reduction matches a serial re-count;
// (c) one failing app never aborts the batch; plus seed-scheme and stage
// unit coverage.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "core/stages.hpp"
#include "driver/corpus_runner.hpp"
#include "support/fault.hpp"

namespace dydroid::driver {
namespace {

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;  // every table row floored at 1 → a few dozen apps
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

// ---------------------------------------------------------------------------
// (a) Determinism: 1 worker == N workers, and both == direct serial calls.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, ParallelReportsIdenticalToSerial) {
  const auto corpus = small_corpus();
  ASSERT_GT(corpus.apps.size(), 10u);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig serial_config;
  serial_config.jobs = 1;
  const auto serial = CorpusRunner(pipeline, serial_config).run(corpus);

  RunnerConfig parallel_config;
  parallel_config.jobs = 4;
  const auto parallel = CorpusRunner(pipeline, parallel_config).run(corpus);

  ASSERT_EQ(serial.outcomes.size(), corpus.apps.size());
  ASSERT_EQ(parallel.outcomes.size(), corpus.apps.size());
  EXPECT_EQ(serial.threads, 1u);

  const auto serial_json = report_jsons(serial);
  const auto parallel_json = report_jsons(parallel);
  for (std::size_t i = 0; i < serial_json.size(); ++i) {
    EXPECT_EQ(serial_json[i], parallel_json[i]) << "app index " << i;
  }

  // Both agree with calling the pipeline directly with the index seed.
  for (std::size_t i = 0; i < corpus.apps.size(); i += 7) {
    const auto& app = corpus.apps[i];
    const std::function<void(os::Device&)> scenario =
        [&app](os::Device& device) {
          appgen::apply_scenario(app.scenario, device);
        };
    core::AnalysisRequest request;
    request.apk = app.apk;
    request.seed = seed_for_app(kDefaultSeedBase, i);
    request.scenario_setup = &scenario;
    EXPECT_EQ(core::report_to_json(pipeline.analyze(request)),
              serial_json[i])
        << "app index " << i;
  }
}

TEST(CorpusRunner, SingleJobRunsInlineOnCallerThread) {
  // jobs=1 must not pay a thread spawn: the worker loop runs on the
  // caller's own thread (the serial fast path), and its reports are
  // byte-identical to a defaulted config that resolves to one worker.
  // Guards the parallel.speedup floor — a jobs=1 run that secretly
  // spawned a thread once benchmarked *slower* than serial.
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  auto jobs = jobs_from_corpus(corpus);
  std::mutex mutex;
  std::vector<std::thread::id> analysis_threads;
  for (auto& job : jobs) {
    job.scenario = [inner = std::move(job.scenario), &mutex,
                    &analysis_threads](os::Device& device) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        analysis_threads.push_back(std::this_thread::get_id());
      }
      inner(device);
    };
  }

  RunnerConfig config;
  config.jobs = 1;
  const auto inline_run = CorpusRunner(pipeline, config).run(jobs);
  EXPECT_EQ(inline_run.threads, 1u);
  // Static-stop apps never reach the scenario, so expect "most", not all.
  ASSERT_GT(analysis_threads.size(), corpus.apps.size() / 2);
  for (const auto& id : analysis_threads) {
    EXPECT_EQ(id, std::this_thread::get_id())
        << "jobs=1 ran an app off the caller thread";
  }

  const auto baseline = CorpusRunner(pipeline, config).run(corpus);
  const auto inline_json = report_jsons(inline_run);
  const auto baseline_json = report_jsons(baseline);
  ASSERT_EQ(inline_json.size(), baseline_json.size());
  for (std::size_t i = 0; i < inline_json.size(); ++i) {
    EXPECT_EQ(inline_json[i], baseline_json[i]) << "app index " << i;
  }
}

TEST(CorpusRunner, SeedDerivesFromIndexNotIterationOrder) {
  // Dropping apps in front of app N must not change app N's seed.
  EXPECT_EQ(seed_for_app(100, 5), 105u);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 2;
  const auto full = CorpusRunner(pipeline, config).run(corpus);
  for (std::size_t i = 0; i < full.outcomes.size(); ++i) {
    EXPECT_EQ(full.outcomes[i].seed, kDefaultSeedBase + i);
  }
}

// ---------------------------------------------------------------------------
// (b) Stats reduce correctly across workers.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, StatsMatchSerialRecount) {
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 4;
  const auto result = CorpusRunner(pipeline, config).run(corpus);

  AggregateStats expected;
  for (const auto& outcome : result.outcomes) expected.absorb(outcome);

  const auto& got = result.stats;
  EXPECT_EQ(got.apps, corpus.apps.size());
  EXPECT_EQ(got.apps, expected.apps);
  EXPECT_EQ(got.not_run, expected.not_run);
  EXPECT_EQ(got.rewriting_failure, expected.rewriting_failure);
  EXPECT_EQ(got.no_activity, expected.no_activity);
  EXPECT_EQ(got.crashed, expected.crashed);
  EXPECT_EQ(got.exercised, expected.exercised);
  EXPECT_EQ(got.decompile_failed, expected.decompile_failed);
  EXPECT_EQ(got.static_dcl, expected.static_dcl);
  EXPECT_EQ(got.intercepted, expected.intercepted);
  EXPECT_EQ(got.remote_loaders, expected.remote_loaders);
  EXPECT_EQ(got.malware_carriers, expected.malware_carriers);
  EXPECT_EQ(got.vulnerable, expected.vulnerable);
  EXPECT_EQ(got.privacy_leaking, expected.privacy_leaking);
  EXPECT_EQ(got.binaries, expected.binaries);
  EXPECT_EQ(got.events, expected.events);
  // Outcome histogram partitions the corpus.
  EXPECT_EQ(got.not_run + got.rewriting_failure + got.no_activity +
                got.crashed + got.exercised,
            got.apps);
  EXPECT_DOUBLE_EQ(got.total_app_ms, expected.total_app_ms);
  EXPECT_DOUBLE_EQ(got.max_app_ms, expected.max_app_ms);
}

TEST(AggregateStats, MergeIsComponentwiseSum) {
  AggregateStats a;
  a.apps = 3;
  a.exercised = 2;
  a.crashed = 1;
  a.max_app_ms = 5.0;
  a.total_app_ms = 9.0;
  AggregateStats b;
  b.apps = 2;
  b.exercised = 1;
  b.vulnerable = 1;
  b.max_app_ms = 7.5;
  b.total_app_ms = 8.0;
  a.merge(b);
  EXPECT_EQ(a.apps, 5u);
  EXPECT_EQ(a.exercised, 3u);
  EXPECT_EQ(a.crashed, 1u);
  EXPECT_EQ(a.vulnerable, 1u);
  EXPECT_DOUBLE_EQ(a.max_app_ms, 7.5);
  EXPECT_DOUBLE_EQ(a.total_app_ms, 17.0);
}

// ---------------------------------------------------------------------------
// (c) One bad app never aborts the batch.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, MalformedAppDoesNotAbortBatch) {
  appgen::AppSpec spec;
  spec.package = "com.driver.good";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(11);
  const auto good = appgen::build_app(spec, rng);

  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 'a', 'p',
                                             'k', 0xFF, 0x00, 0x7F};
  std::vector<AppJob> jobs(3);
  jobs[0].apk = good.apk;
  jobs[0].scenario = [&good](os::Device& device) {
    appgen::apply_scenario(good.scenario, device);
  };
  jobs[1].apk = support::Blob::copy_of(garbage);  // decompiler rejects this outright
  jobs[2] = jobs[0];

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 3;
  const auto result = CorpusRunner(pipeline, config).run(jobs);

  ASSERT_EQ(result.outcomes.size(), 3u);
  // The bad app resolves to a per-app failure outcome...
  EXPECT_TRUE(result.outcomes[1].report.decompile_failed);
  // ...while its neighbours complete normally.
  EXPECT_EQ(result.outcomes[0].report.status, core::DynamicStatus::kExercised)
      << result.outcomes[0].report.crash_message;
  EXPECT_FALSE(result.outcomes[0].report.binaries.empty());
  EXPECT_EQ(result.outcomes[2].report.status, core::DynamicStatus::kExercised)
      << result.outcomes[2].report.crash_message;
  EXPECT_EQ(result.stats.apps, 3u);
  EXPECT_EQ(result.stats.decompile_failed, 1u);
}

// ---------------------------------------------------------------------------
// (d) Property: any subset in any order reproduces the full run's reports
//     byte-for-byte, provided each job carries its original corpus seed.
// ---------------------------------------------------------------------------

TEST(CorpusRunner, SubsetAndPermutationReproduceFullRunReports) {
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 2;
  const CorpusRunner runner(pipeline, config);
  const auto full_json = report_jsons(runner.run(corpus));

  support::Rng rng(0x5B5E7);
  for (int trial = 0; trial < 4; ++trial) {
    // Pick a random subset of corpus indices, then shuffle it.
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < corpus.apps.size(); ++i) {
      if (rng.chance(0.4)) picked.push_back(i);
    }
    if (picked.empty()) picked.push_back(trial % corpus.apps.size());
    for (std::size_t i = picked.size(); i > 1; --i) {
      std::swap(picked[i - 1], picked[rng.below(i)]);
    }

    std::vector<AppJob> jobs;
    jobs.reserve(picked.size());
    for (const auto index : picked) {
      const auto& app = corpus.apps[index];
      AppJob job;
      job.apk = app.apk;
      job.scenario = [&app](os::Device& device) {
        appgen::apply_scenario(app.scenario, device);
      };
      // The override pins the app to its full-run seed, so filtering and
      // reordering cannot perturb its report.
      job.seed = seed_for_app(kDefaultSeedBase, index);
      jobs.push_back(std::move(job));
    }
    const auto subset = runner.run(jobs);
    ASSERT_EQ(subset.outcomes.size(), picked.size());
    for (std::size_t j = 0; j < picked.size(); ++j) {
      EXPECT_EQ(subset.outcomes[j].seed,
                seed_for_app(kDefaultSeedBase, picked[j]));
      EXPECT_EQ(core::report_to_json(subset.outcomes[j].report),
                full_json[picked[j]])
          << "trial " << trial << " subset position " << j << " corpus index "
          << picked[j];
    }
  }
}

// ---------------------------------------------------------------------------
// (e) Fault-handling policy: wall clocks, timeout classification, retry and
//     quarantine (docs/FAULTS.md).
// ---------------------------------------------------------------------------

TEST(CorpusRunner, WallTimeIsRecordedOnEveryPathIncludingCrashes) {
  appgen::AppSpec spec;
  spec.package = "com.driver.timed";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(17);
  const auto good = appgen::build_app(spec, rng);
  const std::vector<std::uint8_t> garbage = {'j', 'u', 'n', 'k', 0x00, 0xFF};

  std::vector<AppJob> jobs(3);
  jobs[0].apk = good.apk;
  jobs[0].scenario = [&good](os::Device& device) {
    appgen::apply_scenario(good.scenario, device);
  };
  jobs[1].apk = support::Blob::copy_of(garbage);  // crash path
  jobs[2] = jobs[0];

  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.jobs = 2;
  const auto result = CorpusRunner(pipeline, config).run(jobs);

  double total = 0.0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    EXPECT_GT(result.outcomes[i].wall_ms, 0.0) << "app " << i;
    EXPECT_LE(result.outcomes[i].wall_ms, result.stats.max_app_ms);
    total += result.outcomes[i].wall_ms;
  }
  EXPECT_DOUBLE_EQ(result.stats.total_app_ms, total);
  EXPECT_GT(result.wall_ms, 0.0);
}

TEST(CorpusRunner, OverBudgetAppIsTimedOutRetriedAndQuarantined) {
  appgen::AppSpec spec;
  spec.package = "com.driver.slow";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(19);
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  options.max_app_wall_ms = 1.0;  // every attempt blows this budget
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  std::vector<AppJob> jobs(1);
  jobs[0].apk = app.apk;
  jobs[0].scenario = [&app](os::Device& device) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    appgen::apply_scenario(app.scenario, device);
  };

  RunnerConfig config;
  config.jobs = 1;
  const auto result = CorpusRunner(pipeline, config).run(jobs);
  const auto& outcome = result.outcomes[0];
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_GE(outcome.wall_ms, 20.0);  // both attempts' wall time summed
  // The app keeps its Table II bucket even while quarantined.
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kExercised);
  EXPECT_EQ(result.stats.timed_out, 1u);
  EXPECT_EQ(result.stats.retried, 1u);
  EXPECT_EQ(result.stats.quarantined, 1u);
}

TEST(CorpusRunner, CrashingRetriesAccumulateWallTimeAcrossAttempts) {
  // Regression for the wall_ms accounting mixup: the normal attempt path
  // accumulated (+=) while the exception paths assigned (=), so a retried
  // app could report only its *last* attempt's wall time. Every path now
  // goes through one accumulate-exactly-once guard: a crash-looping app
  // that retries must report the *sum* of both attempts.
  appgen::AppSpec spec;
  spec.package = "com.driver.crashloop";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(29);
  const auto app = appgen::build_app(spec, rng);

  const auto plan_result = support::FaultPlan::parse("device.install=always");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  std::vector<AppJob> jobs(1);
  jobs[0].apk = app.apk;
  jobs[0].scenario = [&app](os::Device& device) {
    // Give each attempt a measurable floor: the scenario runs inside the
    // dynamic stage on *every* attempt, before the injected install fault.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    appgen::apply_scenario(app.scenario, device);
  };

  RunnerConfig config;
  config.jobs = 1;
  const auto result = CorpusRunner(pipeline, config).run(jobs);
  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
  // Both attempts' elapsed time summed — not just the final attempt's.
  EXPECT_GE(outcome.wall_ms, 20.0);
  EXPECT_EQ(result.stats.retried, 1u);
  EXPECT_EQ(result.stats.quarantined, 1u);
  EXPECT_DOUBLE_EQ(result.stats.total_app_ms, outcome.wall_ms);
}

TEST(CorpusRunner, TransientInjectedCrashRetriesCleanlyAndRecovers) {
  appgen::AppSpec spec;
  spec.package = "com.driver.flaky";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(23);
  const auto app = appgen::build_app(spec, rng);
  const std::function<void(os::Device&)> scenario =
      [&app](os::Device& device) {
        appgen::apply_scenario(app.scenario, device);
      };

  const auto plan_result = support::FaultPlan::parse("device.install=p:0.5");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();

  core::PipelineOptions options;
  options.faults = &plan;
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  // Hunt a seed whose attempt-0 fault session crashes the app while the
  // attempt-salted retry session clears — a deterministic transient.
  std::optional<std::uint64_t> flaky_seed;
  for (std::uint64_t seed = 0; seed < 64 && !flaky_seed; ++seed) {
    core::AnalysisRequest first;
    first.apk = app.apk;
    first.seed = seed;
    first.scenario_setup = &scenario;
    first.attempt = 0;
    core::AnalysisRequest second = first;
    second.attempt = 1;
    if (pipeline.analyze(first).status == core::DynamicStatus::kCrash &&
        pipeline.analyze(second).status == core::DynamicStatus::kExercised) {
      flaky_seed = seed;
    }
  }
  ASSERT_TRUE(flaky_seed.has_value())
      << "no seed in [0,64) yields a transient install fault";

  std::vector<AppJob> jobs(1);
  jobs[0].apk = app.apk;
  jobs[0].scenario = scenario;
  jobs[0].seed = *flaky_seed;

  RunnerConfig config;
  config.jobs = 1;
  const auto result = CorpusRunner(pipeline, config).run(jobs);
  const auto& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(outcome.report.status, core::DynamicStatus::kExercised);
  EXPECT_EQ(result.stats.retried, 1u);
  EXPECT_EQ(result.stats.quarantined, 0u);
  EXPECT_EQ(result.stats.crashed, 0u);
  EXPECT_EQ(result.stats.exercised, 1u);
}

// ---------------------------------------------------------------------------
// Stage-level unit coverage: the decomposed pipeline is testable per stage.
// ---------------------------------------------------------------------------

TEST(Stages, StaticStageStopsOnDclFreeApp) {
  appgen::AppSpec spec;
  spec.package = "com.driver.plain";
  spec.category = "Tools";  // no DCL behaviours at all
  support::Rng rng(3);
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  core::AnalysisContext ctx;
  ctx.apk = app.apk;
  ctx.options = &options;

  const core::StaticStage stage;
  const auto result = stage.run(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), core::StageAction::kStop);
  EXPECT_FALSE(ctx.report.static_dcl.any());
  EXPECT_EQ(ctx.report.package, "com.driver.plain");
  EXPECT_EQ(ctx.report.status, core::DynamicStatus::kNotRun);
}

TEST(Stages, DynamicStageReportsCorruptContainerAsCrash) {
  appgen::AppSpec spec;
  spec.package = "com.driver.dcl";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(5);
  const auto app = appgen::build_app(spec, rng);

  core::PipelineOptions options;
  core::AnalysisContext ctx;
  ctx.apk = app.apk;
  ctx.options = &options;
  ctx.seed = 1;

  const core::StaticStage static_stage;
  ASSERT_TRUE(static_stage.run(ctx).ok());

  // Corrupt the container after the static phase: the dynamic stage must
  // resolve it through the stage status, not an escaping ParseError. Drop
  // the shared parse so the stage falls back to (re-)parsing the input.
  ctx.apk = ctx.apk.slice(0, app.apk.size() / 4);
  ctx.image = apk::ApkImage();
  ctx.run_image = apk::ApkImage();
  const core::DynamicStage dynamic_stage;
  const auto result = dynamic_stage.run(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), core::StageAction::kStop);
  EXPECT_EQ(ctx.report.status, core::DynamicStatus::kCrash);
  EXPECT_FALSE(ctx.report.crash_message.empty());
}

}  // namespace
}  // namespace dydroid::driver
