// Crash-safe corpus runs (docs/CHECKPOINT.md): a run killed after the
// N-th journal append — by the injected driver.kill / journal.append
// faults in-process, or by a real SIGKILL of the dydroid CLI — must
// resume to per-app reports and aggregate stats byte-identical to an
// uninterrupted run, at any worker count. Plus: graceful stop, duplicate
// record (last-writer-wins) semantics, loud mismatch failures, and the
// regression guard for attempt accounting under the retry policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "support/fault.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#define DYDROID_HAVE_SUBPROCESS 1
#endif

namespace dydroid::driver {
namespace {

class TempJournal {
 public:
  explicit TempJournal(const std::string& tag) {
    path_ = testing::TempDir() + "dydroid_kr_" + tag + "_" +
            std::to_string(::getpid()) + ".jrnl";
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

appgen::Corpus small_corpus(double scale = 0.002) {
  appgen::CorpusConfig config;
  config.scale = scale;
  return appgen::generate_corpus(config);
}

std::vector<std::string> report_jsons(const CorpusResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) {
    out.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

void expect_same_counts(const AggregateStats& got,
                        const AggregateStats& want) {
  EXPECT_EQ(got.apps, want.apps);
  EXPECT_EQ(got.not_run, want.not_run);
  EXPECT_EQ(got.rewriting_failure, want.rewriting_failure);
  EXPECT_EQ(got.no_activity, want.no_activity);
  EXPECT_EQ(got.crashed, want.crashed);
  EXPECT_EQ(got.exercised, want.exercised);
  EXPECT_EQ(got.decompile_failed, want.decompile_failed);
  EXPECT_EQ(got.static_dcl, want.static_dcl);
  EXPECT_EQ(got.intercepted, want.intercepted);
  EXPECT_EQ(got.remote_loaders, want.remote_loaders);
  EXPECT_EQ(got.malware_carriers, want.malware_carriers);
  EXPECT_EQ(got.vulnerable, want.vulnerable);
  EXPECT_EQ(got.privacy_leaking, want.privacy_leaking);
  EXPECT_EQ(got.binaries, want.binaries);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.retried, want.retried);
  EXPECT_EQ(got.quarantined, want.quarantined);
}

// ---------------------------------------------------------------------------
// Injected driver kill: abort after the k-th append, resume, compare.
// ---------------------------------------------------------------------------

TEST(KillResume, InjectedKillResumesByteIdenticalAtAnyWorkerCount) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  ASSERT_GT(n, 10u);

  const core::DyDroid golden_pipeline{core::PipelineOptions{}};
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden =
      CorpusRunner(golden_pipeline, golden_config).run(corpus);
  const auto golden_json = report_jsons(golden);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::size_t k : {std::size_t{1}, n / 2, n - 1}) {
      TempJournal journal("kill_w" + std::to_string(workers) + "_k" +
                          std::to_string(k));
      // Killed run: driver.kill fires on the k-th journal append.
      {
        auto plan = support::FaultPlan::parse("driver.kill=nth:" +
                                              std::to_string(k));
        ASSERT_TRUE(plan.ok());
        core::PipelineOptions options;
        options.faults = &plan.value();
        const core::DyDroid pipeline(std::move(options));
        RunnerConfig config;
        config.jobs = workers;
        config.journal_path = journal.path();
        std::size_t journaled = 0;
        try {
          (void)CorpusRunner(pipeline, config).run(corpus);
          FAIL() << "expected RunAborted (workers=" << workers
                 << ", k=" << k << ")";
        } catch (const RunAborted& aborted) {
          journaled = aborted.journaled();
        }
        EXPECT_EQ(journaled, k);
      }
      // Resumed run: fault-free pipeline, same corpus and seed base.
      RunnerConfig resume_config;
      resume_config.jobs = workers;
      resume_config.journal_path = journal.path();
      resume_config.resume = true;
      const auto resumed =
          CorpusRunner(golden_pipeline, resume_config).run(corpus);
      EXPECT_FALSE(resumed.interrupted);
      EXPECT_EQ(resumed.replayed, k);
      EXPECT_EQ(resumed.analyzed, n - k);
      const auto resumed_json = report_jsons(resumed);
      ASSERT_EQ(resumed_json.size(), golden_json.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(resumed_json[i], golden_json[i])
            << "workers=" << workers << " k=" << k << " app=" << i;
      }
      expect_same_counts(resumed.stats, golden.stats);
      // Seeds replayed from the journal match the index derivation.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(resumed.outcomes[i].seed, seed_for_app(kDefaultSeedBase, i));
      }
    }
  }
}

TEST(KillResume, TornAppendRecoversAndResumes) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  const core::DyDroid golden_pipeline{core::PipelineOptions{}};
  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden =
      CorpusRunner(golden_pipeline, golden_config).run(corpus);

  TempJournal journal("torn");
  const std::size_t k = 4;  // the 4th append dies halfway through its frame
  {
    auto plan =
        support::FaultPlan::parse("journal.append=nth:" + std::to_string(k));
    ASSERT_TRUE(plan.ok());
    core::PipelineOptions options;
    options.faults = &plan.value();
    const core::DyDroid pipeline(std::move(options));
    RunnerConfig config;
    config.jobs = 1;
    config.journal_path = journal.path();
    EXPECT_THROW((void)CorpusRunner(pipeline, config).run(corpus), RunAborted);
  }
  // The file genuinely carries a torn frame.
  auto read = support::read_journal(journal.path());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().torn());
  ASSERT_EQ(read.value().records.size(), k - 1);

  RunnerConfig resume_config;
  resume_config.jobs = 2;
  resume_config.journal_path = journal.path();
  resume_config.resume = true;
  const auto resumed =
      CorpusRunner(golden_pipeline, resume_config).run(corpus);
  EXPECT_EQ(resumed.replayed, k - 1);
  EXPECT_EQ(resumed.analyzed, n - (k - 1));
  const auto golden_json = report_jsons(golden);
  const auto resumed_json = report_jsons(resumed);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(resumed_json[i], golden_json[i]) << "app " << i;
  }
  expect_same_counts(resumed.stats, golden.stats);
  // And the resumed journal is whole again: no torn tail, one record per
  // app (the re-run apps appended after the truncated prefix).
  auto reread = support::read_journal(journal.path());
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().torn());
  EXPECT_EQ(reread.value().records.size(), n);
}

// ---------------------------------------------------------------------------
// Graceful stop: in-flight apps finish and are journaled; the partial run
// resumes to the uninterrupted result.
// ---------------------------------------------------------------------------

TEST(KillResume, GracefulStopJournalsInFlightAppsAndResumes) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const std::size_t n = corpus.apps.size();
  const core::DyDroid pipeline{core::PipelineOptions{}};

  RunnerConfig golden_config;
  golden_config.jobs = 1;
  const auto golden = CorpusRunner(pipeline, golden_config).run(corpus);

  // The brake is pulled from inside an app's scenario, so pick one whose
  // dynamic phase actually runs (a statically filtered app never installs
  // its scenario).
  std::size_t stop_at = 0;
  for (std::size_t i = n / 3; i + 1 < n; ++i) {
    if (golden.outcomes[i].report.status == core::DynamicStatus::kExercised) {
      stop_at = i;
      break;
    }
  }
  ASSERT_GT(stop_at, 0u);

  TempJournal journal("stop");
  std::atomic<bool> stop{false};
  {
    auto jobs = jobs_from_corpus(corpus);
    // App `stop_at` pulls the brake from inside its own scenario — the
    // deterministic stand-in for the CLI's SIGINT handler. The app itself
    // must still finish and be journaled (stop is polled *between* apps).
    const auto original = jobs[stop_at].scenario;
    jobs[stop_at].scenario = [original, &stop](os::Device& device) {
      original(device);
      stop.store(true);
    };
    RunnerConfig config;
    config.jobs = 1;
    config.journal_path = journal.path();
    config.stop = &stop;
    const auto partial = CorpusRunner(pipeline, config).run(jobs);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.completed(), stop_at + 1);  // in-flight app finished
    EXPECT_TRUE(partial.outcomes[stop_at].completed);
    EXPECT_FALSE(partial.outcomes[stop_at + 1].completed);
  }
  RunnerConfig resume_config;
  resume_config.jobs = 2;
  resume_config.journal_path = journal.path();
  resume_config.resume = true;
  const auto resumed = CorpusRunner(pipeline, resume_config).run(corpus);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.replayed, stop_at + 1);
  const auto golden_json = report_jsons(golden);
  const auto resumed_json = report_jsons(resumed);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(resumed_json[i], golden_json[i]) << "app " << i;
  }
  expect_same_counts(resumed.stats, golden.stats);
}

// ---------------------------------------------------------------------------
// Resume semantics.
// ---------------------------------------------------------------------------

TEST(KillResume, DuplicateRecordsResolveLastWriterWins) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempJournal journal("dup");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  const auto first = CorpusRunner(pipeline, config).run(corpus);

  // Forge a newer record for app 0 (same seed, different report) — the
  // artifact a kill-during-resume leaves when an app is re-journaled.
  AppOutcome forged = first.outcomes[0];
  forged.report.package = "com.example.superseded.by.this";
  {
    auto writer = support::JournalWriter::open(journal.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().append(encode_outcome(0, forged)).ok());
  }
  RunnerConfig resume_config;
  resume_config.jobs = 1;
  resume_config.journal_path = journal.path();
  resume_config.resume = true;
  const auto resumed = CorpusRunner(pipeline, resume_config).run(corpus);
  EXPECT_EQ(resumed.analyzed, 0u);
  EXPECT_EQ(resumed.outcomes[0].report.package,
            "com.example.superseded.by.this");
  EXPECT_TRUE(resumed.outcomes[0].replayed);
}

TEST(KillResume, SeedMismatchFailsLoudly) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempJournal journal("seedmismatch");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  (void)CorpusRunner(pipeline, config).run(corpus);

  RunnerConfig resume_config = config;
  resume_config.resume = true;
  resume_config.seed_base = kDefaultSeedBase + 1;  // different derivation
  EXPECT_THROW((void)CorpusRunner(pipeline, resume_config).run(corpus),
               std::runtime_error);
}

TEST(KillResume, JournalFromBiggerCorpusFailsLoudly) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus();
  const core::DyDroid pipeline{core::PipelineOptions{}};
  TempJournal journal("mismatch");
  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = journal.path();
  (void)CorpusRunner(pipeline, config).run(corpus);

  const auto jobs = jobs_from_corpus(corpus);
  const auto subset = std::span<const AppJob>(jobs).first(3);
  RunnerConfig resume_config = config;
  resume_config.resume = true;
  EXPECT_THROW((void)CorpusRunner(pipeline, resume_config).run(subset),
               std::runtime_error);
}

TEST(KillResume, ResumeWithoutJournalPathFailsLoudly) {
  const core::DyDroid pipeline{core::PipelineOptions{}};
  RunnerConfig config;
  config.resume = true;
  const std::vector<AppJob> jobs;
  EXPECT_THROW(
      (void)CorpusRunner(pipeline, config).run(std::span<const AppJob>(jobs)),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Regression: attempt accounting must agree between the live run and a
// journal replay — the attempts field is recorded when an attempt *starts*,
// so a journaled outcome can never claim a retry that did not run (and the
// escaping-exception belt always leaves attempts >= 1 with wall time set).
// ---------------------------------------------------------------------------

TEST(KillResume, RetryAndQuarantineStatsSurviveReplay) {
  support::set_log_level(support::LogLevel::Error);
  const auto corpus = small_corpus(0.003);
  auto plan = support::FaultPlan::parse("device.boot=p:0.4");
  ASSERT_TRUE(plan.ok());
  core::PipelineOptions options;
  options.faults = &plan.value();
  options.retry_on_crash = true;
  const core::DyDroid pipeline(std::move(options));

  TempJournal journal("retry");
  RunnerConfig config;
  config.jobs = 2;
  config.journal_path = journal.path();
  const auto live = CorpusRunner(pipeline, config).run(corpus);
  ASSERT_GT(live.stats.retried, 0u)
      << "fault plan produced no retries; regression test is vacuous";

  // Replay-only run: every outcome comes from the journal.
  RunnerConfig resume_config = config;
  resume_config.resume = true;
  const auto replayed = CorpusRunner(pipeline, resume_config).run(corpus);
  EXPECT_EQ(replayed.analyzed, 0u);
  EXPECT_EQ(replayed.replayed, corpus.apps.size());
  expect_same_counts(replayed.stats, live.stats);
  for (std::size_t i = 0; i < live.outcomes.size(); ++i) {
    EXPECT_GE(live.outcomes[i].attempts, 1u);
    EXPECT_EQ(replayed.outcomes[i].attempts, live.outcomes[i].attempts)
        << "app " << i;
    EXPECT_EQ(replayed.outcomes[i].quarantined, live.outcomes[i].quarantined)
        << "app " << i;
    // Replayed wall time is the journaled (original) measurement.
    EXPECT_EQ(replayed.outcomes[i].wall_ms, live.outcomes[i].wall_ms);
  }
}

// ---------------------------------------------------------------------------
// The real thing: SIGKILL a `dydroid survey --journal` subprocess mid-run,
// resume it, and diff the summary against an uninterrupted run.
// ---------------------------------------------------------------------------

#ifdef DYDROID_HAVE_SUBPROCESS

/// Lines that legitimately differ between runs (wall-clock timing and the
/// journal bookkeeping line).
bool is_timing_line(const std::string& line) {
  return line.find("ms on") != std::string::npos ||
         line.find("journal:") != std::string::npos;
}

std::vector<std::string> stable_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!is_timing_line(line)) lines.push_back(line);
  }
  return lines;
}

off_t file_size(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

TEST(KillResume, SigkilledCliRunResumesToGoldenSummary) {
  const char* cli = std::getenv("DYDROID_CLI");
  if (cli == nullptr || ::access(cli, X_OK) != 0) {
    GTEST_SKIP() << "DYDROID_CLI not set (or not executable); "
                    "run via ctest to exercise the SIGKILL path";
  }
  const std::string dir = testing::TempDir();
  const std::string tag = std::to_string(::getpid());
  const std::string journal = dir + "dydroid_sigkill_" + tag + ".jrnl";
  const std::string golden_out = dir + "dydroid_sigkill_golden_" + tag;
  const std::string resumed_out = dir + "dydroid_sigkill_resumed_" + tag;
  std::remove(journal.c_str());

  const std::string base_args = " survey --scale 0.004 --seed 11 --jobs 2";
  // Uninterrupted golden run (no journal).
  ASSERT_EQ(std::system((std::string(cli) + base_args + " > " + golden_out +
                         " 2>/dev/null")
                            .c_str()),
            0);

  // Journaled run, SIGKILLed as soon as the journal holds real records.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
    }
    ::execl(cli, "dydroid", "survey", "--scale", "0.004", "--seed", "11",
            "--jobs", "2", "--journal", journal.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  bool exited = false;
  for (int i = 0; i < 5000; ++i) {  // up to ~5 s
    if (file_size(journal) > 256) break;  // journal is live: kill mid-run
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) {
      exited = true;  // finished before we could kill it — still resumable
      break;
    }
    ::usleep(1000);
  }
  if (!exited) {
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
  }

  // Resume and compare the stable summary lines.
  ASSERT_EQ(std::system((std::string(cli) + base_args + " --resume " +
                         journal + " > " + resumed_out + " 2>/dev/null")
                            .c_str()),
            0);
  const auto golden_lines = stable_lines(golden_out);
  const auto resumed_lines = stable_lines(resumed_out);
  ASSERT_FALSE(golden_lines.empty());
  EXPECT_EQ(resumed_lines, golden_lines);

  std::remove(journal.c_str());
  std::remove(golden_out.c_str());
  std::remove(resumed_out.c_str());
}

#endif  // DYDROID_HAVE_SUBPROCESS

}  // namespace
}  // namespace dydroid::driver
