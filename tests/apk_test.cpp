// Unit tests for the SimApk container: entries, CRC trap, signing.
#include <gtest/gtest.h>

#include "apk/apk.hpp"
#include "dex/builder.hpp"

namespace dydroid::apk {
namespace {

using support::ParseError;
using support::to_bytes;

ApkFile make_sample() {
  manifest::Manifest m;
  m.package = "com.example.app";
  m.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.example.app.Main", true});

  dex::DexBuilder b;
  b.cls("com.example.app.Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();

  ApkFile apk;
  apk.write_manifest(m);
  apk.write_classes_dex(b.build());
  apk.put("assets/data.bin", to_bytes("hello"));
  apk.put("lib/armeabi/libfoo.so", to_bytes("nativecode"));
  apk.sign("dev-key-1");
  return apk;
}

TEST(Apk, EntriesRoundTrip) {
  const auto apk = make_sample();
  const auto bytes = apk.serialize();
  EXPECT_TRUE(looks_like_apk(bytes));
  const auto back = ApkFile::deserialize(bytes);
  EXPECT_EQ(back.entry_count(), 4u);
  EXPECT_TRUE(back.contains("assets/data.bin"));
  EXPECT_EQ(support::to_string(*back.get("assets/data.bin")), "hello");
}

TEST(Apk, ManifestRoundTrip) {
  const auto back = ApkFile::deserialize(make_sample().serialize());
  const auto m = back.read_manifest();
  EXPECT_EQ(m.package, "com.example.app");
  ASSERT_EQ(m.components.size(), 1u);
}

TEST(Apk, ClassesDexRoundTrip) {
  const auto back = ApkFile::deserialize(make_sample().serialize());
  const auto dex = back.read_classes_dex();
  ASSERT_TRUE(dex.has_value());
  EXPECT_NE(dex->find_class("com.example.app.Main"), nullptr);
}

TEST(Apk, MissingClassesDexIsNullopt) {
  ApkFile apk;
  EXPECT_EQ(apk.read_classes_dex(), std::nullopt);
}

TEST(Apk, MissingManifestThrows) {
  ApkFile apk;
  EXPECT_THROW((void)apk.read_manifest(), ParseError);
}

TEST(Apk, SignatureVerifies) {
  auto apk = make_sample();
  EXPECT_TRUE(apk.verify_signature());
  EXPECT_EQ(apk.signer(), "dev-key-1");
}

TEST(Apk, SignatureBreaksOnTamper) {
  auto apk = make_sample();
  apk.put("assets/data.bin", to_bytes("tampered"));
  EXPECT_FALSE(apk.verify_signature());
  apk.sign("dev-key-1");
  EXPECT_TRUE(apk.verify_signature());
}

TEST(Apk, UnsignedDoesNotVerify) {
  ApkFile apk;
  apk.put("x", to_bytes("y"));
  EXPECT_FALSE(apk.verify_signature());
}

TEST(Apk, SignatureSurvivesSerialization) {
  const auto back = ApkFile::deserialize(make_sample().serialize());
  EXPECT_TRUE(back.verify_signature());
}

TEST(Apk, CrcTrapDetected) {
  auto apk = make_sample();
  EXPECT_FALSE(apk.has_crc_trap());
  apk.put_with_bad_crc("assets/trap.bin", to_bytes("trap"));
  EXPECT_TRUE(apk.has_crc_trap());
}

TEST(Apk, CrcTrapLenientParseSucceeds) {
  auto apk = make_sample();
  apk.put_with_bad_crc("assets/trap.bin", to_bytes("trap"));
  apk.sign("dev-key-1");
  const auto bytes = apk.serialize();
  // Device install (lenient): OK — the app still runs.
  EXPECT_NO_THROW((void)ApkFile::deserialize(bytes, ParseMode::kLenient));
}

TEST(Apk, CrcTrapStrictParseThrows) {
  auto apk = make_sample();
  apk.put_with_bad_crc("assets/trap.bin", to_bytes("trap"));
  const auto bytes = apk.serialize();
  // Tooling (strict, apktool-like): crashes — anti-repackaging works.
  EXPECT_THROW((void)ApkFile::deserialize(bytes, ParseMode::kStrict),
               ParseError);
}

TEST(Apk, RemoveEntry) {
  auto apk = make_sample();
  EXPECT_TRUE(apk.remove("assets/data.bin"));
  EXPECT_FALSE(apk.remove("assets/data.bin"));
  EXPECT_FALSE(apk.contains("assets/data.bin"));
}

TEST(Apk, BadMagicThrows) {
  auto bytes = make_sample().serialize();
  bytes[0] = 'Z';
  EXPECT_THROW((void)ApkFile::deserialize(bytes), ParseError);
}

TEST(Apk, EntryNamesSorted) {
  const auto names = make_sample().entry_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace dydroid::apk
