// Extended dynamic-loading semantics: multi-file dexPath lists, ODEX
// reloads, package-context class retrieval, loader parent delegation, and
// HTTPS connection subclasses — the long tail of §II's loading channels.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "os/device.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {
namespace {

constexpr const char* kPkg = "com.loading.app";

apk::ApkFile wrap(dex::DexFile dexfile, manifest::Manifest man) {
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(dexfile);
  apk.sign("k");
  return apk;
}

manifest::Manifest man_for(const std::string& pkg) {
  manifest::Manifest m;
  m.package = pkg;
  m.add_permission(manifest::kInternet);
  return m;
}

support::Bytes payload_with(const std::string& cls, int value) {
  dex::DexBuilder b;
  b.cls(cls).method("run", 1).const_int(1, value).ret(1).done();
  return b.build().serialize();
}

struct Env {
  os::Device device;
  std::unique_ptr<Vm> vm;
};

Env boot(dex::DexFile dexfile, const std::string& pkg = kPkg) {
  Env env;
  auto man = man_for(pkg);
  auto apk = wrap(std::move(dexfile), man);
  EXPECT_TRUE(env.device.install(apk).ok());
  AppContext app;
  app.manifest = man;
  env.vm = std::make_unique<Vm>(env.device, std::move(app));
  EXPECT_TRUE(env.vm->load_app(apk).ok());
  return env;
}

// ---------------------------------------------------------------------------
// Multi-file dexPath (':'-separated list, as in real DexClassLoader).
// ---------------------------------------------------------------------------

TEST(MultiDex, ColonSeparatedListLoadsAllFiles) {
  dex::DexBuilder b;
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1,
              "/data/data/com.loading.app/files/a.dex:"
              "/data/data/com.loading.app/files/b.dex");
  m.const_str(2, "/data/data/com.loading.app/cache");
  m.new_instance(3, "dalvik.system.DexClassLoader");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  // Load one class from EACH file through the same loader.
  m.const_str(4, "pay.A");
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(5);
  m.invoke_virtual("pay.A", "run", {5});
  m.move_result(6);
  m.const_str(4, "pay.B");
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(5);
  m.invoke_virtual("pay.B", "run", {5});
  m.move_result(7);
  m.add(8, 6, 7);
  m.ret(8);
  m.done();
  auto env = boot(b.build());
  const auto sys = os::Principal::system();
  ASSERT_TRUE(env.device.vfs()
                  .write_file(sys, "/data/data/com.loading.app/files/a.dex",
                              payload_with("pay.A", 10))
                  .ok());
  ASSERT_TRUE(env.device.vfs()
                  .write_file(sys, "/data/data/com.loading.app/files/b.dex",
                              payload_with("pay.B", 32))
                  .ok());
  std::vector<std::string> paths;
  env.vm->instrumentation().on_dex_load =
      [&](LoaderKind, const std::string& dex_path, const std::string&,
          const StackTrace&) { paths.push_back(dex_path); };
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_EQ(env.vm->call_method(main, "go").as_int(), 42);
  // One event names both files; both odex by-products emitted.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NE(paths[0].find("a.dex:"), std::string::npos);
  EXPECT_TRUE(
      env.device.vfs().exists("/data/data/com.loading.app/cache/a.odex"));
  EXPECT_TRUE(
      env.device.vfs().exists("/data/data/com.loading.app/cache/b.odex"));
}

// ---------------------------------------------------------------------------
// ODEX reload: the optimized by-product is itself loadable (paper: formats
// "APK, JAR, ZIP, DEX, and ODEX").
// ---------------------------------------------------------------------------

TEST(Odex, OptimizedOutputIsLoadable) {
  dex::DexBuilder b;
  auto cls = b.cls(std::string(kPkg) + ".Main", "android.app.Activity");
  auto first = cls.method("first", 1);
  first.const_str(1, "/data/data/com.loading.app/files/p.dex");
  first.const_str(2, "/data/data/com.loading.app/cache");
  first.new_instance(3, "dalvik.system.DexClassLoader");
  first.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  first.return_void();
  first.done();
  auto second = cls.method("second", 1);
  second.const_str(1, "/data/data/com.loading.app/cache/p.odex");
  second.const_str(2, "/data/data/com.loading.app/cache");
  second.new_instance(3, "dalvik.system.DexClassLoader");
  second.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  second.const_str(4, "pay.A");
  second.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  second.move_result(5);
  second.invoke_virtual("java.lang.Class", "newInstance", {5});
  second.move_result(5);
  second.invoke_virtual("pay.A", "run", {5});
  second.move_result(6);
  second.ret(6);
  second.done();
  auto env = boot(b.build());
  ASSERT_TRUE(env.device.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.loading.app/files/p.dex",
                              payload_with("pay.A", 9))
                  .ok());
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  (void)env.vm->call_method(main, "first");
  EXPECT_EQ(env.vm->call_method(main, "second").as_int(), 9);
}

// ---------------------------------------------------------------------------
// Package contexts (paper §II).
// ---------------------------------------------------------------------------

TEST(PackageContext, LoadsClassesFromAnotherInstalledApp) {
  // The "other" app, installed alongside.
  dex::DexBuilder other;
  other.cls("com.provider.lib.Feature")
      .method("run", 1)
      .const_int(1, 77)
      .ret(1)
      .done();
  auto other_apk = wrap(other.build(), man_for("com.provider.host"));

  // The consumer: createPackageContext -> getClassLoader -> loadClass.
  dex::DexBuilder b;
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1, "com.provider.host");
  m.invoke_static("android.content.Context", "createPackageContext", {1});
  m.move_result(2);
  m.invoke_virtual("android.content.Context", "getClassLoader", {2});
  m.move_result(3);
  m.const_str(4, "com.provider.lib.Feature");
  m.invoke_virtual("java.lang.ClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(5);
  m.invoke_virtual("com.provider.lib.Feature", "run", {5});
  m.move_result(6);
  m.ret(6);
  m.done();
  auto env = boot(b.build());
  ASSERT_TRUE(env.device.install(other_apk).ok());

  std::string logged_path;
  env.vm->instrumentation().on_dex_load =
      [&](LoaderKind kind, const std::string& path, const std::string&,
          const StackTrace&) {
        logged_path = path;
        EXPECT_EQ(kind, LoaderKind::PathClassLoader);
      };
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_EQ(env.vm->call_method(main, "go").as_int(), 77);
  // Mediated like every other loader: the other APK's path was logged.
  EXPECT_EQ(logged_path, "/data/app/com.provider.host.apk");
}

TEST(PackageContext, MissingPackageThrows) {
  dex::DexBuilder b;
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1, "com.not.installed");
  m.invoke_static("android.content.Context", "createPackageContext", {1});
  m.done();
  auto env = boot(b.build());
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_THROW((void)env.vm->call_method(main, "go"), VmException);
}

// ---------------------------------------------------------------------------
// Parent delegation & HTTPS.
// ---------------------------------------------------------------------------

TEST(Delegation, ChildLoaderSeesHostClassesViaParent) {
  // A runtime loader's payload calls back into a host class: resolution
  // must delegate to the app loader.
  dex::DexBuilder payload;
  auto pm = payload.cls("pay.CallsBack").method("run", 1);
  pm.invoke_static(std::string(kPkg) + ".Host", "give");
  pm.move_result(1);
  pm.ret(1);
  pm.done();

  dex::DexBuilder b;
  b.cls(std::string(kPkg) + ".Host")
      .static_method("give", 0)
      .const_int(0, 123)
      .ret(0)
      .done();
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1, "/data/data/com.loading.app/files/cb.dex");
  m.const_str(2, "");
  m.new_instance(3, "dalvik.system.DexClassLoader");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  m.const_str(4, "pay.CallsBack");
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(5);
  m.invoke_virtual("pay.CallsBack", "run", {5});
  m.move_result(6);
  m.ret(6);
  m.done();
  auto env = boot(b.build());
  ASSERT_TRUE(env.device.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.loading.app/files/cb.dex",
                              payload.build().serialize())
                  .ok());
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_EQ(env.vm->call_method(main, "go").as_int(), 123);
}

TEST(Https, SubclassHierarchyResolvesIntrinsics) {
  // HttpsURLConnection -> HttpURLConnection -> URLConnection chain.
  dex::DexBuilder b;
  auto m = b.cls(std::string(kPkg) + ".Main", "android.app.Activity")
               .method("fetch", 1);
  m.new_instance(1, "java.net.URL");
  m.const_str(2, "https://secure.example.com/x");
  m.invoke_virtual("java.net.URL", "<init>", {1, 2});
  m.invoke_virtual("java.net.URL", "openConnection", {1});
  m.move_result(3);
  // Call through the HTTPS class name explicitly.
  m.invoke_virtual("java.net.HttpsURLConnection", "getInputStream", {3});
  m.move_result(4);
  m.invoke_virtual("java.io.InputStream", "read", {4});
  m.move_result(5);
  m.invoke_static("java.lang.String", "valueOf", {5});
  m.move_result(6);
  m.ret(6);
  m.done();
  auto env = boot(b.build());
  env.device.network().host("https://secure.example.com/x",
                            support::to_bytes("tls-payload"));
  auto main = env.vm->instantiate(std::string(kPkg) + ".Main");
  EXPECT_EQ(env.vm->call_method(main, "fetch").as_str(), "tls-payload");
}

}  // namespace
}  // namespace dydroid::vm
