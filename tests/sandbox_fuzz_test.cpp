// Sandbox pipe-protocol fuzz belt (tier 2, docs/ISOLATION.md): whatever a
// dying child managed to emit — torn, bit-flipped, duplicated, padded or
// plain garbage — decode_sandbox_result must either reject it cleanly or
// return the original outcome; it must never throw, and a full corpus run
// under injected pipe corruption must degrade app-by-app (quarantined
// crash outcomes) without corrupting any other app's report.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/sandbox.hpp"
#include "support/fault.hpp"

namespace dydroid::driver {
namespace {

AppOutcome sample_outcome() {
  AppOutcome outcome;
  outcome.report.package = "com.sandbox.fuzz";
  outcome.report.status = core::DynamicStatus::kExercised;
  outcome.seed = 0xBE9C0011ull;
  outcome.wall_ms = 3.25;
  outcome.attempts = 1;
  return outcome;
}

/// True when `decoded` reproduces the sample stream's content exactly.
bool matches_sample(const DecodedOutcome& decoded, std::size_t index,
                    const AppOutcome& original) {
  return decoded.index == index && decoded.outcome.seed == original.seed &&
         core::report_to_json(decoded.outcome.report) ==
             core::report_to_json(original.report);
}

TEST(SandboxFuzz, EveryTruncationFailsCleanly) {
  const AppOutcome outcome = sample_outcome();
  const support::Bytes stream = encode_sandbox_result(9, outcome);
  for (std::size_t keep = 0; keep < stream.size(); ++keep) {
    const auto decoded = decode_sandbox_result(
        std::span<const std::uint8_t>(stream.data(), keep));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(SandboxFuzz, EverySingleBitFlipIsRejectedOrEquivalent) {
  const AppOutcome outcome = sample_outcome();
  const support::Bytes stream = encode_sandbox_result(9, outcome);
  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      support::Bytes mutated = stream;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      // Must not throw; a CRC-colliding accept would have to decode to the
      // same content, anything else is corruption leaking through.
      const auto decoded = decode_sandbox_result(mutated);
      if (decoded.ok()) {
        EXPECT_TRUE(matches_sample(decoded.value(), 9, outcome))
            << "flip at byte " << byte << " bit " << bit
            << " decoded to different content";
      }
    }
  }
}

TEST(SandboxFuzz, StructuralMutationsAreRejected) {
  const AppOutcome outcome = sample_outcome();
  const support::Bytes stream = encode_sandbox_result(9, outcome);

  // A duplicated frame: two records where the protocol demands exactly one.
  support::Bytes doubled = stream;
  doubled.insert(doubled.end(), stream.begin() + 8, stream.end());
  EXPECT_FALSE(decode_sandbox_result(doubled).ok());

  // Trailing garbage after the valid frame parses as a torn second frame.
  support::Bytes padded = stream;
  for (int i = 0; i < 11; ++i) padded.push_back(0xAB);
  EXPECT_FALSE(decode_sandbox_result(padded).ok());

  // Wrong magic: a journal file (or anything else) fed to the sandbox.
  support::Bytes wrong_magic = stream;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(decode_sandbox_result(wrong_magic).ok());

  // Pure noise of assorted sizes.
  for (const std::size_t size : {1u, 8u, 16u, 64u, 333u}) {
    support::Bytes noise(size);
    for (std::size_t i = 0; i < size; ++i) {
      noise[i] = static_cast<std::uint8_t>(i * 37u + 5u);
    }
    EXPECT_FALSE(decode_sandbox_result(noise).ok()) << "noise size " << size;
  }
}

TEST(SandboxFuzz, PipeCorruptionNeverCorruptsTheRun) {
  appgen::CorpusConfig corpus_config;
  corpus_config.scale = 0.002;
  const auto corpus = appgen::generate_corpus(corpus_config);

  // Thread-mode golden: what every app reports when nothing is injected.
  const core::DyDroid clean{core::PipelineOptions{}};
  RunnerConfig thread_config;
  thread_config.jobs = 2;
  const auto golden = CorpusRunner(clean, thread_config).run(corpus);

  const auto plan_result = support::FaultPlan::parse("sandbox.pipe=p:0.5");
  ASSERT_TRUE(plan_result.ok()) << plan_result.error();
  const auto& plan = plan_result.value();
  core::PipelineOptions options;
  options.faults = &plan;
  const core::DyDroid faulty(std::move(options));

  RunnerConfig config;
  config.jobs = 2;
  config.isolation_mode = IsolationMode::kForkPerApp;
  const auto result = CorpusRunner(faulty, config).run(corpus);

  ASSERT_EQ(result.outcomes.size(), corpus.apps.size());
  std::size_t torn = 0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& outcome = result.outcomes[i];
    if (outcome.sandbox_fate != SandboxFate::kNone) {
      // The damaged frame cost this app its result — quarantined crash —
      // and nothing else.
      ++torn;
      EXPECT_EQ(outcome.sandbox_fate, SandboxFate::kCrashed);
      EXPECT_TRUE(outcome.quarantined);
      EXPECT_EQ(outcome.report.status, core::DynamicStatus::kCrash);
    } else {
      EXPECT_EQ(core::report_to_json(outcome.report),
                core::report_to_json(golden.outcomes[i].report))
          << "untouched app " << i << " diverged";
    }
  }
  // p:0.5 over a few dozen apps: both populations must be non-empty for
  // the assertions above to mean anything.
  EXPECT_GT(torn, 0u);
  EXPECT_LT(torn, result.outcomes.size());
  EXPECT_EQ(result.stats.sandbox_crashed, torn);
  EXPECT_EQ(result.stats.apps, corpus.apps.size());
}

}  // namespace
}  // namespace dydroid::driver
