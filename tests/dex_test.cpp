// Unit tests for SimDex: builder, serialization, validation, disassembly.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "dex/disassembler.hpp"
#include "dex/dexfile.hpp"
#include "support/error.hpp"

namespace dydroid::dex {
namespace {

using support::ParseError;

DexFile make_simple() {
  DexBuilder b;
  auto cls = b.cls("com.example.Main", "android.app.Activity");
  cls.instance_field("counter");
  auto m = cls.method("onCreate", 1);
  m.const_int(1, 41);
  m.const_int(2, 1);
  m.add(3, 1, 2);
  m.ret(3);
  m.done();
  return b.build();
}

TEST(DexBuilder, BuildsWellFormedFile) {
  const auto dex = make_simple();
  EXPECT_EQ(dex.classes().size(), 1u);
  EXPECT_EQ(dex.validate(), std::nullopt);
  const auto* cls = dex.find_class("com.example.Main");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->super_name, "android.app.Activity");
  const auto* m = cls->find_method("onCreate");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->num_params, 1);
  EXPECT_GE(m->num_registers, 4);
}

TEST(DexBuilder, ImplicitReturnAppended) {
  DexBuilder b;
  auto m = b.cls("a.B").method("f", 0);
  m.const_int(0, 1);
  m.done();
  const auto dex = b.build();
  const auto& code = dex.find_class("a.B")->methods[0].code;
  ASSERT_EQ(code.size(), 2u);
  EXPECT_EQ(code.back().op, Op::ReturnVoid);
}

TEST(DexBuilder, LabelsResolveForwardAndBackward) {
  DexBuilder b;
  auto m = b.cls("a.B").method("loop", 1);
  m.const_int(1, 3);
  m.label("top");
  m.if_eqz(1, "end");
  m.const_int(2, 1);
  m.sub(1, 1, 2);
  m.jump("top");
  m.label("end");
  m.return_void();
  m.done();
  const auto dex = b.build();
  EXPECT_EQ(dex.validate(), std::nullopt);
  const auto& code = dex.find_class("a.B")->methods[0].code;
  EXPECT_EQ(code[1].target, 5);  // if_eqz -> label end
  EXPECT_EQ(code[4].target, 1);  // goto -> label top
}

TEST(DexBuilder, TrailingLabelAfterTerminatorGetsLandingPad) {
  // Regression: a jump-to-exit label placed after a terminator must still
  // resolve to a real instruction (an implicit return is appended).
  DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 1);
  m.if_eqz(0, "exit");
  m.const_int(1, 1);
  m.jump("exit");
  m.label("exit");
  m.done();
  const auto dex = b.build();
  EXPECT_EQ(dex.validate(), std::nullopt);
  const auto& code = dex.find_class("a.B")->methods[0].code;
  EXPECT_EQ(code.back().op, Op::ReturnVoid);
  EXPECT_EQ(code[0].target, static_cast<std::int32_t>(code.size() - 1));
}

TEST(DexBuilder, UndefinedLabelThrows) {
  DexBuilder b;
  auto m = b.cls("a.B").method("f", 0);
  m.jump("nowhere");
  EXPECT_THROW(m.done(), std::logic_error);
}

TEST(DexBuilder, ReopenClassAddsMethods) {
  DexBuilder b;
  b.cls("a.B").method("f", 0).return_void().done();
  b.cls("a.B").method("g", 0).return_void().done();
  const auto dex = b.build();
  EXPECT_EQ(dex.find_class("a.B")->methods.size(), 2u);
}

TEST(DexBuilder, TooManyInvokeArgsThrows) {
  DexBuilder b;
  auto m = b.cls("a.B").method("f", 0);
  EXPECT_THROW(
      m.invoke_static("x.Y", "g", {0, 1, 2, 3, 4, 5, 6, 7, 0}),
      std::invalid_argument);
  m.return_void();
  m.done();
}

TEST(DexFile, SerializeDeserializeRoundTrip) {
  const auto dex = make_simple();
  const auto bytes = dex.serialize();
  EXPECT_TRUE(looks_like_dex(bytes));
  const auto back = DexFile::deserialize(bytes);
  EXPECT_EQ(back.classes().size(), 1u);
  EXPECT_EQ(back.serialize(), bytes);  // stable round trip
}

TEST(DexFile, DeserializeBadMagicThrows) {
  auto bytes = make_simple().serialize();
  bytes[0] = 'X';
  EXPECT_THROW((void)DexFile::deserialize(bytes), ParseError);
}

TEST(DexFile, DeserializeTruncatedThrows) {
  auto bytes = make_simple().serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)DexFile::deserialize(bytes), ParseError);
}

TEST(DexFile, ValidateCatchesBadStringIndex) {
  DexFile dex;
  ClassDef cls;
  cls.name = "a.B";
  Method m;
  m.name = "f";
  m.num_registers = 1;
  Instruction ins;
  ins.op = Op::ConstStr;
  ins.name = 99;  // out of range
  m.code.push_back(ins);
  cls.methods.push_back(m);
  dex.add_class(cls);
  EXPECT_NE(dex.validate(), std::nullopt);
}

TEST(DexFile, ValidateCatchesBadBranchTarget) {
  DexFile dex;
  ClassDef cls;
  cls.name = "a.B";
  Method m;
  m.name = "f";
  m.num_registers = 1;
  Instruction ins;
  ins.op = Op::Goto;
  ins.target = 5;  // out of range
  m.code.push_back(ins);
  cls.methods.push_back(m);
  dex.add_class(cls);
  EXPECT_NE(dex.validate(), std::nullopt);
}

TEST(DexFile, ValidateCatchesRegisterOverflow) {
  DexFile dex;
  ClassDef cls;
  cls.name = "a.B";
  Method m;
  m.name = "f";
  m.num_registers = 2;
  Instruction ins;
  ins.op = Op::Move;
  ins.a = 1;
  ins.b = 7;  // register file is only 2 wide
  m.code.push_back(ins);
  cls.methods.push_back(m);
  dex.add_class(cls);
  EXPECT_NE(dex.validate(), std::nullopt);
}

TEST(DexFile, InternDeduplicates) {
  DexFile dex;
  const auto a = dex.intern("hello");
  const auto b = dex.intern("hello");
  const auto c = dex.intern("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dex.string_at(a), "hello");
}

TEST(DexFile, ExtrasSurviveRoundTrip) {
  auto dex = make_simple();
  dex.add_extra(ExtraSection{"custom_meta", support::to_bytes("opaque")});
  const auto back = DexFile::deserialize(dex.serialize());
  ASSERT_EQ(back.extras().size(), 1u);
  EXPECT_EQ(back.extras()[0].name, "custom_meta");
}

TEST(Disassembler, ContainsClassAndOps) {
  const auto text = disassemble(make_simple());
  EXPECT_NE(text.find(".class com.example.Main"), std::string::npos);
  EXPECT_NE(text.find("const-int"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
}

TEST(Disassembler, ValidDebugInfoAccepted) {
  auto dex = make_simple();
  dex.add_extra(ExtraSection{
      std::string(kDebugInfoSection),
      encode_debug_info({{0, 10}, {1, 11}, {3, 12}})});
  EXPECT_NO_THROW((void)disassemble(dex));
}

TEST(Disassembler, MalformedDebugInfoThrows) {
  auto dex = make_simple();
  // Non-increasing pcs: the tooling rejects this while the VM (which skips
  // the section) keeps running — the anti-decompilation asymmetry.
  dex.add_extra(ExtraSection{std::string(kDebugInfoSection),
                             encode_debug_info({{5, 1}, {5, 2}})});
  EXPECT_THROW((void)disassemble(dex), ParseError);
}

TEST(Disassembler, TruncatedDebugInfoThrows) {
  auto dex = make_simple();
  support::ByteWriter w;
  w.u32(3);  // declares 3 entries, provides none
  dex.add_extra(ExtraSection{std::string(kDebugInfoSection), w.take()});
  EXPECT_THROW((void)disassemble(dex), ParseError);
}

TEST(Instruction, KindPredicates) {
  Instruction ins;
  ins.op = Op::Goto;
  EXPECT_TRUE(ins.is_branch());
  EXPECT_TRUE(ins.is_terminator());
  ins.op = Op::InvokeStatic;
  EXPECT_TRUE(ins.is_invoke());
  EXPECT_FALSE(ins.is_branch());
  ins.op = Op::Return;
  EXPECT_TRUE(ins.is_terminator());
}

class OpNameTest : public ::testing::TestWithParam<int> {};

TEST_P(OpNameTest, EveryOpcodeHasAMnemonic) {
  const auto op = static_cast<Op>(GetParam());
  EXPECT_NE(op_name(op), "invalid");
  EXPECT_FALSE(op_name(op).empty());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpNameTest,
                         ::testing::Range(0, kOpCount));

}  // namespace
}  // namespace dydroid::dex
