// MiniMonkey tests: outcomes, determinism, event delivery.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "monkey/monkey.hpp"

namespace dydroid::monkey {
namespace {

apk::ApkFile make_apk(dex::DexFile dexfile, manifest::Manifest m) {
  apk::ApkFile apk;
  apk.write_manifest(m);
  apk.write_classes_dex(dexfile);
  apk.sign("k");
  return apk;
}

struct Ran {
  os::Device device;
  std::unique_ptr<vm::Vm> vm;
  MonkeyResult result;
};

Ran run(dex::DexFile dexfile, manifest::Manifest m, int events = 40,
        std::uint64_t seed = 1) {
  Ran ran;
  auto apk = make_apk(std::move(dexfile), m);
  EXPECT_TRUE(ran.device.install(apk).ok());
  vm::AppContext app;
  app.manifest = std::move(m);
  ran.vm = std::make_unique<vm::Vm>(ran.device, std::move(app));
  EXPECT_TRUE(ran.vm->load_app(apk).ok());
  MonkeyConfig config;
  config.num_events = events;
  support::Rng rng(seed);
  ran.result = run_monkey(*ran.vm, config, rng);
  return ran;
}

manifest::Manifest man_with_launcher(const std::string& pkg,
                                     const std::string& activity) {
  manifest::Manifest m;
  m.package = pkg;
  m.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, activity, true});
  return m;
}

TEST(Monkey, ExercisesSimpleActivity) {
  dex::DexBuilder b;
  b.cls("a.b.Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();
  auto ran = run(b.build(), man_with_launcher("a.b", "a.b.Main"));
  EXPECT_EQ(ran.result.outcome, Outcome::kExercised);
  EXPECT_EQ(ran.result.events_delivered, 40);
}

TEST(Monkey, NoLauncherMeansNoActivity) {
  dex::DexBuilder b;
  b.cls("a.b.Svc", "android.app.Service")
      .method("onStartCommand", 1)
      .return_void()
      .done();
  manifest::Manifest m;
  m.package = "a.b";
  m.components.push_back(
      manifest::Component{manifest::ComponentKind::Service, "a.b.Svc", false});
  auto ran = run(b.build(), m);
  EXPECT_EQ(ran.result.outcome, Outcome::kNoActivity);
  EXPECT_EQ(ran.result.events_delivered, 0);
}

TEST(Monkey, CrashInOnCreateReported) {
  dex::DexBuilder b;
  b.cls("a.b.Main", "android.app.Activity")
      .method("onCreate", 1)
      .const_str(1, "boom")
      .throw_str(1)
      .done();
  auto ran = run(b.build(), man_with_launcher("a.b", "a.b.Main"));
  EXPECT_EQ(ran.result.outcome, Outcome::kCrash);
  EXPECT_EQ(ran.result.crash_message, "boom");
}

TEST(Monkey, CrashInClickHandlerReported) {
  dex::DexBuilder b;
  auto cls = b.cls("a.b.Main", "android.app.Activity");
  cls.method("onCreate", 1).return_void().done();
  auto m = cls.method("onClick", 2);
  m.const_str(2, "click crash");
  m.throw_str(2);
  m.done();
  auto ran = run(b.build(), man_with_launcher("a.b", "a.b.Main"));
  EXPECT_EQ(ran.result.outcome, Outcome::kCrash);
  EXPECT_EQ(ran.result.crash_message, "click crash");
}

TEST(Monkey, ApplicationContainerBootsBeforeActivity) {
  // Container sets a static flag; activity onCreate throws unless it's set.
  dex::DexBuilder b;
  auto app_cls = b.cls("shield.Container", "android.app.Application");
  app_cls.static_field("ready");
  auto boot = app_cls.method("onCreate", 1);
  boot.const_int(1, 1);
  boot.sput(1, "shield.Container", "ready");
  boot.done();
  auto main = b.cls("a.b.Main", "android.app.Activity").method("onCreate", 1);
  main.sget(1, "shield.Container", "ready");
  main.if_nez(1, "ok");
  main.const_str(2, "container did not run first");
  main.throw_str(2);
  main.label("ok");
  main.return_void();
  main.done();

  auto m = man_with_launcher("a.b", "a.b.Main");
  m.application_name = "shield.Container";
  auto ran = run(b.build(), m);
  EXPECT_EQ(ran.result.outcome, Outcome::kExercised)
      << ran.result.crash_message;
}

TEST(Monkey, ClickEventsReachHandler) {
  // Count clicks in a static field; expect a healthy share of the events.
  dex::DexBuilder b;
  auto cls = b.cls("a.b.Main", "android.app.Activity");
  cls.static_field("clicks");
  cls.method("onCreate", 1).return_void().done();
  auto m = cls.method("onClick", 2);
  m.sget(2, "a.b.Main", "clicks");
  m.const_int(3, 1);
  m.add(2, 2, 3);
  m.sput(2, "a.b.Main", "clicks");
  m.done();
  cls.static_method("readClicks", 0)
      .sget(0, "a.b.Main", "clicks")
      .ret(0)
      .done();
  auto ran = run(b.build(), man_with_launcher("a.b", "a.b.Main"), 200);
  EXPECT_EQ(ran.result.outcome, Outcome::kExercised);
  const auto clicks = ran.vm->call_static("a.b.Main", "readClicks").as_int();
  EXPECT_GT(clicks, 60);   // ~60% of 200 events are clicks
  EXPECT_LT(clicks, 200);  // but not all of them
}

TEST(Monkey, ServiceAndReceiverEventsDelivered) {
  dex::DexBuilder b;
  b.cls("a.b.Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();
  auto svc = b.cls("a.b.Sync", "android.app.Service");
  svc.static_field("started");
  auto sm = svc.method("onStartCommand", 1);
  sm.const_int(1, 1);
  sm.sput(1, "a.b.Sync", "started");
  sm.done();
  auto rcv = b.cls("a.b.Boot");
  rcv.static_field("received");
  auto rm = rcv.method("onReceive", 1);
  rm.const_int(1, 1);
  rm.sput(1, "a.b.Boot", "received");
  rm.done();

  auto m = man_with_launcher("a.b", "a.b.Main");
  m.components.push_back(
      manifest::Component{manifest::ComponentKind::Service, "a.b.Sync", false});
  m.components.push_back(
      manifest::Component{manifest::ComponentKind::Receiver, "a.b.Boot", false});
  auto ran = run(b.build(), m, 300);
  EXPECT_EQ(ran.result.outcome, Outcome::kExercised);
}

TEST(Monkey, DeterministicAcrossRuns) {
  dex::DexBuilder b;
  auto cls = b.cls("a.b.Main", "android.app.Activity");
  cls.method("onCreate", 1).return_void().done();
  auto m = cls.method("onClick", 2);
  m.const_str(2, "t");
  m.invoke_static("android.util.Log", "d", {2, 1});
  m.done();
  const auto dexfile = b.build();

  auto events_of = [&](std::uint64_t seed) {
    auto ran = run(dexfile, man_with_launcher("a.b", "a.b.Main"), 50, seed);
    std::vector<std::string> out;
    for (const auto& e : ran.vm->events()) out.push_back(e.detail);
    return out;
  };
  EXPECT_EQ(events_of(42), events_of(42));
  EXPECT_NE(events_of(42), events_of(43));
}

TEST(Monkey, OutcomeNames) {
  EXPECT_EQ(outcome_name(Outcome::kNoActivity), "no-activity");
  EXPECT_EQ(outcome_name(Outcome::kCrash), "crash");
  EXPECT_EQ(outcome_name(Outcome::kExercised), "exercised");
}

}  // namespace
}  // namespace dydroid::monkey
