// MiniDalvik VM tests: interpretation, class loading & DCL hooks, file and
// stream instrumentation, native loading, reflection, budgets.
#include <gtest/gtest.h>

#include "dex/builder.hpp"
#include "nativebin/native_library.hpp"
#include "os/device.hpp"
#include "vm/frameworks.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {
namespace {

using support::to_bytes;

constexpr const char* kPkg = "com.example.app";

apk::ApkFile wrap_apk(dex::DexFile dex, manifest::Manifest m) {
  apk::ApkFile apk;
  apk.write_manifest(m);
  apk.write_classes_dex(dex);
  apk.sign("test-key");
  return apk;
}

manifest::Manifest base_manifest() {
  manifest::Manifest m;
  m.package = kPkg;
  m.add_permission(manifest::kInternet);
  m.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, std::string(kPkg) + ".Main", true});
  return m;
}

/// Fixture wiring a device + VM around a caller-supplied classes.dex.
class VmTest : public ::testing::Test {
 protected:
  void boot(dex::DexFile dex, manifest::Manifest m) {
    apk_ = wrap_apk(std::move(dex), m);
    ASSERT_TRUE(device_.install(apk_).ok());
    AppContext app;
    app.manifest = std::move(m);
    vm_ = std::make_unique<Vm>(device_, std::move(app));
    ASSERT_TRUE(vm_->load_app(apk_).ok());
  }
  void boot(dex::DexFile dex) { boot(std::move(dex), base_manifest()); }

  os::Device device_;
  apk::ApkFile apk_;
  std::unique_ptr<Vm> vm_;
};

// ---------------------------------------------------------------------------
// Interpreter basics.
// ---------------------------------------------------------------------------

TEST_F(VmTest, ArithmeticAndReturn) {
  dex::DexBuilder b;
  b.cls("com.example.app.Calc")
      .static_method("compute", 0)
      .const_int(0, 6)
      .const_int(1, 7)
      .mul(2, 0, 1)
      .ret(2)
      .done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.Calc", "compute").as_int(), 42);
}

TEST_F(VmTest, LoopWithBranches) {
  // sum 1..n via loop
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Calc").static_method("sum", 1);
  m.const_int(1, 0);   // acc
  m.const_int(2, 1);   // one
  m.label("top");
  m.if_eqz(0, "end");
  m.add(1, 1, 0);
  m.sub(0, 0, 2);
  m.jump("top");
  m.label("end");
  m.ret(1);
  m.done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.Calc", "sum", {Value(10)})
                .as_int(),
            55);
}

TEST_F(VmTest, StringConcatAndCompare) {
  dex::DexBuilder b;
  b.cls("com.example.app.S")
      .static_method("f", 0)
      .const_str(0, "foo")
      .const_str(1, "bar")
      .concat(2, 0, 1)
      .const_str(3, "foobar")
      .cmp_eq(4, 2, 3)
      .ret(4)
      .done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.S", "f").as_int(), 1);
}

TEST_F(VmTest, InstanceFieldsAndConstructor) {
  dex::DexBuilder b;
  auto cls = b.cls("com.example.app.Counter");
  cls.instance_field("count");
  cls.method("<init>", 1).const_int(1, 10).iput(1, 0, "count").done();
  cls.method("bump", 1)
      .iget(1, 0, "count")
      .const_int(2, 1)
      .add(1, 1, 2)
      .iput(1, 0, "count")
      .ret(1)
      .done();
  boot(b.build());
  auto obj = vm_->instantiate("com.example.app.Counter");
  EXPECT_EQ(vm_->call_method(obj, "bump").as_int(), 11);
  EXPECT_EQ(vm_->call_method(obj, "bump").as_int(), 12);
}

TEST_F(VmTest, StaticFields) {
  dex::DexBuilder b;
  auto cls = b.cls("com.example.app.G");
  cls.static_field("flag");
  cls.static_method("set", 0)
      .const_int(0, 99)
      .sput(0, "com.example.app.G", "flag")
      .done();
  cls.static_method("get", 0)
      .sget(0, "com.example.app.G", "flag")
      .ret(0)
      .done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.G", "get").as_int(), 0);
  (void)vm_->call_static("com.example.app.G", "set");
  EXPECT_EQ(vm_->call_static("com.example.app.G", "get").as_int(), 99);
}

TEST_F(VmTest, InheritanceDispatchAcrossClasses) {
  dex::DexBuilder b;
  b.cls("com.example.app.Base").method("speak", 1).const_int(1, 1).ret(1).done();
  b.cls("com.example.app.Derived", "com.example.app.Base");
  boot(b.build());
  auto obj = vm_->instantiate("com.example.app.Derived");
  EXPECT_EQ(vm_->call_method(obj, "speak").as_int(), 1);
}

TEST_F(VmTest, FrameworkSuperMethodFallsThrough) {
  // Activity subclass calling the framework's setContentView no-op.
  dex::DexBuilder b;
  b.cls("com.example.app.Main", "android.app.Activity")
      .method("onCreate", 1)
      .const_int(1, 5)
      .invoke_virtual("com.example.app.Main", "setContentView", {0, 1})
      .const_int(2, 123)
      .ret(2)
      .done();
  boot(b.build());
  auto obj = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(obj, "onCreate").as_int(), 123);
}

// ---------------------------------------------------------------------------
// Exceptions & budgets.
// ---------------------------------------------------------------------------

TEST_F(VmTest, DivisionByZeroThrows) {
  dex::DexBuilder b;
  b.cls("com.example.app.E")
      .static_method("f", 0)
      .const_int(0, 1)
      .const_int(1, 0)
      .div(2, 0, 1)
      .done();
  boot(b.build());
  EXPECT_THROW((void)vm_->call_static("com.example.app.E", "f"), VmException);
}

TEST_F(VmTest, ThrowOpCarriesMessageAndTrace) {
  dex::DexBuilder b;
  b.cls("com.example.app.E")
      .static_method("f", 0)
      .const_str(0, "boom")
      .throw_str(0)
      .done();
  boot(b.build());
  try {
    (void)vm_->call_static("com.example.app.E", "f");
    FAIL() << "expected VmException";
  } catch (const VmException& e) {
    EXPECT_STREQ(e.what(), "boom");
    ASSERT_FALSE(e.trace().empty());
    EXPECT_EQ(e.trace()[0].class_name, "com.example.app.E");
    EXPECT_EQ(e.trace()[0].method_name, "f");
  }
}

TEST_F(VmTest, InfiniteLoopHitsAnrBudget) {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.E").static_method("spin", 0);
  m.label("top");
  m.jump("top");
  m.done();
  boot(b.build());
  try {
    (void)vm_->call_static("com.example.app.E", "spin");
    FAIL() << "expected ANR";
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("ANR"), std::string::npos);
  }
}

TEST_F(VmTest, UnboundedRecursionHitsDepthLimit) {
  dex::DexBuilder b;
  b.cls("com.example.app.E")
      .static_method("rec", 0)
      .invoke_static("com.example.app.E", "rec")
      .done();
  boot(b.build());
  try {
    (void)vm_->call_static("com.example.app.E", "rec");
    FAIL() << "expected StackOverflowError";
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("StackOverflow"), std::string::npos);
  }
}

TEST_F(VmTest, MissingClassThrowsClassNotFound) {
  dex::DexBuilder b;
  b.cls("com.example.app.E")
      .static_method("f", 0)
      .new_instance(0, "com.missing.Clazz")
      .done();
  boot(b.build());
  try {
    (void)vm_->call_static("com.example.app.E", "f");
    FAIL();
  } catch (const VmException& e) {
    EXPECT_NE(std::string(e.what()).find("ClassNotFound"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Dynamic code loading (the paper's core mechanism).
// ---------------------------------------------------------------------------

/// A payload dex with one class exposing run() -> 7.
support::Bytes payload_dex_bytes() {
  dex::DexBuilder b;
  b.cls("com.payload.Impl")
      .method("run", 1)
      .const_int(1, 7)
      .ret(1)
      .done();
  return b.build().serialize();
}

/// App whose trigger() DexClassLoader-loads a payload from `path` and runs
/// Impl.run() via loadClass/newInstance/getMethod/invoke.
dex::DexFile loader_app(const std::string& path,
                        const std::string& opt_dir = "") {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("trigger", 1);
  m.const_str(1, path);
  m.const_str(2, opt_dir);
  m.new_instance(3, "dalvik.system.DexClassLoader");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {3, 1, 2});
  m.const_str(4, "com.payload.Impl");
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass", {3, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.Class", "newInstance", {5});
  m.move_result(6);
  m.invoke_virtual("com.payload.Impl", "run", {6});
  m.move_result(7);
  m.ret(7);
  m.done();
  return b.build();
}

TEST_F(VmTest, DexClassLoaderLoadsAndRuns) {
  boot(loader_app("/data/data/com.example.app/files/p.dex",
                  "/data/data/com.example.app/cache"));
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/files/p.dex",
                              payload_dex_bytes())
                  .ok());

  LoaderKind seen_kind{};
  std::string seen_path;
  std::string seen_opt;
  StackTrace seen_trace;
  vm_->instrumentation().on_dex_load =
      [&](LoaderKind kind, const std::string& dex_path,
          const std::string& opt, const StackTrace& trace) {
        seen_kind = kind;
        seen_path = dex_path;
        seen_opt = opt;
        seen_trace = trace;
      };

  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "trigger").as_int(), 7);

  EXPECT_EQ(seen_kind, LoaderKind::DexClassLoader);
  EXPECT_EQ(seen_path, "/data/data/com.example.app/files/p.dex");
  EXPECT_EQ(seen_opt, "/data/data/com.example.app/cache");
  // Fig. 2: innermost frame is the loader ctor; the first non-framework
  // frame below it is the call site class.
  ASSERT_GE(seen_trace.size(), 2u);
  EXPECT_EQ(seen_trace[0].class_name, "dalvik.system.DexClassLoader");
  EXPECT_EQ(seen_trace[1].class_name, "com.example.app.Main");
  EXPECT_EQ(seen_trace[1].method_name, "trigger");
  // The odex by-product landed in the optimized dir.
  EXPECT_TRUE(device_.vfs().exists("/data/data/com.example.app/cache/p.odex"));
}

TEST_F(VmTest, DexClassLoaderLoadsFromApkContainer) {
  boot(loader_app("/data/data/com.example.app/files/p.apk"));
  apk::ApkFile payload;
  manifest::Manifest pm;
  pm.package = "com.payload";
  payload.write_manifest(pm);
  payload.put(apk::kClassesDexEntry, payload_dex_bytes());
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/files/p.apk",
                              payload.serialize())
                  .ok());
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "trigger").as_int(), 7);
}

TEST_F(VmTest, LoadingMissingFileThrows) {
  boot(loader_app("/data/data/com.example.app/files/absent.dex"));
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_THROW((void)vm_->call_method(main, "trigger"), VmException);
}

TEST_F(VmTest, LoadingGarbageFileThrows) {
  boot(loader_app("/data/data/com.example.app/files/junk.dex"));
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/files/junk.dex",
                              to_bytes("not a dex at all"))
                  .ok());
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_THROW((void)vm_->call_method(main, "trigger"), VmException);
}

TEST_F(VmTest, PathClassLoaderHookFires) {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("trigger", 1);
  m.const_str(1, "/data/data/com.example.app/files/p.dex");
  m.new_instance(2, "dalvik.system.PathClassLoader");
  m.invoke_virtual("dalvik.system.PathClassLoader", "<init>", {2, 1});
  m.return_void();
  m.done();
  boot(b.build());
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/files/p.dex",
                              payload_dex_bytes())
                  .ok());
  bool fired = false;
  vm_->instrumentation().on_dex_load =
      [&](LoaderKind kind, const std::string&, const std::string& opt,
          const StackTrace&) {
        fired = true;
        EXPECT_EQ(kind, LoaderKind::PathClassLoader);
        EXPECT_TRUE(opt.empty());
      };
  auto main = vm_->instantiate("com.example.app.Main");
  (void)vm_->call_method(main, "trigger");
  EXPECT_TRUE(fired);
}

TEST_F(VmTest, ThirdPartySdkIsCallSiteNotApp) {
  // The SDK class (different package) creates the loader from inside the
  // app's onCreate — the call site must be the SDK class (paper Fig. 2).
  dex::DexBuilder b;
  b.cls("com.example.app.Main", "android.app.Activity")
      .method("onCreate", 1)
      .invoke_static("com.adsdk.core.AdLoader", "boot")
      .done();
  auto sdk = b.cls("com.adsdk.core.AdLoader").static_method("boot", 0);
  sdk.const_str(0, "/data/data/com.example.app/cache/ad1.dex");
  sdk.const_str(1, "/data/data/com.example.app/cache");
  sdk.new_instance(2, "dalvik.system.DexClassLoader");
  sdk.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {2, 0, 1});
  sdk.done();
  boot(b.build());
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/cache/ad1.dex",
                              payload_dex_bytes())
                  .ok());
  StackTrace trace;
  vm_->instrumentation().on_dex_load = [&](LoaderKind, const std::string&,
                                           const std::string&,
                                           const StackTrace& t) { trace = t; };
  auto main = vm_->instantiate("com.example.app.Main");
  (void)vm_->call_method(main, "onCreate");
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace[0].class_name, "dalvik.system.DexClassLoader");
  EXPECT_EQ(trace[1].class_name, "com.adsdk.core.AdLoader");
  EXPECT_EQ(trace[2].class_name, "com.example.app.Main");
}

// ---------------------------------------------------------------------------
// File instrumentation: delete/rename mediation.
// ---------------------------------------------------------------------------

dex::DexFile file_delete_app() {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("wipe", 1);
  m.new_instance(1, "java.io.File");
  m.const_str(2, "/data/data/com.example.app/cache/tmp.dex");
  m.invoke_virtual("java.io.File", "<init>", {1, 2});
  m.invoke_virtual("java.io.File", "delete", {1});
  m.move_result(3);
  m.ret(3);
  m.done();
  return b.build();
}

TEST_F(VmTest, FileDeleteBlockedByHookSilentlyFails) {
  boot(file_delete_app());
  ASSERT_TRUE(
      device_.vfs()
          .write_file(os::Principal::system(),
                      "/data/data/com.example.app/cache/tmp.dex",
                      to_bytes("payload"))
          .ok());
  vm_->instrumentation().allow_file_delete =
      [](const std::string&) { return false; };
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "wipe").as_int(), 0);  // silent failure
  EXPECT_TRUE(
      device_.vfs().exists("/data/data/com.example.app/cache/tmp.dex"));
}

TEST_F(VmTest, FileDeleteAllowedWhenNotQueued) {
  boot(file_delete_app());
  ASSERT_TRUE(
      device_.vfs()
          .write_file(os::Principal::system(),
                      "/data/data/com.example.app/cache/tmp.dex",
                      to_bytes("payload"))
          .ok());
  vm_->instrumentation().allow_file_delete =
      [](const std::string&) { return true; };
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "wipe").as_int(), 1);
  EXPECT_FALSE(
      device_.vfs().exists("/data/data/com.example.app/cache/tmp.dex"));
}

// ---------------------------------------------------------------------------
// Download + flow tracking (Table I).
// ---------------------------------------------------------------------------

/// App that downloads a URL to a file via URL -> InputStream -> Buffer ->
/// OutputStream -> File, then DexClassLoader-loads it.
dex::DexFile downloader_app() {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("update", 1);
  m.new_instance(1, "java.net.URL");
  m.const_str(2, "http://cdn.example.com/update.dex");
  m.invoke_virtual("java.net.URL", "<init>", {1, 2});
  m.invoke_virtual("java.net.URL", "openConnection", {1});
  m.move_result(3);
  m.invoke_virtual("java.net.URLConnection", "getInputStream", {3});
  m.move_result(4);
  m.new_instance(5, "java.io.FileOutputStream");
  m.const_str(6, "/data/data/com.example.app/files/update.dex");
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {5, 6});
  m.label("copy");
  m.invoke_virtual("java.io.InputStream", "read", {4});
  m.move_result(7);
  m.if_eqz(7, "done");
  m.invoke_virtual("java.io.OutputStream", "write", {5, 7});
  m.jump("copy");
  m.label("done");
  m.new_instance(8, "dalvik.system.DexClassLoader");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {8, 6, 6});
  m.return_void();
  m.done();
  return b.build();
}

TEST_F(VmTest, DownloadEmitsTableOneFlows) {
  boot(downloader_app());
  device_.network().host("http://cdn.example.com/update.dex",
                         payload_dex_bytes());
  std::vector<std::pair<FlowNodeKind, FlowNodeKind>> edges;
  std::string url_label;
  std::string file_label;
  vm_->instrumentation().on_flow = [&](const FlowNode& from,
                                       const FlowNode& to) {
    edges.emplace_back(from.kind, to.kind);
    if (from.kind == FlowNodeKind::Url) url_label = from.label;
    if (to.kind == FlowNodeKind::File) file_label = to.label;
  };
  auto main = vm_->instantiate("com.example.app.Main");
  (void)vm_->call_method(main, "update");

  auto has_edge = [&](FlowNodeKind a, FlowNodeKind b) {
    return std::find(edges.begin(), edges.end(), std::make_pair(a, b)) !=
           edges.end();
  };
  EXPECT_TRUE(has_edge(FlowNodeKind::Url, FlowNodeKind::InputStream));
  EXPECT_TRUE(has_edge(FlowNodeKind::InputStream, FlowNodeKind::Buffer));
  EXPECT_TRUE(has_edge(FlowNodeKind::Buffer, FlowNodeKind::OutputStream));
  EXPECT_TRUE(has_edge(FlowNodeKind::OutputStream, FlowNodeKind::File));
  EXPECT_EQ(url_label, "http://cdn.example.com/update.dex");
  EXPECT_EQ(file_label, "/data/data/com.example.app/files/update.dex");
  // And the downloaded dex is a loadable byte-identical copy.
  EXPECT_EQ(device_.vfs()
                .read_file("/data/data/com.example.app/files/update.dex")
                ->to_bytes(),
            payload_dex_bytes());
}

TEST_F(VmTest, FetchFailsWithoutConnectivity) {
  boot(downloader_app());
  device_.network().host("http://cdn.example.com/update.dex",
                         payload_dex_bytes());
  device_.services().set_airplane_mode(true);
  device_.services().set_wifi_enabled(false);
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_THROW((void)vm_->call_method(main, "update"), VmException);
}

// ---------------------------------------------------------------------------
// Native loading & native dispatch.
// ---------------------------------------------------------------------------

support::Bytes hook_lib_bytes() {
  nativebin::NativeLibrary lib("libhook", nativebin::Arch::Arm);
  dex::DexBuilder b;
  auto cls = b.cls("native.hook.Core");
  auto attach = cls.static_method("attach", 0);
  attach.const_str(0, "com.tencent.mobileqq");
  attach.invoke_static("libc", "ptrace", {0});
  attach.move_result(1);
  attach.ret(1);
  attach.done();
  lib.code() = b.build();
  return lib.serialize();
}

TEST_F(VmTest, LoadLibraryResolvesAppLibDirAndDispatchesNative) {
  dex::DexBuilder b;
  auto cls = b.cls("com.example.app.Main", "android.app.Activity");
  cls.native_method("attach", 0);
  auto m = cls.method("go", 1);
  m.const_str(1, "hook");
  m.invoke_static("java.lang.System", "loadLibrary", {1});
  m.invoke_static("com.example.app.Main", "attach");
  m.move_result(2);
  m.ret(2);
  m.done();
  boot(b.build());
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/lib/libhook.so",
                              hook_lib_bytes())
                  .ok());
  std::string loaded_path;
  vm_->instrumentation().on_native_load =
      [&](const std::string& path, const StackTrace&) { loaded_path = path; };
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "go").as_int(), 1);
  EXPECT_EQ(loaded_path, "/data/data/com.example.app/lib/libhook.so");
  // The native body ran: ptrace event recorded.
  ASSERT_FALSE(vm_->events().empty());
  bool saw_ptrace = false;
  for (const auto& e : vm_->events()) saw_ptrace |= (e.kind == "ptrace");
  EXPECT_TRUE(saw_ptrace);
}

TEST_F(VmTest, SystemLibraryLoadIsTrustedNoop) {
  dex::DexBuilder b;
  b.cls("com.example.app.Main", "android.app.Activity")
      .method("go", 1)
      .const_str(1, "/system/lib/libc.so")
      .invoke_static("java.lang.System", "load", {1})
      .done();
  boot(b.build());
  std::string loaded_path;
  vm_->instrumentation().on_native_load =
      [&](const std::string& path, const StackTrace&) { loaded_path = path; };
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_NO_THROW((void)vm_->call_method(main, "go"));
  EXPECT_EQ(loaded_path, "/system/lib/libc.so");
}

TEST_F(VmTest, Runtime0LoadAlsoHooked) {
  // The Android 7.1 load0 path (paper §III-B adaptation note).
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("go", 1);
  m.invoke_static("java.lang.Runtime", "getRuntime");
  m.move_result(1);
  m.const_str(2, "/data/data/com.example.app/lib/libhook.so");
  m.invoke_virtual("java.lang.Runtime", "load0", {1, 2});
  m.return_void();
  m.done();
  boot(b.build());
  ASSERT_TRUE(device_.vfs()
                  .write_file(os::Principal::system(),
                              "/data/data/com.example.app/lib/libhook.so",
                              hook_lib_bytes())
                  .ok());
  bool fired = false;
  vm_->instrumentation().on_native_load =
      [&](const std::string&, const StackTrace&) { fired = true; };
  auto main = vm_->instantiate("com.example.app.Main");
  (void)vm_->call_method(main, "go");
  EXPECT_TRUE(fired);
}

TEST_F(VmTest, MissingNativeLibraryThrows) {
  dex::DexBuilder b;
  b.cls("com.example.app.Main", "android.app.Activity")
      .method("go", 1)
      .const_str(1, "absent")
      .invoke_static("java.lang.System", "loadLibrary", {1})
      .done();
  boot(b.build());
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_THROW((void)vm_->call_method(main, "go"), VmException);
}

// ---------------------------------------------------------------------------
// Reflection & privacy-source intrinsics.
// ---------------------------------------------------------------------------

TEST_F(VmTest, ReflectionInvoke) {
  dex::DexBuilder b;
  b.cls("com.example.app.T").method("answer", 1).const_int(1, 42).ret(1).done();
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("go", 1);
  m.const_str(1, "com.example.app.T");
  m.invoke_static("java.lang.Class", "forName", {1});
  m.move_result(2);
  m.invoke_virtual("java.lang.Class", "newInstance", {2});
  m.move_result(3);
  m.const_str(4, "answer");
  m.invoke_virtual("java.lang.Class", "getMethod", {2, 4});
  m.move_result(5);
  m.invoke_virtual("java.lang.reflect.Method", "invoke", {5, 3});
  m.move_result(6);
  m.ret(6);
  m.done();
  boot(b.build());
  auto main = vm_->instantiate("com.example.app.Main");
  EXPECT_EQ(vm_->call_method(main, "go").as_int(), 42);
}

TEST_F(VmTest, PrivacySourcesReturnDeviceIdentity) {
  dex::DexBuilder b;
  b.cls("com.example.app.P")
      .static_method("imei", 0)
      .invoke_static("android.telephony.TelephonyManager", "getDeviceId")
      .move_result(0)
      .ret(0)
      .done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.P", "imei").as_str(),
            device_.services().imei());
}

TEST_F(VmTest, EnvironmentGatesObservable) {
  dex::DexBuilder b;
  b.cls("com.example.app.P")
      .static_method("online", 0)
      .invoke_static("android.net.ConnectivityManager", "isConnected")
      .move_result(0)
      .ret(0)
      .done();
  boot(b.build());
  EXPECT_EQ(vm_->call_static("com.example.app.P", "online").as_int(), 1);
  device_.services().set_airplane_mode(true);
  device_.services().set_wifi_enabled(false);
  EXPECT_EQ(vm_->call_static("com.example.app.P", "online").as_int(), 0);
}

TEST_F(VmTest, ApiCallHookSeesFrameworkInvocations) {
  dex::DexBuilder b;
  b.cls("com.example.app.P")
      .static_method("f", 0)
      .invoke_static("android.telephony.TelephonyManager", "getDeviceId")
      .done();
  boot(b.build());
  std::vector<std::string> calls;
  vm_->instrumentation().on_api_call = [&](const std::string& c,
                                           const std::string& m2) {
    calls.push_back(c + "." + m2);
  };
  (void)vm_->call_static("com.example.app.P", "f");
  EXPECT_NE(std::find(calls.begin(), calls.end(),
                      "android.telephony.TelephonyManager.getDeviceId"),
            calls.end());
}

// ---------------------------------------------------------------------------
// Asset access (packer substrate).
// ---------------------------------------------------------------------------

TEST_F(VmTest, AssetOpenReadsInstalledApkEntry) {
  dex::DexBuilder b;
  auto m = b.cls("com.example.app.Main", "android.app.Activity")
               .method("readAsset", 1);
  m.const_str(1, "blob.bin");
  m.invoke_static("android.content.res.AssetManager", "open", {1});
  m.move_result(2);
  m.invoke_virtual("java.io.InputStream", "read", {2});
  m.move_result(3);
  m.ret(3);
  m.done();
  auto man = base_manifest();
  auto apk = wrap_apk(b.build(), man);
  apk.put("assets/blob.bin", to_bytes("asset-payload"));
  apk.sign("test-key");
  ASSERT_TRUE(device_.install(apk).ok());
  AppContext app;
  app.manifest = man;
  vm_ = std::make_unique<Vm>(device_, std::move(app));
  ASSERT_TRUE(vm_->load_app(apk).ok());

  auto main = vm_->instantiate("com.example.app.Main");
  const auto buf = vm_->call_method(main, "readAsset");
  ASSERT_TRUE(buf.is_obj());  // non-null buffer: asset bytes were served
}

}  // namespace
}  // namespace dydroid::vm
