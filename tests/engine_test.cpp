// App Execution Engine tests: automatic storage-full recovery, crash
// propagation, interception aggregation.
#include <gtest/gtest.h>

#include "appgen/generator.hpp"
#include "core/engine.hpp"
#include "dex/builder.hpp"

namespace dydroid::core {
namespace {

apk::ApkFile hog_apk(std::size_t chunks) {
  // An app whose onCreate writes `chunks` 4 KiB files into its cache, then
  // loads a dex. With a tight device capacity this trips "storage full".
  manifest::Manifest man;
  man.package = "com.engine.hog";
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.engine.hog.Main", true});

  dex::DexBuilder payload;
  payload.cls("pay.P").method("run", 1).return_void().done();

  dex::DexBuilder b;
  auto m = b.cls("com.engine.hog.Main", "android.app.Activity")
               .method("onCreate", 1);
  // Write the payload to files/ then balloon the cache.
  m.const_str(1, "p.bin");
  m.invoke_static("android.content.res.AssetManager", "open", {1});
  m.move_result(2);
  m.new_instance(3, "java.io.FileOutputStream");
  m.const_str(4, "/data/data/com.engine.hog/files/p.dex");
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {3, 4});
  m.label("cp");
  m.invoke_virtual("java.io.InputStream", "read", {2});
  m.move_result(5);
  m.if_eqz(5, "balloon");
  m.invoke_virtual("java.io.OutputStream", "write", {3, 5});
  m.jump("cp");
  // Balloon: chunked big writes into cache.
  m.label("balloon");
  m.const_int(6, static_cast<std::int64_t>(chunks));
  m.label("loop");
  m.if_eqz(6, "load");
  m.const_str(7, "/data/data/com.engine.hog/cache/blob");
  m.invoke_static("java.lang.String", "valueOf", {6});
  m.move_result(8);
  m.concat(7, 7, 8);
  m.new_instance(9, "java.io.FileOutputStream");
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {9, 7});
  m.const_str(10,
              std::string(4096, 'x'));  // 4 KiB constant
  m.invoke_static("java.lang.String", "getBytes", {10});
  m.move_result(11);
  m.invoke_virtual("java.io.OutputStream", "write", {9, 11});
  m.const_int(12, 1);
  m.sub(6, 6, 12);
  m.jump("loop");
  m.label("load");
  m.new_instance(13, "dalvik.system.DexClassLoader");
  m.const_str(14, "/data/data/com.engine.hog/files/p.dex");
  m.const_str(15, "");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {13, 14, 15});
  m.return_void();
  m.done();

  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.put("assets/p.bin", payload.build().serialize());
  apk.sign("k");
  return apk;
}

TEST(Engine, StorageFullRecoversByClearingCache) {
  // Capacity fits the APK + payload + a few blobs, but not all 30.
  os::DeviceConfig config;
  config.storage_capacity_bytes = 110 * 1024;
  os::Device device(config);
  const auto apk = hog_apk(30);
  ASSERT_TRUE(device.install(apk).ok());
  const auto man = apk.read_manifest();
  support::Rng rng(1);
  const auto result = run_app(device, apk, man, rng);
  // First run crashes with storage full; the engine clears the cache and
  // the retry is reported.
  EXPECT_TRUE(result.storage_recovered);
}

TEST(Engine, AmpleStorageNoRecoveryNeeded) {
  os::Device device;  // unlimited
  const auto apk = hog_apk(5);
  ASSERT_TRUE(device.install(apk).ok());
  const auto man = apk.read_manifest();
  support::Rng rng(1);
  const auto result = run_app(device, apk, man, rng);
  EXPECT_FALSE(result.storage_recovered);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  EXPECT_FALSE(result.events.empty());
}

TEST(Engine, MissingClassesDexIsCleanCrash) {
  manifest::Manifest man;
  man.package = "com.engine.broken";
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.engine.broken.Main", true});
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.sign("k");
  os::Device device;
  ASSERT_TRUE(device.install(apk).ok());
  support::Rng rng(1);
  const auto result = run_app(device, apk, man, rng);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kCrash);
  EXPECT_NE(result.monkey.crash_message.find("classes.dex"),
            std::string::npos);
}

TEST(Engine, EventsAggregatedFromInterceptor) {
  appgen::AppSpec spec;
  spec.package = "com.engine.multi";
  spec.category = "Tools";
  spec.ad_sdk = true;
  spec.analytics_sdk = true;
  spec.sdk_native_dcl = true;
  support::Rng grng(9);
  const auto app = appgen::build_app(spec, grng);
  os::Device device;
  appgen::apply_scenario(app.scenario, device);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  ASSERT_TRUE(device.install(apk).ok());
  const auto man = apk.read_manifest();
  support::Rng rng(2);
  const auto result = run_app(device, apk, man, rng);
  EXPECT_EQ(result.monkey.outcome, monkey::Outcome::kExercised)
      << result.monkey.crash_message;
  // Three behaviours, three+ DCL events, mixed kinds.
  EXPECT_GE(result.events.size(), 3u);
  bool saw_dex = false, saw_native = false;
  for (const auto& event : result.events) {
    saw_dex |= event.kind == CodeKind::Dex;
    saw_native |= event.kind == CodeKind::Native;
  }
  EXPECT_TRUE(saw_dex);
  EXPECT_TRUE(saw_native);
  EXPECT_GE(result.blocked_mutations, 1u);  // ad SDK delete was blocked
}

}  // namespace
}  // namespace dydroid::core
