// Obfuscation tests: language DB, lexical renamer + detector, packer,
// poisons, Table VI rule detector.
#include <gtest/gtest.h>

#include "analysis/decompiler.hpp"
#include "dex/builder.hpp"
#include "obfuscation/detector.hpp"
#include "obfuscation/language_db.hpp"
#include "obfuscation/lexical.hpp"
#include "obfuscation/packer.hpp"
#include "obfuscation/poison.hpp"

namespace dydroid::obfuscation {
namespace {

TEST(LanguageDb, DictionaryLookups) {
  EXPECT_TRUE(is_dictionary_word("download"));
  EXPECT_TRUE(is_dictionary_word("Download"));  // case-insensitive
  EXPECT_FALSE(is_dictionary_word("qzxv"));
  EXPECT_FALSE(is_dictionary_word(""));
  EXPECT_GT(dictionary_words().size(), 300u);
}

TEST(LanguageDb, IdentifierSplitting) {
  const auto words = split_identifier("updateCacheDir2");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "update");
  EXPECT_EQ(words[1], "cache");
  EXPECT_EQ(words[2], "dir");
}

TEST(LanguageDb, SplitsUnderscoresAndDollar) {
  const auto words = split_identifier("load_file$inner");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "load");
}

TEST(LanguageDb, DictionaryRatio) {
  EXPECT_DOUBLE_EQ(dictionary_ratio("downloadManager"), 1.0);
  EXPECT_DOUBLE_EQ(dictionary_ratio("a"), 0.0);
  EXPECT_NEAR(dictionary_ratio("updateQzxv"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(dictionary_ratio("123"), 0.0);
}

// ---------------------------------------------------------------------------
// Lexical renamer.
// ---------------------------------------------------------------------------

struct RenamedApp {
  dex::DexFile dex;
  manifest::Manifest man;
};

RenamedApp make_renamed() {
  manifest::Manifest man;
  man.package = "com.sample.app";
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.sample.app.MainScreen", true});

  dex::DexBuilder b;
  auto main = b.cls("com.sample.app.MainScreen", "android.app.Activity");
  main.instance_field("downloadCount");
  main.method("onCreate", 1)
      .invoke_static("com.sample.app.UpdateHelper", "fetchUpdate")
      .done();
  auto helper = b.cls("com.sample.app.UpdateHelper");
  helper.static_method("fetchUpdate", 0).const_int(0, 1).ret(0).done();
  // Reflection-reachable class: name appears as a string constant.
  b.cls("com.sample.app.ReflectTarget").method("run", 1).return_void().done();
  auto user = b.cls("com.sample.app.ReflectUser");
  auto m = user.static_method("go", 0);
  m.const_str(0, "com.sample.app.ReflectTarget");
  m.invoke_static("java.lang.Class", "forName", {0});
  m.done();

  RenamedApp out;
  out.man = man;
  out.dex = rename_identifiers(b.build(), man);
  return out;
}

TEST(Lexical, ManifestComponentsKept) {
  const auto app = make_renamed();
  EXPECT_NE(app.dex.find_class("com.sample.app.MainScreen"), nullptr);
}

TEST(Lexical, HelpersRenamedWithinPackage) {
  const auto app = make_renamed();
  EXPECT_EQ(app.dex.find_class("com.sample.app.UpdateHelper"), nullptr);
  // Some class in the same package got a single-letter name.
  bool saw_short = false;
  for (const auto& cls : app.dex.classes()) {
    const auto dot = cls.name.rfind('.');
    const auto simple = cls.name.substr(dot + 1);
    if (simple.size() == 1) saw_short = true;
    if (cls.name != "com.sample.app.MainScreen" &&
        cls.name != "com.sample.app.ReflectTarget") {
      EXPECT_TRUE(cls.name.starts_with("com.sample.app."));
    }
  }
  EXPECT_TRUE(saw_short);
}

TEST(Lexical, StringReferencedClassKept) {
  const auto app = make_renamed();
  EXPECT_NE(app.dex.find_class("com.sample.app.ReflectTarget"), nullptr);
}

TEST(Lexical, LifecycleMethodsKept) {
  const auto app = make_renamed();
  const auto* main = app.dex.find_class("com.sample.app.MainScreen");
  ASSERT_NE(main, nullptr);
  EXPECT_NE(main->find_method("onCreate"), nullptr);
}

TEST(Lexical, CallSitesStayConsistent) {
  // The renamed call target must match the renamed method definition, so
  // the app still runs; verified structurally here.
  const auto app = make_renamed();
  const auto* main = app.dex.find_class("com.sample.app.MainScreen");
  const auto& ins = main->find_method("onCreate")->code.at(0);
  const auto& callee_cls = app.dex.string_at(ins.cls);
  const auto& callee_name = app.dex.string_at(ins.name);
  const auto* target = app.dex.find_class(callee_cls);
  ASSERT_NE(target, nullptr);
  EXPECT_NE(target->find_method(callee_name), nullptr);
}

TEST(Lexical, DetectorFlagsRenamedAndNotOriginal) {
  manifest::Manifest man;
  man.package = "com.sample.app";
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.sample.app.MainScreen", true});
  dex::DexBuilder b;
  auto cls = b.cls("com.sample.app.MainScreen", "android.app.Activity");
  cls.instance_field("downloadCount");
  cls.method("onCreate", 1).return_void().done();
  cls.method("updateCache", 1).return_void().done();
  cls.method("fetchImage", 1).return_void().done();
  const auto original = b.build();

  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(original);
  auto ir = analysis::decompile(apk.serialize());
  EXPECT_FALSE(detect_lexical(ir.value()));

  apk.write_classes_dex(rename_identifiers(original, man));
  ir = analysis::decompile(apk.serialize());
  EXPECT_TRUE(detect_lexical(ir.value()));
}

// ---------------------------------------------------------------------------
// Packer.
// ---------------------------------------------------------------------------

apk::ApkFile plain_app() {
  manifest::Manifest man;
  man.package = "com.tv.remote";
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.tv.remote.Main", true});
  dex::DexBuilder b;
  b.cls("com.tv.remote.Main", "android.app.Activity")
      .method("onCreate", 1)
      .return_void()
      .done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("tv-dev");
  return apk;
}

TEST(Packer, XorCryptIsInvolution) {
  const auto data = support::to_bytes("some payload bytes");
  const auto enc = xor_crypt(data, "key16chars......");
  EXPECT_NE(enc, data);
  EXPECT_EQ(xor_crypt(enc, "key16chars......"), data);
}

TEST(Packer, OutputStructure) {
  const auto packed = pack(plain_app(), PackerOptions{});
  const auto man = packed.read_manifest();
  EXPECT_EQ(man.application_name, "com.shield.core.StubApplication");
  EXPECT_TRUE(packed.contains("assets/shield_payload.bin"));
  EXPECT_TRUE(packed.contains("lib/armeabi/libshield.so"));
  // Original components stay declared, but the stub dex lacks them.
  const auto stub = *packed.read_classes_dex();
  EXPECT_EQ(stub.find_class("com.tv.remote.Main"), nullptr);
  EXPECT_NE(stub.find_class("com.shield.core.StubApplication"), nullptr);
}

TEST(Packer, PayloadDecryptsToOriginalDex) {
  const auto original = plain_app();
  const auto packed = pack(original, PackerOptions{});
  const auto enc = packed.get("assets/shield_payload.bin");
  ASSERT_TRUE(enc.has_value());
  const auto dec = xor_crypt(*enc, PackerOptions{}.key);
  EXPECT_EQ(dec, original.get(apk::kClassesDexEntry)->to_bytes());
}

TEST(Packer, DetectorFlagsPackedApp) {
  const auto packed = pack(plain_app(), PackerOptions{});
  const auto report = analyze_obfuscation(packed.serialize());
  EXPECT_TRUE(report.dex_encryption);
  EXPECT_FALSE(report.anti_decompilation);
}

TEST(Packer, DetectorRulesRequireAllThree) {
  // Rule 1 fails: container class declared but absent from the dex.
  auto apk = plain_app();
  auto man = apk.read_manifest();
  man.application_name = "com.missing.Container";
  apk.write_manifest(man);
  const auto report = analyze_obfuscation(apk.serialize());
  EXPECT_FALSE(report.dex_encryption);
}

TEST(Packer, BadKeyLengthRejected) {
  PackerOptions options;
  options.key = "len7key";  // does not divide 4096
  EXPECT_THROW((void)pack(plain_app(), options), support::ParseError);
}

TEST(Packer, MissingDexRejected) {
  apk::ApkFile apk;
  manifest::Manifest man;
  man.package = "a.b";
  apk.write_manifest(man);
  EXPECT_THROW((void)pack(apk, PackerOptions{}), support::ParseError);
}

TEST(Packer, AntiRepackagingOptionPlantsTrap) {
  PackerOptions options;
  options.anti_repackaging = true;
  const auto packed = pack(plain_app(), options);
  EXPECT_TRUE(packed.has_crc_trap());
}

// ---------------------------------------------------------------------------
// Poisons.
// ---------------------------------------------------------------------------

TEST(Poison, AntiDecompilationDetectableAndVmSafe) {
  dex::DexBuilder b;
  b.cls("a.B").method("f", 1).return_void().done();
  auto dexfile = b.build();
  EXPECT_FALSE(has_anti_decompilation_poison(dexfile));
  poison_anti_decompilation(dexfile);
  EXPECT_TRUE(has_anti_decompilation_poison(dexfile));
  // VM-level deserialization ignores the poisoned section.
  EXPECT_NO_THROW((void)dex::DexFile::deserialize(dexfile.serialize()));
}

TEST(Detector, ReflectionRule) {
  dex::DexBuilder b;
  auto m = b.cls("a.B").static_method("f", 0);
  m.const_str(0, "a.C");
  m.invoke_static("java.lang.Class", "forName", {0});
  m.move_result(1);
  m.invoke_virtual("java.lang.reflect.Method", "invoke", {1});
  m.done();
  EXPECT_TRUE(detect_reflection(b.build()));

  dex::DexBuilder b2;
  b2.cls("a.B").static_method("f", 0).const_int(0, 1).ret(0).done();
  EXPECT_FALSE(detect_reflection(b2.build()));
}

TEST(Detector, NativeRuleFromLibEntry) {
  auto apk = plain_app();
  apk.put("lib/armeabi/libx.so", support::to_bytes("so"));
  const auto ir = analysis::decompile(apk.serialize());
  EXPECT_TRUE(detect_native(ir.value()));
}

TEST(Detector, NativeRuleFromLoadCall) {
  manifest::Manifest man;
  man.package = "a.b";
  dex::DexBuilder b;
  auto m = b.cls("a.b.Main").method("onCreate", 1);
  m.const_str(1, "engine");
  m.invoke_static("java.lang.System", "loadLibrary", {1});
  m.done();
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  const auto ir = analysis::decompile(apk.serialize());
  EXPECT_TRUE(detect_native(ir.value()));
}

TEST(Detector, PlainAppHasNoFlags) {
  const auto report = analyze_obfuscation(plain_app().serialize());
  EXPECT_FALSE(report.lexical);
  EXPECT_FALSE(report.reflection);
  EXPECT_FALSE(report.native_code);
  EXPECT_FALSE(report.dex_encryption);
  EXPECT_FALSE(report.anti_decompilation);
}

}  // namespace
}  // namespace dydroid::obfuscation
