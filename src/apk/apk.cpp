#include "apk/apk.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/trace.hpp"

namespace dydroid::apk {

using support::Blob;
using support::Bytes;
using support::ParseError;

void ApkFile::put(std::string_view path, Blob data) {
  Entry e;
  e.stored_crc = support::crc32(data);
  e.data = std::move(data);
  entries_.insert_or_assign(std::string(path), std::move(e));
}

void ApkFile::put(std::string_view path, Bytes data) {
  put(path, Blob::take(std::move(data)));
}

void ApkFile::put(std::string_view path, std::string_view text) {
  put(path, Blob::of_string(text));
}

void ApkFile::put_with_bad_crc(std::string_view path, Bytes data) {
  Entry e;
  e.stored_crc = support::crc32(data) ^ 0xdeadbeefu;
  e.data = Blob::take(std::move(data));
  entries_.insert_or_assign(std::string(path), std::move(e));
}

bool ApkFile::remove(std::string_view path) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool ApkFile::contains(std::string_view path) const {
  return entries_.find(path) != entries_.end();
}

std::optional<Blob> ApkFile::get(std::string_view path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second.data;
}

std::vector<std::string> ApkFile::entry_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

manifest::Manifest ApkFile::read_manifest() const {
  const auto data = get(kManifestEntry);
  if (!data) throw ParseError("apk: no AndroidManifest.xml");
  return manifest::Manifest::from_text(support::to_string(*data));
}

void ApkFile::write_manifest(const manifest::Manifest& m) {
  put(kManifestEntry, m.to_text());
}

std::optional<dex::DexFile> ApkFile::read_classes_dex() const {
  const auto data = get(kClassesDexEntry);
  if (!data) return std::nullopt;
  return dex::DexFile::deserialize(*data);
}

void ApkFile::write_classes_dex(const dex::DexFile& dex) {
  put(kClassesDexEntry, dex.serialize());
}

std::uint64_t ApkFile::content_hash() const {
  std::uint64_t h = 0;
  for (const auto& [name, entry] : entries_) {
    h = support::hash_combine(h, support::fnv1a64(name));
    h = support::hash_combine(h, support::fnv1a64(entry.data));
  }
  return h;
}

void ApkFile::sign(std::string_view signer_key) {
  signer_ = std::string(signer_key);
  signature_ =
      support::hash_combine(content_hash(), support::fnv1a64(signer_key));
}

bool ApkFile::verify_signature() const {
  if (signer_.empty()) return false;
  return signature_ ==
         support::hash_combine(content_hash(), support::fnv1a64(signer_));
}

bool ApkFile::has_crc_trap() const {
  return first_crc_mismatch().has_value();
}

std::optional<std::string> ApkFile::first_crc_mismatch() const {
  // Table order here equals stream order for any container produced by
  // serialize(), so the first mismatch matches what a strict re-parse of
  // the serialized bytes would trip on.
  for (const auto& [name, entry] : entries_) {
    if (entry.stored_crc != support::crc32(entry.data)) return name;
  }
  return std::nullopt;
}

Bytes ApkFile::serialize() const {
  support::ByteWriter w;
  w.raw(support::to_bytes(kMagic));
  w.str(signer_);
  w.u64(signature_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, entry] : entries_) {
    w.str(name);
    w.u32(entry.stored_crc);
    w.blob(entry.data);
  }
  return w.take();
}

ApkFile ApkFile::deserialize(Blob data, ParseMode mode) {
  // Fault-injection site: a truncated/corrupt container observed in the
  // wild (support::FaultInjector, docs/FAULTS.md).
  if (support::fault_fire(support::FaultSite::kApkDeserialize)) {
    throw ParseError(support::fault_message(support::FaultSite::kApkDeserialize));
  }
  support::ByteReader r(data);
  const auto magic = r.raw(kMagic.size());
  if (support::to_string(magic) != kMagic) throw ParseError("bad SimApk magic");
  ApkFile apk;
  apk.signer_ = r.str();
  apk.signature_ = r.u64();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto name = r.str();
    Entry e;
    e.stored_crc = r.u32();
    const auto len = r.u32();
    const auto off = r.position();
    r.view(len);  // bounds-check + advance; the bytes stay in `data`
    e.data = data.slice(off, len);
    if (mode == ParseMode::kStrict &&
        e.stored_crc != support::crc32(e.data)) {
      throw ParseError("apk entry CRC mismatch: " + name);
    }
    apk.entries_.insert_or_assign(name, std::move(e));
  }
  return apk;
}

ApkFile ApkFile::deserialize(std::span<const std::uint8_t> data,
                             ParseMode mode) {
  return deserialize(Blob::copy_of(data), mode);
}

ApkImage ApkImage::parse(Blob bytes, ParseMode mode) {
  support::count("pipeline.parses", 1);
  auto file = std::make_shared<const ApkFile>(ApkFile::deserialize(bytes, mode));
  return ApkImage(std::move(file), std::move(bytes));
}

ApkImage ApkImage::from_file(ApkFile file) {
  auto bytes = Blob::take(file.serialize());
  support::count("pipeline.bytes_copied", bytes.size());
  return ApkImage(std::make_shared<const ApkFile>(std::move(file)),
                  std::move(bytes));
}

bool looks_like_apk(std::span<const std::uint8_t> data) {
  const auto magic = ApkFile::kMagic;
  if (data.size() < magic.size()) return false;
  return std::equal(magic.begin(), magic.end(), data.begin(),
                    [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

}  // namespace dydroid::apk
