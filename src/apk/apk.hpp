// SimApk: the installation-package analogue (zip + manifest + classes.dex +
// assets + native libs + signature).
//
// Two parse modes mirror the real ecosystem: the *device* (VM installer) is
// lenient about per-entry CRC mismatches, exactly as Android's zip handling
// tolerates quirks that break third-party tools; the *tooling* (unpacker /
// repacker) is strict and throws. Anti-repackaging packers plant a
// CRC-mismatched trap entry to crash apktool while the app still installs —
// the paper's Table II "Rewriting failure" rows.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dex/dexfile.hpp"
#include "manifest/manifest.hpp"
#include "support/bytes.hpp"

namespace dydroid::apk {

/// Well-known entry paths.
inline constexpr std::string_view kManifestEntry = "AndroidManifest.xml";
inline constexpr std::string_view kClassesDexEntry = "classes.dex";
inline constexpr std::string_view kLibDirPrefix = "lib/";
inline constexpr std::string_view kAssetsDirPrefix = "assets/";

enum class ParseMode {
  kLenient,  // device install: CRC mismatches ignored
  kStrict,   // tooling (unpacker/repacker): CRC mismatches throw
};

class ApkFile {
 public:
  /// Add or replace an entry. The stored CRC is computed from the data.
  void put(std::string_view path, support::Bytes data);
  void put(std::string_view path, std::string_view text);
  /// Add an entry whose *stored* CRC deliberately mismatches its data — the
  /// anti-repackaging trap (valid on-device, fatal for strict tooling).
  void put_with_bad_crc(std::string_view path, support::Bytes data);
  /// Remove an entry; returns false if absent.
  bool remove(std::string_view path);

  [[nodiscard]] bool contains(std::string_view path) const;
  [[nodiscard]] const support::Bytes* get(std::string_view path) const;
  [[nodiscard]] std::vector<std::string> entry_names() const;
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Convenience: the manifest entry, parsed. Throws if absent/malformed.
  [[nodiscard]] manifest::Manifest read_manifest() const;
  void write_manifest(const manifest::Manifest& m);

  /// Convenience: classes.dex, parsed. Nullopt if the entry is absent.
  [[nodiscard]] std::optional<dex::DexFile> read_classes_dex() const;
  void write_classes_dex(const dex::DexFile& dex);

  /// Sign with a developer key string (hash-based signature over entries).
  void sign(std::string_view signer_key);
  [[nodiscard]] const std::string& signer() const { return signer_; }
  [[nodiscard]] bool verify_signature() const;

  /// True if any entry's stored CRC mismatches its content.
  [[nodiscard]] bool has_crc_trap() const;

  [[nodiscard]] support::Bytes serialize() const;
  static ApkFile deserialize(std::span<const std::uint8_t> data,
                             ParseMode mode = ParseMode::kLenient);

  static constexpr std::string_view kMagic = "SAPK1";

 private:
  struct Entry {
    support::Bytes data;
    std::uint32_t stored_crc = 0;
  };
  [[nodiscard]] std::uint64_t content_hash() const;

  std::map<std::string, Entry, std::less<>> entries_;
  std::string signer_;
  std::uint64_t signature_ = 0;
};

/// True if `data` begins with the SimApk magic.
bool looks_like_apk(std::span<const std::uint8_t> data);

}  // namespace dydroid::apk
