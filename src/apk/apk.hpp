// SimApk: the installation-package analogue (zip + manifest + classes.dex +
// assets + native libs + signature).
//
// Two parse modes mirror the real ecosystem: the *device* (VM installer) is
// lenient about per-entry CRC mismatches, exactly as Android's zip handling
// tolerates quirks that break third-party tools; the *tooling* (unpacker /
// repacker) is strict and throws. Anti-repackaging packers plant a
// CRC-mismatched trap entry to crash apktool while the app still installs —
// the paper's Table II "Rewriting failure" rows.
//
// Ownership model (docs/FORMATS.md, "Buffer ownership & zero-copy views"):
// entries are support::Blob views. Parsing a container from a Blob keeps the
// source buffer alive once and stores every entry as an aliasing slice of it
// — the file table is an index, not a copy. ApkImage pairs one parsed index
// with the serialized Blob it views, so downstream layers (rewriter,
// installer, VM, report codecs) can share a single parse.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dex/dexfile.hpp"
#include "manifest/manifest.hpp"
#include "support/blob.hpp"
#include "support/bytes.hpp"

namespace dydroid::apk {

/// Well-known entry paths.
inline constexpr std::string_view kManifestEntry = "AndroidManifest.xml";
inline constexpr std::string_view kClassesDexEntry = "classes.dex";
inline constexpr std::string_view kLibDirPrefix = "lib/";
inline constexpr std::string_view kAssetsDirPrefix = "assets/";

enum class ParseMode {
  kLenient,  // device install: CRC mismatches ignored
  kStrict,   // tooling (unpacker/repacker): CRC mismatches throw
};

class ApkFile {
 public:
  /// Add or replace an entry. The stored CRC is computed from the data.
  void put(std::string_view path, support::Blob data);
  void put(std::string_view path, support::Bytes data);
  void put(std::string_view path, std::string_view text);
  /// Add an entry whose *stored* CRC deliberately mismatches its data — the
  /// anti-repackaging trap (valid on-device, fatal for strict tooling).
  void put_with_bad_crc(std::string_view path, support::Bytes data);
  /// Remove an entry; returns false if absent.
  bool remove(std::string_view path);

  [[nodiscard]] bool contains(std::string_view path) const;
  /// The entry's bytes as a refcounted view (cheap copy), or nullopt if
  /// absent. The view stays valid after the ApkFile is destroyed.
  [[nodiscard]] std::optional<support::Blob> get(std::string_view path) const;
  [[nodiscard]] std::vector<std::string> entry_names() const;
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Convenience: the manifest entry, parsed. Throws if absent/malformed.
  [[nodiscard]] manifest::Manifest read_manifest() const;
  void write_manifest(const manifest::Manifest& m);

  /// Convenience: classes.dex, parsed. Nullopt if the entry is absent.
  [[nodiscard]] std::optional<dex::DexFile> read_classes_dex() const;
  void write_classes_dex(const dex::DexFile& dex);

  /// Sign with a developer key string (hash-based signature over entries).
  void sign(std::string_view signer_key);
  [[nodiscard]] const std::string& signer() const { return signer_; }
  [[nodiscard]] bool verify_signature() const;

  /// True if any entry's stored CRC mismatches its content.
  [[nodiscard]] bool has_crc_trap() const;
  /// Name of the first entry (in table order) whose stored CRC mismatches
  /// its content, or nullopt when the container is clean. The cheap
  /// index-level equivalent of a strict re-parse.
  [[nodiscard]] std::optional<std::string> first_crc_mismatch() const;

  [[nodiscard]] support::Bytes serialize() const;
  /// Parse from an owned Blob: every entry becomes a zero-copy slice of
  /// `data`, which stays alive for as long as any entry view does.
  static ApkFile deserialize(support::Blob data,
                             ParseMode mode = ParseMode::kLenient);
  /// Parse from a borrowed span (copies into a fresh buffer first).
  static ApkFile deserialize(std::span<const std::uint8_t> data,
                             ParseMode mode = ParseMode::kLenient);

  static constexpr std::string_view kMagic = "SAPK1";

 private:
  struct Entry {
    support::Blob data;
    std::uint32_t stored_crc = 0;
  };
  [[nodiscard]] std::uint64_t content_hash() const;

  std::map<std::string, Entry, std::less<>> entries_;
  std::string signer_;
  std::uint64_t signature_ = 0;
};

/// One APK, parsed once: an immutable parsed index (ApkFile) paired with the
/// serialized Blob it was parsed from. Copying an ApkImage is two refcount
/// bumps; every pipeline layer (static analysis, rewriter, installer, VM)
/// shares the same parse instead of re-deserializing the container.
class ApkImage {
 public:
  /// Invalid image (no parse attached). valid() == false.
  ApkImage() = default;

  /// Parse `bytes` once and attach the result. This is the pipeline's
  /// subject-app parse point and feeds the `pipeline.parses` counter.
  /// Throws ParseError exactly as ApkFile::deserialize would.
  static ApkImage parse(support::Blob bytes,
                        ParseMode mode = ParseMode::kLenient);
  /// Build an image from an already-parsed file by serializing it once
  /// (the rewriter's repack path).
  static ApkImage from_file(ApkFile file);

  [[nodiscard]] bool valid() const { return file_ != nullptr; }
  /// The parsed index. Precondition: valid().
  [[nodiscard]] const ApkFile& file() const { return *file_; }
  /// The serialized container the index views.
  [[nodiscard]] const support::Blob& bytes() const { return bytes_; }

 private:
  ApkImage(std::shared_ptr<const ApkFile> file, support::Blob bytes)
      : file_(std::move(file)), bytes_(std::move(bytes)) {}

  std::shared_ptr<const ApkFile> file_;
  support::Blob bytes_;
};

/// True if `data` begins with the SimApk magic.
bool looks_like_apk(std::span<const std::uint8_t> data);

}  // namespace dydroid::apk
