#include "appgen/faulty.hpp"

#include <algorithm>

#include "apk/apk.hpp"
#include "support/hash.hpp"

namespace dydroid::appgen {

using support::Bytes;
using support::Rng;

std::string_view corruption_layer_name(CorruptionLayer layer) {
  switch (layer) {
    case CorruptionLayer::kContainer: return "container";
    case CorruptionLayer::kManifest: return "manifest";
    case CorruptionLayer::kDex: return "dex";
    case CorruptionLayer::kCrcTrap: return "crc-trap";
  }
  return "?";
}

namespace {

/// Truncate strictly inside the payload (past the magic, before the end),
/// which the bounds-checked readers always reject.
Bytes truncate_inside(std::span<const std::uint8_t> data, Rng& rng) {
  const std::size_t lo = std::min<std::size_t>(6, data.size());
  const std::size_t hi = data.size();
  const std::size_t cut =
      lo >= hi ? lo : lo + static_cast<std::size_t>(rng.below(hi - lo));
  return Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(cut));
}

}  // namespace

Bytes mutate_bytes(std::span<const std::uint8_t> data, Rng& rng) {
  Bytes out(data.begin(), data.end());
  switch (rng.below(4)) {
    case 0: {  // bit-flip burst
      const int flips = static_cast<int>(rng.range(1, 8));
      for (int i = 0; i < flips && !out.empty(); ++i) {
        const auto at = static_cast<std::size_t>(rng.below(out.size()));
        out[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    }
    case 1:  // truncation
      if (!out.empty()) {
        out.resize(static_cast<std::size_t>(rng.below(out.size())));
      }
      break;
    case 2: {  // garbage extension
      const auto extra = static_cast<std::size_t>(rng.range(1, 64));
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
      break;
    }
    default: {  // length-field lie: overwrite 4 aligned bytes with a huge u32
      if (out.size() >= 4) {
        const auto at = static_cast<std::size_t>(rng.below(out.size() - 3));
        const std::uint32_t lie = 0xF0000000u | static_cast<std::uint32_t>(
                                                    rng.below(0x0FFFFFFFu));
        out[at] = static_cast<std::uint8_t>(lie);
        out[at + 1] = static_cast<std::uint8_t>(lie >> 8);
        out[at + 2] = static_cast<std::uint8_t>(lie >> 16);
        out[at + 3] = static_cast<std::uint8_t>(lie >> 24);
      }
      break;
    }
  }
  return out;
}

Bytes corrupt_apk(std::span<const std::uint8_t> apk, CorruptionLayer layer,
                  Rng& rng) {
  switch (layer) {
    case CorruptionLayer::kContainer:
      return truncate_inside(apk, rng);
    case CorruptionLayer::kManifest: {
      auto pkg = apk::ApkFile::deserialize(apk);
      // A minSdkVersion that is not a number reliably trips the parser.
      pkg.put(apk::kManifestEntry,
              "<manifest package=\"broken\">\n"
              "  <uses-sdk minSdkVersion=\"NaN\"/>\n"
              "</manifest>\n");
      return pkg.serialize();
    }
    case CorruptionLayer::kDex: {
      auto pkg = apk::ApkFile::deserialize(apk);
      if (const auto dex = pkg.get(apk::kClassesDexEntry)) {
        pkg.put(apk::kClassesDexEntry, truncate_inside(*dex, rng));
      }
      return pkg.serialize();
    }
    case CorruptionLayer::kCrcTrap: {
      auto pkg = apk::ApkFile::deserialize(apk);
      pkg.put_with_bad_crc("assets/.trap",
                           support::to_bytes("anti-repackaging"));
      return pkg.serialize();
    }
  }
  return Bytes(apk.begin(), apk.end());
}

FaultyCorpus corrupt_corpus(const Corpus& clean,
                            const FaultyCorpusConfig& config) {
  FaultyCorpus out;
  out.corpus = clean;  // copy: specs, apks, scenarios
  out.config = config;
  for (std::size_t i = 0; i < out.corpus.apps.size(); ++i) {
    // Per-app generator derived from (seed, index): selection and mutation
    // survive corpus reordering/subsetting unchanged.
    Rng rng(support::hash_combine(config.seed, static_cast<std::uint64_t>(i)));
    if (!rng.chance(config.fraction)) continue;
    out.corpus.apps[i].apk = support::Blob::take(
        corrupt_apk(out.corpus.apps[i].apk, config.layer, rng));
    out.corrupted.push_back(i);
  }
  return out;
}

}  // namespace dydroid::appgen
