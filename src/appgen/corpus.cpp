#include "appgen/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <stdexcept>

#include "obfuscation/language_db.hpp"
#include "support/strings.hpp"

namespace dydroid::appgen {

using support::Rng;

const std::vector<std::string>& play_categories() {
  static const std::vector<std::string>* kCategories = new std::vector<
      std::string>{
      "Art & Design",    "Auto & Vehicles", "Beauty",          "Books",
      "Business",        "Comics",          "Communication",   "Dating",
      "Education",       "Entertainment",   "Events",          "Finance",
      "Food & Drink",    "Health",          "House & Home",    "Libraries",
      "Lifestyle",       "Magazines",       "Maps",            "Medical",
      "Music & Audio",   "News",            "Parenting",       "Personalization",
      "Photography",     "Productivity",    "Shopping",        "Social",
      "Sports",          "Tools",           "Travel",          "Video",
      "Weather",         "Game Action",     "Game Arcade",     "Game Casual",
      "Game Puzzle",     "Game Racing",     "Game RPG",        "Game Simulation",
      "Game Sports",     "Game Strategy"};
  return *kCategories;
}

double scale_from_env(double fallback) {
  const char* env = std::getenv("DYDROID_SCALE");
  if (env == nullptr || env[0] == '\0') return fallback;
  // Checked parse: a typo'd scale used to be silently swallowed, leaving
  // the user benchmarking the wrong corpus size. Warn and fall back —
  // env hooks never throw (satellite of docs/OBSERVABILITY.md PR).
  const auto parsed = support::parse_double(env);
  if (parsed.ok() && parsed.value() > 0 && parsed.value() <= 1.0) {
    return parsed.value();
  }
  std::fprintf(stderr,
               "corpus: ignoring invalid DYDROID_SCALE \"%s\" "
               "(want a number in (0, 1]); using %g\n",
               env, fallback);
  return fallback;
}

namespace {

/// Cursor handing out disjoint index groups from a shuffled order.
class Carver {
 public:
  explicit Carver(std::size_t n, Rng& rng) {
    order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) order_[i] = i;
    rng.shuffle(order_);
  }
  std::vector<std::size_t> take(std::size_t k) {
    k = std::min(k, order_.size() - cursor_);
    std::vector<std::size_t> out(order_.begin() + static_cast<long>(cursor_),
                                 order_.begin() + static_cast<long>(cursor_ + k));
    cursor_ += k;
    return out;
  }
  [[nodiscard]] std::size_t remaining() const {
    return order_.size() - cursor_;
  }

 private:
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

std::string make_package(Rng& rng, std::size_t index) {
  const auto& words = obfuscation::dictionary_words();
  return support::format("com.%s.%s%zu", rng.pick(words).c_str(),
                         rng.pick(words).c_str(), index);
}

/// Lognormal-ish positive sample with the given median.
std::int64_t sample_count(Rng& rng, double median, double sigma) {
  // Box-Muller from two uniforms.
  const double u1 = std::max(1e-12, rng.uniform());
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return static_cast<std::int64_t>(median * std::exp(sigma * z)) + 1;
}

/// Privacy quota rows: {type, total apps, exclusively-3rd-party apps} —
/// paper Table X (Settings handled separately: the ad/Baidu payloads
/// already contribute the bulk of it).
struct PrivacyQuota {
  privacy::DataType type;
  double total;
  double excl_third;
};
constexpr PrivacyQuota kPrivacyQuotas[] = {
    {privacy::DataType::Location, 254, 251},
    {privacy::DataType::Imei, 581, 576},
    {privacy::DataType::Imsi, 27, 25},
    {privacy::DataType::Iccid, 8, 6},
    {privacy::DataType::PhoneNumber, 12, 10},
    {privacy::DataType::Account, 23, 23},
    {privacy::DataType::InstalledApplications, 32, 28},
    {privacy::DataType::InstalledPackages, 235, 231},
    {privacy::DataType::Contact, 1, 1},
    {privacy::DataType::Calendar, 76, 73},
    {privacy::DataType::CallLog, 32, 32},
    {privacy::DataType::Browser, 1, 1},
    {privacy::DataType::Audio, 5, 5},
    {privacy::DataType::Image, 74, 72},
    {privacy::DataType::Video, 31, 31},
    {privacy::DataType::Mms, 1, 1},
    {privacy::DataType::Sms, 1, 1},
};

/// Fig. 3 category weights for DEX-encryption apps (Entertainment, Tools
/// and Shopping dominate).
struct PackerCategoryWeight {
  const char* category;
  double weight;
};
constexpr PackerCategoryWeight kPackerCategories[] = {
    {"Entertainment", 46}, {"Tools", 31},         {"Shopping", 26},
    {"Communication", 8},  {"Finance", 7},        {"Game Casual", 6},
    {"Productivity", 5},   {"Social", 4},         {"Video", 3},
    {"Photography", 2},    {"Personalization", 2},
};

}  // namespace

Corpus generate_corpus(const CorpusConfig& config) {
  const double s = config.scale;
  if (s <= 0 || s > 1.0) throw std::invalid_argument("corpus scale");
  Rng rng(config.seed);

  auto q = [&](double x) {
    return static_cast<std::size_t>(std::llround(x * s));
  };
  auto q1 = [&](double x) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(x * s)));
  };

  const std::size_t n = q1(58739);
  std::vector<AppSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& spec = specs[i];
    spec.package = make_package(rng, i);
    spec.category = rng.pick(play_categories());
    spec.min_sdk = rng.chance(0.25) ? 16 : 19;
    spec.write_external_permission = rng.chance(0.7);
  }

  Carver carve(n, rng);

  // ---- Structure groups (disjoint) -----------------------------------------
  const auto anti_decomp = carve.take(q1(54));
  const auto both_code = carve.take(q(20136));
  const auto dex_only = carve.take(q(40849 - 20136));
  const auto native_only = carve.take(q(25287 - 20136));
  // Everything still in the carver is DCL-free filler.

  // Sub-carvers over the code pools.
  std::deque<std::size_t> pool_both(both_code.begin(), both_code.end());
  std::deque<std::size_t> pool_dex(dex_only.begin(), dex_only.end());
  std::deque<std::size_t> pool_native(native_only.begin(), native_only.end());
  auto take_from = [](std::deque<std::size_t>& pool, std::size_t k) {
    std::vector<std::size_t> out;
    while (k-- > 0 && !pool.empty()) {
      out.push_back(pool.front());
      pool.pop_front();
    }
    return out;
  };

  auto mark_dead = [&](std::size_t i) {
    auto& spec = specs[i];
    const bool in_both =
        std::find(both_code.begin(), both_code.end(), i) != both_code.end();
    const bool in_dex =
        in_both ||
        std::find(dex_only.begin(), dex_only.end(), i) != dex_only.end();
    spec.dead_dex_dcl = in_dex;
    spec.dead_native_dcl = in_both || !in_dex;
  };

  // ---- Table II failure rows ------------------------------------------------
  // Rewriting failures: anti-repackaging apps lacking the external-storage
  // permission (454 in the DEX column, 133 of them also native).
  for (const auto i : take_from(pool_both, q1(133))) {
    specs[i].anti_repackaging = true;
    specs[i].write_external_permission = false;
    mark_dead(i);
  }
  for (const auto i : take_from(pool_dex, q(454 - 133))) {
    specs[i].anti_repackaging = true;
    specs[i].write_external_permission = false;
    mark_dead(i);
  }
  // No-activity apps (8 DEX / 13 native columns).
  for (const auto i : take_from(pool_both, q1(8))) {
    specs[i].no_activity = true;
    mark_dead(i);
  }
  for (const auto i : take_from(pool_native, q(5))) {
    specs[i].no_activity = true;
    mark_dead(i);
  }
  // Runtime crashes (33 DEX / 184 native columns).
  for (const auto i : take_from(pool_both, q1(33))) {
    specs[i].crash_on_start = true;
    mark_dead(i);
  }
  for (const auto i : take_from(pool_native, q(151))) {
    specs[i].crash_on_start = true;
    mark_dead(i);
  }

  // ---- Executing DEX DCL (Table IV/V/X populations) --------------------------
  auto take_dex_exec = [&](std::size_t k) {
    auto out = take_from(pool_dex, k);
    if (out.size() < k) {
      auto extra = take_from(pool_both, k - out.size());
      out.insert(out.end(), extra.begin(), extra.end());
    }
    return out;
  };
  const auto ad_apps = take_dex_exec(q(15012));
  const auto baidu_apps = take_dex_exec(q1(27));
  const auto analytics_apps = take_dex_exec(q(1716));
  const auto own_vuln_dex = take_dex_exec(q1(7));
  const auto own_only_plain = take_dex_exec(q1(6));
  const auto own_both_entity = take_dex_exec(q1(37));
  // Integrity-check negatives: same risky pattern, but verified — must NOT
  // be flagged in Table IX.
  const auto vuln_dex_checked = take_dex_exec(q1(2));

  for (const auto i : ad_apps) specs[i].ad_sdk = true;
  // A small minority of SDKs defer loading until user interaction (§V-C
  // coverage discussion): mark ~3% of the analytics apps click-triggered.
  for (std::size_t k = 0; k < analytics_apps.size(); ++k) {
    if (k % 33 == 7) specs[analytics_apps[k]].dcl_on_click = true;
  }
  for (const auto i : baidu_apps) specs[i].baidu_remote_sdk = true;
  for (const auto i : analytics_apps) specs[i].analytics_sdk = true;
  for (const auto i : own_vuln_dex) {
    specs[i].vuln = VulnKind::DexExternalStorage;
    specs[i].min_sdk = 16;  // supports pre-4.4 devices (Table IX condition)
  }
  for (const auto i : vuln_dex_checked) {
    specs[i].vuln = VulnKind::DexExternalStorage;
    specs[i].vuln_integrity_check = true;
    specs[i].min_sdk = 16;
  }
  for (const auto i : own_only_plain) specs[i].own_dex_dcl = true;
  for (const auto i : own_both_entity) {
    specs[i].own_dex_dcl = true;
    specs[i].analytics_sdk = true;
  }
  // Non-executing remainder of the dex pools carries dead DCL code.
  for (const auto i : pool_dex) specs[i].dead_dex_dcl = true;

  // ---- Executing native DCL ---------------------------------------------------
  auto take_native_exec = [&](std::size_t k) {
    auto out = take_from(pool_native, k);
    if (out.size() < k) {
      auto extra = take_from(pool_both, k - out.size());
      out.insert(out.end(), extra.begin(), extra.end());
    }
    return out;
  };
  const auto chathook_apps = take_native_exec(q1(84));
  const auto sdk_native_apps = take_native_exec(q(11468 - 84));
  const auto own_vuln_native = take_native_exec(q1(7));
  const auto vuln_native_checked = take_native_exec(q1(1));
  const auto own_native_apps = take_native_exec(q(1914 - 8));
  const auto native_both_entity = take_native_exec(q1(366));

  for (const auto i : sdk_native_apps) specs[i].sdk_native_dcl = true;
  for (const auto i : own_vuln_native) {
    specs[i].vuln = VulnKind::NativeOtherAppInternal;
  }
  for (const auto i : vuln_native_checked) {
    specs[i].vuln = VulnKind::NativeOtherAppInternal;
    specs[i].vuln_integrity_check = true;
  }
  for (const auto i : own_native_apps) specs[i].own_native_dcl = true;
  for (const auto i : native_both_entity) {
    specs[i].own_native_dcl = true;
    specs[i].sdk_native_dcl = true;
  }
  for (const auto i : pool_native) specs[i].dead_native_dcl = true;
  // Both-pool leftovers carry dead code of both kinds.
  for (const auto i : pool_both) {
    specs[i].dead_dex_dcl = true;
    specs[i].dead_native_dcl = true;
  }
  // Post-pass: every member of a code group must actually carry that code
  // kind — apps given only the other kind's behaviours (e.g. a both-pool
  // app consumed by the native-exec overflow) get the missing kind as dead
  // code so the Table II column populations stay correct.
  for (const auto i : both_code) {
    if (!specs[i].any_dex_dcl_code()) specs[i].dead_dex_dcl = true;
    if (!specs[i].any_native_code()) specs[i].dead_native_dcl = true;
  }
  for (const auto i : dex_only) {
    if (!specs[i].any_dex_dcl_code()) specs[i].dead_dex_dcl = true;
  }
  for (const auto i : native_only) {
    if (!specs[i].any_native_code()) specs[i].dead_native_dcl = true;
  }

  // ---- Malware (Table VII/VIII) ----------------------------------------------
  const auto swiss_count = q1(1);
  const auto adware_count = q1(2);
  std::vector<std::size_t> malware_files;  // (app index, file slot implicit)
  {
    std::size_t taken = 0;
    for (std::size_t k = 0; k < swiss_count && k < ad_apps.size(); ++k) {
      specs[ad_apps[k]].malware.push_back(
          MalwarePayloadSpec{malware::Family::SwissCodeMonkeys, {}});
      malware_files.push_back(ad_apps[k]);
      ++taken;
    }
    for (std::size_t k = 0; k < adware_count && k < analytics_apps.size();
         ++k) {
      specs[analytics_apps[k]].malware.push_back(
          MalwarePayloadSpec{malware::Family::AdwareAirpushMinimob, {}});
      malware_files.push_back(analytics_apps[k]);
    }
    for (const auto i : chathook_apps) {
      specs[i].malware.push_back(
          MalwarePayloadSpec{malware::Family::ChathookPtrace, {}});
      malware_files.push_back(i);
    }
    // Top the file count up to the Table VII total of 91 (one app may load
    // several malicious files) with second chathook payloads.
    const auto target_files = q1(91);
    std::size_t extra = 0;
    while (malware_files.size() < target_files &&
           extra < chathook_apps.size()) {
      specs[chathook_apps[extra]].malware.push_back(
          MalwarePayloadSpec{malware::Family::ChathookPtrace, {}});
      malware_files.push_back(chathook_apps[extra]);
      ++extra;
    }
    (void)taken;
  }
  // Trigger gates over the file list: disjoint slices sized to Table VIII
  // (19 time / 35 airplane / 3 connectivity / 21 location of 91; the rest
  // ungated).
  {
    struct GateSlice {
      MalwareTrigger trigger;
      std::size_t count;
    };
    const GateSlice slices[] = {
        {MalwareTrigger::SystemTime, q1(19)},
        {MalwareTrigger::AirplaneMode, q1(35)},
        {MalwareTrigger::Connectivity, q1(3)},
        {MalwareTrigger::Location, q1(21)},
    };
    // Walk (app, payload) pairs in order.
    std::vector<std::pair<std::size_t, std::size_t>> file_slots;
    {
      std::map<std::size_t, std::size_t> next_slot;
      for (const auto i : malware_files) {
        file_slots.emplace_back(i, next_slot[i]++);
      }
    }
    std::size_t cursor = 0;
    for (const auto& slice : slices) {
      for (std::size_t k = 0; k < slice.count && cursor < file_slots.size();
           ++k, ++cursor) {
        const auto [app, slot] = file_slots[cursor];
        specs[app].malware[slot].triggers.push_back(slice.trigger);
      }
    }
  }

  // ---- Privacy quotas (Table X) ----------------------------------------------
  // Third-party leaks ride on the analytics payloads; Settings additionally
  // comes from the ad/Baidu payloads (paper: the Google Ads library "only
  // reads the device settings").
  std::vector<std::size_t> analytics_pool = analytics_apps;
  analytics_pool.insert(analytics_pool.end(), own_both_entity.begin(),
                        own_both_entity.end());
  {
    const auto settings_extra =
        std::min(analytics_pool.size(), q(16441 - 15012 - 27));
    for (std::size_t k = 0; k < settings_extra; ++k) {
      specs[analytics_pool[k]].sdk_leaks |=
          privacy::mask_of(privacy::DataType::Settings);
    }
    std::size_t rr = 0;
    for (const auto& quota : kPrivacyQuotas) {
      const auto count = std::min(analytics_pool.size(), q1(quota.excl_third));
      for (std::size_t k = 0; k < count; ++k) {
        specs[analytics_pool[rr % analytics_pool.size()]].sdk_leaks |=
            privacy::mask_of(quota.type);
        ++rr;
      }
    }
  }
  // Own-code leaks ride on the developer's own plugin payloads.
  std::vector<std::size_t> own_pool = own_only_plain;
  own_pool.insert(own_pool.end(), own_both_entity.begin(),
                  own_both_entity.end());
  if (!own_pool.empty()) {
    std::size_t rr = 0;
    // Settings own-leakers: 16,482 - 16,441 = 41.
    for (std::size_t k = 0; k < std::min(own_pool.size(), q1(41)); ++k) {
      specs[own_pool[rr++ % own_pool.size()]].own_leaks |=
          privacy::mask_of(privacy::DataType::Settings);
    }
    for (const auto& quota : kPrivacyQuotas) {
      const auto own_count = quota.total - quota.excl_third;
      if (own_count <= 0) continue;
      const auto count = std::min(own_pool.size(), q1(own_count));
      for (std::size_t k = 0; k < count; ++k) {
        specs[own_pool[rr++ % own_pool.size()]].own_leaks |=
            privacy::mask_of(quota.type);
      }
    }
  }

  // ---- Obfuscation (Table VI / Fig. 3) ----------------------------------------
  for (const auto i : anti_decomp) specs[i].anti_decompilation = true;
  {
    // Lexical & reflection quotas over the measurable population.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    rng.shuffle(all);
    std::size_t lex = q(52836);
    std::size_t refl = q(30664);
    for (const auto i : all) {
      if (specs[i].anti_decompilation) continue;
      if (lex > 0) {
        specs[i].lexical = true;
        --lex;
      }
    }
    rng.shuffle(all);
    for (const auto i : all) {
      if (specs[i].anti_decompilation) continue;
      if (refl == 0) break;
      specs[i].reflection = true;
      --refl;
    }
  }
  {
    // DEX-encryption apps with Fig. 3 category weights; drawn from the
    // DCL-free filler so packer loads are their only DCL.
    double total_weight = 0;
    for (const auto& w : kPackerCategories) total_weight += w.weight;
    const auto packed = carve.take(q1(140));
    // Largest-remainder category assignment so Fig. 3's dominance
    // (Entertainment/Tools/Shopping) survives small scaled populations.
    std::size_t assigned = 0;
    double carried = 0;
    for (const auto& w : kPackerCategories) {
      carried += w.weight / total_weight * static_cast<double>(packed.size());
      while (assigned < packed.size() &&
             static_cast<double>(assigned) + 0.5 < carried) {
        const auto i = packed[assigned++];
        specs[i].dex_encryption = true;
        specs[i].write_external_permission = true;  // keep Table II clean
        specs[i].category = w.category;
      }
    }
    while (assigned < packed.size()) {
      const auto i = packed[assigned++];
      specs[i].dex_encryption = true;
      specs[i].write_external_permission = true;
      specs[i].category = kPackerCategories[0].category;
    }
  }

  // ---- Popularity (Table III) --------------------------------------------------
  for (auto& spec : specs) {
    // Multiplicative boosts reproduce the paper's orderings (DCL apps more
    // popular; native-code apps dramatically so) without chasing Table III's
    // absolute means, which are not internally consistent with the stated
    // populations.
    double median_downloads = 9000;
    if (spec.any_dex_dcl_code()) median_downloads *= 2.2;
    if (spec.any_native_code()) median_downloads *= 4.0;
    spec.popularity.downloads = sample_count(rng, median_downloads, 1.0);
    spec.popularity.rating_count = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(spec.popularity.downloads) *
               (0.02 + 0.03 * rng.uniform())));
    double rating = 3.70 + 0.25 * rng.uniform();
    if (spec.any_dex_dcl_code()) rating += 0.12;
    if (spec.any_native_code()) rating += 0.04;
    spec.popularity.avg_rating = std::min(5.0, rating);
  }
  // Headline malware apps are popular (Table VII: 10M-download samples).
  for (const auto i : malware_files) {
    specs[i].popularity.downloads =
        std::max<std::int64_t>(specs[i].popularity.downloads, 10'000'000);
  }

  // ---- Build -------------------------------------------------------------------
  Corpus corpus;
  corpus.config = config;
  corpus.apps.reserve(n);
  for (auto& spec : specs) {
    auto app_rng = rng.fork();
    corpus.apps.push_back(build_app(spec, app_rng));
  }
  return corpus;
}

}  // namespace dydroid::appgen
