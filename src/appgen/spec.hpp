// App specifications: the ground-truth blueprint of one synthetic
// marketplace app. The generator compiles a spec into a runnable SimApk (+
// the scenario: remote servers, companion apps); the benches then verify
// that the DyDroid pipeline *recovers* the spec'd behaviours from the
// binaries alone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "malware/families.hpp"
#include "privacy/sources.hpp"
#include "support/blob.hpp"
#include "support/bytes.hpp"

namespace dydroid::appgen {

/// Store metadata (paper Table III).
struct Popularity {
  std::int64_t downloads = 0;
  std::int64_t rating_count = 0;
  double avg_rating = 0.0;
};

/// Environment gate applied around a malicious load (paper Table VIII).
enum class MalwareTrigger {
  SystemTime,    // skip when now < release date (review-time evasion)
  AirplaneMode,  // skip when airplane mode is on (sandbox heuristic)
  Connectivity,  // skip when the Internet is unreachable
  Location,      // skip when location service is off
};

std::string_view trigger_name(MalwareTrigger trigger);

/// One malicious payload file carried by an app.
struct MalwarePayloadSpec {
  malware::Family family = malware::Family::SwissCodeMonkeys;
  std::vector<MalwareTrigger> triggers;
};

enum class VulnKind {
  None,
  DexExternalStorage,      // caches loadable bytecode on /mnt/sdcard
  NativeOtherAppInternal,  // System.load from another app's private dir
};

struct AppSpec {
  std::string package;
  std::string category;  // Play store category
  Popularity popularity;
  int min_sdk = 19;
  bool write_external_permission = true;  // else DyDroid must rewrite

  // --- DCL behaviours -------------------------------------------------------
  bool ad_sdk = false;             // Google-Ads-like temp-file dex loading
  bool baidu_remote_sdk = false;   // remote-fetch SDK (policy violation)
  bool analytics_sdk = false;      // 3rd-party SDK loading a local dex
  bool own_dex_dcl = false;        // developer's own DexClassLoader
  bool sdk_native_dcl = false;     // 3rd-party SDK loads bundled .so
  bool own_native_dcl = false;     // developer loads bundled .so
  /// DCL code present but never reached at runtime (dead code — the gap
  /// between Table II "exercised" and "intercepted").
  bool dead_dex_dcl = false;
  bool dead_native_dcl = false;
  /// Fire the DCL behaviours from a UI click handler instead of onCreate
  /// (the minority pattern; most SDKs load at launch, §V-C).
  bool dcl_on_click = false;

  // --- payload privacy (leaks living in the *loaded* code, Table X) --------
  privacy::TaintMask sdk_leaks = 0;  // leaked by third-party payload classes
  privacy::TaintMask own_leaks = 0;  // leaked by developer payload classes

  // --- malware (Table VII/VIII) ---------------------------------------------
  std::vector<MalwarePayloadSpec> malware;

  // --- vulnerability (Table IX) ----------------------------------------------
  VulnKind vuln = VulnKind::None;
  bool vuln_integrity_check = false;  // hashes the file first -> not vulnerable

  // --- obfuscation (Table VI / Fig. 3) ---------------------------------------
  bool lexical = false;
  bool reflection = false;
  bool dex_encryption = false;
  bool anti_decompilation = false;
  bool anti_repackaging = false;

  // --- pathologies (Table II failure rows) -----------------------------------
  bool crash_on_start = false;
  bool no_activity = false;

  [[nodiscard]] bool any_dex_dcl_code() const {
    return ad_sdk || baidu_remote_sdk || analytics_sdk || own_dex_dcl ||
           dead_dex_dcl || dex_encryption ||
           vuln == VulnKind::DexExternalStorage || has_dex_malware();
  }
  [[nodiscard]] bool any_native_code() const {
    return sdk_native_dcl || own_native_dcl || dead_native_dcl ||
           dex_encryption || vuln == VulnKind::NativeOtherAppInternal ||
           has_native_malware();
  }
  [[nodiscard]] bool has_dex_malware() const;
  [[nodiscard]] bool has_native_malware() const;
};

/// Device surroundings an app needs at run time. Companion packages are
/// refcounted Blobs, so copying a Corpus/Scenario never duplicates them.
struct Scenario {
  std::vector<std::pair<std::string, support::Bytes>> hosted_urls;
  std::vector<support::Blob> companion_apks;
};

struct GeneratedApp {
  AppSpec spec;
  support::Blob apk;  // serialized package (shared, immutable)
  Scenario scenario;
};

}  // namespace dydroid::appgen
