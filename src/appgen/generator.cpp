#include "appgen/generator.hpp"

#include "dex/builder.hpp"
#include "nativebin/native_library.hpp"
#include "obfuscation/language_db.hpp"
#include "obfuscation/lexical.hpp"
#include "obfuscation/packer.hpp"
#include "obfuscation/poison.hpp"
#include "os/device.hpp"
#include "os/services.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace dydroid::appgen {

using dex::DexBuilder;
using dex::MethodBuilder;
using support::Bytes;
using support::Rng;

namespace {

// ---------------------------------------------------------------------------
// Naming.
// ---------------------------------------------------------------------------

std::string camel(const std::string& a, const std::string& b) {
  auto cap = [](std::string w) {
    if (!w.empty()) w[0] = static_cast<char>(std::toupper(w[0]));
    return w;
  };
  return cap(a) + cap(b);
}

std::string pick_word(Rng& rng) {
  return rng.pick(obfuscation::dictionary_words());
}

// ---------------------------------------------------------------------------
// Bytecode emission helpers. Each helper uses registers [base, base+8) and
// label names suffixed by `tag` so several can coexist in one method.
// ---------------------------------------------------------------------------

/// AssetManager.open(asset) -> stream -> FileOutputStream(dest) copy loop.
void emit_copy_asset(MethodBuilder& m, const std::string& asset,
                     const std::string& dest, std::uint16_t r,
                     const std::string& tag) {
  m.const_str(r, asset);
  m.invoke_static("android.content.res.AssetManager", "open", {r});
  m.move_result(static_cast<std::uint16_t>(r + 1));
  m.new_instance(static_cast<std::uint16_t>(r + 2), "java.io.FileOutputStream");
  m.const_str(static_cast<std::uint16_t>(r + 3), dest);
  m.invoke_virtual("java.io.FileOutputStream", "<init>",
                   {static_cast<std::uint16_t>(r + 2),
                    static_cast<std::uint16_t>(r + 3)});
  m.label("copy_" + tag);
  m.invoke_virtual("java.io.InputStream", "read",
                   {static_cast<std::uint16_t>(r + 1)});
  m.move_result(static_cast<std::uint16_t>(r + 4));
  m.if_eqz(static_cast<std::uint16_t>(r + 4), "done_" + tag);
  m.invoke_virtual("java.io.OutputStream", "write",
                   {static_cast<std::uint16_t>(r + 2),
                    static_cast<std::uint16_t>(r + 4)});
  m.jump("copy_" + tag);
  m.label("done_" + tag);
}

/// URL(url) -> connection -> input stream -> FileOutputStream(dest) loop.
void emit_download(MethodBuilder& m, const std::string& url,
                   const std::string& dest, std::uint16_t r,
                   const std::string& tag) {
  m.new_instance(r, "java.net.URL");
  m.const_str(static_cast<std::uint16_t>(r + 1), url);
  m.invoke_virtual("java.net.URL", "<init>",
                   {r, static_cast<std::uint16_t>(r + 1)});
  m.invoke_virtual("java.net.URL", "openConnection", {r});
  m.move_result(static_cast<std::uint16_t>(r + 2));
  m.invoke_virtual("java.net.URLConnection", "getInputStream",
                   {static_cast<std::uint16_t>(r + 2)});
  m.move_result(static_cast<std::uint16_t>(r + 7));
  // Real SDK idiom: wrap the network stream (Table I InputStream ->
  // InputStream edge).
  m.new_instance(static_cast<std::uint16_t>(r + 3),
                 "java.io.BufferedInputStream");
  m.invoke_virtual("java.io.BufferedInputStream", "<init>",
                   {static_cast<std::uint16_t>(r + 3),
                    static_cast<std::uint16_t>(r + 7)});
  m.new_instance(static_cast<std::uint16_t>(r + 4), "java.io.FileOutputStream");
  m.const_str(static_cast<std::uint16_t>(r + 5), dest);
  m.invoke_virtual("java.io.FileOutputStream", "<init>",
                   {static_cast<std::uint16_t>(r + 4),
                    static_cast<std::uint16_t>(r + 5)});
  m.label("dl_" + tag);
  m.invoke_virtual("java.io.InputStream", "read",
                   {static_cast<std::uint16_t>(r + 3)});
  m.move_result(static_cast<std::uint16_t>(r + 6));
  m.if_eqz(static_cast<std::uint16_t>(r + 6), "dld_" + tag);
  m.invoke_virtual("java.io.OutputStream", "write",
                   {static_cast<std::uint16_t>(r + 4),
                    static_cast<std::uint16_t>(r + 6)});
  m.jump("dl_" + tag);
  m.label("dld_" + tag);
}

/// DexClassLoader(path, opt_dir) -> loadClass(payload) -> newInstance ->
/// run().
void emit_dex_load_run(MethodBuilder& m, const std::string& path,
                       const std::string& opt_dir,
                       const std::string& payload_class, std::uint16_t r,
                       const std::string& tag, bool run = true) {
  (void)tag;
  m.new_instance(r, "dalvik.system.DexClassLoader");
  m.const_str(static_cast<std::uint16_t>(r + 1), path);
  m.const_str(static_cast<std::uint16_t>(r + 2), opt_dir);
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>",
                   {r, static_cast<std::uint16_t>(r + 1),
                    static_cast<std::uint16_t>(r + 2)});
  if (!run) return;
  m.const_str(static_cast<std::uint16_t>(r + 3), payload_class);
  m.invoke_virtual("dalvik.system.DexClassLoader", "loadClass",
                   {r, static_cast<std::uint16_t>(r + 3)});
  m.move_result(static_cast<std::uint16_t>(r + 4));
  m.invoke_virtual("java.lang.Class", "newInstance",
                   {static_cast<std::uint16_t>(r + 4)});
  m.move_result(static_cast<std::uint16_t>(r + 5));
  m.invoke_virtual(payload_class, "run",
                   {static_cast<std::uint16_t>(r + 5)});
}

/// Environment gates (Table VIII): jump to `skip_label` unless every gate
/// passes.
void emit_gates(MethodBuilder& m, const std::vector<MalwareTrigger>& triggers,
                const std::string& skip_label, std::uint16_t r) {
  for (const auto trigger : triggers) {
    switch (trigger) {
      case MalwareTrigger::SystemTime:
        // skip when now < release date
        m.invoke_static("java.lang.System", "currentTimeMillis");
        m.move_result(r);
        m.const_int(static_cast<std::uint16_t>(r + 1), kReleaseTimeMs);
        m.cmp_lt(static_cast<std::uint16_t>(r + 2), r,
                 static_cast<std::uint16_t>(r + 1));
        m.if_nez(static_cast<std::uint16_t>(r + 2), skip_label);
        break;
      case MalwareTrigger::AirplaneMode:
        m.invoke_static("android.provider.Settings", "isAirplaneModeOn");
        m.move_result(r);
        m.if_nez(r, skip_label);
        break;
      case MalwareTrigger::Connectivity:
        m.invoke_static("android.net.ConnectivityManager", "isConnected");
        m.move_result(r);
        m.if_eqz(r, skip_label);
        break;
      case MalwareTrigger::Location:
        m.invoke_static("android.location.LocationManager",
                        "isProviderEnabled");
        m.move_result(r);
        m.if_eqz(r, skip_label);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Payload builders.
// ---------------------------------------------------------------------------

/// A loadable dex whose single class leaks the given data types to Log.d.
/// With mask == 0, a benign busy-loop plugin.
Bytes privacy_payload(const std::string& payload_class,
                      privacy::TaintMask mask) {
  DexBuilder b;
  auto cls = b.cls(payload_class);
  auto m = cls.method("run", 1);
  std::uint16_t tmp = 1;
  if (mask == 0) {
    m.const_int(tmp, 7);
    m.const_str(static_cast<std::uint16_t>(tmp + 1), "plugin-ready");
    m.invoke_static("android.util.Log", "d",
                    {static_cast<std::uint16_t>(tmp + 1),
                     static_cast<std::uint16_t>(tmp + 1)});
    m.return_void();
    m.done();
    return b.build().serialize();
  }
  m.const_str(6, "trk");
  for (const auto type : privacy::types_in(mask)) {
    using privacy::DataType;
    switch (type) {
      case DataType::Location:
        m.invoke_static("android.location.LocationManager",
                        "getLastKnownLocation");
        break;
      case DataType::Imei:
        m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
        break;
      case DataType::Imsi:
        m.invoke_static("android.telephony.TelephonyManager",
                        "getSubscriberId");
        break;
      case DataType::Iccid:
        m.invoke_static("android.telephony.TelephonyManager",
                        "getSimSerialNumber");
        break;
      case DataType::PhoneNumber:
        m.invoke_static("android.telephony.TelephonyManager",
                        "getLine1Number");
        break;
      case DataType::Account:
        m.invoke_static("android.accounts.AccountManager", "getAccounts");
        break;
      case DataType::InstalledApplications:
        m.invoke_static("android.content.pm.PackageManager",
                        "getInstalledApplications");
        break;
      case DataType::InstalledPackages:
        m.invoke_static("android.content.pm.PackageManager",
                        "getInstalledPackages");
        break;
      default: {
        // Content-provider types: query by URI.
        std::string uri;
        switch (type) {
          case DataType::Contact: uri = os::kUriContacts; break;
          case DataType::Calendar: uri = os::kUriCalendar; break;
          case DataType::CallLog: uri = os::kUriCallLog; break;
          case DataType::Browser: uri = os::kUriBrowser; break;
          case DataType::Audio: uri = os::kUriAudio; break;
          case DataType::Image: uri = os::kUriImages; break;
          case DataType::Video: uri = os::kUriVideo; break;
          case DataType::Settings: uri = os::kUriSettings; break;
          case DataType::Mms: uri = os::kUriMms; break;
          case DataType::Sms: uri = os::kUriSms; break;
          default: uri = os::kUriSettings; break;
        }
        m.const_str(tmp, uri);
        m.invoke_static("android.content.ContentResolver", "query", {tmp});
        break;
      }
    }
    m.move_result(static_cast<std::uint16_t>(tmp + 1));
    m.invoke_static("android.util.Log", "d",
                    {6, static_cast<std::uint16_t>(tmp + 1)});
  }
  m.return_void();
  m.done();
  return b.build().serialize();
}

/// Google-Ads-like payload: reads device Settings only (paper §V-B(f)).
Bytes ad_payload() {
  return privacy_payload("com.google.ads.dynamic.AdRenderer",
                         privacy::mask_of(privacy::DataType::Settings));
}

/// Baidu remote payload: packed as a JAR-like container with classes.dex.
Bytes baidu_payload_jar() {
  apk::ApkFile jar;
  manifest::Manifest m;
  m.package = "com.baidu.mobads.dynamic";
  jar.write_manifest(m);
  jar.put(apk::kClassesDexEntry,
          privacy_payload("com.baidu.mobads.dynamic.Render",
                          privacy::mask_of(privacy::DataType::Settings)));
  jar.sign("baidu-sdk");
  return jar.serialize();
}

/// Benign native library exporting one init symbol.
Bytes benign_native_lib(const std::string& soname, const std::string& symbol,
                        const std::string& owner_class) {
  nativebin::NativeLibrary lib(soname, nativebin::Arch::Arm);
  DexBuilder b;
  b.cls(owner_class)
      .static_method(symbol, 0)
      .const_int(0, 0)
      .ret(0)
      .done();
  lib.code() = b.build();
  return lib.serialize();
}

// ---------------------------------------------------------------------------
// Host-app assembly.
// ---------------------------------------------------------------------------

struct Build {
  const AppSpec* spec = nullptr;
  DexBuilder dex;
  apk::ApkFile apk;
  manifest::Manifest man;
  Scenario scenario;
  std::vector<std::string> boot_calls;  // static boot() methods to invoke
  int malware_index = 0;
};

std::string internal(const Build& b, const std::string& rel) {
  return os::internal_storage_dir(b.man.package) + "/" + rel;
}

void add_ad_sdk(Build& b) {
  b.apk.put(std::string(apk::kAssetsDirPrefix) + "ad_payload.bin",
            ad_payload());
  auto cls = b.dex.cls("com.google.ads.sdk.MediaLoader");
  auto m = cls.static_method("boot", 0);
  const auto cache = internal(b, "cache");
  const auto dest = internal(b, "cache/ad1.dex");
  emit_copy_asset(m, "ad_payload.bin", dest, 0, "ad");
  emit_dex_load_run(m, dest, cache, "com.google.ads.dynamic.AdRenderer", 8,
                    "ad");
  // Temporary file: delete after the load/merge (the interception-mutex
  // case — paper §III-B).
  m.new_instance(0, "java.io.File");
  m.const_str(1, dest);
  m.invoke_virtual("java.io.File", "<init>", {0, 1});
  m.invoke_virtual("java.io.File", "delete", {0});
  m.done();
  b.boot_calls.push_back("com.google.ads.sdk.MediaLoader");
}

void add_baidu_sdk(Build& b) {
  const auto url =
      "http://mobads.baidu.com/ads/pa/" + b.man.package + ".jar";
  b.scenario.hosted_urls.emplace_back(url, baidu_payload_jar());
  auto cls = b.dex.cls("com.baidu.mobads.AdView");
  auto m = cls.static_method("boot", 0);
  // SDKs check connectivity before fetching.
  m.invoke_static("android.net.ConnectivityManager", "isConnected");
  m.move_result(0);
  m.if_eqz(0, "offline");
  const auto dest = internal(b, "cache/bdad.jar");
  emit_download(m, url, dest, 1, "bd");
  emit_dex_load_run(m, dest, internal(b, "cache"),
                    "com.baidu.mobads.dynamic.Render", 9, "bd");
  m.label("offline");
  m.return_void();
  m.done();
  b.boot_calls.push_back("com.baidu.mobads.AdView");
}

void add_analytics_sdk(Build& b) {
  b.apk.put(std::string(apk::kAssetsDirPrefix) + "tracker.bin",
            privacy_payload("com.flurry.analytics.dynamic.Collector",
                            b.spec->sdk_leaks));
  auto cls = b.dex.cls("com.flurry.analytics.TrackerCore");
  auto m = cls.static_method("boot", 0);
  const auto dest = internal(b, "cache/tracker.dex");
  emit_copy_asset(m, "tracker.bin", dest, 0, "tk");
  emit_dex_load_run(m, dest, internal(b, "cache"),
                    "com.flurry.analytics.dynamic.Collector", 8, "tk");
  m.done();
  b.boot_calls.push_back("com.flurry.analytics.TrackerCore");
}

void add_own_dex_dcl(Build& b) {
  const auto payload_class = b.man.package + ".plugin.Feature";
  b.apk.put(std::string(apk::kAssetsDirPrefix) + "plugin.bin",
            privacy_payload(payload_class, b.spec->own_leaks));
  auto cls = b.dex.cls(b.man.package + ".core.PluginHost");
  auto m = cls.static_method("boot", 0);
  const auto dest = internal(b, "files/plugin.dex");
  emit_copy_asset(m, "plugin.bin", dest, 0, "pl");
  emit_dex_load_run(m, dest, internal(b, "files"), payload_class, 8, "pl");
  m.done();
  b.boot_calls.push_back(b.man.package + ".core.PluginHost");
}

void add_sdk_native(Build& b) {
  b.apk.put(std::string(apk::kLibDirPrefix) + "armeabi/libengine.so",
            benign_native_lib("libengine", "engineInit",
                              "com.unity3d.player.native.Engine"));
  auto cls = b.dex.cls("com.unity3d.player.NativeBridge");
  cls.native_method("engineInit", 0);
  auto m = cls.static_method("boot", 0);
  m.const_str(0, "engine");
  m.invoke_static("java.lang.System", "loadLibrary", {0});
  m.invoke_static("com.unity3d.player.NativeBridge", "engineInit");
  m.done();
  b.boot_calls.push_back("com.unity3d.player.NativeBridge");
}

void add_own_native(Build& b) {
  b.apk.put(std::string(apk::kLibDirPrefix) + "armeabi/libapp.so",
            benign_native_lib("libapp", "appInit",
                              b.man.package + ".jni.Core"));
  auto cls = b.dex.cls(b.man.package + ".core.NativeHost");
  cls.native_method("appInit", 0);
  auto m = cls.static_method("boot", 0);
  m.const_str(0, "app");
  m.invoke_static("java.lang.System", "loadLibrary", {0});
  m.invoke_static(b.man.package + ".core.NativeHost", "appInit");
  m.done();
  b.boot_calls.push_back(b.man.package + ".core.NativeHost");
}

void add_dead_dcl(Build& b, bool dead_dex, bool dead_native) {
  auto cls = b.dex.cls(b.man.package + ".legacy.UnusedLoader");
  if (dead_dex) {
    auto m = cls.static_method("legacyLoad", 0);
    emit_dex_load_run(m, internal(b, "files/never.dex"),
                      internal(b, "files"), "never.Cls", 0, "dd",
                      /*run=*/false);
    m.done();
  }
  if (dead_native) {
    auto m = cls.static_method("legacyLink", 0);
    m.const_str(0, "never");
    m.invoke_static("java.lang.System", "loadLibrary", {0});
    m.done();
  }
}

void add_malware(Build& b, const MalwarePayloadSpec& payload, Rng& rng) {
  const int index = b.malware_index++;
  const auto tag = support::format("mw%d", index);
  malware::PayloadOptions options;
  options.c2_url = support::format("http://c2-%s.blackhole.example/gate.php",
                                   b.man.package.c_str());
  const auto bytes = malware::generate_payload(payload.family, options, rng);

  if (malware::family_is_native(payload.family)) {
    // Native family: bundled lib, gated loadLibrary + native dispatch.
    const auto soname = support::format("chat%d", index);
    b.apk.put(std::string(apk::kLibDirPrefix) + "armeabi/lib" + soname +
                  ".so",
              bytes);
    auto cls =
        b.dex.cls(support::format("com.hookkit%d.loader.NativeDropper", index));
    if (index == 0) cls.native_method("inject", 0);
    auto m = cls.static_method("boot", 0);
    emit_gates(m, payload.triggers, "skip_" + tag, 0);
    m.const_str(3, soname);
    m.invoke_static("java.lang.System", "loadLibrary", {3});
    if (index == 0) {
      m.invoke_static(
          support::format("com.hookkit%d.loader.NativeDropper", index),
          "inject");
    }
    m.label("skip_" + tag);
    m.return_void();
    m.done();
    b.boot_calls.push_back(
        support::format("com.hookkit%d.loader.NativeDropper", index));
  } else {
    // DEX family: payload hidden as an opaque asset, gated drop + load.
    const auto asset = support::format("upd%d.bin", index);
    b.apk.put(std::string(apk::kAssetsDirPrefix) + asset, bytes);
    const auto payload_class =
        payload.family == malware::Family::SwissCodeMonkeys
            ? "com.swisscodemonkeys.payload.CoreService"
            : "com.airpush.minimob.AdEngine";
    if (payload.family == malware::Family::SwissCodeMonkeys) {
      // Live C2: serves one command, then EOF.
      b.scenario.hosted_urls.emplace_back(options.c2_url,
                                          support::to_bytes("sms"));
    }
    auto cls = b.dex.cls(support::format("com.pushcore%d.sdk.Dropper", index));
    auto m = cls.static_method("boot", 0);
    emit_gates(m, payload.triggers, "skip_" + tag, 0);
    const auto dest = internal(b, support::format("cache/%s.dex", tag.c_str()));
    emit_copy_asset(m, asset, dest, 3, tag);
    emit_dex_load_run(m, dest, internal(b, "cache"), payload_class, 11, tag);
    m.label("skip_" + tag);
    m.return_void();
    m.done();
    b.boot_calls.push_back(support::format("com.pushcore%d.sdk.Dropper", index));
  }
}

void add_vuln(Build& b) {
  if (b.spec->vuln == VulnKind::DexExternalStorage) {
    // The developer caches loadable bytecode on world-writable external
    // storage (paper: com.longtukorea.snmg / im_sdk pattern). The cache is
    // reused when present — which is exactly what lets a co-installed app
    // substitute the file between runs.
    const auto payload_class = "com.yayavoice.sdk.dynamic.Voice";
    const auto payload = privacy_payload(payload_class, 0);
    const auto genuine_hash =
        static_cast<std::int64_t>(support::fnv1a64(payload));
    b.apk.put(std::string(apk::kAssetsDirPrefix) + "voice.bin", payload);
    auto cls = b.dex.cls(b.man.package + ".core.VoiceSetup");
    auto m = cls.static_method("boot", 0);
    const auto dest = std::string(os::kExternalStorageDir) +
                      "/im_sdk/jar/yayavoice_for_assets.jar";
    m.new_instance(7, "java.io.File");
    m.const_str(6, dest);
    m.invoke_virtual("java.io.File", "<init>", {7, 6});
    m.invoke_virtual("java.io.File", "exists", {7});
    m.move_result(7);
    m.if_nez(7, "cached_vx");
    emit_copy_asset(m, "voice.bin", dest, 0, "vx");
    m.label("cached_vx");
    if (b.spec->vuln_integrity_check) {
      // Grab'n-Run-style verified loading (Falsina et al.): hash the file
      // and abort unless it matches the hash pinned at build time.
      m.const_str(0, dest);
      m.invoke_static("java.security.MessageDigest", "digest", {0});
      m.move_result(1);
      m.const_int(2, genuine_hash);
      m.cmp_eq(3, 1, 2);
      m.if_eqz(3, "tampered_vx");
    }
    emit_dex_load_run(m, dest, internal(b, "cache"), payload_class, 8, "vx");
    m.label("tampered_vx");
    m.return_void();
    m.done();
    b.boot_calls.push_back(b.man.package + ".core.VoiceSetup");
  } else if (b.spec->vuln == VulnKind::NativeOtherAppInternal) {
    // Blind trust in another developer's runtime: load libCore.so from
    // com.adobe.air's private storage (paper Table IX).
    auto cls = b.dex.cls(b.man.package + ".core.AirBridge");
    cls.native_method("airInit", 0);
    auto m = cls.static_method("boot", 0);
    m.const_str(0, "/data/data/com.adobe.air/lib/libCore.so");
    if (b.spec->vuln_integrity_check) {
      m.invoke_static("java.security.MessageDigest", "digest", {0});
    }
    m.invoke_static("java.lang.System", "load", {0});
    m.invoke_static(b.man.package + ".core.AirBridge", "airInit");
    m.done();
    b.boot_calls.push_back(b.man.package + ".core.AirBridge");

    // Companion runtime app owning the library.
    manifest::Manifest cm;
    cm.package = "com.adobe.air";
    apk::ApkFile companion;
    companion.write_manifest(cm);
    DexBuilder cdex;
    cdex.cls("com.adobe.air.Runtime")
        .method("onCreate", 1)
        .return_void()
        .done();
    companion.write_classes_dex(cdex.build());
    companion.put(std::string(apk::kLibDirPrefix) + "armeabi/libCore.so",
                  benign_native_lib("libCore", "airInit",
                                    "com.adobe.air.native.Core"));
    companion.sign("adobe");
    b.scenario.companion_apks.push_back(
        support::Blob::take(companion.serialize()));
  }
}

void add_reflection(Build& b) {
  const auto helper = b.man.package + ".util.Bridge";
  b.dex.cls(helper).method("ping", 1).const_int(1, 1).ret(1).done();
  auto cls = b.dex.cls(b.man.package + ".core.ReflectBoot");
  auto m = cls.static_method("boot", 0);
  m.const_str(0, helper);
  m.invoke_static("java.lang.Class", "forName", {0});
  m.move_result(1);
  m.invoke_virtual("java.lang.Class", "newInstance", {1});
  m.move_result(2);
  m.const_str(3, "ping");
  m.invoke_virtual("java.lang.Class", "getMethod", {1, 3});
  m.move_result(4);
  m.invoke_virtual("java.lang.reflect.Method", "invoke", {4, 2});
  m.done();
  b.boot_calls.push_back(b.man.package + ".core.ReflectBoot");
}

}  // namespace

GeneratedApp build_app(const AppSpec& spec, Rng& rng) {
  Build b;
  b.spec = &spec;
  b.man.package = spec.package;
  b.man.min_sdk = spec.min_sdk;
  b.man.add_permission(manifest::kInternet);
  if (spec.write_external_permission) {
    b.man.add_permission(manifest::kWriteExternalStorage);
  }
  if ((spec.sdk_leaks | spec.own_leaks) != 0) {
    b.man.add_permission(manifest::kReadPhoneState);
  }

  // Behaviours first (they register boot calls).
  if (spec.ad_sdk) add_ad_sdk(b);
  if (spec.baidu_remote_sdk) add_baidu_sdk(b);
  if (spec.analytics_sdk) add_analytics_sdk(b);
  if (spec.own_dex_dcl) add_own_dex_dcl(b);
  if (spec.sdk_native_dcl) add_sdk_native(b);
  if (spec.own_native_dcl) add_own_native(b);
  if (spec.dead_dex_dcl || spec.dead_native_dcl) {
    add_dead_dcl(b, spec.dead_dex_dcl, spec.dead_native_dcl);
  }
  for (const auto& payload : spec.malware) add_malware(b, payload, rng);
  if (spec.vuln != VulnKind::None) add_vuln(b);
  if (spec.reflection) add_reflection(b);

  // Main activity: boots every behaviour from onCreate, plus benign
  // fuzz-reactive onClick handlers named from the language DB.
  const auto main_class =
      spec.package + "." + camel(pick_word(rng), pick_word(rng));
  {
    auto cls = b.dex.cls(main_class, "android.app.Activity");
    cls.instance_field(pick_word(rng) + "Count");
    auto m = cls.method("onCreate", 1);
    if (spec.crash_on_start) {
      m.const_str(1, "NullPointerException: broken initialization");
      m.throw_str(1);
    } else if (!spec.dcl_on_click) {
      for (const auto& boot : b.boot_calls) {
        m.invoke_static(boot, "boot");
      }
    }
    m.return_void();
    m.done();

    auto clk = cls.method("onClick", 2);
    if (spec.dcl_on_click && !spec.crash_on_start) {
      // Minority pattern: code loading behind a user interaction.
      for (const auto& boot : b.boot_calls) {
        clk.invoke_static(boot, "boot");
      }
    }
    clk.const_int(2, 1);
    clk.cmp_eq(3, 1, 2);
    clk.if_eqz(3, "other");
    clk.const_str(4, "ui");
    clk.invoke_static("android.util.Log", "d", {4, 4});
    clk.label("other");
    clk.return_void();
    clk.done();

    // A couple of dictionary-named helpers so unobfuscated identifier stats
    // look like real code.
    auto helper = cls.method(pick_word(rng) + camel(pick_word(rng), ""), 1);
    helper.const_int(1, 3);
    helper.const_int(2, 4);
    helper.add(3, 1, 2);
    helper.ret(3);
    helper.done();
  }

  if (!spec.no_activity) {
    b.man.components.push_back(
        manifest::Component{manifest::ComponentKind::Activity, main_class,
                            /*launcher=*/true});
  } else {
    b.man.components.push_back(manifest::Component{
        manifest::ComponentKind::Service, main_class, false});
  }

  auto classes = b.dex.build();

  // Obfuscation post-passes.
  if (spec.lexical) {
    classes = obfuscation::rename_identifiers(classes, b.man);
  }
  if (spec.anti_decompilation) {
    obfuscation::poison_anti_decompilation(classes);
  }

  b.apk.write_manifest(b.man);
  b.apk.write_classes_dex(classes);
  if (spec.anti_repackaging && !spec.dex_encryption) {
    obfuscation::plant_anti_repackaging_trap(b.apk);
  }
  b.apk.sign("dev-" + spec.package);

  if (spec.dex_encryption) {
    obfuscation::PackerOptions packer;
    packer.anti_repackaging = spec.anti_repackaging;
    b.apk = obfuscation::pack(b.apk, packer);
  }

  GeneratedApp out;
  out.spec = spec;
  out.apk = support::Blob::take(b.apk.serialize());
  out.scenario = std::move(b.scenario);
  return out;
}

void apply_scenario(const Scenario& scenario, os::Device& device) {
  for (const auto& [url, payload] : scenario.hosted_urls) {
    device.network().host(url, payload);
  }
  for (const auto& apk_bytes : scenario.companion_apks) {
    const auto companion = apk::ApkFile::deserialize(apk_bytes);
    (void)device.install(companion);
  }
}

}  // namespace dydroid::appgen
