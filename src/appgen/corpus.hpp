// Marketplace corpus generator calibrated to the paper's measured
// population (58,739 Google-Play apps, Nov 2016). The `scale` factor
// shrinks every quota proportionally (small counts are floored at 1 so each
// table row stays populated); the benches print measured-vs-paper
// percentages so the shape comparison is scale-free.
//
// The quotas below are the paper's numbers:
//   Table II  dynamic-analysis outcomes        Table III popularity
//   Table IV  responsible entity               Table V   remote fetch (27)
//   Table VI  obfuscation adoption             Fig. 3    packer categories
//   Table VII malware families (1/2/84 apps)   Table VIII trigger gates
//   Table IX  vulnerable apps (7 + 7)          Table X   privacy tracking
#pragma once

#include <vector>

#include "appgen/generator.hpp"

namespace dydroid::appgen {

struct CorpusConfig {
  /// Fraction of the paper's 58,739-app population to generate.
  double scale = 0.02;
  std::uint64_t seed = 20161101;
};

struct Corpus {
  CorpusConfig config;
  std::vector<GeneratedApp> apps;
};

/// Play-store categories (the paper's data set spans 42).
const std::vector<std::string>& play_categories();

/// Generate the corpus. Deterministic in `config`.
Corpus generate_corpus(const CorpusConfig& config);

/// Scale from the DYDROID_SCALE environment variable, or `fallback`.
double scale_from_env(double fallback = 0.02);

}  // namespace dydroid::appgen
