// FaultyCorpus: wraps a clean generated corpus and deterministically
// corrupts a configurable fraction of its apps at a chosen layer — the
// byte-level counterpart of support::FaultInjector's control-flow faults.
// Where the injector asks "what if this call failed?", the faulty corpus
// asks "what does the pipeline do with the malformed packages a real
// marketplace crawl contains?" (the paper's 7,664 Table II failure apps).
//
// Selection and mutation both derive from (config.seed, app index), so the
// same corpus + config always yields byte-identical corrupted apps, under
// any worker count.
#pragma once

#include <vector>

#include "appgen/corpus.hpp"
#include "support/rng.hpp"

namespace dydroid::appgen {

/// Which layer of the package the corruption targets.
enum class CorruptionLayer {
  /// Truncate the serialized container mid-stream (decompiler crash).
  kContainer,
  /// Replace the manifest with one that trips the parser.
  kManifest,
  /// Truncate the classes.dex payload inside an otherwise valid container.
  kDex,
  /// Plant an anti-repackaging-style CRC trap entry: installs fine,
  /// crashes the strict repacker (Table II "Rewriting failure").
  kCrcTrap,
};

std::string_view corruption_layer_name(CorruptionLayer layer);

struct FaultyCorpusConfig {
  /// Fraction of apps to corrupt, selected app-by-app from (seed, index).
  double fraction = 0.1;
  CorruptionLayer layer = CorruptionLayer::kContainer;
  std::uint64_t seed = 0xFA017;
};

struct FaultyCorpus {
  Corpus corpus;                        // clean apps + corrupted replacements
  std::vector<std::size_t> corrupted;   // indices into corpus.apps, ascending
  FaultyCorpusConfig config;
};

/// Wrap `clean`, corrupting ~fraction of its apps at the configured layer.
/// Non-selected apps are byte-identical to the clean corpus. Deterministic
/// in (clean, config).
FaultyCorpus corrupt_corpus(const Corpus& clean,
                            const FaultyCorpusConfig& config);

/// Corrupt one app package at the given layer. Deterministic in rng state.
support::Bytes corrupt_apk(std::span<const std::uint8_t> apk,
                           CorruptionLayer layer, support::Rng& rng);

/// One seed-derived structural mutation of a binary blob: a bit flip burst,
/// a truncation, a garbage extension, or a length-field lie. Shared by the
/// fuzz round-trip tests: every output must parse or raise ParseError —
/// never crash or trip a sanitizer.
support::Bytes mutate_bytes(std::span<const std::uint8_t> data,
                            support::Rng& rng);

}  // namespace dydroid::appgen
