// Compiles an AppSpec into a runnable SimApk plus its runtime scenario
// (remote servers to host, companion apps to install).
#pragma once

#include "appgen/spec.hpp"
#include "os/device.hpp"
#include "support/rng.hpp"

namespace dydroid::appgen {

/// Build one app. Deterministic given (spec, rng state).
GeneratedApp build_app(const AppSpec& spec, support::Rng& rng);

/// Install an app's surroundings onto a device: host its URLs, install its
/// companion packages.
void apply_scenario(const Scenario& scenario, os::Device& device);

/// Release timestamp baked into time-gated malware (ms since epoch); the
/// default device clock sits after it, a "before release" Table VIII run
/// sits before it.
inline constexpr std::int64_t kReleaseTimeMs = 1'475'000'000'000;  // Sep 2016

}  // namespace dydroid::appgen
