#include "appgen/spec.hpp"

namespace dydroid::appgen {

std::string_view trigger_name(MalwareTrigger trigger) {
  switch (trigger) {
    case MalwareTrigger::SystemTime: return "system-time";
    case MalwareTrigger::AirplaneMode: return "airplane-mode";
    case MalwareTrigger::Connectivity: return "connectivity";
    case MalwareTrigger::Location: return "location";
  }
  return "?";
}

bool AppSpec::has_dex_malware() const {
  for (const auto& m : malware) {
    if (!malware::family_is_native(m.family)) return true;
  }
  return false;
}

bool AppSpec::has_native_malware() const {
  for (const auto& m : malware) {
    if (malware::family_is_native(m.family)) return true;
  }
  return false;
}

}  // namespace dydroid::appgen
