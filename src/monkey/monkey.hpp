// MiniMonkey: the UI/Application exerciser analogue.
//
// Generates a deterministic pseudo-random event sequence against an app's
// callback surface: the application container (if declared) boots first,
// then the launcher activity's onCreate, then fuzz events (onClick ids,
// onResume/onPause, service onStartCommand, receiver onReceive). Apps
// without any Activity cannot be exercised (paper Table II "No activity");
// uncaught exceptions surface as "Crash".
#pragma once

#include <string>

#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace dydroid::monkey {

struct MonkeyConfig {
  int num_events = 40;
  /// Distinct onClick view ids to fuzz.
  int num_view_ids = 8;
};

enum class Outcome {
  kNoActivity,  // nothing to exercise
  kCrash,       // uncaught exception escaped a lifecycle/event callback
  kExercised,   // event budget delivered
};

std::string_view outcome_name(Outcome outcome);

struct MonkeyResult {
  Outcome outcome = Outcome::kExercised;
  std::string crash_message;
  int events_delivered = 0;
};

/// Run the fuzzing session against an app already loaded into `vm`.
MonkeyResult run_monkey(vm::Vm& vm, const MonkeyConfig& config,
                        support::Rng& rng);

}  // namespace dydroid::monkey
