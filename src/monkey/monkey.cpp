#include "monkey/monkey.hpp"

#include "support/log.hpp"

namespace dydroid::monkey {

using manifest::ComponentKind;
using vm::ObjRef;
using vm::Value;
using vm::VmException;

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNoActivity: return "no-activity";
    case Outcome::kCrash: return "crash";
    case Outcome::kExercised: return "exercised";
  }
  return "?";
}

MonkeyResult run_monkey(vm::Vm& vm, const MonkeyConfig& config,
                        support::Rng& rng) {
  MonkeyResult result;
  const auto& man = vm.app().manifest;

  const auto* launcher = man.launcher_activity();
  if (launcher == nullptr) {
    result.outcome = Outcome::kNoActivity;
    return result;
  }

  try {
    // 1. Application container boots before any component (the packer
    //    pattern relies on this ordering).
    if (!man.application_name.empty()) {
      auto container = vm.instantiate(man.application_name);
      if (vm.has_method(container, "onCreate")) {
        (void)vm.call_method(container, "onCreate");
      }
    }

    // 2. Launch the main activity.
    auto activity = vm.instantiate(launcher->name);
    if (vm.has_method(activity, "onCreate")) {
      (void)vm.call_method(activity, "onCreate");
    }

    // 3. Instantiate secondary components once so their entry points are
    //    reachable by later events.
    std::vector<ObjRef> services;
    std::vector<ObjRef> receivers;
    for (const auto& comp : man.components) {
      if (comp.name == launcher->name) continue;
      switch (comp.kind) {
        case ComponentKind::Service:
          services.push_back(vm.instantiate(comp.name));
          break;
        case ComponentKind::Receiver:
          receivers.push_back(vm.instantiate(comp.name));
          break;
        default:
          break;
      }
    }

    // 4. Fuzz loop.
    for (int i = 0; i < config.num_events; ++i) {
      const auto roll = rng.below(100);
      if (roll < 60) {
        if (vm.has_method(activity, "onClick")) {
          (void)vm.call_method(
              activity, "onClick",
              {Value(static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(config.num_view_ids))))});
        }
      } else if (roll < 70) {
        if (vm.has_method(activity, "onResume")) {
          (void)vm.call_method(activity, "onResume");
        }
      } else if (roll < 80) {
        if (vm.has_method(activity, "onPause")) {
          (void)vm.call_method(activity, "onPause");
        }
      } else if (roll < 90 && !services.empty()) {
        const auto& svc = services[rng.below(services.size())];
        if (vm.has_method(svc, "onStartCommand")) {
          (void)vm.call_method(svc, "onStartCommand");
        }
      } else if (!receivers.empty()) {
        const auto& rcv = receivers[rng.below(receivers.size())];
        if (vm.has_method(rcv, "onReceive")) {
          (void)vm.call_method(rcv, "onReceive");
        }
      }
      ++result.events_delivered;
    }
  } catch (const VmException& e) {
    result.outcome = Outcome::kCrash;
    result.crash_message = e.what();
    return result;
  }

  result.outcome = Outcome::kExercised;
  return result;
}

}  // namespace dydroid::monkey
