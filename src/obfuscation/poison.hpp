// Anti-analysis poisons.
//
// Anti-decompilation: a malformed debug_info section that the disassembler
// (baksmali/apktool analogue) must parse and reject while the VM, which
// skips unknown/optional sections, runs the app untouched.
//
// Anti-repackaging: a CRC-trap entry the device installer tolerates but the
// strict repackaging tooling refuses — "crashes apktool" (paper Table II).
#pragma once

#include "apk/apk.hpp"
#include "dex/dexfile.hpp"

namespace dydroid::obfuscation {

/// Name of the trap entry planted by anti-repackaging.
inline constexpr std::string_view kTrapEntry = "assets/.integrity";

/// Append a malformed debug_info extra section to the dex.
void poison_anti_decompilation(dex::DexFile& dex);

/// True if the dex carries the malformed-debug-info poison.
bool has_anti_decompilation_poison(const dex::DexFile& dex);

/// Plant the CRC trap entry in an APK (call before signing).
void plant_anti_repackaging_trap(apk::ApkFile& apk);

}  // namespace dydroid::obfuscation
