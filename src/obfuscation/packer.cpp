#include "obfuscation/packer.hpp"

#include "dex/builder.hpp"
#include "dex/disassembler.hpp"
#include "nativebin/native_library.hpp"
#include "obfuscation/poison.hpp"
#include "os/vfs.hpp"

namespace dydroid::obfuscation {

using support::Bytes;

Bytes xor_crypt(std::span<const std::uint8_t> data, std::string_view key) {
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i] ^ static_cast<std::uint8_t>(key[i % key.size()]);
  }
  return out;
}

namespace {

/// The native decryption stub: exports shieldDecrypt(buffer, key) -> buffer.
Bytes stub_native_lib() {
  nativebin::NativeLibrary lib("libshield", nativebin::Arch::Arm);
  dex::DexBuilder b;
  b.cls("shield.native.Decrypt")
      .static_method("shieldDecrypt", 2)
      .invoke_static("libc", "xor_decrypt", {0, 1})
      .move_result(2)
      .ret(2)
      .done();
  lib.code() = b.build();
  return lib.serialize();
}

/// The stub classes.dex: only the application container.
dex::DexFile stub_dex(const PackerOptions& options, const std::string& pkg) {
  const auto dec_path =
      os::internal_storage_dir(pkg) + "/files/.shield/dec.dex";
  const auto opt_dir = os::internal_storage_dir(pkg) + "/files/.shield";

  dex::DexBuilder b;
  auto cls = b.cls(options.container_class, "android.app.Application");
  cls.static_field("sLoader");
  cls.native_method("shieldDecrypt", 2);

  auto m = cls.method("onCreate", 1);
  // (a) load the native decryption stub over JNI.
  m.const_str(1, options.stub_lib_name);
  m.invoke_static("java.lang.System", "loadLibrary", {1});
  // (b) stream-decrypt the asset into private storage.
  m.const_str(1, std::string(kEncryptedPayloadAsset));
  m.invoke_static("android.content.res.AssetManager", "open", {1});
  m.move_result(2);  // InputStream
  m.new_instance(3, "java.io.FileOutputStream");
  m.const_str(4, dec_path);
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {3, 4});
  m.const_str(5, options.key);
  m.label("copy");
  m.invoke_virtual("java.io.InputStream", "read", {2});
  m.move_result(6);
  m.if_eqz(6, "load");
  m.invoke_static(options.container_class, "shieldDecrypt", {6, 5});
  m.move_result(7);
  m.invoke_virtual("java.io.OutputStream", "write", {3, 7});
  m.jump("copy");
  // (c) load the decrypted bytecode.
  m.label("load");
  m.new_instance(8, "dalvik.system.DexClassLoader");
  m.const_str(9, opt_dir);
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {8, 4, 9});
  // (d) lifecycle handover: publish the loader for component resolution.
  m.sput(8, options.container_class, "sLoader");
  m.return_void();
  m.done();
  return b.build();
}

}  // namespace

apk::ApkFile pack(const apk::ApkFile& original, const PackerOptions& options) {
  if ((4096 % options.key.size()) != 0) {
    throw support::ParseError("packer: key length must divide 4096");
  }
  auto man = original.read_manifest();
  const auto orig_dex = original.get(apk::kClassesDexEntry);
  if (!orig_dex.has_value()) {
    throw support::ParseError("packer: no classes.dex to protect");
  }

  apk::ApkFile out;
  // Copy every original entry except the bytecode being protected.
  for (const auto& name : original.entry_names()) {
    if (name == apk::kClassesDexEntry || name == apk::kManifestEntry) continue;
    out.put(name, *original.get(name));
  }

  out.put(std::string(apk::kAssetsDirPrefix) + std::string(kEncryptedPayloadAsset),
          xor_crypt(*orig_dex, options.key));

  auto stub = stub_dex(options, man.package);
  if (options.anti_decompilation) poison_anti_decompilation(stub);
  out.write_classes_dex(stub);

  out.put(std::string(apk::kLibDirPrefix) + "armeabi/" +
              nativebin::map_library_name(options.stub_lib_name),
          stub_native_lib());

  man.application_name = options.container_class;
  out.write_manifest(man);

  if (options.anti_repackaging) plant_anti_repackaging_trap(out);
  out.sign(options.signer);
  return out;
}

}  // namespace dydroid::obfuscation
