// Language database — the DBpedia/Wikipedia-derived word list substitute.
// The lexical-obfuscation detector compares identifier words against this
// dictionary; AppGen draws class/method/field names from it so that
// unobfuscated apps read as natural language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dydroid::obfuscation {

/// True if `word` (case-insensitive) is in the dictionary.
bool is_dictionary_word(std::string_view word);

/// All dictionary words (lowercase), for name generation.
const std::vector<std::string>& dictionary_words();

/// Split an identifier into words on camelCase humps, digits and
/// underscores: "updateCacheDir2" -> {"update", "cache", "dir"}.
std::vector<std::string> split_identifier(std::string_view identifier);

/// Fraction of an identifier's words found in the dictionary (0 when the
/// identifier yields no alphabetic words).
double dictionary_ratio(std::string_view identifier);

}  // namespace dydroid::obfuscation
