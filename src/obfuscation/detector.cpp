#include "obfuscation/detector.hpp"

#include "obfuscation/language_db.hpp"
#include "obfuscation/lexical.hpp"
#include "support/strings.hpp"

namespace dydroid::obfuscation {
namespace {

/// Class-loader instantiation inside a given class body.
bool instantiates_class_loader(const dex::DexFile& dex,
                               const dex::ClassDef& cls) {
  for (const auto& m : cls.methods) {
    for (const auto& ins : m.code) {
      if (ins.op != dex::Op::NewInstance && !ins.is_invoke()) continue;
      const auto& target = dex.string_at(ins.cls);
      if (target == "dalvik.system.DexClassLoader" ||
          target == "dalvik.system.PathClassLoader") {
        return true;
      }
    }
  }
  return false;
}

bool calls_jni_load(const dex::DexFile& dex, const dex::ClassDef& cls) {
  for (const auto& m : cls.methods) {
    for (const auto& ins : m.code) {
      if (!ins.is_invoke()) continue;
      const auto& target_cls = dex.string_at(ins.cls);
      const auto& target = dex.string_at(ins.name);
      if ((target_cls == "java.lang.System" ||
           target_cls == "java.lang.Runtime") &&
          (target == "load" || target == "loadLibrary" || target == "load0")) {
        return true;
      }
    }
  }
  return false;
}

bool has_bundled_native_lib(const analysis::Ir& ir) {
  for (const auto& name : ir.entries) {
    if (name.starts_with(apk::kLibDirPrefix) && name.ends_with(".so")) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool detect_lexical(const analysis::Ir& ir) {
  if (!ir.classes_dex.has_value()) return false;
  const auto& dex = *ir.classes_dex;
  double ratio_sum = 0;
  std::size_t identifiers = 0;
  auto consider = [&](const std::string& identifier) {
    ratio_sum += dictionary_ratio(identifier);
    ++identifiers;
  };
  for (const auto& cls : dex.classes()) {
    const auto dot = cls.name.rfind('.');
    consider(dot == std::string::npos ? cls.name : cls.name.substr(dot + 1));
    for (const auto& f : cls.instance_fields) consider(f);
    for (const auto& f : cls.static_fields) consider(f);
    for (const auto& m : cls.methods) {
      if (lifecycle_methods().count(m.name) != 0) continue;  // kept names
      consider(m.name);
    }
  }
  if (identifiers == 0) return false;
  return (ratio_sum / static_cast<double>(identifiers)) < kLexicalThreshold;
}

bool detect_reflection(const dex::DexFile& dex) {
  for (const auto& cls : dex.classes()) {
    for (const auto& m : cls.methods) {
      for (const auto& ins : m.code) {
        if (!ins.is_invoke()) continue;
        if (dex.string_at(ins.cls).starts_with("java.lang.reflect")) {
          return true;
        }
      }
    }
  }
  return false;
}

bool detect_native(const analysis::Ir& ir) {
  if (has_bundled_native_lib(ir)) return true;
  if (!ir.classes_dex.has_value()) return false;
  const auto& dex = *ir.classes_dex;
  for (const auto& cls : dex.classes()) {
    if (calls_jni_load(dex, cls)) return true;
    for (const auto& m : cls.methods) {
      if (m.is_native()) return true;
    }
  }
  return false;
}

bool detect_dex_encryption(const analysis::Ir& ir) {
  if (!ir.classes_dex.has_value()) return false;
  const auto& dex = *ir.classes_dex;

  // Rule 1: android:name declares an application container present in the
  // decompiled code that instantiates a class loader.
  if (ir.manifest.application_name.empty()) return false;
  const auto* container = dex.find_class(ir.manifest.application_name);
  if (container == nullptr) return false;
  if (!instantiates_class_loader(dex, *container)) return false;

  // Rule 2: some declared components are missing from the decompiled code,
  // and a locally packed file can store bytecode.
  bool component_missing = false;
  for (const auto& comp : ir.manifest.components) {
    if (dex.find_class(comp.name) == nullptr) {
      component_missing = true;
      break;
    }
  }
  if (!component_missing) return false;
  if (!analysis::has_local_bytecode_store(ir)) return false;

  // Rule 3: the container decrypts via JNI-loaded native code (a local .so
  // plus a JNI load call in the container).
  if (!calls_jni_load(dex, *container)) return false;
  if (!has_bundled_native_lib(ir)) return false;

  return true;
}

ObfuscationReport analyze_obfuscation(const analysis::Ir& ir) {
  ObfuscationReport report;
  report.lexical = detect_lexical(ir);
  report.reflection =
      ir.classes_dex.has_value() && detect_reflection(*ir.classes_dex);
  report.native_code = detect_native(ir);
  report.dex_encryption = detect_dex_encryption(ir);
  return report;
}

ObfuscationReport analyze_obfuscation(
    std::span<const std::uint8_t> apk_bytes) {
  auto ir = analysis::decompile(apk_bytes);
  if (!ir.ok()) {
    ObfuscationReport report;
    report.anti_decompilation = true;
    return report;
  }
  return analyze_obfuscation(ir.value());
}

}  // namespace dydroid::obfuscation
