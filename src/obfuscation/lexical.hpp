// Lexical obfuscation — the ProGuard analogue. Renames app-package class,
// method and field identifiers to single letters while keeping everything a
// rename would break: manifest-declared components, lifecycle entry points,
// and any identifier referenced from a string constant (the reflection
// escape hatch ProGuard's -keep rules exist for).
#pragma once

#include <set>
#include <string>

#include "dex/dexfile.hpp"
#include "manifest/manifest.hpp"

namespace dydroid::obfuscation {

/// Method names never renamed (framework entry points + reflection targets
/// are added automatically from string constants).
const std::set<std::string>& lifecycle_methods();

/// Rename identifiers in `dex` for an app with the given manifest. Classes
/// outside `app_package` (bundled third-party SDKs) are renamed too, as
/// ProGuard does by default.
dex::DexFile rename_identifiers(const dex::DexFile& dex,
                                const manifest::Manifest& manifest);

}  // namespace dydroid::obfuscation
