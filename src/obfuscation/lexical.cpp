#include "obfuscation/lexical.hpp"

#include <map>

#include "support/strings.hpp"

namespace dydroid::obfuscation {
namespace {

/// a, b, ..., z, aa, ab, ... — ProGuard's scheme.
std::string short_name(std::size_t index) {
  std::string out;
  do {
    out.insert(out.begin(), static_cast<char>('a' + index % 26));
    index = index / 26;
  } while (index-- > 0);
  return out;
}

}  // namespace

const std::set<std::string>& lifecycle_methods() {
  static const std::set<std::string> kKeep = {
      "<init>",     "onCreate",  "onClick",        "onResume",
      "onPause",    "onDestroy", "onStartCommand", "onReceive",
      "onStart",    "run",       "main",
  };
  return kKeep;
}

dex::DexFile rename_identifiers(const dex::DexFile& dex,
                                const manifest::Manifest& manifest) {
  // Identifiers reachable via strings must keep their names (reflection,
  // loadClass targets). Native method names must keep theirs too — they are
  // linked by symbol name (ProGuard's -keepclasseswithmembernames rule for
  // native methods exists for exactly this reason).
  std::set<std::string> string_constants;
  std::set<std::string> native_methods;
  for (const auto& cls : dex.classes()) {
    for (const auto& m : cls.methods) {
      if (m.is_native()) native_methods.insert(m.name);
      for (const auto& ins : m.code) {
        if (ins.op == dex::Op::ConstStr) {
          string_constants.insert(dex.string_at(ins.name));
        }
      }
    }
  }

  auto kept_class = [&](const std::string& name) {
    if (manifest.has_component(name)) return true;
    if (name == manifest.application_name) return true;
    return string_constants.count(name) != 0;
  };

  // Class rename map: keep the package, shorten the simple name.
  std::map<std::string, std::string> class_map;
  std::size_t class_counter = 0;
  for (const auto& cls : dex.classes()) {
    if (kept_class(cls.name)) continue;
    const auto pkg = support::package_of(cls.name);
    class_map[cls.name] =
        (pkg.empty() ? "" : pkg + ".") + short_name(class_counter++);
  }
  auto map_class = [&](const std::string& name) {
    const auto it = class_map.find(name);
    return it == class_map.end() ? name : it->second;
  };

  // Method/field rename maps are global (name-keyed), mirroring how our
  // runtime resolves members by name across the class hierarchy.
  std::map<std::string, std::string> member_map;
  std::size_t member_counter = 0;
  auto map_member = [&](const std::string& name) {
    if (lifecycle_methods().count(name) != 0) return name;
    if (string_constants.count(name) != 0) return name;  // reflection target
    if (native_methods.count(name) != 0) return name;    // JNI symbol
    auto [it, inserted] = member_map.emplace(name, "");
    if (inserted) it->second = short_name(member_counter++);
    return it->second;
  };

  // Re-emit into a fresh file (fresh string pool).
  dex::DexFile out;
  for (const auto& cls : dex.classes()) {
    dex::ClassDef copy;
    copy.name = map_class(cls.name);
    copy.super_name = map_class(cls.super_name);
    for (const auto& f : cls.instance_fields) {
      copy.instance_fields.push_back(map_member(f));
    }
    for (const auto& f : cls.static_fields) {
      copy.static_fields.push_back(map_member(f));
    }
    for (const auto& m : cls.methods) {
      dex::Method mm = m;
      mm.name = map_member(m.name);
      for (auto& ins : mm.code) {
        const bool uses_cls = ins.op == dex::Op::NewInstance ||
                              ins.is_invoke() || ins.op == dex::Op::SGet ||
                              ins.op == dex::Op::SPut;
        // Read the original callee class BEFORE remapping the cls index.
        const std::string orig_cls =
            uses_cls ? dex.string_at(ins.cls) : std::string();
        if (uses_cls) {
          ins.cls = out.intern(map_class(orig_cls));
        }
        switch (ins.op) {
          case dex::Op::ConstStr:
            ins.name = out.intern(dex.string_at(ins.name));
            break;
          case dex::Op::InvokeStatic:
          case dex::Op::InvokeVirtual: {
            // Framework callees keep their method names; app callees are
            // renamed through the same member map.
            const auto& name = dex.string_at(ins.name);
            const bool framework = class_map.count(orig_cls) == 0 &&
                                   dex.find_class(orig_cls) == nullptr;
            ins.name = out.intern(framework ? name : map_member(name));
            break;
          }
          case dex::Op::IGet:
          case dex::Op::IPut:
          case dex::Op::SGet:
          case dex::Op::SPut:
            ins.name = out.intern(map_member(dex.string_at(ins.name)));
            break;
          case dex::Op::NewInstance:
            ins.name = ins.cls;
            break;
          default:
            break;
        }
      }
      copy.methods.push_back(std::move(mm));
    }
    out.add_class(std::move(copy));
  }
  for (const auto& extra : dex.extras()) out.add_extra(extra);
  return out;
}

}  // namespace dydroid::obfuscation
