// Obfuscation analysis (paper §III-D): classifies which anti-reverse-
// engineering techniques an app uses, from the decompiled IR alone.
//
//   - lexical: identifier words vs. the language database
//   - reflection: presence of java.lang.reflect APIs
//   - native code: bundled .so libraries / JNI load calls (static view;
//     Table VI's dynamic confirmation comes from the pipeline)
//   - DEX encryption: the three-container-pattern rules of §III-D
//   - anti-decompilation: the decompiler fails on the app
#pragma once

#include <optional>

#include "analysis/decompiler.hpp"

namespace dydroid::obfuscation {

struct ObfuscationReport {
  bool lexical = false;
  bool reflection = false;
  bool native_code = false;
  bool dex_encryption = false;
  bool anti_decompilation = false;
};

/// Identifier-dictionary ratio below which an app counts as lexically
/// obfuscated.
inline constexpr double kLexicalThreshold = 0.5;

/// Analyze a decompiled app.
ObfuscationReport analyze_obfuscation(const analysis::Ir& ir);

/// Convenience: decompile + analyze. When decompilation fails the report
/// has anti_decompilation set and everything else false.
ObfuscationReport analyze_obfuscation(
    std::span<const std::uint8_t> apk_bytes);

/// Rule helpers, exposed for tests and ablations.
bool detect_lexical(const analysis::Ir& ir);
bool detect_reflection(const dex::DexFile& dex);
bool detect_native(const analysis::Ir& ir);
bool detect_dex_encryption(const analysis::Ir& ir);

}  // namespace dydroid::obfuscation
