#include "obfuscation/poison.hpp"

#include "dex/disassembler.hpp"

namespace dydroid::obfuscation {

void poison_anti_decompilation(dex::DexFile& dex) {
  // Non-monotonic pcs: valid-looking, fatal to the strict tooling parser.
  dex.add_extra(dex::ExtraSection{
      std::string(dex::kDebugInfoSection),
      dex::encode_debug_info({{7, 1}, {7, 2}})});
}

bool has_anti_decompilation_poison(const dex::DexFile& dex) {
  for (const auto& extra : dex.extras()) {
    if (extra.name != dex::kDebugInfoSection) continue;
    try {
      (void)dex::parse_debug_info(extra.data);
    } catch (const support::ParseError&) {
      return true;
    }
  }
  return false;
}

void plant_anti_repackaging_trap(apk::ApkFile& apk) {
  apk.put_with_bad_crc(std::string(kTrapEntry),
                       support::to_bytes("\x7f\x00trap"));
}

}  // namespace dydroid::obfuscation
