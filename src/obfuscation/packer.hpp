// DEX-encryption packer — the Bangcle/Ijiami/360/Alibaba analogue
// (paper §III-D). Application rewriting:
//
//   1. the original classes.dex is XOR-stream-encrypted into an asset,
//   2. a stub classes.dex is injected whose application-container class
//      (a) loads an added native stub library over JNI,
//      (b) decrypts the asset through the native stub,
//      (c) DexClassLoader-loads the decrypted bytecode, and
//      (d) hands the app lifecycle over to the original components,
//   3. the manifest's android:name is pointed at the container while all
//      original components stay declared (so they resolve at runtime but are
//      missing from the decompiled stub — obfuscation rule 2).
//
// Optionally plants an anti-repackaging CRC trap, as the commercial packers
// do.
#pragma once

#include <string>

#include "apk/apk.hpp"

namespace dydroid::obfuscation {

struct PackerOptions {
  /// XOR key; length must divide the stream chunk size (4096).
  std::string key = "shield-k16-seed!";
  std::string container_class = "com.shield.core.StubApplication";
  std::string stub_lib_name = "shield";  // -> lib/armeabi/libshield.so
  bool anti_repackaging = false;
  bool anti_decompilation = false;  // poison the *stub* dex debug info
  std::string signer = "shield-packer";
};

/// Pack an app. The input must contain a manifest and classes.dex.
/// Throws support::ParseError on malformed input.
apk::ApkFile pack(const apk::ApkFile& original, const PackerOptions& options);

/// Asset entry name used for the encrypted payload.
inline constexpr std::string_view kEncryptedPayloadAsset =
    "shield_payload.bin";

/// XOR a byte string with a repeating key (its own inverse).
support::Bytes xor_crypt(std::span<const std::uint8_t> data,
                         std::string_view key);

}  // namespace dydroid::obfuscation
