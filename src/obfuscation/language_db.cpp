#include "obfuscation/language_db.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "support/strings.hpp"

namespace dydroid::obfuscation {
namespace {

// A compact English core vocabulary skewed toward software identifiers —
// the offline stand-in for the paper's DBpedia dump.
constexpr const char* kWords[] = {
    "action",   "activity", "adapter",  "add",      "address",  "alarm",
    "album",    "alert",    "analytics","anim",     "api",      "app",
    "apply",    "archive",  "audio",    "auth",     "avatar",   "background",
    "backup",   "badge",    "banner",   "base",     "battery",  "bind",
    "bitmap",   "block",    "board",    "body",     "book",     "bookmark",
    "boot",     "bridge",   "browser",  "buffer",   "build",    "builder",
    "bundle",   "button",   "cache",    "calendar", "call",     "camera",
    "cancel",   "card",     "cart",     "catalog",  "category", "cell",
    "center",   "chain",    "channel",  "chart",    "chat",     "check",
    "child",    "choice",   "chooser",  "class",    "clean",    "clear",
    "click",    "client",   "clip",     "clock",    "close",    "cloud",
    "code",     "collect",  "color",    "column",   "command",  "comment",
    "commit",   "common",   "compare",  "compat",   "compute",  "config",
    "confirm",  "connect",  "contact",  "container","content",  "context",
    "control",  "convert",  "cookie",   "copy",     "core",     "count",
    "counter",  "cover",    "create",   "crop",     "current",  "cursor",
    "custom",   "daily",    "dash",     "data",     "database", "date",
    "debug",    "decode",   "default",  "delete",   "design",   "detail",
    "device",   "dialog",   "digest",   "dir",      "disable",  "dispatch",
    "display",  "document", "down",     "download", "draft",    "drag",
    "draw",     "drawer",   "drive",    "driver",   "drop",     "edit",
    "editor",   "effect",   "empty",    "enable",   "encode",   "engine",
    "enter",    "entry",    "error",    "event",    "exit",     "expand",
    "export",   "extra",    "fade",     "fail",     "favorite", "feed",
    "fetch",    "field",    "file",     "fill",     "filter",   "find",
    "finish",   "first",    "flag",     "flash",    "flight",   "float",
    "flow",     "focus",    "folder",   "font",     "food",     "form",
    "format",   "forward",  "fragment", "frame",    "free",     "friend",
    "front",    "full",     "game",     "gallery",  "get",      "gift",
    "global",   "goal",     "grid",     "group",    "guide",    "handle",
    "handler",  "hash",     "head",     "header",   "health",   "help",
    "helper",   "hide",     "history",  "holder",   "home",     "host",
    "hour",     "icon",     "image",    "import",   "inbox",    "index",
    "info",     "init",     "input",    "insert",   "install",  "instance",
    "intent",   "interface","invite",   "item",     "job",      "join",
    "key",      "keyboard", "label",    "language", "last",     "launch",
    "launcher", "layer",    "layout",   "left",     "level",    "library",
    "light",    "like",     "line",     "link",     "list",     "listener",
    "load",     "loader",   "local",    "location", "lock",     "log",
    "login",    "logout",   "loop",     "main",     "manager",  "map",
    "mark",     "market",   "match",    "media",    "member",   "memory",
    "menu",     "merge",    "message",  "meta",     "method",   "metric",
    "mini",     "mode",     "model",    "module",   "monitor",  "month",
    "move",     "movie",    "music",    "mute",     "name",     "native",
    "network",  "news",     "next",     "night",    "node",     "note",
    "notify",   "number",   "object",   "offer",    "offline",  "offset",
    "online",   "open",     "option",   "order",    "output",   "overlay",
    "owner",    "pack",     "package",  "page",     "pager",    "paint",
    "pair",     "panel",    "parent",   "parse",    "parser",   "password",
    "path",     "pause",    "pay",      "payment",  "peer",     "pending",
    "phone",    "photo",    "picker",   "picture",  "pin",      "play",
    "player",   "plugin",   "point",    "poll",     "pool",     "popup",
    "post",     "prefer",   "preview",  "price",    "print",    "process",
    "product",  "profile",  "progress", "project",  "prompt",   "provider",
    "proxy",    "publish",  "pull",     "push",     "query",    "queue",
    "quick",    "radio",    "random",   "range",    "rank",     "rate",
    "rating",   "read",     "reader",   "ready",    "receive",  "receiver",
    "recent",   "record",   "recycle",  "redo",     "refresh",  "region",
    "register", "release",  "reload",   "remote",   "remove",   "rename",
    "render",   "repeat",   "replace",  "reply",    "report",   "request",
    "reset",    "resize",   "resolve",  "resource", "response", "restart",
    "restore",  "result",   "resume",   "retry",    "review",   "reward",
    "right",    "ring",     "root",     "rotate",   "route",    "router",
    "row",      "rule",     "run",      "runner",   "save",     "scale",
    "scan",     "scanner",  "schedule", "scheme",   "score",    "screen",
    "script",   "scroll",   "search",   "second",   "section",  "secure",
    "seek",     "select",   "send",     "sender",   "sensor",   "server",
    "service",  "session",  "set",      "setting",  "settings", "setup",
    "shadow",   "share",    "sheet",    "shell",    "shop",     "show",
    "sign",     "signal",   "simple",   "single",   "size",     "sketch",
    "skip",     "sleep",    "slide",    "slider",   "small",    "smart",
    "social",   "socket",   "sort",     "sound",    "source",   "space",
    "span",     "speed",    "spinner",  "splash",   "split",    "sport",
    "stack",    "stage",    "star",     "start",    "state",    "station",
    "status",   "step",     "stock",    "stop",     "storage",  "store",
    "story",    "stream",   "string",   "strip",    "style",    "submit",
    "sub",      "success",  "suggest",  "summary",  "support",  "swap",
    "swipe",    "switch",   "sync",     "system",   "tab",      "table",
    "tag",      "target",   "task",     "team",     "template", "test",
    "text",     "theme",    "thread",   "thumb",    "ticket",   "tile",
    "time",     "timer",    "title",    "toast",    "toggle",   "token",
    "tool",     "toolbar",  "top",      "topic",    "total",    "touch",
    "track",    "tracker",  "traffic",  "train",    "transfer", "translate",
    "trash",    "travel",   "trend",    "trigger",  "trim",     "type",
    "undo",     "unit",     "unlock",   "unpack",   "update",   "upload",
    "user",     "util",     "utils",    "validate", "value",    "verify",
    "version",  "video",    "view",     "viewer",   "visit",    "voice",
    "volume",   "wait",     "walk",     "wallet",   "watch",    "weather",
    "web",      "week",     "widget",   "window",   "word",     "work",
    "worker",   "world",    "wrap",     "wrapper",  "write",    "writer",
    "zone",     "zoom",
};

const std::unordered_set<std::string>& word_set() {
  static const auto* set = [] {
    auto* s = new std::unordered_set<std::string>();
    for (const auto* w : kWords) s->insert(w);
    return s;
  }();
  return *set;
}

}  // namespace

bool is_dictionary_word(std::string_view word) {
  return word_set().count(support::to_lower(word)) != 0;
}

const std::vector<std::string>& dictionary_words() {
  static const auto* words = [] {
    auto* v = new std::vector<std::string>();
    for (const auto* w : kWords) v->emplace_back(w);
    return v;
  }();
  return *words;
}

std::vector<std::string> split_identifier(std::string_view identifier) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(support::to_lower(current));
      current.clear();
    }
  };
  for (const char c : identifier) {
    if (c == '_' || c == '$' || std::isdigit(static_cast<unsigned char>(c))) {
      flush();
    } else if (std::isupper(static_cast<unsigned char>(c))) {
      flush();
      current.push_back(c);
    } else {
      current.push_back(c);
    }
  }
  flush();
  return out;
}

double dictionary_ratio(std::string_view identifier) {
  const auto words = split_identifier(identifier);
  if (words.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& w : words) {
    if (is_dictionary_word(w)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(words.size());
}

}  // namespace dydroid::obfuscation
