#include "analysis/decompiler.hpp"

#include "dex/disassembler.hpp"
#include "support/blob.hpp"

namespace dydroid::analysis {

using support::Result;

Result<Ir> decompile(const apk::ApkImage& image) {
  Ir ir;
  try {
    ir.image = image;
    ir.manifest = image.file().read_manifest();
    ir.entries = image.file().entry_names();
    ir.classes_dex = image.file().read_classes_dex();
    if (ir.classes_dex.has_value()) {
      // Disassembly applies the tooling-grade strictness (debug_info parse,
      // full validation) that anti-decompilation packers target.
      ir.smali = dex::disassemble(*ir.classes_dex);
    }
  } catch (const support::ParseError& e) {
    return Result<Ir>::failure(std::string("decompile: ") + e.what());
  }
  return ir;
}

Result<Ir> decompile(std::span<const std::uint8_t> apk_bytes) {
  apk::ApkImage image;
  try {
    image = apk::ApkImage::parse(support::Blob::copy_of(apk_bytes),
                                 apk::ParseMode::kLenient);
  } catch (const support::ParseError& e) {
    return Result<Ir>::failure(std::string("decompile: ") + e.what());
  }
  return decompile(image);
}

bool has_local_bytecode_store(const Ir& ir) {
  for (const auto& name : ir.entries) {
    if (name == apk::kClassesDexEntry || name == apk::kManifestEntry) continue;
    if (name.starts_with(apk::kAssetsDirPrefix)) return true;
    if (name.ends_with(".dex") || name.ends_with(".jar") ||
        name.ends_with(".zip") || name.ends_with(".apk") ||
        name.ends_with(".odex")) {
      return true;
    }
  }
  return false;
}

}  // namespace dydroid::analysis
