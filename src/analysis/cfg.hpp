// Control-flow graphs over SimDex method bodies. Shared by MiniDroidNative's
// annotated CFGs and by the taint analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "dex/dexfile.hpp"

namespace dydroid::analysis {

struct BasicBlock {
  std::size_t begin = 0;  // first instruction index (inclusive)
  std::size_t end = 0;    // one past last instruction (exclusive)
  std::vector<std::size_t> successors;  // block indices
};

struct Cfg {
  std::vector<BasicBlock> blocks;

  /// Block containing instruction `pc` (linear search acceptable for the
  /// short methods SimDex apps carry).
  [[nodiscard]] std::size_t block_of(std::size_t pc) const;
};

/// Build the CFG of a method. Leaders: entry, branch targets, fall-throughs
/// after branches/terminators.
Cfg build_cfg(const dex::Method& method);

}  // namespace dydroid::analysis
