// App rewriter: unpacks, injects a permission into the manifest, repacks and
// re-signs — the apktool-based repackaging step DyDroid applies when an app
// lacks WRITE_EXTERNAL_STORAGE (the dynamic-analysis log lives on external
// storage). Repacking is strict: anti-repackaging CRC traps crash it
// (paper Table II "Rewriting failure").
#pragma once

#include <string_view>

#include "apk/apk.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::analysis {

/// Key used to re-sign rewritten packages (the original developer key is
/// not available to the analyst).
inline constexpr std::string_view kResignKey = "dydroid-resign";

/// Add `permission` to the manifest of an already-parsed image and repack.
/// The strict full re-parse of the old path collapses to a CRC check over
/// the shared parse's file table — same traps, same error text, no second
/// deserialize. Returns a fresh image (the one repack that must serialize),
/// or failure when an anti-repackaging trap or malformed manifest trips it.
support::Result<apk::ApkImage> rewrite_with_permission(
    const apk::ApkImage& image, std::string_view permission);

/// Byte-level convenience for callers outside the staged pipeline: strict
/// parse + rewrite + serialize, exactly the historical contract.
support::Result<support::Bytes> rewrite_with_permission(
    std::span<const std::uint8_t> apk_bytes, std::string_view permission);

}  // namespace dydroid::analysis
