// App rewriter: unpacks, injects a permission into the manifest, repacks and
// re-signs — the apktool-based repackaging step DyDroid applies when an app
// lacks WRITE_EXTERNAL_STORAGE (the dynamic-analysis log lives on external
// storage). Repacking is strict: anti-repackaging CRC traps crash it
// (paper Table II "Rewriting failure").
#pragma once

#include <string_view>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::analysis {

/// Key used to re-sign rewritten packages (the original developer key is
/// not available to the analyst).
inline constexpr std::string_view kResignKey = "dydroid-resign";

/// Add `permission` to the app's manifest and repack. Returns the rewritten
/// APK bytes, or failure when strict unpacking trips an anti-repackaging
/// trap or the container is malformed.
support::Result<support::Bytes> rewrite_with_permission(
    std::span<const std::uint8_t> apk_bytes, std::string_view permission);

}  // namespace dydroid::analysis
