#include "analysis/rewriter.hpp"

#include "apk/apk.hpp"

namespace dydroid::analysis {

using support::Bytes;
using support::Result;

Result<Bytes> rewrite_with_permission(std::span<const std::uint8_t> apk_bytes,
                                      std::string_view permission) {
  apk::ApkFile pkg;
  try {
    // Strict mode: repackaging tooling verifies every entry, which is what
    // anti-repackaging CRC traps exploit.
    pkg = apk::ApkFile::deserialize(apk_bytes, apk::ParseMode::kStrict);
    auto man = pkg.read_manifest();
    man.add_permission(permission);
    pkg.write_manifest(man);
  } catch (const support::ParseError& e) {
    return Result<Bytes>::failure(std::string("rewrite: ") + e.what());
  }
  pkg.sign(kResignKey);
  return pkg.serialize();
}

}  // namespace dydroid::analysis
