#include "analysis/rewriter.hpp"

#include "apk/apk.hpp"
#include "support/fault.hpp"

namespace dydroid::analysis {

using support::Bytes;
using support::Result;

Result<Bytes> rewrite_with_permission(std::span<const std::uint8_t> apk_bytes,
                                      std::string_view permission) {
  // Fault-injection site: repack/apktool failure — the paper's Table II
  // "Rewriting failure" row (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kRewriteRepack)) {
    return Result<Bytes>::failure(
        support::fault_message(support::FaultSite::kRewriteRepack));
  }
  apk::ApkFile pkg;
  try {
    // Strict mode: repackaging tooling verifies every entry, which is what
    // anti-repackaging CRC traps exploit.
    pkg = apk::ApkFile::deserialize(apk_bytes, apk::ParseMode::kStrict);
    auto man = pkg.read_manifest();
    man.add_permission(permission);
    pkg.write_manifest(man);
  } catch (const support::ParseError& e) {
    return Result<Bytes>::failure(std::string("rewrite: ") + e.what());
  }
  pkg.sign(kResignKey);
  return pkg.serialize();
}

}  // namespace dydroid::analysis
