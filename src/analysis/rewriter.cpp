#include "analysis/rewriter.hpp"

#include "apk/apk.hpp"
#include "support/fault.hpp"

namespace dydroid::analysis {

using support::Bytes;
using support::Result;

Result<apk::ApkImage> rewrite_with_permission(const apk::ApkImage& image,
                                              std::string_view permission) {
  // Fault-injection site: repack/apktool failure — the paper's Table II
  // "Rewriting failure" row (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kRewriteRepack)) {
    return Result<apk::ApkImage>::failure(
        support::fault_message(support::FaultSite::kRewriteRepack));
  }
  // Strict-mode verification without the strict re-parse: the shared parse
  // already indexed every entry, so the CRC sweep over the file table trips
  // the same anti-repackaging traps with the same message a strict
  // ApkFile::deserialize of these bytes would produce.
  if (const auto bad = image.file().first_crc_mismatch()) {
    return Result<apk::ApkImage>::failure("rewrite: apk entry CRC mismatch: " +
                                          *bad);
  }
  apk::ApkFile pkg = image.file();  // cheap: entries are refcounted views
  try {
    auto man = pkg.read_manifest();
    man.add_permission(permission);
    pkg.write_manifest(man);
  } catch (const support::ParseError& e) {
    return Result<apk::ApkImage>::failure(std::string("rewrite: ") + e.what());
  }
  pkg.sign(kResignKey);
  return apk::ApkImage::from_file(std::move(pkg));
}

Result<Bytes> rewrite_with_permission(std::span<const std::uint8_t> apk_bytes,
                                      std::string_view permission) {
  if (support::fault_fire(support::FaultSite::kRewriteRepack)) {
    return Result<Bytes>::failure(
        support::fault_message(support::FaultSite::kRewriteRepack));
  }
  apk::ApkFile pkg;
  try {
    // Strict mode: repackaging tooling verifies every entry, which is what
    // anti-repackaging CRC traps exploit.
    pkg = apk::ApkFile::deserialize(apk_bytes, apk::ParseMode::kStrict);
    auto man = pkg.read_manifest();
    man.add_permission(permission);
    pkg.write_manifest(man);
  } catch (const support::ParseError& e) {
    return Result<Bytes>::failure(std::string("rewrite: ") + e.what());
  }
  pkg.sign(kResignKey);
  return pkg.serialize();
}

}  // namespace dydroid::analysis
