#include "analysis/cfg.hpp"

#include <algorithm>
#include <set>

namespace dydroid::analysis {

using dex::Op;

std::size_t Cfg::block_of(std::size_t pc) const {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (pc >= blocks[i].begin && pc < blocks[i].end) return i;
  }
  return blocks.size();
}

Cfg build_cfg(const dex::Method& method) {
  Cfg cfg;
  const auto& code = method.code;
  if (code.empty()) return cfg;

  std::set<std::size_t> leaders;
  leaders.insert(0);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const auto& ins = code[pc];
    if (ins.has_target()) {
      leaders.insert(static_cast<std::size_t>(ins.target));
      if (pc + 1 < code.size()) leaders.insert(pc + 1);
    } else if (ins.is_terminator() && pc + 1 < code.size()) {
      leaders.insert(pc + 1);
    }
  }

  std::vector<std::size_t> starts(leaders.begin(), leaders.end());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    BasicBlock block;
    block.begin = starts[i];
    block.end = (i + 1 < starts.size()) ? starts[i + 1] : code.size();
    cfg.blocks.push_back(block);
  }

  auto block_index = [&](std::size_t pc) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), pc);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
  };

  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    auto& block = cfg.blocks[i];
    const auto& last = code[block.end - 1];
    switch (last.op) {
      case Op::Goto:
        block.successors.push_back(
            block_index(static_cast<std::size_t>(last.target)));
        break;
      case Op::IfEqz:
      case Op::IfNez:
      case Op::TryEnter:  // handler edge + fall-through
        block.successors.push_back(
            block_index(static_cast<std::size_t>(last.target)));
        if (block.end < code.size()) {
          block.successors.push_back(block_index(block.end));
        }
        break;
      case Op::Return:
      case Op::ReturnVoid:
      case Op::Throw:
        break;  // no successors
      default:
        if (block.end < code.size()) {
          block.successors.push_back(block_index(block.end));
        }
        break;
    }
    // Deduplicate (both branch arms can land on the same block).
    std::sort(block.successors.begin(), block.successors.end());
    block.successors.erase(
        std::unique(block.successors.begin(), block.successors.end()),
        block.successors.end());
  }
  return cfg;
}

}  // namespace dydroid::analysis
