// Decompiler: the baksmali/apktool front-end of Figure 1. Unpacks a SimApk
// and produces the intermediate representation (manifest + parsed dex +
// smali text) consumed by the static filter and the obfuscation analyzer.
//
// Decompilation intentionally inherits the tooling's strictness: a poisoned
// debug_info section (anti-decompilation) makes disassembly throw, and the
// whole app is recorded as "failed reverse engineering" — the paper's 54
// apps ("The decompiler crashes and does not generate the smali code").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apk/apk.hpp"
#include "dex/dexfile.hpp"
#include "manifest/manifest.hpp"
#include "support/error.hpp"

namespace dydroid::analysis {

/// Decompiled intermediate representation of one app.
struct Ir {
  manifest::Manifest manifest;
  std::optional<dex::DexFile> classes_dex;  // absent if no classes.dex entry
  std::string smali;                        // disassembly text ("" if no dex)
  std::vector<std::string> entries;         // package file table
  apk::ApkImage image;                      // shared parse of the container
};

/// Decompile an already-parsed APK image (the pipeline path — no re-parse).
/// Fails (like apktool/baksmali) on malformed manifests/bytecode and on
/// anti-decompilation-poisoned dex.
support::Result<Ir> decompile(const apk::ApkImage& image);

/// Decompile from raw bytes: parses the container first (one parse), then
/// delegates. Kept for callers outside the staged pipeline.
support::Result<Ir> decompile(std::span<const std::uint8_t> apk_bytes);

/// True if the IR contains a locally packed file whose format can store
/// bytecode (assets payloads, extra dex/jar entries) — obfuscation rule 2's
/// second clause.
bool has_local_bytecode_store(const Ir& ir);

}  // namespace dydroid::analysis
