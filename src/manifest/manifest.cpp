#include "manifest/manifest.hpp"

#include <algorithm>
#include <sstream>

#include "support/fault.hpp"
#include "support/strings.hpp"

namespace dydroid::manifest {

using support::ParseError;

std::string_view component_kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::Activity: return "activity";
    case ComponentKind::Service: return "service";
    case ComponentKind::Receiver: return "receiver";
    case ComponentKind::Provider: return "provider";
  }
  return "?";
}

namespace {
std::optional<ComponentKind> component_kind_from(std::string_view name) {
  if (name == "activity") return ComponentKind::Activity;
  if (name == "service") return ComponentKind::Service;
  if (name == "receiver") return ComponentKind::Receiver;
  if (name == "provider") return ComponentKind::Provider;
  return std::nullopt;
}
}  // namespace

bool Manifest::has_permission(std::string_view permission) const {
  return std::find(permissions.begin(), permissions.end(), permission) !=
         permissions.end();
}

void Manifest::add_permission(std::string_view permission) {
  if (!has_permission(permission)) permissions.emplace_back(permission);
}

const Component* Manifest::launcher_activity() const {
  for (const auto& c : components) {
    if (c.kind == ComponentKind::Activity && c.launcher) return &c;
  }
  return nullptr;
}

bool Manifest::has_component(std::string_view class_name) const {
  return std::any_of(components.begin(), components.end(),
                     [&](const Component& c) { return c.name == class_name; });
}

std::string Manifest::to_text() const {
  std::ostringstream out;
  out << "<manifest package=\"" << package << "\" versionName=\""
      << version_name << "\">\n";
  out << "  <uses-sdk minSdkVersion=\"" << min_sdk << "\"/>\n";
  for (const auto& p : permissions) {
    out << "  <uses-permission name=\"" << p << "\"/>\n";
  }
  out << "  <application";
  if (!application_name.empty()) out << " name=\"" << application_name << "\"";
  out << ">\n";
  for (const auto& c : components) {
    out << "    <" << component_kind_name(c.kind) << " name=\"" << c.name
        << "\"";
    if (c.launcher) out << " launcher=\"true\"";
    out << "/>\n";
  }
  out << "  </application>\n";
  out << "</manifest>\n";
  return out.str();
}

namespace {

/// Extract the value of attr="value" on a line; nullopt if absent.
std::optional<std::string> attr_value(std::string_view line,
                                      std::string_view attr) {
  const std::string needle = std::string(attr) + "=\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string_view::npos) {
    throw ParseError("manifest: unterminated attribute " + std::string(attr));
  }
  return std::string(line.substr(start, end - start));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Manifest Manifest::from_text(std::string_view text) {
  // Fault-injection site: malformed manifest (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kManifestParse)) {
    throw ParseError(support::fault_message(support::FaultSite::kManifestParse));
  }
  Manifest m;
  bool saw_manifest = false;
  for (const auto& raw_line : support::split(text, '\n')) {
    const auto line = trim(raw_line);
    if (line.empty()) continue;
    if (line.starts_with("<manifest")) {
      saw_manifest = true;
      if (auto pkg = attr_value(line, "package")) m.package = *pkg;
      if (auto ver = attr_value(line, "versionName")) m.version_name = *ver;
    } else if (line.starts_with("<uses-sdk")) {
      if (auto sdk = attr_value(line, "minSdkVersion")) {
        try {
          m.min_sdk = std::stoi(*sdk);
        } catch (const std::exception&) {
          throw ParseError("manifest: bad minSdkVersion: " + *sdk);
        }
      }
    } else if (line.starts_with("<uses-permission")) {
      if (auto name = attr_value(line, "name")) m.add_permission(*name);
    } else if (line.starts_with("<application")) {
      if (auto name = attr_value(line, "name")) m.application_name = *name;
    } else if (line.starts_with("<") && !line.starts_with("</")) {
      const auto tag_end = line.find_first_of(" />", 1);
      const auto tag = line.substr(1, tag_end - 1);
      if (auto kind = component_kind_from(tag)) {
        Component c;
        c.kind = *kind;
        if (auto name = attr_value(line, "name")) {
          c.name = *name;
        } else {
          throw ParseError("manifest: component without name");
        }
        if (auto launcher = attr_value(line, "launcher")) {
          c.launcher = (*launcher == "true");
        }
        m.components.push_back(std::move(c));
      }
    }
  }
  if (!saw_manifest || m.package.empty()) {
    throw ParseError("manifest: missing <manifest package=...>");
  }
  return m;
}

}  // namespace dydroid::manifest
