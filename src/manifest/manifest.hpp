// AndroidManifest analogue. Declares the app package, components,
// permissions, minimum SDK and the optional application container class
// (android:name) — everything DyDroid's obfuscation rules and the rewriter
// read or modify.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::manifest {

enum class ComponentKind : std::uint8_t {
  Activity = 0,
  Service = 1,
  Receiver = 2,
  Provider = 3,
};

std::string_view component_kind_name(ComponentKind kind);

struct Component {
  ComponentKind kind = ComponentKind::Activity;
  std::string name;       // fully qualified class name
  bool launcher = false;  // MAIN/LAUNCHER intent filter (activities only)
};

/// Permission strings mirrored from Android.
inline constexpr std::string_view kWriteExternalStorage =
    "android.permission.WRITE_EXTERNAL_STORAGE";
inline constexpr std::string_view kInternet = "android.permission.INTERNET";
inline constexpr std::string_view kReadPhoneState =
    "android.permission.READ_PHONE_STATE";
inline constexpr std::string_view kAccessFineLocation =
    "android.permission.ACCESS_FINE_LOCATION";
inline constexpr std::string_view kReadContacts =
    "android.permission.READ_CONTACTS";
inline constexpr std::string_view kSendSms = "android.permission.SEND_SMS";
inline constexpr std::string_view kGetAccounts =
    "android.permission.GET_ACCOUNTS";

struct Manifest {
  std::string package;           // e.g. "com.example.game"
  std::string version_name = "1.0";
  int min_sdk = 19;              // API level; < 19 means pre-Android 4.4
  std::string application_name;  // android:name attr; "" = default Application
  std::vector<std::string> permissions;
  std::vector<Component> components;

  [[nodiscard]] bool has_permission(std::string_view permission) const;
  void add_permission(std::string_view permission);  // idempotent
  [[nodiscard]] const Component* launcher_activity() const;
  [[nodiscard]] bool has_component(std::string_view class_name) const;

  /// Serialize to the XML-ish text form stored in the SimApk.
  [[nodiscard]] std::string to_text() const;
  /// Parse; throws support::ParseError on malformed text.
  static Manifest from_text(std::string_view text);
};

}  // namespace dydroid::manifest
