#include "privacy/sources.hpp"

#include "os/services.hpp"

namespace dydroid::privacy {

std::string_view data_type_name(DataType type) {
  switch (type) {
    case DataType::Location: return "Location";
    case DataType::Imei: return "IMEI";
    case DataType::Imsi: return "IMSI";
    case DataType::Iccid: return "ICCID";
    case DataType::PhoneNumber: return "Phone number";
    case DataType::Account: return "Account";
    case DataType::InstalledApplications: return "Installed applications";
    case DataType::InstalledPackages: return "Installed packages";
    case DataType::Contact: return "Contact";
    case DataType::Calendar: return "Calendar";
    case DataType::CallLog: return "CallLog";
    case DataType::Browser: return "Browser";
    case DataType::Audio: return "Audio";
    case DataType::Image: return "Image";
    case DataType::Video: return "Video";
    case DataType::Settings: return "Settings";
    case DataType::Mms: return "MMS";
    case DataType::Sms: return "SMS";
  }
  return "?";
}

std::string_view category_name(Category category) {
  switch (category) {
    case Category::L: return "L";
    case Category::PI: return "PI";
    case Category::UI: return "UI";
    case Category::UP: return "UP";
    case Category::CP: return "CP";
  }
  return "?";
}

Category category_of(DataType type) {
  switch (type) {
    case DataType::Location:
      return Category::L;
    case DataType::Imei:
    case DataType::Imsi:
    case DataType::Iccid:
      return Category::PI;
    case DataType::PhoneNumber:
    case DataType::Account:
      return Category::UI;
    case DataType::InstalledApplications:
    case DataType::InstalledPackages:
      return Category::UP;
    default:
      return Category::CP;
  }
}

std::vector<DataType> types_in(TaintMask mask) {
  std::vector<DataType> out;
  for (int i = 0; i < kNumDataTypes; ++i) {
    if ((mask >> i) & 1u) out.push_back(static_cast<DataType>(i));
  }
  return out;
}

std::optional<DataType> source_api(std::string_view cls,
                                   std::string_view method) {
  if (cls == "android.telephony.TelephonyManager") {
    if (method == "getDeviceId") return DataType::Imei;
    if (method == "getSubscriberId") return DataType::Imsi;
    if (method == "getSimSerialNumber") return DataType::Iccid;
    if (method == "getLine1Number") return DataType::PhoneNumber;
  }
  if (cls == "android.location.LocationManager" &&
      method == "getLastKnownLocation") {
    return DataType::Location;
  }
  if (cls == "android.accounts.AccountManager" && method == "getAccounts") {
    return DataType::Account;
  }
  if (cls == "android.content.pm.PackageManager") {
    if (method == "getInstalledApplications") {
      return DataType::InstalledApplications;
    }
    if (method == "getInstalledPackages") return DataType::InstalledPackages;
  }
  return std::nullopt;
}

std::optional<DataType> source_uri(std::string_view uri) {
  using namespace dydroid::os;
  if (uri == kUriContacts) return DataType::Contact;
  if (uri == kUriCalendar) return DataType::Calendar;
  if (uri == kUriCallLog) return DataType::CallLog;
  if (uri == kUriBrowser) return DataType::Browser;
  if (uri == kUriAudio) return DataType::Audio;
  if (uri == kUriImages) return DataType::Image;
  if (uri == kUriVideo) return DataType::Video;
  if (uri == kUriSettings) return DataType::Settings;
  if (uri == kUriMms) return DataType::Mms;
  if (uri == kUriSms) return DataType::Sms;
  return std::nullopt;
}

bool is_sink_api(std::string_view cls, std::string_view method) {
  if (cls == "android.util.Log" && (method == "d" || method == "e")) {
    return true;
  }
  if (cls == "android.telephony.SmsManager" &&
      method == "sendTextMessage") {
    return true;
  }
  if ((cls == "java.io.OutputStream" || cls == "java.io.FileOutputStream") &&
      method == "write") {
    return true;
  }
  if (cls == "libc" && method == "exec") return true;
  return false;
}

}  // namespace dydroid::privacy
