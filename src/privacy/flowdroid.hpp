// MiniFlowDroid: static data-flow analysis over intercepted DEX code.
//
// The paper adapts FlowDroid to bare dynamically-loaded binaries: no
// manifest, no layout resources — "an arbitrary class can be the entry point
// to the loaded libraries". Accordingly every method of every class is an
// entry point here. The analysis is inter-procedural (call-site parameter /
// return propagation to fixpoint), field-aware (name-keyed field taint) and
// constant-tracking for content-provider URIs.
#pragma once

#include <string>
#include <vector>

#include "dex/dexfile.hpp"
#include "privacy/sources.hpp"

namespace dydroid::privacy {

struct Leak {
  DataType type{};
  std::string sink_api;     // "cls.method" of the sink
  std::string sink_class;   // class containing the leaking call
  std::string sink_method;  // method containing the leaking call
};

struct PrivacyReport {
  std::vector<Leak> leaks;

  /// Union of leaked data types.
  [[nodiscard]] TaintMask leaked_mask() const;
  /// Leaks of a specific type.
  [[nodiscard]] std::vector<Leak> of_type(DataType type) const;
};

/// Analyze one loaded binary (parsed dex).
PrivacyReport analyze_privacy(const dex::DexFile& dex);

}  // namespace dydroid::privacy
