#include "privacy/flowdroid.hpp"

#include <algorithm>

#include "analysis/cfg.hpp"
#include <map>
#include <set>

namespace dydroid::privacy {

namespace {

/// Analysis-wide mutable state shared across methods.
struct Global {
  const dex::DexFile* dex = nullptr;
  std::map<std::string, TaintMask> field_taint;          // field name -> mask
  std::map<const dex::Method*, TaintMask> return_taint;  // method -> mask
  std::map<const dex::Method*, std::vector<TaintMask>> param_taint;
  std::set<std::tuple<std::string, std::string, std::string, TaintMask>>
      leak_keys;  // dedupe
  std::vector<Leak> leaks;
  bool changed = false;

  TaintMask& ret(const dex::Method* m) { return return_taint[m]; }
  std::vector<TaintMask>& params(const dex::Method* m) {
    auto& v = param_taint[m];
    if (v.size() < m->num_params) v.resize(m->num_params, 0);
    return v;
  }
  void merge_ret(const dex::Method* m, TaintMask mask) {
    auto& r = ret(m);
    if ((r | mask) != r) {
      r |= mask;
      changed = true;
    }
  }
  void merge_param(const dex::Method* m, std::size_t i, TaintMask mask) {
    auto& v = params(m);
    if (i < v.size() && (v[i] | mask) != v[i]) {
      v[i] |= mask;
      changed = true;
    }
  }
  void merge_field(const std::string& name, TaintMask mask) {
    auto& f = field_taint[name];
    if ((f | mask) != f) {
      f |= mask;
      changed = true;
    }
  }
  void record_leak(const dex::ClassDef& cls, const dex::Method& method,
                   const std::string& sink, TaintMask mask) {
    if (mask == 0) return;
    const auto key = std::make_tuple(cls.name, method.name, sink, mask);
    if (!leak_keys.insert(key).second) return;
    changed = true;
    for (const auto type : types_in(mask)) {
      leaks.push_back(Leak{type, sink, cls.name, method.name});
    }
  }
};

/// Resolve an app-defined callee (class + method) or null for framework.
const dex::Method* resolve_app_callee(const dex::DexFile& dex,
                                      const std::string& cls,
                                      const std::string& method) {
  const auto* def = dex.find_class(cls);
  if (def == nullptr) return nullptr;
  return def->find_method(method);
}

/// Flow-sensitive abstract interpretation over the method's CFG: per-block
/// entry states, strong updates on register writes, joins at merge points —
/// so overwrites kill taint while loop-carried taint converges through the
/// back-edge worklist.
void analyze_method(Global& g, const dex::ClassDef& cls,
                    const dex::Method& method) {
  const auto& dex = *g.dex;
  const auto cfg = analysis::build_cfg(method);
  if (cfg.blocks.empty()) return;

  // Pre-pass: resolve the content URI reaching each ContentResolver.query
  // call site (linear constant tracking; generated and real call sites pass
  // a fresh string constant).
  std::vector<std::string> uri_at(method.code.size());
  {
    std::vector<std::string> last(method.num_registers);
    for (std::size_t pc = 0; pc < method.code.size(); ++pc) {
      const auto& ins = method.code[pc];
      if (ins.op == dex::Op::ConstStr) {
        last[ins.a] = dex.string_at(ins.name);
      } else if (ins.op == dex::Op::Move) {
        last[ins.a] = last[ins.b];
      } else if (ins.is_invoke() && ins.argc >= 1 &&
                 dex.string_at(ins.cls) == "android.content.ContentResolver" &&
                 dex.string_at(ins.name) == "query") {
        uri_at[pc] = last[ins.args[0]];
      }
    }
  }

  // State: one mask per register plus a pseudo-register for the pending
  // invoke result (index num_registers).
  const std::size_t width = method.num_registers + 1u;
  const std::size_t result_slot = method.num_registers;
  std::vector<std::vector<TaintMask>> entry(cfg.blocks.size(),
                                            std::vector<TaintMask>(width, 0));
  {
    const auto& params = g.params(&method);
    for (std::size_t i = 0; i < params.size() && i < width - 1; ++i) {
      entry[0][i] = params[i];
    }
  }

  std::vector<std::size_t> worklist{0};
  std::vector<bool> queued(cfg.blocks.size(), false);
  std::vector<bool> visited(cfg.blocks.size(), false);
  queued[0] = true;
  int budget = static_cast<int>(cfg.blocks.size()) * 64 + 64;
  while (!worklist.empty() && budget-- > 0) {
    const auto bi = worklist.back();
    worklist.pop_back();
    queued[bi] = false;
    visited[bi] = true;
    auto state = entry[bi];

    for (std::size_t pc = cfg.blocks[bi].begin; pc < cfg.blocks[bi].end;
         ++pc) {
      const auto& ins = method.code[pc];
      using dex::Op;
      switch (ins.op) {
        case Op::ConstInt:
        case Op::ConstStr:
          state[ins.a] = 0;  // strong update
          break;
        case Op::Move:
          state[ins.a] = state[ins.b];
          break;
        case Op::MoveResult:
          state[ins.a] = state[result_slot];
          break;
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Div:
        case Op::Rem:
        case Op::Concat:
        case Op::CmpEq:
        case Op::CmpLt:
          state[ins.a] = state[ins.b] | state[ins.c];
          break;
        case Op::IGet:
        case Op::SGet:
          state[ins.a] = g.field_taint[dex.string_at(ins.name)];
          break;
        case Op::IPut:
        case Op::SPut:
          g.merge_field(dex.string_at(ins.name), state[ins.a]);
          break;
        case Op::InvokeStatic:
        case Op::InvokeVirtual: {
          const auto& callee_cls = dex.string_at(ins.cls);
          const auto& callee_name = dex.string_at(ins.name);
          TaintMask args_mask = 0;
          for (std::uint8_t i = 0; i < ins.argc; ++i) {
            args_mask |= state[ins.args[i]];
          }
          if (const auto src = source_api(callee_cls, callee_name)) {
            state[result_slot] = mask_of(*src);
          } else if (callee_cls == "android.content.ContentResolver" &&
                     callee_name == "query") {
            const auto src = source_uri(uri_at[pc]);
            state[result_slot] = src ? mask_of(*src) : 0;
          } else if (is_sink_api(callee_cls, callee_name)) {
            g.record_leak(cls, method, callee_cls + "." + callee_name,
                          args_mask);
            state[result_slot] = 0;
          } else if (const auto* callee = resolve_app_callee(dex, callee_cls,
                                                             callee_name)) {
            for (std::uint8_t i = 0; i < ins.argc; ++i) {
              g.merge_param(callee, i, state[ins.args[i]]);
            }
            state[result_slot] = g.ret(callee);
          } else {
            // Unknown framework call: conservative pass-through.
            state[result_slot] = args_mask;
          }
          break;
        }
        case Op::Return:
          g.merge_ret(&method, state[ins.a]);
          break;
        case Op::TryEnter:
          state[ins.a] = 0;  // handler receives a fresh message string
          break;
        default:
          break;
      }
    }

    for (const auto succ : cfg.blocks[bi].successors) {
      bool changed = false;
      for (std::size_t r = 0; r < width; ++r) {
        const auto joined = entry[succ][r] | state[r];
        if (joined != entry[succ][r]) {
          entry[succ][r] = joined;
          changed = true;
        }
      }
      if ((changed || !visited[succ]) && !queued[succ]) {
        queued[succ] = true;
        worklist.push_back(succ);
      }
    }
  }
}

}  // namespace

TaintMask PrivacyReport::leaked_mask() const {
  TaintMask mask = 0;
  for (const auto& l : leaks) mask |= mask_of(l.type);
  return mask;
}

std::vector<Leak> PrivacyReport::of_type(DataType type) const {
  std::vector<Leak> out;
  for (const auto& l : leaks) {
    if (l.type == type) out.push_back(l);
  }
  return out;
}

PrivacyReport analyze_privacy(const dex::DexFile& dex) {
  Global g;
  g.dex = &dex;
  // Outer fixpoint: every method is an entry point; inter-procedural state
  // (fields, returns, params) grows monotonically.
  for (int round = 0; round < 12; ++round) {
    g.changed = false;
    for (const auto& cls : dex.classes()) {
      for (const auto& method : cls.methods) {
        if (method.code.empty()) continue;
        analyze_method(g, cls, method);
      }
    }
    if (!g.changed) break;
  }
  PrivacyReport report;
  report.leaks = std::move(g.leaks);
  return report;
}

}  // namespace dydroid::privacy
