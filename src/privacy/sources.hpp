// Privacy source & sink catalogs (paper §III-C(b), Table X).
//
// 18 data types in 5 categories. API-shaped sources are keyed by
// (class, method); content providers are keyed by URI (resolved from the
// string constant reaching the ContentResolver.query call). Sinks follow the
// SuSi-style list.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dydroid::privacy {

enum class DataType : int {
  Location = 0,
  Imei,
  Imsi,
  Iccid,
  PhoneNumber,
  Account,
  InstalledApplications,
  InstalledPackages,
  Contact,
  Calendar,
  CallLog,
  Browser,
  Audio,
  Image,
  Video,
  Settings,
  Mms,
  Sms,
};

inline constexpr int kNumDataTypes = 18;

enum class Category { L, PI, UI, UP, CP };

std::string_view data_type_name(DataType type);
std::string_view category_name(Category category);
Category category_of(DataType type);

using TaintMask = std::uint32_t;
inline constexpr TaintMask mask_of(DataType type) {
  return TaintMask{1} << static_cast<int>(type);
}
/// Data types present in a mask, in enum order.
std::vector<DataType> types_in(TaintMask mask);

/// API-shaped source lookup: ("android.telephony.TelephonyManager",
/// "getDeviceId") -> Imei. Nullopt if not a source.
std::optional<DataType> source_api(std::string_view cls,
                                   std::string_view method);

/// Content-provider source lookup by URI constant.
std::optional<DataType> source_uri(std::string_view uri);

/// True if (cls, method) is a data sink (SuSi-style list).
bool is_sink_api(std::string_view cls, std::string_view method);

}  // namespace dydroid::privacy
