// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dydroid::support {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Java package of a fully qualified class name: "a.b.C" -> "a.b".
std::string package_of(std::string_view class_name);

/// True if `pkg` equals `prefix` or is a subpackage of it
/// ("com.foo.bar" has prefix "com.foo" but not "com.fo").
bool package_has_prefix(std::string_view pkg, std::string_view prefix);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dydroid::support
