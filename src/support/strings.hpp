// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace dydroid::support {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Java package of a fully qualified class name: "a.b.C" -> "a.b".
std::string package_of(std::string_view class_name);

/// True if `pkg` equals `prefix` or is a subpackage of it
/// ("com.foo.bar" has prefix "com.foo" but not "com.fo").
bool package_has_prefix(std::string_view pkg, std::string_view prefix);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// ---- checked numeric parsing -----------------------------------------------
// Strict parsers for CLI flags and env hooks: reject empty input, leading
// signs on unsigned values (strtoull would silently wrap "-1"), trailing
// garbage ("4x") and out-of-range values ("1e999"). Errors carry the
// offending text so callers can print a usage message instead of dying on
// an uncaught std::invalid_argument.

/// Parse a non-negative base-10 integer. Whole-string match required.
[[nodiscard]] Result<std::uint64_t> parse_u64(std::string_view text);

/// Parse a finite floating-point value. Whole-string match required.
[[nodiscard]] Result<double> parse_double(std::string_view text);

/// Parse a delimiter-separated list of u64s ("1,2,8"). Empty fields —
/// including a trailing delimiter ("1,2,") — are skipped; at least one
/// value is required and any malformed field fails the whole parse.
[[nodiscard]] Result<std::vector<std::uint64_t>> parse_u64_list(
    std::string_view text, char delim = ',');

}  // namespace dydroid::support
