// Write-ahead outcome journal (docs/CHECKPOINT.md).
//
// A multi-day measurement campaign dies in more ways than its apps do: the
// driver gets OOM-killed, the machine reboots, the operator hits Ctrl-C.
// The journal is the persistence layer that makes the *run* survivable the
// way the retry/quarantine policy (docs/FAULTS.md) made the per-app
// analysis survivable: every finished app outcome is appended as one
// CRC32-framed record before the run advances, so a killed run resumes
// from its last complete app instead of restarting the corpus.
//
// On-disk format (all integers little-endian):
//
//   file   := magic record*
//   magic  := "DYJRNL01"                      (8 bytes)
//   record := len:u32 crc:u32 payload[len]    (crc = CRC-32 of payload)
//
// Durability & recovery rules:
//   * Appends are atomic at the frame level: one frame, one write(2) to an
//     O_APPEND descriptor. A crash can only truncate the *tail* frame.
//   * `fsync_each_record` trades throughput for the guarantee that an
//     acknowledged append survives power loss (off by default: the kernel
//     flushes on close/seal, which covers driver-process death).
//   * The reader walks frames front to back and stops at the first
//     inconsistency — short header, length past EOF, CRC mismatch — and
//     returns every record before it. A torn or bit-flipped tail therefore
//     costs at most the records at/after the damage, never the run.
//   * Duplicate records for the same logical key are the *caller's*
//     resume semantics (the corpus driver replays last-writer-wins).
//
// Thread-safety: JournalWriter is not internally synchronized; the corpus
// driver serializes appends under its journal mutex. read_journal is a
// pure function of the file contents.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace dydroid::support {

/// File magic: "DYJRNL01" (bump the trailing digits on format changes).
inline constexpr std::array<std::uint8_t, 8> kJournalMagic = {
    'D', 'Y', 'J', 'R', 'N', 'L', '0', '1'};

/// Bytes of framing per record (len + crc) on top of the payload.
inline constexpr std::size_t kJournalFrameOverhead = 8;

struct JournalWriterOptions {
  /// fsync(2) after every appended record. Default off: record durability
  /// then depends on the kernel page cache (survives driver death, not
  /// power loss); seal()/close always flush.
  bool fsync_each_record = false;
  /// Start a fresh journal (truncate any existing file) instead of
  /// appending to it. Resume runs append; fresh runs truncate.
  bool truncate = false;
  /// File magic stamped on a fresh file and demanded of an existing one.
  /// The result cache (docs/CACHE.md) reuses the frame layer under its own
  /// magic so a cache file can never be mistaken for an outcome journal.
  std::array<std::uint8_t, 8> magic = kJournalMagic;
  /// Injection site honored by append(): an injected failure leaves a
  /// genuinely torn half-frame on disk. The outcome journal keeps
  /// journal.append; the result cache writes under cache.write.
  FaultSite fault_site = FaultSite::kJournalAppend;
};

/// Append-only writer over an O_APPEND descriptor.
class JournalWriter {
 public:
  /// Open (creating if absent) a journal for appending. A new or truncated
  /// file gets the magic header; an existing file must carry it.
  static Result<JournalWriter> open(const std::string& path,
                                    JournalWriterOptions options = {});

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Append one record (single frame, single write). Honors the
  /// FaultSite::kJournalAppend injection site: an injected append failure
  /// leaves a deliberately torn half-frame on disk — exactly the artifact
  /// a real crash mid-write leaves — and reports failure.
  Status append(std::span<const std::uint8_t> payload);

  /// fsync the descriptor.
  Status sync();

  /// Seal the journal: flush and close the descriptor. Idempotent; also
  /// performed by the destructor.
  Status seal();

  /// Records successfully appended through this writer (excludes records
  /// already in the file when opened in append mode).
  [[nodiscard]] std::size_t appended() const { return appended_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

 private:
  JournalWriter(int fd, std::string path, JournalWriterOptions options)
      : fd_(fd), path_(std::move(path)), options_(options) {}

  int fd_ = -1;
  std::string path_;
  JournalWriterOptions options_;
  std::size_t appended_ = 0;
};

struct JournalReadResult {
  std::vector<Bytes> records;
  /// Length of the valid prefix (magic + intact frames).
  std::size_t bytes_recovered = 0;
  /// Trailing bytes dropped by torn-tail / bad-CRC recovery.
  std::size_t bytes_discarded = 0;

  /// True when recovery discarded a damaged tail.
  [[nodiscard]] bool torn() const { return bytes_discarded > 0; }
};

/// Read every intact record. An empty file is a valid, empty journal; a
/// missing file or a wrong magic is a loud failure (never a silent empty
/// result); a torn or bit-flipped tail is recovered per the header rules.
/// `magic` selects which frame-layer client the file must belong to
/// (outcome journal by default; the result cache passes its own).
Result<JournalReadResult> read_journal(
    const std::string& path,
    const std::array<std::uint8_t, 8>& magic = kJournalMagic);

/// Chop a damaged journal back to its valid prefix (the bytes_recovered a
/// read reported) so a resume run can append after the last intact record
/// instead of behind unreadable garbage.
Status truncate_journal(const std::string& path, std::size_t bytes_recovered);

/// Parse journal bytes already in memory (the reader core; exposed for the
/// fuzz suite).
Result<JournalReadResult> parse_journal(
    std::span<const std::uint8_t> data,
    const std::array<std::uint8_t, 8>& magic = kJournalMagic);

/// Append one CRC frame (len + crc + payload) for `payload` to an
/// in-memory writer. Produces exactly the bytes JournalWriter::append puts
/// on disk, so any stream stamped with a frame-layer magic — a journal
/// file, a cache store, the sandbox result pipe (docs/ISOLATION.md) — can
/// be framed without a file descriptor and read back with parse_journal.
void encode_frame(ByteWriter& w, std::span<const std::uint8_t> payload);

// ---- shard metadata record (docs/SHARDING.md) ------------------------------
//
// A sharded corpus run (RunnerConfig::shard_count > 0) stamps its journal
// with one shard-metadata record, written first, before any outcome. It
// pins everything a merge or a per-shard resume must agree on: which shard
// of how many this journal belongs to, the seed base the global-index
// seeds derive from, the size of the full corpus, the outcome codec
// version of the records that follow, and the SHA-256 config fingerprint
// of the pipeline that produced them. `dydroid merge` refuses to fold
// journals whose metadata disagrees; a resume refuses a journal whose
// metadata does not match the resuming run's configuration. Unsharded
// journals carry no metadata record (the pre-shard format is unchanged).

/// First payload byte of a shard-metadata record. Disjoint from every
/// outcome-codec version byte (those count up from 1), so a reader can
/// tell the two record kinds apart from the first byte alone.
inline constexpr std::uint8_t kShardMetaTag = 0xF5;

/// Shard-metadata payload format version.
inline constexpr std::uint8_t kShardMetaVersion = 1;

struct ShardMeta {
  /// This journal's shard: global corpus indices ≡ shard_index (mod
  /// shard_count).
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Base of the index-derived per-app seeds (seed_for_app).
  std::uint64_t seed_base = 0;
  /// Apps in the *full* corpus, across all shards.
  std::uint64_t corpus_size = 0;
  /// driver::kOutcomeCodecVersion of the outcome records that follow.
  std::uint8_t outcome_codec_version = 0;
  /// driver::config_fingerprint of the producing pipeline (SHA-256 bytes).
  std::array<std::uint8_t, 32> config_fingerprint{};

  friend bool operator==(const ShardMeta&, const ShardMeta&) = default;
};

/// Encode a shard-metadata record payload (tag + version + fields).
[[nodiscard]] Bytes encode_shard_meta(const ShardMeta& meta);

/// True when `payload` starts with the shard-metadata tag byte — i.e. the
/// record is shard metadata, not an encoded outcome.
[[nodiscard]] bool is_shard_meta(std::span<const std::uint8_t> payload);

/// Decode a shard-metadata payload. Throws ParseError on a bad tag,
/// unsupported version, out-of-range shard fields, truncation or trailing
/// bytes.
[[nodiscard]] ShardMeta decode_shard_meta(std::span<const std::uint8_t> payload);

}  // namespace dydroid::support
