// Fork-per-task process sandbox (docs/ISOLATION.md).
//
// DyDroid survived its 58,739-app crawl because every sample ran in a
// disposable environment: an app that crashes, hangs or exhausts memory
// must never take the measurement infrastructure down with it. Subprocess
// is that boundary for the corpus driver: it forks a child, applies hard
// resource limits, runs a caller-provided body, collects whatever the body
// wrote to a result pipe, and supervises the child with an EINTR-safe
// waitpid loop that SIGKILLs anything outliving its wall deadline.
//
// Child-side contract (applied before the body runs):
//   * RLIMIT_CORE = 0 — a crashing child never litters core dumps.
//   * RLIMIT_AS (when max_memory_bytes > 0 and the build supports it; see
//     address_space_limit_supported) and RLIMIT_CPU (cpu_time_s > 0).
//   * std::set_new_handler(_exit(kOomExitCode)) — an allocation failure
//     exits with a reserved code instead of unwinding, so the supervisor
//     can classify out-of-memory deaths distinctly from crashes.
//   * SIGINT/SIGTERM reset to SIG_DFL — the parent's graceful-shutdown
//     handlers must not leak into children.
//   * The body's return value becomes the exit code; an exception escaping
//     the body exits with kChildExceptionExitCode. The child always leaves
//     via _exit(2): no destructors, no atexit handlers, no double-flushed
//     stdio buffers inherited from the parent.
//
// Parent-side contract: wait() drains the result pipe with poll-bounded
// reads (a child writing more than the pipe buffer never deadlocks),
// enforces wall_deadline_ms with SIGKILL, reaps the child with retrying
// waitpid, and reports the raw facts — exit code, terminating signal,
// whether the deadline fired, everything the child managed to write. The
// driver layers crash/OOM/timeout *classification* on top
// (driver/sandbox.hpp).
//
// fork() in a multithreaded parent: the corpus driver forks from worker
// threads. glibc's malloc is made fork-safe by its own atfork handlers;
// the support logger's sink mutex is guarded by handlers this file
// registers (log_fork_lock/unlock), and children never touch the journal,
// cache or trace registries (parent-side state).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace dydroid::support {

/// Reserved child exit codes (chosen high to stay clear of app-meaningful
/// small codes; a body returning them would be misclassified, so don't).
inline constexpr int kOomExitCode = 97;             // new_handler fired
inline constexpr int kChildExceptionExitCode = 96;  // exception escaped body

/// Hard resource limits applied to the child before the body runs.
struct SubprocessLimits {
  /// RLIMIT_AS in bytes; 0 inherits the parent's limit. The limit covers
  /// the whole address space (the forked image included), so it must
  /// comfortably exceed the parent's footprint. Ignored under ASan/TSan,
  /// whose shadow mappings are incompatible with RLIMIT_AS.
  std::uint64_t max_memory_bytes = 0;
  /// RLIMIT_CPU in seconds; 0 inherits. Exceeding it delivers SIGXCPU.
  std::uint32_t cpu_time_s = 0;
  /// Supervisor wall deadline in ms; past it the child is SIGKILLed and
  /// the result is flagged deadline_killed. 0 = wait forever.
  double wall_deadline_ms = 0.0;
};

/// True when this build can enforce RLIMIT_AS (false under ASan/TSan).
[[nodiscard]] bool address_space_limit_supported();

/// Register the fork-safety atfork handlers (log sink mutex) once. Every
/// fork-based facility (Subprocess, PoolWorker) calls this before fork(2).
void subprocess_install_fork_handlers();

/// Child-side setup between fork and body: reset SIGINT/SIGTERM, zero
/// RLIMIT_CORE, apply the CPU/address-space limits, route allocation
/// failure to _exit(kOomExitCode). Only async-signal-safe calls plus
/// setrlimit/set_new_handler; the child must be single-threaded.
void subprocess_child_setup(const SubprocessLimits& limits);

/// Raw supervision facts for one reaped child.
struct SubprocessResult {
  /// WIFEXITED: the child left via _exit; exit_code holds the status.
  bool exited = false;
  int exit_code = 0;
  /// WIFSIGNALED: the terminating signal (0 when exited).
  int term_signal = 0;
  /// The supervisor SIGKILLed the child past wall_deadline_ms. When set,
  /// term_signal is the kill signal, not a crash of the child's own.
  bool deadline_killed = false;
  /// Everything the child wrote to the result pipe before dying.
  Bytes output;
  /// A read error truncated the pipe drain (output holds the prefix).
  bool output_truncated = false;
  /// Wall time from fork to reap.
  double wall_ms = 0.0;
};

class Subprocess {
 public:
  /// Fork a child that runs `body(write_fd)` under `limits` and exits with
  /// its return value. Fails (no child) when pipe(2) or fork(2) fail.
  static Result<Subprocess> spawn(const std::function<int(int)>& body,
                                  const SubprocessLimits& limits);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  /// An unwaited child is SIGKILLed and reaped — destruction never leaks
  /// zombies or leaves orphans running.
  ~Subprocess();

  /// Drain the pipe, enforce the deadline, reap the child. Call once.
  [[nodiscard]] SubprocessResult wait();

  /// Child pid (for external-kill tests and diagnostics).
  [[nodiscard]] int pid() const { return pid_; }

 private:
  Subprocess(int pid, int read_fd, double deadline_ms)
      : pid_(pid), read_fd_(read_fd), deadline_ms_(deadline_ms) {}

  int pid_ = -1;
  int read_fd_ = -1;
  double deadline_ms_ = 0.0;
  Stopwatch clock_;
};

}  // namespace dydroid::support
