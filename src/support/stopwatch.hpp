// Monotonic wall-clock stopwatch for per-app and per-corpus timing.
// Header-only; used by the corpus driver and the throughput benches.
#pragma once

#include <chrono>

namespace dydroid::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch and return the elapsed time so far in ms.
  double reset() {
    const auto now = Clock::now();
    const double ms = to_ms(now - start_);
    start_ = now;
    return ms;
  }

  [[nodiscard]] double elapsed_ms() const { return to_ms(Clock::now() - start_); }
  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;

  static double to_ms(Clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  }

  Clock::time_point start_;
};

}  // namespace dydroid::support
