// Error type and Result<T> used across the library.
//
// Parse/format errors and recoverable per-app failures are reported as
// Result<T>; programming errors (broken invariants) use assertions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace dydroid::support {

/// Exception thrown on malformed binary input (truncated file, bad magic,
/// out-of-range index). The unpacker converts these into per-app failures.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// A lightweight expected-like result: either a value or an error message.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::expected.
  Result(T value) : storage_(std::move(value)) {}

  static Result failure(std::string message) {
    return Result(Err{std::move(message)});
  }

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const std::string& error() const {
    static const std::string kNone;
    if (ok()) return kNone;
    return std::get<1>(storage_).message;
  }

 private:
  struct Err {
    std::string message;
  };
  explicit Result(Err e) : storage_(std::move(e)) {}
  std::variant<T, Err> storage_;
};

/// Result specialization carrying no value.
class Status {
 public:
  Status() = default;
  static Status failure(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace dydroid::support
