#include "support/fault.hpp"

#include <charconv>
#include <cstdio>

#include "support/trace.hpp"

namespace dydroid::support {

namespace {

struct SiteName {
  FaultSite site;
  std::string_view name;
};

constexpr std::array<SiteName, kFaultSiteCount> kSiteNames = {{
    {FaultSite::kApkDeserialize, "apk.deserialize"},
    {FaultSite::kManifestParse, "manifest.parse"},
    {FaultSite::kDexParse, "dex.parse"},
    {FaultSite::kRewriteRepack, "rewrite.repack"},
    {FaultSite::kDeviceBoot, "device.boot"},
    {FaultSite::kDeviceInstall, "device.install"},
    {FaultSite::kInterceptorIo, "interceptor.io"},
    {FaultSite::kNativeLoad, "native.load"},
    {FaultSite::kJournalAppend, "journal.append"},
    {FaultSite::kDriverKill, "driver.kill"},
    {FaultSite::kCacheRead, "cache.read"},
    {FaultSite::kCacheWrite, "cache.write"},
    {FaultSite::kSandboxSpawn, "sandbox.spawn"},
    {FaultSite::kSandboxPipe, "sandbox.pipe"},
    {FaultSite::kSandboxCrash, "sandbox.crash"},
    {FaultSite::kPoolSpawn, "sandbox.pool.spawn"},
    {FaultSite::kPoolRpc, "sandbox.pool.rpc"},
    {FaultSite::kPoolRecycle, "sandbox.pool.recycle"},
}};

/// splitmix64-style avalanche; the decision function's mixing core.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Pure decision draw in [0,1) from (seed, site, hit). Order-independent:
/// hitting sites in any interleaving yields identical per-hit draws.
double decision_draw(std::uint64_t seed, FaultSite site, std::uint32_t hit) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(site) + 1));
  h = mix64(h ^ (static_cast<std::uint64_t>(hit) << 8));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

thread_local FaultSession* t_session = nullptr;

}  // namespace

const std::array<FaultSite, kFaultSiteCount>& all_fault_sites() {
  static const std::array<FaultSite, kFaultSiteCount> sites = [] {
    std::array<FaultSite, kFaultSiteCount> out{};
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) out[i] = kSiteNames[i].site;
    return out;
  }();
  return sites;
}

std::string_view fault_site_name(FaultSite site) {
  for (const auto& entry : kSiteNames) {
    if (entry.site == site) return entry.name;
  }
  return "?";
}

Result<FaultSite> fault_site_from_name(std::string_view name) {
  for (const auto& entry : kSiteNames) {
    if (entry.name == name) return entry.site;
  }
  return Result<FaultSite>::failure("unknown fault site: " + std::string(name));
}

// ---- FaultPlan -------------------------------------------------------------

void FaultPlan::set(FaultSite site, FaultSpec spec) {
  specs_[static_cast<std::size_t>(site)] = spec;
}

const FaultSpec& FaultPlan::spec(FaultSite site) const {
  return specs_[static_cast<std::size_t>(site)];
}

bool FaultPlan::empty() const {
  for (const auto& s : specs_) {
    if (s.mode != FaultSpec::Mode::kNever) return false;
  }
  return true;
}

namespace {

Result<FaultSpec> parse_mode(std::string_view text) {
  if (text == "always") return FaultSpec::always();
  if (text == "never") return FaultSpec::never();
  if (text.starts_with("nth:")) {
    const auto digits = text.substr(4);
    std::uint32_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), n);
    if (ec != std::errc() || ptr != digits.data() + digits.size() || n == 0) {
      return Result<FaultSpec>::failure("bad nth count: " + std::string(text));
    }
    return FaultSpec::on_nth(n);
  }
  if (text.starts_with("p:")) {
    const auto digits = text.substr(2);
    double p = 0.0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), p);
    if (ec != std::errc() || ptr != digits.data() + digits.size() || p < 0.0 ||
        p > 1.0) {
      return Result<FaultSpec>::failure("bad probability: " +
                                        std::string(text));
    }
    return FaultSpec::with_probability(p);
  }
  return Result<FaultSpec>::failure("bad fault mode: " + std::string(text) +
                                    " (want always, nth:<N> or p:<float>)");
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    const auto entry = text.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Result<FaultPlan>::failure("fault entry missing '=': " +
                                        std::string(entry));
    }
    const auto site = fault_site_from_name(entry.substr(0, eq));
    if (!site.ok()) return Result<FaultPlan>::failure(site.error());
    const auto spec = parse_mode(entry.substr(eq + 1));
    if (!spec.ok()) return Result<FaultPlan>::failure(spec.error());
    plan.set(site.value(), spec.value());
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& entry : kSiteNames) {
    const auto& s = spec(entry.site);
    if (s.mode == FaultSpec::Mode::kNever) continue;
    if (!out.empty()) out += ',';
    out += entry.name;
    out += '=';
    switch (s.mode) {
      case FaultSpec::Mode::kNever: break;
      case FaultSpec::Mode::kAlways: out += "always"; break;
      case FaultSpec::Mode::kNth:
        out += "nth:" + std::to_string(s.nth);
        break;
      case FaultSpec::Mode::kProbability: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "p:%g", s.probability);
        out += buf;
        break;
      }
    }
  }
  return out;
}

// ---- FaultSession ----------------------------------------------------------

std::uint64_t fault_session_seed(std::uint64_t app_seed,
                                 std::uint32_t attempt) {
  return mix64(app_seed ^ (static_cast<std::uint64_t>(attempt) << 32));
}

FaultSession::FaultSession(const FaultPlan& plan, std::uint64_t seed)
    : plan_(&plan), seed_(seed) {}

bool FaultSession::should_fire(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  const std::uint32_t hit = ++hits_[index];
  const FaultSpec& spec = plan_->spec(site);
  bool fire = false;
  switch (spec.mode) {
    case FaultSpec::Mode::kNever: break;
    case FaultSpec::Mode::kAlways: fire = true; break;
    case FaultSpec::Mode::kNth: fire = (hit == spec.nth); break;
    case FaultSpec::Mode::kProbability:
      fire = decision_draw(seed_, site, hit) < spec.probability;
      break;
  }
  if (fire) ++fired_;
  return fire;
}

std::uint32_t FaultSession::hits(FaultSite site) const {
  return hits_[static_cast<std::size_t>(site)];
}

// ---- ambient scope ---------------------------------------------------------

FaultScope::FaultScope(FaultSession* session) : previous_(t_session) {
  t_session = session;
}

FaultScope::~FaultScope() { t_session = previous_; }

FaultSession* current_fault_session() { return t_session; }

bool fault_fire(FaultSite site) {
  FaultSession* session = t_session;
  if (session == nullptr) return false;  // production fast path
  const bool fired = session->should_fire(site);
  // Fault-fire accounting (docs/OBSERVABILITY.md): only reached with an
  // ambient session installed, so the production fast path stays a single
  // branch.
  if (fired) count("fault.fired");
  return fired;
}

std::string fault_message(FaultSite site) {
  return "fault(" + std::string(fault_site_name(site)) + "): injected failure";
}

}  // namespace dydroid::support
