// Deterministic fault injection (support::FaultInjector subsystem).
//
// The paper's headline numbers (Table II) are outcome histograms over
// 58,739 real-world apps, 7,664 of which crashed, failed rewriting or never
// ran — so the measurement system must survive and *correctly classify*
// malformed inputs and mid-analysis failures. This header provides the
// scaffolding that proves it does:
//
//   * FaultSite   — a named injection point threaded through every layer
//                   that fails in the wild (container parsing, dex parsing,
//                   repacking, device boot/install, interceptor I/O,
//                   native-library loading).
//   * FaultSpec   — when a site fires: never / always / on the Nth hit /
//                   with probability p.
//   * FaultPlan   — an immutable site→spec table, parseable from a compact
//                   grammar ("apk.deserialize=always,device.install=p:0.25").
//   * FaultSession— the per-app mutable state (hit counters). Decisions are
//                   a pure function of (session seed, site, hit index), so a
//                   run is reproducible from the app's corpus seed no matter
//                   how sites interleave or how many workers run.
//   * FaultScope  — RAII installer of the thread-ambient session. Deep call
//                   sites query `fault_fire(site)`; with no ambient session
//                   installed that is a single branch, so production runs
//                   pay nothing.
//
// Thread-safety: a FaultPlan is immutable after construction and may be
// shared by any number of workers; a FaultSession must be confined to one
// app analysis (the pipeline installs one per analyze() call on the calling
// thread).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace dydroid::support {

/// Named injection sites, one per layer that can fail in the wild.
enum class FaultSite : std::uint8_t {
  kApkDeserialize,   // ApkFile::deserialize — truncated/corrupt container
  kManifestParse,    // Manifest::from_text — malformed manifest
  kDexParse,         // dex::DexFile::deserialize — bad string/method data
  kRewriteRepack,    // analysis::rewrite_with_permission — repack failure
  kDeviceBoot,       // os::Device construction — device unavailable
  kDeviceInstall,    // PackageManager::install — install timeout
  kInterceptorIo,    // interceptor snapshot I/O — short write, snapshot lost
  kNativeLoad,       // nativebin::NativeLibrary::deserialize — bad .so
  // Driver-level sites (docs/CHECKPOINT.md). These fire in the corpus
  // driver's own fault session (not the per-app session), so kill/resume
  // harnesses can abort the *run* deterministically after the N-th
  // journal append.
  kJournalAppend,    // support::JournalWriter::append — torn record write
  kDriverKill,       // CorpusRunner checked boundary — driver dies mid-run
  kCacheRead,        // driver::ResultCache::lookup — read error, treat as miss
  kCacheWrite,       // driver::ResultCache::insert — write error, entry dropped
  // Sandbox sites (docs/ISOLATION.md). spawn/pipe fire in the supervisor's
  // per-app sandbox session (fork failure, torn result frame); crash fires
  // in the *child*, which aborts so the supervisor classifies a real
  // signal death.
  kSandboxSpawn,     // CorpusRunner sandbox — fork fails, app quarantined
  kSandboxPipe,      // sandbox result pipe — torn frame, recover + quarantine
  kSandboxCrash,     // sandbox child — deterministic abort (signal death)
  // Worker-pool sites (docs/ISOLATION.md §pool). All three fire in the
  // supervisor's per-attempt sandbox session; spawn/rpc fail the attempt
  // (quarantine), recycle forces a worker restart without touching the
  // outcome — so recycling machinery is testable under the fault harness.
  kPoolSpawn,        // pool worker (re)spawn fails, app quarantined
  kPoolRpc,          // pool response treated as torn, recover + quarantine
  kPoolRecycle,      // force-recycle the worker after a clean response
};

inline constexpr std::size_t kFaultSiteCount = 18;

/// All sites, in enum order (the injection-site catalog).
const std::array<FaultSite, kFaultSiteCount>& all_fault_sites();

/// Stable site name used by the FaultPlan grammar and diagnostics.
std::string_view fault_site_name(FaultSite site);

/// Inverse of fault_site_name; empty optional for unknown names is modelled
/// as a Result to carry the offending token.
Result<FaultSite> fault_site_from_name(std::string_view name);

/// When a site fires.
struct FaultSpec {
  enum class Mode : std::uint8_t {
    kNever,        // site disabled (default)
    kAlways,       // every hit fires
    kNth,          // exactly the Nth hit (1-based) fires
    kProbability,  // each hit fires independently with probability p
  };
  Mode mode = Mode::kNever;
  double probability = 0.0;  // kProbability
  std::uint32_t nth = 0;     // kNth (1-based)

  static FaultSpec never() { return {}; }
  static FaultSpec always() { return {Mode::kAlways, 0.0, 0}; }
  static FaultSpec on_nth(std::uint32_t n) { return {Mode::kNth, 0.0, n}; }
  static FaultSpec with_probability(double p) {
    return {Mode::kProbability, p, 0};
  }
};

/// Immutable site→spec table. Thread-safe to share once built.
class FaultPlan {
 public:
  /// Parse the plan grammar: a comma-separated list of `site=mode` entries
  /// where mode is `always`, `nth:<N>` (1-based) or `p:<float in [0,1]>`.
  ///   "apk.deserialize=always,device.install=p:0.25,dex.parse=nth:2"
  static Result<FaultPlan> parse(std::string_view text);

  void set(FaultSite site, FaultSpec spec);
  [[nodiscard]] const FaultSpec& spec(FaultSite site) const;
  /// True when no site is armed (the plan is a no-op).
  [[nodiscard]] bool empty() const;
  /// Round-trip back to the grammar (armed sites only, enum order).
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<FaultSpec, kFaultSiteCount> specs_{};
};

/// Derive the session seed for one app attempt. Retries get a fresh stream
/// (attempt salts the seed), which is what makes probability-mode faults
/// transient: a crash on attempt 0 can clear on the retry — deterministically.
[[nodiscard]] std::uint64_t fault_session_seed(std::uint64_t app_seed,
                                               std::uint32_t attempt);

/// Per-app fault state. Confine to one analysis on one thread.
class FaultSession {
 public:
  FaultSession(const FaultPlan& plan, std::uint64_t seed);

  /// Check-and-consume one hit of `site`. The decision is a pure function
  /// of (seed, site, hit index) — independent of how other sites interleave.
  [[nodiscard]] bool should_fire(FaultSite site);

  /// Hits observed at a site so far.
  [[nodiscard]] std::uint32_t hits(FaultSite site) const;
  /// Total faults fired in this session.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  const FaultPlan* plan_;
  std::uint64_t seed_;
  std::array<std::uint32_t, kFaultSiteCount> hits_{};
  std::uint64_t fired_ = 0;
};

/// RAII installer of the calling thread's ambient fault session. Nesting
/// restores the previous session on destruction.
class FaultScope {
 public:
  explicit FaultScope(FaultSession* session);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultSession* previous_;
};

/// The ambient session for this thread, or null when fault injection is off.
[[nodiscard]] FaultSession* current_fault_session();

/// Check-and-consume at an injection site: false (single branch) when no
/// ambient session is installed. This is the only call sites make.
[[nodiscard]] bool fault_fire(FaultSite site);

/// Uniform failure message for an injected fault, e.g.
/// "fault(device.install): injected failure".
[[nodiscard]] std::string fault_message(FaultSite site);

}  // namespace dydroid::support
