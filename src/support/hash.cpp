#include "support/hash.hpp"

#include <array>

namespace dydroid::support {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = kFnvOffset;
  for (const auto b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const auto b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dydroid::support
