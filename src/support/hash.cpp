#include "support/hash.hpp"

#include <algorithm>
#include <array>

namespace dydroid::support {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// CRC-32 (zlib polynomial) lookup tables for slicing-by-8: tables[0] is
/// the classic byte-at-a-time table; tables[j] advances a byte that sits
/// j positions deeper in the stream. Produces bit-identical CRCs to the
/// scalar loop while consuming 8 bytes per iteration — the checksum is on
/// the journal append hot path (docs/CHECKPOINT.md) and in SimApk entry
/// verification.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = tables[0][c & 0xff] ^ (c >> 8);
      tables[j][i] = c;
    }
  }
  return tables;
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = kFnvOffset;
  for (const auto b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

// ---- SHA-256 (FIPS 180-4) --------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kSha256Init = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() { state_ = kSha256Init; }

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if (buffered_ > 0) {
    const std::size_t take = std::min(n, buffer_.size() - buffered_);
    std::copy_n(p, take, buffer_.begin() + static_cast<long>(buffered_));
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    compress(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::copy_n(p, n, buffer_.begin());
    buffered_ = n;
  }
}

void Sha256::update(std::string_view s) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Sha256Digest Sha256::digest() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(std::span<const std::uint8_t>(&pad_one, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i) {
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_be, 8));
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::string Sha256Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(64, '0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[2 * i] = kHex[bytes[i] >> 4];
    out[2 * i + 1] = kHex[bytes[i] & 0xf];
  }
  return out;
}

std::uint64_t Sha256Digest::prefix64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

Sha256Digest sha256(std::span<const std::uint8_t> data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.digest();
}

Sha256Digest sha256(std::string_view s) {
  Sha256 hasher;
  hasher.update(s);
  return hasher.digest();
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto tables = make_crc_tables();
  std::uint32_t c = 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = tables[7][lo & 0xff] ^ tables[6][(lo >> 8) & 0xff] ^
        tables[5][(lo >> 16) & 0xff] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xff] ^ tables[2][(hi >> 8) & 0xff] ^
        tables[1][(hi >> 16) & 0xff] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tables[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dydroid::support
