#include "support/hash.hpp"

#include <array>

namespace dydroid::support {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// CRC-32 (zlib polynomial) lookup tables for slicing-by-8: tables[0] is
/// the classic byte-at-a-time table; tables[j] advances a byte that sits
/// j positions deeper in the stream. Produces bit-identical CRCs to the
/// scalar loop while consuming 8 bytes per iteration — the checksum is on
/// the journal append hot path (docs/CHECKPOINT.md) and in SimApk entry
/// verification.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = tables[0][c & 0xff] ^ (c >> 8);
      tables[j][i] = c;
    }
  }
  return tables;
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = kFnvOffset;
  for (const auto b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto tables = make_crc_tables();
  std::uint32_t c = 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = tables[7][lo & 0xff] ^ tables[6][(lo >> 8) & 0xff] ^
        tables[5][(lo >> 16) & 0xff] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xff] ^ tables[2][(hi >> 8) & 0xff] ^
        tables[1][(hi >> 16) & 0xff] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tables[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dydroid::support
