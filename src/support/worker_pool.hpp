// Persistent pre-forked sandbox workers (docs/ISOLATION.md §3).
//
// Fork-per-app isolation buys crash containment at a brutal price: every
// app pays fork(2) + pipe setup + waitpid(2), which BENCH_corpus.json
// measured at ~13x the analysis itself. A PoolWorker amortizes that cost:
// the child is forked ONCE, applies the same rlimits/new-handler contract
// as support::Subprocess, then loops over a CRC-framed request/response
// pipe protocol — the parent ships one framed request per app attempt and
// blocks (deadline-bounded) for one framed response. One fork now serves
// thousands of apps, while every per-app failure mode is preserved:
//
//   * deadline overrun  → SIGKILL + reap, status kTimeout
//   * child signal/exit → EOF mid-message + reap, status kWorkerExit with
//                         the raw exit facts (the driver classifies
//                         crash/OOM exactly as in fork-per-app mode)
//   * clean response    → status kOk with the complete framed message
//
// After kTimeout or kWorkerExit the worker is dead and reaped; the caller
// respawns a fresh one (the driver re-dispatches the in-flight app).
//
// Framing: every message is `magic[8] | len:u32 | crc:u32 | payload[len]`
// — the journal frame layer (support/journal.hpp) under a caller-chosen
// magic. The parent locates message boundaries from the length header;
// CRC validation happens in the caller's decoder.
//
// fd hygiene across forks: a pool runs one worker per driver thread, and a
// child forked later would inherit the parent-side pipe ends of every
// earlier worker — keeping a request pipe writable after the parent closes
// it, so EOF-based death detection and graceful shutdown would hang. Every
// parent-side fd is tracked in a process-wide registry (its mutex is held
// across fork) and the child closes all of them before entering the loop.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/subprocess.hpp"

namespace dydroid::support {

/// Bytes preceding the payload of a framed pool message: the 8-byte magic
/// plus the journal frame header (len + crc).
inline constexpr std::size_t kPoolMessageHeader = 16;

/// Upper bound on a single framed message's payload; a length header past
/// it is treated as stream desync, not an allocation request.
inline constexpr std::uint32_t kPoolMaxMessageBytes = 256u * 1024u * 1024u;

/// Outcome of one PoolWorker::call round trip.
struct PoolRpcResult {
  enum class Status : std::uint8_t {
    kOk,          // message holds one complete framed response
    kTimeout,     // deadline fired; worker SIGKILLed and reaped
    kWorkerExit,  // worker died before a complete response; exit facts set
    kError,       // protocol desync or local I/O error; worker killed
  };
  Status status = Status::kError;
  /// The complete message (magic + frame) on kOk.
  Bytes message;
  /// Reap facts, valid for kTimeout/kWorkerExit/kError (mirrors
  /// SubprocessResult): WIFEXITED → exited/exit_code, else term_signal.
  bool exited = false;
  int exit_code = 0;
  int term_signal = 0;
  std::string error;
};

/// One persistent sandboxed child. Confine to a single driver thread.
class PoolWorker {
 public:
  /// Child-side loop: read framed requests from request_fd, write framed
  /// responses to response_fd, return the exit code (EOF on request_fd is
  /// the graceful-shutdown signal — return 0).
  using ServeLoop = std::function<int(int request_fd, int response_fd)>;

  /// Fork a persistent child running `serve` under `limits`. The rlimits
  /// apply to the worker's whole lifetime (RLIMIT_CPU accumulates across
  /// the apps it serves — pair tight CPU limits with recycling). The
  /// wall_deadline_ms in `limits` is the default per-call deadline.
  static Result<PoolWorker> spawn(const ServeLoop& serve,
                                  const SubprocessLimits& limits);

  PoolWorker(PoolWorker&& other) noexcept;
  PoolWorker& operator=(PoolWorker&& other) noexcept;
  PoolWorker(const PoolWorker&) = delete;
  PoolWorker& operator=(const PoolWorker&) = delete;
  /// A live worker is SIGKILLed and reaped — destruction never leaks
  /// zombies. Prefer shutdown() for a graceful EOF-driven exit.
  ~PoolWorker();

  /// One framed round trip: ship `request` (a complete magic+frame
  /// message), then read exactly one framed response whose magic must be
  /// `magic`, killing the worker past `deadline_ms` (0 = the spawn
  /// default; both 0 = wait forever). On anything but kOk the worker is
  /// dead and reaped — alive() turns false and the caller respawns.
  [[nodiscard]] PoolRpcResult call(const Bytes& request,
                                   const std::array<std::uint8_t, 8>& magic,
                                   double deadline_ms = 0.0);

  /// Graceful shutdown: close the request pipe (the loop sees EOF and
  /// exits), wait briefly, escalate to SIGKILL if the child lingers.
  void shutdown();

  /// SIGKILL + reap immediately (recycling a wedged or bloated worker).
  void kill();

  [[nodiscard]] bool alive() const { return pid_ > 0; }
  [[nodiscard]] int pid() const { return pid_; }
  /// Completed (kOk) calls served by this worker.
  [[nodiscard]] std::uint64_t served() const { return served_; }
  /// Resident set size from /proc/<pid>/statm; 0 when unavailable.
  [[nodiscard]] std::uint64_t rss_bytes() const;

 private:
  PoolWorker(int pid, int request_fd, int response_fd, double deadline_ms)
      : pid_(pid),
        request_fd_(request_fd),
        response_fd_(response_fd),
        deadline_ms_(deadline_ms) {}

  void close_pipes();
  void reap(PoolRpcResult* result);

  int pid_ = -1;
  int request_fd_ = -1;
  int response_fd_ = -1;
  double deadline_ms_ = 0.0;
  std::uint64_t served_ = 0;
};

}  // namespace dydroid::support
