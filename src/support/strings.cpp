#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dydroid::support {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string package_of(std::string_view class_name) {
  const auto pos = class_name.rfind('.');
  if (pos == std::string_view::npos) return "";
  return std::string(class_name.substr(0, pos));
}

bool package_has_prefix(std::string_view pkg, std::string_view prefix) {
  if (prefix.empty()) return false;
  if (!pkg.starts_with(prefix)) return false;
  return pkg.size() == prefix.size() || pkg[prefix.size()] == '.';
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

// ---- checked numeric parsing -----------------------------------------------

namespace {

/// Shared preamble: a NUL-terminated copy (strtoull/strtod need one) and
/// the checks both parsers share. Returns an error message or "".
std::string check_numeric_prefix(std::string_view text, bool allow_sign) {
  if (text.empty()) return "empty value";
  const unsigned char first = static_cast<unsigned char>(text.front());
  if (std::isspace(first) != 0) return "leading whitespace";
  if (!allow_sign && (first == '-' || first == '+')) {
    return "sign not allowed";  // strtoull would silently wrap "-1"
  }
  return {};
}

}  // namespace

Result<std::uint64_t> parse_u64(std::string_view text) {
  const auto fail = [&](const std::string& why) {
    return Result<std::uint64_t>::failure("'" + std::string(text) +
                                          "': " + why);
  };
  if (auto why = check_numeric_prefix(text, /*allow_sign=*/false);
      !why.empty()) {
    return fail(why);
  }
  const std::string copy(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  if (end == copy.c_str()) return fail("not a number");
  if (*end != '\0') return fail("trailing garbage");
  if (errno == ERANGE) return fail("out of range");
  return static_cast<std::uint64_t>(value);
}

Result<double> parse_double(std::string_view text) {
  const auto fail = [&](const std::string& why) {
    return Result<double>::failure("'" + std::string(text) + "': " + why);
  };
  if (auto why = check_numeric_prefix(text, /*allow_sign=*/true);
      !why.empty()) {
    return fail(why);
  }
  const std::string copy(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str()) return fail("not a number");
  if (*end != '\0') return fail("trailing garbage");
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return fail("out of range");
  }
  if (!std::isfinite(value)) return fail("not finite");
  return value;
}

Result<std::vector<std::uint64_t>> parse_u64_list(std::string_view text,
                                                  char delim) {
  std::vector<std::uint64_t> values;
  for (const auto& field : split(text, delim)) {
    if (field.empty()) continue;  // tolerate "1,2," and "1,,2"
    auto value = parse_u64(field);
    if (!value.ok()) {
      return Result<std::vector<std::uint64_t>>::failure(value.error());
    }
    values.push_back(value.value());
  }
  if (values.empty()) {
    return Result<std::vector<std::uint64_t>>::failure(
        "'" + std::string(text) + "': no values");
  }
  return values;
}

}  // namespace dydroid::support
