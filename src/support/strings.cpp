#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dydroid::support {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string package_of(std::string_view class_name) {
  const auto pos = class_name.rfind('.');
  if (pos == std::string_view::npos) return "";
  return std::string(class_name.substr(0, pos));
}

bool package_has_prefix(std::string_view pkg, std::string_view prefix) {
  if (prefix.empty()) return false;
  if (!pkg.starts_with(prefix)) return false;
  return pkg.size() == prefix.size() || pkg[prefix.size()] == '.';
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dydroid::support
