#include "support/log.hpp"

#include <cstdio>
#include <string>

namespace dydroid::support {
namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace dydroid::support
