#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace dydroid::support {
namespace {
// The level gate is read on every log call from every worker thread, so it
// is atomic; the sink itself is serialized by a mutex so that concurrent
// pipeline workers cannot interleave partial lines on stderr.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void log_fork_lock() { g_sink_mutex.lock(); }
void log_fork_unlock() { g_sink_mutex.unlock(); }

}  // namespace dydroid::support
