// Blob: a cheap-to-copy, refcounted, immutable byte buffer view — the
// ownership primitive behind the parse-once pipeline (docs/FORMATS.md,
// "Buffer ownership & zero-copy views").
//
// A Blob is (shared owner, offset, length). Copying one is a refcount bump;
// slice() produces an aliasing sub-view that keeps the parent buffer alive
// past the parent Blob's destruction; converting to std::span is free. The
// underlying Bytes are immutable for the Blob's whole lifetime, which is
// what makes a Blob held by a reader a true snapshot: writers replace whole
// buffers (copy-on-write), they never mutate in place.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>

#include "support/bytes.hpp"

namespace dydroid::support {

class Blob {
 public:
  /// Empty view (no owner).
  Blob() = default;

  /// Copy `data` into a fresh refcounted buffer. The only Blob constructor
  /// that duplicates bytes; feeds the `pipeline.bytes_copied` counter.
  static Blob copy_of(std::span<const std::uint8_t> data);
  /// Adopt an already-materialized buffer without copying.
  static Blob take(Bytes&& data);
  /// Copy a string's characters into a fresh buffer.
  static Blob of_string(std::string_view s);

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return owner_ == nullptr
               ? std::span<const std::uint8_t>{}
               : std::span<const std::uint8_t>(owner_->data() + offset_,
                                               size_);
  }
  // NOLINTNEXTLINE(google-explicit-constructor): free view conversion is the
  // point — every span-taking parser/hash/writer accepts a Blob unchanged.
  operator std::span<const std::uint8_t>() const { return span(); }

  [[nodiscard]] const std::uint8_t* data() const { return span().data(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return span()[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size_; }

  /// Aliasing sub-view sharing this Blob's owner: no bytes move, and the
  /// slice keeps the whole backing buffer alive even after every other
  /// reference (including the parent Blob) is gone. Throws ParseError when
  /// the range does not fit.
  [[nodiscard]] Blob slice(std::size_t offset, std::size_t length) const;

  /// The bytes as an owned vector (one copy) — for call sites that must
  /// hand ownership to a mutating consumer.
  [[nodiscard]] Bytes to_bytes() const {
    const auto s = span();
    return Bytes(s.begin(), s.end());
  }

  /// Content equality (not identity): same length and bytes.
  friend bool operator==(const Blob& a, const Blob& b) {
    const auto sa = a.span();
    const auto sb = b.span();
    return sa.size() == sb.size() &&
           std::equal(sa.begin(), sa.end(), sb.begin());
  }
  /// Content equality against any contiguous byte range (Bytes, span…).
  friend bool operator==(const Blob& a, std::span<const std::uint8_t> b) {
    const auto sa = a.span();
    return sa.size() == b.size() && std::equal(sa.begin(), sa.end(), b.begin());
  }

  /// True when both views alias the same backing buffer (used by the
  /// zero-copy tests to prove no hidden copy happened).
  [[nodiscard]] bool shares_buffer_with(const Blob& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

 private:
  Blob(std::shared_ptr<const Bytes> owner, std::size_t offset,
       std::size_t size)
      : owner_(std::move(owner)), offset_(offset), size_(size) {}

  std::shared_ptr<const Bytes> owner_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dydroid::support
