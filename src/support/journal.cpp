#include "support/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

#if defined(_WIN32)
#error "support::Journal requires a POSIX platform"
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace dydroid::support {

namespace {

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// Little-endian frame header: u32 payload length, u32 CRC-32.
void encode_frame_header(std::uint8_t (&header)[kJournalFrameOverhead],
                         std::uint32_t len, std::uint32_t crc) {
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
    header[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

}  // namespace

Result<JournalWriter> JournalWriter::open(const std::string& path,
                                          JournalWriterOptions options) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (options.truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Result<JournalWriter>::failure(
        errno_message("journal: cannot open", path));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    // Fresh (or truncated) journal: stamp the configured magic.
    if (!write_fully(fd, options.magic.data(), options.magic.size())) {
      const std::string message =
          errno_message("journal: cannot write header to", path);
      ::close(fd);
      return Result<JournalWriter>::failure(message);
    }
  } else {
    // Existing journal (resume): verify the magic so we never append
    // records to a file belonging to a different frame-layer client (or
    // to something that is not a journal at all).
    std::ifstream in(path, std::ios::binary);
    std::array<char, 8> magic{};
    in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
    const bool good =
        in.gcount() == static_cast<std::streamsize>(magic.size()) &&
        std::memcmp(magic.data(), options.magic.data(), magic.size()) == 0;
    if (!good) {
      ::close(fd);
      return Result<JournalWriter>::failure(
          "journal: " + path + " exists but is not a journal (bad magic)");
    }
  }
  return JournalWriter(fd, path, options);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      options_(other.options_),
      appended_(other.appended_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    (void)seal();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    options_ = other.options_;
    appended_ = other.appended_;
  }
  return *this;
}

JournalWriter::~JournalWriter() { (void)seal(); }

Status JournalWriter::append(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) {
    return Status::failure("journal: append on sealed journal " + path_);
  }
  std::uint8_t header[kJournalFrameOverhead];
  encode_frame_header(header, static_cast<std::uint32_t>(payload.size()),
                      crc32(payload));

  if (fault_fire(options_.fault_site)) {
    // Simulate the write dying halfway: leave a genuinely torn frame on
    // disk (the exact artifact of a crash mid-append) and fail loudly.
    // The reader's torn-tail recovery drops it; the app simply re-runs on
    // resume (journal) or recomputes on the next run (cache).
    const std::size_t half = (sizeof(header) + payload.size()) / 2;
    if (half <= sizeof(header)) {
      (void)write_fully(fd_, header, half);
    } else {
      (void)writev_fully(fd_, header, sizeof(header), payload.data(),
                         half - sizeof(header));
    }
    return Status::failure(fault_message(options_.fault_site));
  }

  // One writev, no frame buffer: with O_APPEND the kernel serializes the
  // whole vector at the end of the file, so concurrent appenders (already
  // mutex-guarded by the runner) and crash recovery both see whole or
  // cleanly torn frames. The write-only latency (excluding encode and lock
  // wait, which the runner's "journal"/"append" span covers) feeds the
  // journal.append_write histogram when metrics are on.
  const Stopwatch write_clock;
  if (!writev_fully(fd_, header, sizeof(header), payload.data(),
                    payload.size())) {
    return Status::failure(errno_message("journal: append failed on", path_));
  }
  ++appended_;
  if (metrics_enabled()) {
    observe_us("journal.append_write",
               static_cast<std::uint64_t>(write_clock.elapsed_ms() * 1000.0));
    count("journal.appends");
  }
  if (options_.fsync_each_record) return sync();
  return {};
}

Status JournalWriter::sync() {
  if (fd_ < 0) return Status::failure("journal: sync on sealed journal");
  if (::fsync(fd_) != 0) {
    return Status::failure(errno_message("journal: fsync failed on", path_));
  }
  return {};
}

Status JournalWriter::seal() {
  if (fd_ < 0) return {};
  Status status;
  if (::fsync(fd_) != 0) {
    status = Status::failure(errno_message("journal: fsync failed on", path_));
  }
  ::close(fd_);
  fd_ = -1;
  return status;
}

Result<JournalReadResult> parse_journal(std::span<const std::uint8_t> data,
                                        const std::array<std::uint8_t, 8>& magic) {
  JournalReadResult result;
  if (data.empty()) return result;  // a fresh, never-written journal
  if (data.size() < magic.size() ||
      std::memcmp(data.data(), magic.data(), magic.size()) != 0) {
    return Result<JournalReadResult>::failure(
        "journal: bad magic (not a journal file)");
  }
  std::size_t pos = magic.size();
  result.bytes_recovered = pos;
  while (pos < data.size()) {
    // Frame header: len + crc. A short header is a torn tail.
    if (data.size() - pos < kJournalFrameOverhead) break;
    ByteReader header(data.subspan(pos, kJournalFrameOverhead));
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    // A length running past EOF is either a torn payload or a bit-flipped
    // length field; either way the frame chain is untrustworthy from here.
    if (len > data.size() - pos - kJournalFrameOverhead) break;
    const auto payload = data.subspan(pos + kJournalFrameOverhead, len);
    if (crc32(payload) != crc) break;  // bit flip in len, crc or payload
    result.records.emplace_back(payload.begin(), payload.end());
    pos += kJournalFrameOverhead + len;
    result.bytes_recovered = pos;
  }
  result.bytes_discarded = data.size() - result.bytes_recovered;
  return result;
}

void encode_frame(ByteWriter& w, std::span<const std::uint8_t> payload) {
  std::uint8_t header[kJournalFrameOverhead];
  encode_frame_header(header, static_cast<std::uint32_t>(payload.size()),
                      crc32(payload));
  w.raw(header);
  w.raw(payload);
}

Status truncate_journal(const std::string& path, std::size_t bytes_recovered) {
  const ssize_t truncated = retry_eintr([&] {
    return static_cast<ssize_t>(
        ::truncate(path.c_str(), static_cast<off_t>(bytes_recovered)));
  });
  if (truncated != 0) {
    return Status::failure(errno_message("journal: cannot truncate", path));
  }
  // Make the chop durable before anyone appends after it: fsync the file
  // (the new, shorter length) and its parent directory. Without the
  // directory fsync the metadata swap can vanish after power loss, and a
  // later reader would walk straight back into the damaged tail.
  const int fd = static_cast<int>(retry_eintr([&] {
    return static_cast<ssize_t>(::open(path.c_str(), O_RDONLY));
  }));
  if (fd >= 0) {
    (void)retry_eintr([&] { return static_cast<ssize_t>(::fsync(fd)); });
    ::close(fd);
  }
  if (const Status synced = fsync_parent_dir(path); !synced.ok()) {
    return synced;
  }
  return {};
}

Bytes encode_shard_meta(const ShardMeta& meta) {
  ByteWriter w;
  w.u8(kShardMetaTag);
  w.u8(kShardMetaVersion);
  w.u32(meta.shard_index);
  w.u32(meta.shard_count);
  w.u64(meta.seed_base);
  w.u64(meta.corpus_size);
  w.u8(meta.outcome_codec_version);
  w.raw(meta.config_fingerprint);
  return w.take();
}

bool is_shard_meta(std::span<const std::uint8_t> payload) {
  return !payload.empty() && payload.front() == kShardMetaTag;
}

ShardMeta decode_shard_meta(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  if (r.u8() != kShardMetaTag) {
    throw ParseError("shard meta: bad tag (not a shard-metadata record)");
  }
  const std::uint8_t version = r.u8();
  if (version != kShardMetaVersion) {
    throw ParseError("shard meta: unsupported version " +
                     std::to_string(version));
  }
  ShardMeta meta;
  meta.shard_index = r.u32();
  meta.shard_count = r.u32();
  meta.seed_base = r.u64();
  meta.corpus_size = r.u64();
  meta.outcome_codec_version = r.u8();
  const Bytes fp = r.raw(meta.config_fingerprint.size());
  std::copy(fp.begin(), fp.end(), meta.config_fingerprint.begin());
  if (!r.at_end()) {
    throw ParseError("shard meta: trailing bytes after fingerprint");
  }
  if (meta.shard_count == 0) {
    throw ParseError("shard meta: shard count must be >= 1");
  }
  if (meta.shard_index >= meta.shard_count) {
    throw ParseError(
        "shard meta: shard index " + std::to_string(meta.shard_index) +
        " out of range for " + std::to_string(meta.shard_count) + " shard(s)");
  }
  return meta;
}

Result<JournalReadResult> read_journal(const std::string& path,
                                       const std::array<std::uint8_t, 8>& magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Result<JournalReadResult>::failure("journal: cannot open " + path);
  }
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_journal(data, magic);
}

}  // namespace dydroid::support
