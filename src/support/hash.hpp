// Hashes used across the stack, by strength class:
//   * CRC-32         — error *detection* (SimApk file table, journal and
//                      cache frames). Catches bit flips, not adversaries.
//   * FNV-1a (64)    — cheap structural fingerprints for display and
//                      non-identity bucketing only. 64 bits of non-crypto
//                      mixing collide under birthday pressure (a corpus of
//                      2^32 binaries expects a collision) and collisions
//                      are craftable, so NOTHING that decides identity —
//                      cache keys, dedup tables, signatures-as-identity —
//                      may bottom out here.
//   * SHA-256        — content identity. The result cache and the
//                      unique-binary dedup table (docs/CACHE.md) key on it,
//                      the way the paper dedups 58,739 apps' payloads by
//                      content hash before analyzing each unique binary
//                      once.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace dydroid::support {

/// 64-bit FNV-1a over a byte span.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a64(std::string_view s);
/// Combine two 64-bit hashes (boost::hash_combine style).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// CRC-32 (IEEE 802.3 polynomial), used by the SimApk file table.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// ---- SHA-256 (FIPS 180-4) --------------------------------------------------

/// A SHA-256 digest: the content-identity primitive behind the result
/// cache and the corpus-wide binary dedup table. Totally ordered and
/// hashable so it can key maps directly.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lowercase hex (64 chars), the on-report spelling.
  [[nodiscard]] std::string hex() const;
  /// First 8 bytes as a u64 (big-endian, like the hex prefix reads) — for
  /// cheap bucketing where the full digest is overkill. NOT an identity.
  [[nodiscard]] std::uint64_t prefix64() const;

  friend bool operator==(const Sha256Digest&, const Sha256Digest&) = default;
  friend auto operator<=>(const Sha256Digest&, const Sha256Digest&) = default;
};

/// Incremental SHA-256: update() in any chunking, then digest(). Verified
/// against the NIST FIPS 180-4 test vectors (tests/support_test.cpp).
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);
  /// Finalize and return the digest. The hasher must not be updated again.
  [[nodiscard]] Sha256Digest digest();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// One-shot SHA-256 of a byte span (Blob converts implicitly).
[[nodiscard]] Sha256Digest sha256(std::span<const std::uint8_t> data);
/// One-shot SHA-256 of a string's characters.
[[nodiscard]] Sha256Digest sha256(std::string_view s);

/// std::hash-compatible functor so Sha256Digest can key unordered maps
/// (the digest is already uniform; take the leading bytes).
struct Sha256DigestHash {
  std::size_t operator()(const Sha256Digest& d) const {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | d.bytes[i];
    }
    return h;
  }
};

}  // namespace dydroid::support
