// Hashes used for container checksums (CRC32), signatures and structural
// fingerprints (FNV-1a).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace dydroid::support {

/// 64-bit FNV-1a over a byte span.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a64(std::string_view s);
/// Combine two 64-bit hashes (boost::hash_combine style).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// CRC-32 (IEEE 802.3 polynomial), used by the SimApk file table.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace dydroid::support
