// Per-stage tracing & metrics (docs/OBSERVABILITY.md).
//
// DyDroid is a *measurement* system: a corpus run that only reports one
// wall_ms per app cannot say which pipeline stage, which fault retry or
// which journal append dominates. This header provides the observability
// layer the ROADMAP's perf work hangs off:
//
//   * Span / TRACE_SPAN — RAII spans recording begin/end on the monotonic
//     clock, tagged with the ambient (app index, attempt, worker) context
//     and nesting depth, buffered in lock-free worker-local ring buffers
//     and merged in a deterministic order at run end.
//   * count / observe_us — named counters and fixed-bucket log-scale
//     histograms (per-stage latency, retries, fault fires, journal append
//     bytes/latency). Every finished span also feeds the histogram of its
//     own "<cat>.<name>".
//   * MetricsSnapshot — a point-in-time copy with p50/p95/max estimators,
//     rendered as the per-stage latency table, the `metrics` section of
//     BENCH_corpus.json and the CLI `--metrics` output.
//   * trace_write_chrome_json — Chrome `trace_event` JSON ("X" complete
//     events) loadable in chrome://tracing or Perfetto.
//
// Cost model: both facilities are **off by default**. A disabled Span
// constructor is a single relaxed atomic load and nothing else — no clock
// read, no buffer touch (the ≤1% overhead-off budget is asserted by the
// tier-2 overhead test and measured in BENCH_corpus.json). Instrumentation
// never feeds back into analysis results: reports are byte-identical with
// tracing on or off at any worker count (tested).
//
// Thread-safety: events land in a per-thread ring buffer (registered once
// per thread under a mutex, then owner-only writes); counters/histograms
// are relaxed atomics. trace_collect()/metrics_snapshot() may run
// concurrently with writers but are meant to be called after the worker
// pool quiesces — the runner collects once, after join.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace dydroid::support {

// ---- enable flags ----------------------------------------------------------

inline constexpr std::uint8_t kTraceBit = 0x1;
inline constexpr std::uint8_t kMetricsBit = 0x2;

namespace trace_detail {
/// Fused tracing/metrics enable byte. One relaxed load decides whether a
/// span does any work at all — this is the entire disabled-path cost.
extern std::atomic<std::uint8_t> g_flags;
}  // namespace trace_detail

[[nodiscard]] inline std::uint8_t instrumentation_flags() {
  return trace_detail::g_flags.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool trace_enabled() {
  return (instrumentation_flags() & kTraceBit) != 0;
}
[[nodiscard]] inline bool metrics_enabled() {
  return (instrumentation_flags() & kMetricsBit) != 0;
}

/// Enable/disable span collection. Enabling (re)arms the collector:
/// existing buffered events are cleared and the trace epoch restarts.
void set_trace_enabled(bool on);
/// Enable/disable counters + histograms. Enabling does NOT reset existing
/// values; call metrics_reset() for a fresh window.
void set_metrics_enabled(bool on);

// ---- spans -----------------------------------------------------------------

/// Sentinel app index for spans recorded outside any per-app context.
inline constexpr std::uint32_t kTraceNoApp = 0xFFFFFFFFu;

/// One finished span. Timestamps are nanoseconds on the monotonic clock,
/// relative to the trace epoch (the last set_trace_enabled(true)).
struct TraceEvent {
  std::uint64_t begin_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string_view cat;   // "stage", "phase", "runner", "journal", ...
  std::string_view name;  // "static", "fuzz", "attempt", "append", ...
  std::uint32_t app = kTraceNoApp;  // corpus index
  std::uint32_t attempt = 0;        // retry ordinal
  std::uint32_t worker = 0;         // driver worker id
  std::uint32_t depth = 0;          // nesting depth at span open
};

/// Ambient per-thread span context. The corpus runner installs one scope
/// per (app, attempt); spans opened underneath inherit its tags, so deep
/// call sites (stages, the journal) never need the app index plumbed in.
class TraceContextScope {
 public:
  TraceContextScope(std::uint32_t app, std::uint32_t attempt,
                    std::uint32_t worker);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint32_t prev_app_;
  std::uint32_t prev_attempt_;
  std::uint32_t prev_worker_;
};

/// RAII span. `cat` and `name` must outlive the trace (string literals or
/// other static storage — stage names qualify). When both facilities are
/// disabled, construction is one relaxed atomic load and destruction a
/// single branch.
class Span {
 public:
  Span(std::string_view cat, std::string_view name) : flags_(instrumentation_flags()) {
    if (flags_ == 0) return;
    open(cat, name);
  }
  ~Span() {
    if (flags_ != 0) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(std::string_view cat, std::string_view name);  // cold path
  void close();                                            // cold path

  std::uint8_t flags_;
  std::uint64_t begin_ns_ = 0;
  std::string_view cat_;
  std::string_view name_;
};

#define DYDROID_TRACE_CONCAT_(a, b) a##b
#define DYDROID_TRACE_CONCAT(a, b) DYDROID_TRACE_CONCAT_(a, b)
/// Open a span for the rest of the enclosing scope:
///   TRACE_SPAN("stage", "unpack");
#define TRACE_SPAN(cat, name)                                      \
  const ::dydroid::support::Span DYDROID_TRACE_CONCAT(trace_span_, \
                                                      __LINE__)(cat, name)

/// Number of events each worker-local ring buffer holds before the oldest
/// are overwritten (drops are counted, never blocking).
inline constexpr std::size_t kDefaultTraceRingCapacity = 1u << 16;

/// Clear all buffered events, restart the trace epoch and (re)size the
/// per-thread rings. Implied by set_trace_enabled(true) with the default
/// capacity. Must not run concurrently with active spans.
void trace_reset(std::size_t ring_capacity = kDefaultTraceRingCapacity);

/// Merge every worker-local buffer into one deterministically-ordered
/// vector: sorted by (begin, app, attempt, worker, depth, cat, name, dur),
/// independent of thread registration or scheduling order.
[[nodiscard]] std::vector<TraceEvent> trace_collect();

/// Events dropped to ring-buffer overwrites since the last reset.
[[nodiscard]] std::uint64_t trace_dropped();

/// Render events as Chrome trace_event JSON ({"traceEvents":[...]}, "X"
/// complete events, ts/dur in microseconds), loadable in chrome://tracing
/// and Perfetto.
[[nodiscard]] std::string trace_to_chrome_json(
    std::span<const TraceEvent> events);

/// trace_collect() + trace_to_chrome_json() + write to `path`.
Status trace_write_chrome_json(const std::string& path);

// ---- metrics ---------------------------------------------------------------

/// Log-scale histogram buckets over microseconds: bucket 0 holds value 0,
/// bucket b>=1 holds [2^(b-1), 2^b) us. 40 buckets reach ~76 hours.
inline constexpr std::size_t kHistogramBuckets = 40;

/// Bucket index for a value in microseconds.
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t us);
/// Inclusive lower bound of a bucket, in microseconds.
[[nodiscard]] std::uint64_t histogram_bucket_lo(std::size_t bucket);

/// Add `delta` to the named counter. No-op unless metrics are enabled.
void count(std::string_view name, std::uint64_t delta = 1);

/// Record one microsecond observation into the named histogram. No-op
/// unless metrics are enabled.
void observe_us(std::string_view name, std::uint64_t us);

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t observations = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean_us() const {
    return observations > 0
               ? static_cast<double>(sum_us) / static_cast<double>(observations)
               : 0.0;
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing log bucket; clamped to max_us.
  [[nodiscard]] double quantile_us(double q) const;
};

/// Point-in-time copy of every registered counter and histogram, sorted by
/// name (deterministic regardless of registration order).
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] const CounterValue* counter(std::string_view name) const;
  [[nodiscard]] const HistogramValue* histogram(std::string_view name) const;
};

[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Zero every counter and histogram (the registry of names survives).
void metrics_reset();

/// Render the per-stage latency table ("name count p50 p95 max total") for
/// every histogram whose name starts with one of the given prefixes; all
/// histograms when `prefixes` is empty.
[[nodiscard]] std::string format_latency_table(
    const MetricsSnapshot& snapshot,
    std::span<const std::string_view> prefixes = {});

}  // namespace dydroid::support
