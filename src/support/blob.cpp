#include "support/blob.hpp"

#include "support/error.hpp"
#include "support/trace.hpp"

namespace dydroid::support {

Blob Blob::copy_of(std::span<const std::uint8_t> data) {
  count("pipeline.bytes_copied", data.size());
  return Blob(std::make_shared<const Bytes>(data.begin(), data.end()), 0,
              data.size());
}

Blob Blob::take(Bytes&& data) {
  const auto size = data.size();
  return Blob(std::make_shared<const Bytes>(std::move(data)), 0, size);
}

Blob Blob::of_string(std::string_view s) {
  return take(::dydroid::support::to_bytes(s));
}

Blob Blob::slice(std::size_t offset, std::size_t length) const {
  if (offset > size_ || length > size_ - offset) {
    throw ParseError("blob: slice out of range");
  }
  return Blob(owner_, offset_ + offset, length);
}

}  // namespace dydroid::support
