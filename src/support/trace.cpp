#include "support/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>

namespace dydroid::support {

namespace trace_detail {
std::atomic<std::uint8_t> g_flags{0};
}  // namespace trace_detail

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now().time_since_epoch())
          .count());
}

// ---- worker-local ring buffers ---------------------------------------------

/// One thread's span buffer. Owner-only writes during a run (lock-free hot
/// path); the registry mutex only guards registration and collection.
struct TraceBuffer {
  std::vector<TraceEvent> ring;
  std::size_t head = 0;          // next write position
  std::size_t size = 0;          // events currently held (<= ring.size())
  std::uint64_t dropped = 0;     // overwritten events since last reset
};

/// Registry of every thread's buffer, kept alive for the process lifetime
/// so the cached thread_local pointers can never dangle. trace_reset()
/// clears contents, never deallocates entries.
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::size_t ring_capacity = kDefaultTraceRingCapacity;
  std::uint64_t epoch_ns = 0;
};

TraceRegistry& registry() {
  static TraceRegistry* instance = new TraceRegistry();  // never destroyed
  return *instance;
}

thread_local TraceBuffer* tl_buffer = nullptr;

TraceBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    auto& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.push_back(std::make_unique<TraceBuffer>());
    tl_buffer = reg.buffers.back().get();
    tl_buffer->ring.resize(reg.ring_capacity);
  }
  return *tl_buffer;
}

// ---- ambient span context --------------------------------------------------

struct ThreadTraceContext {
  std::uint32_t app = kTraceNoApp;
  std::uint32_t attempt = 0;
  std::uint32_t worker = 0;
  std::uint32_t depth = 0;
};

thread_local ThreadTraceContext tl_context;

// ---- metrics registry ------------------------------------------------------

inline constexpr std::size_t kMaxCounters = 64;
inline constexpr std::size_t kMaxHistograms = 64;

struct CounterSlot {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct HistogramSlot {
  std::string name;
  std::atomic<std::uint64_t> observations{0};
  std::atomic<std::uint64_t> sum_us{0};
  std::atomic<std::uint64_t> max_us{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// Fixed-capacity name→slot registries. Lookup is a linear scan over the
/// published prefix (acquire on `used`); creation appends under the mutex
/// and publishes with release, so readers never see a half-built slot.
/// Linear scan over <=64 short names costs nanoseconds and only ever runs
/// with metrics enabled.
template <typename Slot, std::size_t Capacity>
struct SlotTable {
  std::mutex mutex;
  std::array<Slot, Capacity> slots;
  std::atomic<std::size_t> used{0};

  Slot* find_or_create(std::string_view name) {
    const std::size_t n = used.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (slots[i].name == name) return &slots[i];
    }
    const std::lock_guard<std::mutex> lock(mutex);
    const std::size_t m = used.load(std::memory_order_relaxed);
    for (std::size_t i = n; i < m; ++i) {
      if (slots[i].name == name) return &slots[i];
    }
    if (m >= Capacity) return nullptr;  // registry full: drop silently
    slots[m].name = std::string(name);
    used.store(m + 1, std::memory_order_release);
    return &slots[m];
  }
};

struct MetricsState {
  SlotTable<CounterSlot, kMaxCounters> counters;
  SlotTable<HistogramSlot, kMaxHistograms> histograms;
};

MetricsState& metrics_state() {
  static MetricsState* instance = new MetricsState();  // never destroyed
  return *instance;
}

void record_histogram(HistogramSlot& slot, std::uint64_t us) {
  slot.observations.fetch_add(1, std::memory_order_relaxed);
  slot.sum_us.fetch_add(us, std::memory_order_relaxed);
  slot.buckets[histogram_bucket(us)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = slot.max_us.load(std::memory_order_relaxed);
  while (us > seen && !slot.max_us.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

// ---- span-slot cache -------------------------------------------------------

/// Span categories and names are string literals at fixed addresses, so a
/// finished span can skip the "<cat>.<name>" join and the registry's linear
/// scan almost always: a small thread-local direct-mapped table keyed on the
/// (cat, name) pointer identity remembers each span's histogram slot. Slots
/// live for the process lifetime and metrics_reset() only zeroes their
/// values, so a cached pointer can never dangle. Keys compare data pointer
/// AND length — linkers overlap literal tails, so a bare pointer match
/// could alias two different names. This cache is span-only: count() and
/// observe_us() may be handed dynamically built names whose addresses are
/// reused, and must keep scanning by content.
struct SpanSlotEntry {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::size_t cat_size = 0;
  std::size_t name_size = 0;
  HistogramSlot* slot = nullptr;
};

inline constexpr std::size_t kSpanSlotCacheSize = 64;  // power of two

thread_local std::array<SpanSlotEntry, kSpanSlotCacheSize> tl_span_slots;

HistogramSlot* span_slot(std::string_view cat, std::string_view name);

/// Record a finished span's duration into the "<cat>.<name>" histogram.
void observe_span(std::string_view cat, std::string_view name,
                  std::uint64_t us) {
  if (HistogramSlot* slot = span_slot(cat, name)) {
    record_histogram(*slot, us);
  }
}

HistogramSlot* span_slot(std::string_view cat, std::string_view name) {
  const auto mix = [](const char* p) {
    return static_cast<std::size_t>(
        (reinterpret_cast<std::uintptr_t>(p) * 0x9E3779B97F4A7C15ull) >> 32);
  };
  SpanSlotEntry& entry =
      tl_span_slots[(mix(cat.data()) ^ (mix(name.data()) << 1)) &
                    (kSpanSlotCacheSize - 1)];
  if (entry.cat == cat.data() && entry.cat_size == cat.size() &&
      entry.name == name.data() && entry.name_size == name.size()) {
    return entry.slot;
  }
  // Miss: build the joined name in a small stack buffer (no allocation)
  // and resolve it by content, then remember the slot for this identity.
  char joined[96];
  const std::size_t cat_n = std::min(cat.size(), sizeof(joined) / 2);
  const std::size_t name_n =
      std::min(name.size(), sizeof(joined) - cat_n - 1);
  std::copy_n(cat.data(), cat_n, joined);
  joined[cat_n] = '.';
  std::copy_n(name.data(), name_n, joined + cat_n + 1);
  HistogramSlot* slot = metrics_state().histograms.find_or_create(
      std::string_view(joined, cat_n + 1 + name_n));
  if (slot != nullptr) {
    entry = {cat.data(), name.data(), cat.size(), name.size(), slot};
  }
  return slot;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

// ---- enable flags ----------------------------------------------------------

void set_trace_enabled(bool on) {
  auto& flags = trace_detail::g_flags;
  if (on) {
    trace_reset(registry().ring_capacity);
    flags.fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    flags.fetch_and(static_cast<std::uint8_t>(~kTraceBit),
                    std::memory_order_relaxed);
  }
}

void set_metrics_enabled(bool on) {
  auto& flags = trace_detail::g_flags;
  if (on) {
    flags.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    flags.fetch_and(static_cast<std::uint8_t>(~kMetricsBit),
                    std::memory_order_relaxed);
  }
}

// ---- spans -----------------------------------------------------------------

TraceContextScope::TraceContextScope(std::uint32_t app, std::uint32_t attempt,
                                     std::uint32_t worker)
    : prev_app_(tl_context.app),
      prev_attempt_(tl_context.attempt),
      prev_worker_(tl_context.worker) {
  tl_context.app = app;
  tl_context.attempt = attempt;
  tl_context.worker = worker;
}

TraceContextScope::~TraceContextScope() {
  tl_context.app = prev_app_;
  tl_context.attempt = prev_attempt_;
  tl_context.worker = prev_worker_;
}

void Span::open(std::string_view cat, std::string_view name) {
  cat_ = cat;
  name_ = name;
  begin_ns_ = now_ns();
  ++tl_context.depth;
}

void Span::close() {
  const std::uint64_t end_ns = now_ns();
  --tl_context.depth;
  if ((flags_ & kMetricsBit) != 0) {
    observe_span(cat_, name_, (end_ns - begin_ns_) / 1000);
  }
  if ((flags_ & kTraceBit) == 0) return;
  TraceBuffer& buffer = local_buffer();
  if (buffer.ring.empty()) return;
  const std::uint64_t epoch = registry().epoch_ns;
  TraceEvent& event = buffer.ring[buffer.head];
  event.begin_ns = begin_ns_ > epoch ? begin_ns_ - epoch : 0;
  event.dur_ns = end_ns - begin_ns_;
  event.cat = cat_;
  event.name = name_;
  event.app = tl_context.app;
  event.attempt = tl_context.attempt;
  event.worker = tl_context.worker;
  event.depth = tl_context.depth;
  buffer.head = (buffer.head + 1) % buffer.ring.size();
  if (buffer.size < buffer.ring.size()) {
    ++buffer.size;
  } else {
    ++buffer.dropped;  // ring full: the oldest event was overwritten
  }
}

void trace_reset(std::size_t ring_capacity) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.ring_capacity = ring_capacity > 0 ? ring_capacity : 1;
  reg.epoch_ns = now_ns();
  for (auto& buffer : reg.buffers) {
    buffer->ring.assign(reg.ring_capacity, TraceEvent{});
    buffer->head = 0;
    buffer->size = 0;
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> trace_collect() {
  auto& reg = registry();
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      const std::size_t n = buffer->size;
      const std::size_t cap = buffer->ring.size();
      if (n == 0 || cap == 0) continue;
      // Oldest surviving event first.
      const std::size_t start = (buffer->head + cap - n) % cap;
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(buffer->ring[(start + i) % cap]);
      }
    }
  }
  // Deterministic merge order: independent of which thread owned which
  // buffer and of registration order.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
                     if (a.app != b.app) return a.app < b.app;
                     if (a.attempt != b.attempt) return a.attempt < b.attempt;
                     if (a.worker != b.worker) return a.worker < b.worker;
                     if (a.depth != b.depth) return a.depth < b.depth;
                     if (a.cat != b.cat) return a.cat < b.cat;
                     if (a.name != b.name) return a.name < b.name;
                     return a.dur_ns < b.dur_ns;
                   });
  return out;
}

std::uint64_t trace_dropped() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& buffer : reg.buffers) dropped += buffer->dropped;
  return dropped;
}

std::string trace_to_chrome_json(std::span<const TraceEvent> events) {
  std::string out;
  out.reserve(128 + events.size() * 120);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", event.worker);
    out += buf;
    out += ",\"cat\":\"";
    append_json_escaped(out, event.cat);
    out += "\",\"name\":\"";
    append_json_escaped(out, event.name);
    // ts/dur in microseconds (Chrome's unit), 3 decimals keeps ns precision.
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(event.begin_ns) / 1000.0,
                  static_cast<double>(event.dur_ns) / 1000.0);
    out += buf;
    out += ",\"args\":{";
    if (event.app != kTraceNoApp) {
      std::snprintf(buf, sizeof(buf), "\"app\":%u,\"attempt\":%u,",
                    event.app, event.attempt);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "\"depth\":%u}}", event.depth);
    out += buf;
  }
  out += "]}\n";
  return out;
}

Status trace_write_chrome_json(const std::string& path) {
  const auto events = trace_collect();
  const std::string json = trace_to_chrome_json(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::failure("trace: cannot write " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::failure("trace: short write to " + path);
  }
  return {};
}

// ---- metrics ---------------------------------------------------------------

std::size_t histogram_bucket(std::uint64_t us) {
  if (us == 0) return 0;
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(us));
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

std::uint64_t histogram_bucket_lo(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void count(std::string_view name, std::uint64_t delta) {
  if (!metrics_enabled()) return;
  if (CounterSlot* slot = metrics_state().counters.find_or_create(name)) {
    slot->value.fetch_add(delta, std::memory_order_relaxed);
  }
}

void observe_us(std::string_view name, std::uint64_t us) {
  if (!metrics_enabled()) return;
  if (HistogramSlot* slot = metrics_state().histograms.find_or_create(name)) {
    record_histogram(*slot, us);
  }
}

double HistogramValue::quantile_us(double q) const {
  if (observations == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(observations - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) > rank) {
      // Interpolate linearly inside [lo, hi) and clamp to the real max.
      const double lo = static_cast<double>(histogram_bucket_lo(b));
      const double hi =
          b == 0 ? 1.0 : static_cast<double>(histogram_bucket_lo(b) * 2);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return std::min(lo + frac * (hi - lo), static_cast<double>(max_us));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_us);
}

const CounterValue* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot metrics_snapshot() {
  auto& state = metrics_state();
  MetricsSnapshot snapshot;
  const std::size_t nc = state.counters.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nc; ++i) {
    const auto& slot = state.counters.slots[i];
    snapshot.counters.push_back(
        {slot.name, slot.value.load(std::memory_order_relaxed)});
  }
  const std::size_t nh = state.histograms.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nh; ++i) {
    const auto& slot = state.histograms.slots[i];
    HistogramValue value;
    value.name = slot.name;
    value.observations = slot.observations.load(std::memory_order_relaxed);
    value.sum_us = slot.sum_us.load(std::memory_order_relaxed);
    value.max_us = slot.max_us.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      value.buckets[b] = slot.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.histograms.push_back(std::move(value));
  }
  std::sort(snapshot.counters.begin(), snapshot.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snapshot;
}

void metrics_reset() {
  auto& state = metrics_state();
  const std::size_t nc = state.counters.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nc; ++i) {
    state.counters.slots[i].value.store(0, std::memory_order_relaxed);
  }
  const std::size_t nh = state.histograms.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nh; ++i) {
    auto& slot = state.histograms.slots[i];
    slot.observations.store(0, std::memory_order_relaxed);
    slot.sum_us.store(0, std::memory_order_relaxed);
    slot.max_us.store(0, std::memory_order_relaxed);
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

std::string format_latency_table(const MetricsSnapshot& snapshot,
                                 std::span<const std::string_view> prefixes) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "  %-24s %10s %9s %9s %9s %11s\n",
                "latency (ms)", "count", "p50", "p95", "max", "total");
  out += line;
  for (const auto& h : snapshot.histograms) {
    bool match = prefixes.empty();
    for (const auto& prefix : prefixes) {
      if (h.name.starts_with(prefix)) {
        match = true;
        break;
      }
    }
    if (!match || h.observations == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-24s %10llu %9.3f %9.3f %9.3f %11.1f\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.observations),
                  h.quantile_us(0.50) / 1000.0, h.quantile_us(0.95) / 1000.0,
                  static_cast<double>(h.max_us) / 1000.0,
                  static_cast<double>(h.sum_us) / 1000.0);
    out += line;
  }
  return out;
}

}  // namespace dydroid::support
