#include "support/subprocess.hpp"

#include <cmath>
#include <csignal>
#include <cstring>
#include <mutex>
#include <new>
#include <utility>

#include "support/io.hpp"
#include "support/log.hpp"

#if defined(_WIN32)
#error "support::Subprocess requires a POSIX platform"
#else
#include <poll.h>
#include <pthread.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dydroid::support {

namespace {

[[noreturn]] void oom_exit() { ::_exit(kOomExitCode); }

}  // namespace

// The supervisor forks from worker threads, so a sibling thread can hold
// the log sink mutex at fork time; the atfork handlers take it across the
// fork so both sides resume with a consistent, unlocked sink. Registered
// once, lazily, on the first spawn.
void subprocess_install_fork_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    ::pthread_atfork(&log_fork_lock, &log_fork_unlock, &log_fork_unlock);
  });
}

void subprocess_child_setup(const SubprocessLimits& limits) {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  rlimit core{0, 0};
  (void)::setrlimit(RLIMIT_CORE, &core);
  if (limits.cpu_time_s > 0) {
    rlimit cpu{limits.cpu_time_s, limits.cpu_time_s};
    (void)::setrlimit(RLIMIT_CPU, &cpu);
  }
  if (limits.max_memory_bytes > 0 && address_space_limit_supported()) {
    rlimit as{static_cast<rlim_t>(limits.max_memory_bytes),
              static_cast<rlim_t>(limits.max_memory_bytes)};
    (void)::setrlimit(RLIMIT_AS, &as);
  }
  std::set_new_handler(&oom_exit);
}

bool address_space_limit_supported() {
  // ASan reserves terabytes of shadow address space and TSan's runtime
  // aborts (instead of returning nullptr) on allocation failure, so under
  // either sanitizer RLIMIT_AS would kill every child at startup or turn
  // clean OOM exits into uncatchable runtime aborts.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

Result<Subprocess> Subprocess::spawn(const std::function<int(int)>& body,
                                     const SubprocessLimits& limits) {
  subprocess_install_fork_handlers();
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return Result<Subprocess>::failure(std::string("sandbox: pipe failed: ") +
                                       std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string message =
        std::string("sandbox: fork failed: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return Result<Subprocess>::failure(message);
  }
  if (pid == 0) {
    // Child. Never returns: the body's result (or a reserved failure code)
    // goes out through _exit so no inherited destructor or stdio flush
    // runs in the forked image.
    ::close(fds[0]);
    subprocess_child_setup(limits);
    int code = kChildExceptionExitCode;
    try {
      code = body(fds[1]);
    } catch (...) {
      code = kChildExceptionExitCode;
    }
    ::_exit(code);
  }
  ::close(fds[1]);
  return Subprocess(static_cast<int>(pid), fds[0], limits.wall_deadline_ms);
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      read_fd_(std::exchange(other.read_fd_, -1)),
      deadline_ms_(other.deadline_ms_),
      clock_(other.clock_) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = std::exchange(other.pid_, -1);
    read_fd_ = std::exchange(other.read_fd_, -1);
    deadline_ms_ = other.deadline_ms_;
    clock_ = other.clock_;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
  if (pid_ > 0) {
    (void)::kill(pid_, SIGKILL);
    int status = 0;
    (void)retry_eintr([&] {
      return static_cast<ssize_t>(::waitpid(pid_, &status, 0));
    });
    pid_ = -1;
  }
}

SubprocessResult Subprocess::wait() {
  SubprocessResult result;
  if (pid_ <= 0) return result;

  // Phase 1: drain the pipe until EOF (the child exiting closes the last
  // write end), killing the child the moment the wall deadline passes.
  // Draining concurrently is what keeps a chatty child from deadlocking
  // against a full pipe buffer, and poll's timeout is what bounds how late
  // a deadline kill can land (never more than one poll quantum).
  bool eof = false;
  while (!eof && read_fd_ >= 0) {
    if (deadline_ms_ > 0.0 && !result.deadline_killed &&
        clock_.elapsed_ms() >= deadline_ms_) {
      (void)::kill(pid_, SIGKILL);
      result.deadline_killed = true;
    }
    int timeout_ms = 100;
    if (deadline_ms_ > 0.0 && !result.deadline_killed) {
      const double remaining = deadline_ms_ - clock_.elapsed_ms();
      timeout_ms = static_cast<int>(
          std::min(100.0, std::max(1.0, std::ceil(remaining))));
    }
    pollfd pfd{read_fd_, POLLIN, 0};
    const int ready = static_cast<int>(retry_eintr(
        [&] { return static_cast<ssize_t>(::poll(&pfd, 1, timeout_ms)); }));
    if (ready < 0) {
      result.output_truncated = true;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check the deadline
    std::uint8_t chunk[4096];
    const ssize_t n =
        retry_eintr([&] { return ::read(read_fd_, chunk, sizeof chunk); });
    if (n < 0) {
      result.output_truncated = true;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    result.output.insert(result.output.end(), chunk, chunk + n);
  }
  ::close(read_fd_);
  read_fd_ = -1;

  // Phase 2: reap. After EOF (or a drain error plus our own SIGKILL above)
  // the child is dead or dying, so this waitpid terminates promptly.
  if (!eof && !result.deadline_killed) {
    // The pipe died without a clean EOF and no deadline fired: make sure
    // the child cannot outlive its supervisor before blocking in waitpid.
    (void)::kill(pid_, SIGKILL);
  }
  int status = 0;
  const ssize_t reaped = retry_eintr(
      [&] { return static_cast<ssize_t>(::waitpid(pid_, &status, 0)); });
  pid_ = -1;
  result.wall_ms = clock_.elapsed_ms();
  if (reaped < 0) return result;  // already reaped elsewhere (never expected)
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

}  // namespace dydroid::support
