#include "support/io.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#if defined(_WIN32)
#error "support::io requires a POSIX platform"
#else
#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

namespace dydroid::support {

namespace {

std::atomic<std::uint64_t> g_dir_fsyncs{0};

}  // namespace

bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = retry_eintr(
        [&] { return ::write(fd, data + written, size - written); });
    if (n < 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool writev_fully(int fd, const std::uint8_t* header, std::size_t header_size,
                  const std::uint8_t* payload, std::size_t payload_size) {
  for (;;) {
    iovec iov[2];
    iov[0].iov_base = const_cast<std::uint8_t*>(header);
    iov[0].iov_len = header_size;
    iov[1].iov_base = const_cast<std::uint8_t*>(payload);
    iov[1].iov_len = payload_size;
    const ssize_t n = retry_eintr([&] { return ::writev(fd, iov, 2); });
    if (n < 0) return false;
    auto written = static_cast<std::size_t>(n);
    if (written >= header_size + payload_size) return true;
    // Short write (rare on regular files, routine on pipes): finish the
    // remainder with plain writes.
    if (written < header_size) {
      header += written;
      header_size -= written;
      continue;
    }
    written -= header_size;
    return write_fully(fd, payload + written, payload_size - written);
  }
}

bool read_to_eof(int fd, Bytes& out) {
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n =
        retry_eintr([&] { return ::read(fd, chunk, sizeof chunk); });
    if (n < 0) return false;
    if (n == 0) return true;  // EOF
    out.insert(out.end(), chunk, chunk + n);
  }
}

ssize_t read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n =
        retry_eintr([&] { return ::read(fd, data + got, size - got); });
    if (n < 0) return got == 0 ? -1 : static_cast<ssize_t>(got);
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

Status fsync_parent_dir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = static_cast<int>(retry_eintr(
      [&] { return static_cast<ssize_t>(::open(parent.c_str(), O_RDONLY)); }));
  if (fd < 0) {
    return Status::failure("io: cannot open directory " + parent.string() +
                           ": " + std::strerror(errno));
  }
  const ssize_t synced =
      retry_eintr([&] { return static_cast<ssize_t>(::fsync(fd)); });
  const int saved_errno = errno;
  ::close(fd);
  if (synced < 0) {
    return Status::failure("io: fsync failed on directory " + parent.string() +
                           ": " + std::strerror(saved_errno));
  }
  g_dir_fsyncs.fetch_add(1, std::memory_order_relaxed);
  return {};
}

std::uint64_t dir_fsyncs() {
  return g_dir_fsyncs.load(std::memory_order_relaxed);
}

}  // namespace dydroid::support
