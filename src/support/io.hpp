// EINTR-safe POSIX I/O helpers (docs/ISOLATION.md, docs/CHECKPOINT.md).
//
// Every raw read(2)/write(2)/writev(2) in the persistence and sandbox
// layers goes through these wrappers instead of hand-rolled retry loops:
// a signal landing mid-syscall (the sandbox supervisor handles SIGCHLD
// timing, the CLI installs SIGINT/SIGTERM handlers) must never turn into
// a spurious short write, a torn journal frame or a dropped pipe byte.
//
// The directory-durability helpers close the other classic hole: an
// atomic rename(2) or truncate(2) is only crash-durable once the *parent
// directory* is fsynced — without it the swap itself can vanish after
// power loss even though both files were individually synced.
#pragma once

#include <sys/types.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <utility>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::support {

/// Retry a syscall-shaped callable (returns a signed count, sets errno)
/// until it stops failing with EINTR. Usage:
///   const ssize_t n = retry_eintr([&] { return ::read(fd, buf, len); });
template <typename F>
auto retry_eintr(F&& call) {
  for (;;) {
    const auto result = call();
    if (result >= 0) return result;
    if (errno != EINTR) return result;
  }
}

/// write(2) the whole buffer, retrying on EINTR and short writes.
bool write_fully(int fd, const std::uint8_t* data, std::size_t size);

/// writev(2) header + payload in one call, retrying on EINTR and short
/// writes. The common case is a single syscall with zero copies.
bool writev_fully(int fd, const std::uint8_t* header, std::size_t header_size,
                  const std::uint8_t* payload, std::size_t payload_size);

/// read(2) until EOF, appending to `out`. Retries on EINTR; returns false
/// on a read error (partial data already appended stays in `out`).
bool read_to_eof(int fd, Bytes& out);

/// read(2) exactly `size` bytes (blocking), retrying on EINTR and short
/// reads. Returns the byte count actually read: `size` on success, less on
/// EOF, -1 on a read error. A clean EOF *between* messages reads as 0.
ssize_t read_exact(int fd, std::uint8_t* data, std::size_t size);

/// fsync(2) the parent directory of `path`, making a rename/truncate/create
/// in that directory durable. Increments the dir_fsyncs() counter (test
/// hook) on success.
Status fsync_parent_dir(const std::string& path);

/// Process-wide count of successful fsync_parent_dir calls. Test hook: the
/// durability suites assert the fsync path is actually exercised by the
/// seal/compaction/truncate flows it guards.
std::uint64_t dir_fsyncs();

}  // namespace dydroid::support
