#include "support/worker_pool.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "support/io.hpp"
#include "support/stopwatch.hpp"

#if defined(_WIN32)
#error "support::PoolWorker requires a POSIX platform"
#else
#include <poll.h>
#include <pthread.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dydroid::support {

namespace {

// Parent-side pipe fds of every live PoolWorker. The mutex is held across
// fork(2) so a new child sees a consistent snapshot and can close the fds
// it would otherwise inherit from earlier workers (see the header: a leaked
// write end keeps a sibling's request pipe open and defeats EOF-driven
// shutdown and death detection).
std::mutex g_pool_fd_mutex;
std::vector<int> g_pool_fds;

void register_pool_fd(int fd) { g_pool_fds.push_back(fd); }

void unregister_pool_fd(int fd) {
  std::lock_guard<std::mutex> lock(g_pool_fd_mutex);
  g_pool_fds.erase(std::remove(g_pool_fds.begin(), g_pool_fds.end(), fd),
                   g_pool_fds.end());
}

/// Write the whole buffer with SIGPIPE suppressed for the calling thread:
/// a worker that died between calls turns the write into a plain EPIPE
/// failure instead of killing the supervisor. The blocked-then-drained
/// pending signal never escapes to the process disposition.
bool write_nosigpipe(int fd, const std::uint8_t* data, std::size_t size) {
  sigset_t pipe_set;
  sigset_t old_set;
  sigemptyset(&pipe_set);
  sigaddset(&pipe_set, SIGPIPE);
  ::pthread_sigmask(SIG_BLOCK, &pipe_set, &old_set);
  const bool ok = write_fully(fd, data, size);
  if (!ok) {
    timespec zero{0, 0};
    (void)::sigtimedwait(&pipe_set, nullptr, &zero);
  }
  ::pthread_sigmask(SIG_SETMASK, &old_set, nullptr);
  return ok;
}

std::uint32_t frame_length(const Bytes& buffer) {
  return static_cast<std::uint32_t>(buffer[8]) |
         (static_cast<std::uint32_t>(buffer[9]) << 8) |
         (static_cast<std::uint32_t>(buffer[10]) << 16) |
         (static_cast<std::uint32_t>(buffer[11]) << 24);
}

}  // namespace

Result<PoolWorker> PoolWorker::spawn(const ServeLoop& serve,
                                     const SubprocessLimits& limits) {
  subprocess_install_fork_handlers();
  std::lock_guard<std::mutex> lock(g_pool_fd_mutex);
  int request[2] = {-1, -1};
  int response[2] = {-1, -1};
  if (::pipe(request) != 0) {
    return Result<PoolWorker>::failure(std::string("pool: pipe failed: ") +
                                       std::strerror(errno));
  }
  if (::pipe(response) != 0) {
    const std::string message =
        std::string("pool: pipe failed: ") + std::strerror(errno);
    ::close(request[0]);
    ::close(request[1]);
    return Result<PoolWorker>::failure(message);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string message =
        std::string("pool: fork failed: ") + std::strerror(errno);
    ::close(request[0]);
    ::close(request[1]);
    ::close(response[0]);
    ::close(response[1]);
    return Result<PoolWorker>::failure(message);
  }
  if (pid == 0) {
    // Child. The registry snapshot is consistent (its mutex is held by the
    // forking thread) and read without locking — the child is
    // single-threaded and never mutates it.
    for (const int fd : g_pool_fds) ::close(fd);
    ::close(request[1]);
    ::close(response[0]);
    subprocess_child_setup(limits);
    std::signal(SIGPIPE, SIG_DFL);
    int code = kChildExceptionExitCode;
    try {
      code = serve(request[0], response[1]);
    } catch (...) {
      code = kChildExceptionExitCode;
    }
    ::_exit(code);
  }
  ::close(request[0]);
  ::close(response[1]);
  register_pool_fd(request[1]);
  register_pool_fd(response[0]);
  return PoolWorker(static_cast<int>(pid), request[1], response[0],
                    limits.wall_deadline_ms);
}

PoolWorker::PoolWorker(PoolWorker&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      request_fd_(std::exchange(other.request_fd_, -1)),
      response_fd_(std::exchange(other.response_fd_, -1)),
      deadline_ms_(other.deadline_ms_),
      served_(other.served_) {}

PoolWorker& PoolWorker::operator=(PoolWorker&& other) noexcept {
  if (this != &other) {
    this->~PoolWorker();
    pid_ = std::exchange(other.pid_, -1);
    request_fd_ = std::exchange(other.request_fd_, -1);
    response_fd_ = std::exchange(other.response_fd_, -1);
    deadline_ms_ = other.deadline_ms_;
    served_ = other.served_;
  }
  return *this;
}

PoolWorker::~PoolWorker() { kill(); }

void PoolWorker::close_pipes() {
  if (request_fd_ >= 0) {
    unregister_pool_fd(request_fd_);
    ::close(request_fd_);
    request_fd_ = -1;
  }
  if (response_fd_ >= 0) {
    unregister_pool_fd(response_fd_);
    ::close(response_fd_);
    response_fd_ = -1;
  }
}

void PoolWorker::reap(PoolRpcResult* result) {
  if (pid_ <= 0) return;
  int status = 0;
  const ssize_t reaped = retry_eintr(
      [&] { return static_cast<ssize_t>(::waitpid(pid_, &status, 0)); });
  pid_ = -1;
  if (result == nullptr || reaped < 0) return;
  if (WIFEXITED(status)) {
    result->exited = true;
    result->exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result->term_signal = WTERMSIG(status);
  }
}

void PoolWorker::kill() {
  close_pipes();
  if (pid_ > 0) {
    (void)::kill(pid_, SIGKILL);
    reap(nullptr);
  }
}

void PoolWorker::shutdown() {
  if (pid_ <= 0) {
    close_pipes();
    return;
  }
  // Closing the request pipe is the shutdown signal: the serve loop reads
  // EOF and _exits(0). Give it half a second, then stop being polite.
  if (request_fd_ >= 0) {
    unregister_pool_fd(request_fd_);
    ::close(request_fd_);
    request_fd_ = -1;
  }
  for (int waited_ms = 0; waited_ms < 500; waited_ms += 5) {
    int status = 0;
    const ssize_t reaped = retry_eintr([&] {
      return static_cast<ssize_t>(::waitpid(pid_, &status, WNOHANG));
    });
    if (reaped != 0) {
      pid_ = -1;
      close_pipes();
      return;
    }
    ::usleep(5000);
  }
  (void)::kill(pid_, SIGKILL);
  reap(nullptr);
  close_pipes();
}

std::uint64_t PoolWorker::rss_bytes() const {
  if (pid_ <= 0) return 0;
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/statm", pid_);
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) return 0;
  unsigned long vm_pages = 0;   // NOLINT(google-runtime-int) statm format
  unsigned long rss_pages = 0;  // NOLINT(google-runtime-int)
  const int parsed = std::fscanf(file, "%lu %lu", &vm_pages, &rss_pages);
  std::fclose(file);
  if (parsed != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

PoolRpcResult PoolWorker::call(const Bytes& request,
                               const std::array<std::uint8_t, 8>& magic,
                               double deadline_ms) {
  PoolRpcResult result;
  if (pid_ <= 0 || request_fd_ < 0 || response_fd_ < 0) {
    result.error = "pool: worker is not running";
    return result;
  }
  Stopwatch clock;
  if (deadline_ms <= 0.0) deadline_ms = deadline_ms_;

  if (!write_nosigpipe(request_fd_, request.data(), request.size())) {
    // The worker died between calls (EPIPE) or the pipe broke: surface the
    // exit facts so the caller classifies it like any other worker death.
    const std::string io_error =
        std::string("pool: request write failed: ") + std::strerror(errno);
    close_pipes();
    reap(&result);
    result.status = PoolRpcResult::Status::kWorkerExit;
    result.error = io_error;
    return result;
  }

  // Read exactly one framed message: header first (magic + len + crc), then
  // `len` payload bytes, killing the worker the moment the deadline passes.
  // Poll timeouts bound how late a deadline kill can land, exactly like
  // Subprocess::wait.
  Bytes buffer;
  std::size_t expected = kPoolMessageHeader;
  bool sized = false;
  for (;;) {
    if (deadline_ms > 0.0 && clock.elapsed_ms() >= deadline_ms) {
      close_pipes();
      (void)::kill(pid_, SIGKILL);
      reap(&result);
      result.status = PoolRpcResult::Status::kTimeout;
      return result;
    }
    int timeout_ms = 100;
    if (deadline_ms > 0.0) {
      const double remaining = deadline_ms - clock.elapsed_ms();
      timeout_ms = static_cast<int>(
          std::min(100.0, std::max(1.0, std::ceil(remaining))));
    }
    pollfd pfd{response_fd_, POLLIN, 0};
    const int ready = static_cast<int>(retry_eintr(
        [&] { return static_cast<ssize_t>(::poll(&pfd, 1, timeout_ms)); }));
    if (ready < 0) {
      const std::string io_error =
          std::string("pool: poll failed: ") + std::strerror(errno);
      close_pipes();
      (void)::kill(pid_, SIGKILL);
      reap(&result);
      result.error = io_error;
      return result;
    }
    if (ready == 0) continue;  // timeout: re-check the deadline
    std::uint8_t chunk[4096];
    const std::size_t want = std::min(sizeof chunk, expected - buffer.size());
    const ssize_t n =
        retry_eintr([&] { return ::read(response_fd_, chunk, want); });
    if (n < 0) {
      const std::string io_error =
          std::string("pool: response read failed: ") + std::strerror(errno);
      close_pipes();
      (void)::kill(pid_, SIGKILL);
      reap(&result);
      result.error = io_error;
      return result;
    }
    if (n == 0) {
      // EOF before a complete message: the worker died mid-app. Reap and
      // hand the raw facts to the caller for crash/OOM classification.
      close_pipes();
      reap(&result);
      result.status = PoolRpcResult::Status::kWorkerExit;
      result.error = "pool: worker exited before shipping a response";
      return result;
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
    if (!sized && buffer.size() >= kPoolMessageHeader) {
      if (!std::equal(magic.begin(), magic.end(), buffer.begin())) {
        close_pipes();
        (void)::kill(pid_, SIGKILL);
        reap(&result);
        result.error = "pool: response stream desynchronized (bad magic)";
        return result;
      }
      const std::uint32_t payload = frame_length(buffer);
      if (payload > kPoolMaxMessageBytes) {
        close_pipes();
        (void)::kill(pid_, SIGKILL);
        reap(&result);
        result.error = "pool: response length header is implausible";
        return result;
      }
      expected = kPoolMessageHeader + payload;
      sized = true;
    }
    if (sized && buffer.size() == expected) {
      result.status = PoolRpcResult::Status::kOk;
      result.message = std::move(buffer);
      ++served_;
      return result;
    }
  }
}

}  // namespace dydroid::support
