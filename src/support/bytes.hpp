// Bounds-checked binary readers/writers used by every container format
// (SimDex, SimNative, SimApk). Integers are little-endian; variable-length
// fields are length-prefixed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace dydroid::support {

using Bytes = std::vector<std::uint8_t>;

/// Append-only serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);
  /// Length-prefixed (u32) raw blob.
  void blob(std::span<const std::uint8_t> data);
  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> data);
  /// Pre-size the backing buffer (hot encode paths).
  void reserve(std::size_t n) { buf_.reserve(n); }
  /// Drop the contents but keep the capacity, so a long-lived writer
  /// encodes record after record without re-allocating.
  void clear() { buf_.clear(); }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked deserializer; throws ParseError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::string str();
  Bytes blob();
  /// Read exactly n raw bytes.
  Bytes raw(std::size_t n);
  /// Consume exactly n bytes and return a zero-copy view into the reader's
  /// underlying buffer (valid only while that buffer lives).
  std::span<const std::uint8_t> view(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convert a string to a byte vector (no terminator).
Bytes to_bytes(std::string_view s);
/// Convert bytes to a string.
std::string to_string(std::span<const std::uint8_t> b);

}  // namespace dydroid::support
