#include "support/bytes.hpp"

namespace dydroid::support {

// The integer writers emit little-endian explicitly (host-endianness
// independent) but append the whole value in one insert, not one
// push_back per byte — multi-byte writes dominate the hot encode paths
// (container serialization, the outcome journal).

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  buf_.insert(buf_.end(), b, b + sizeof(b));
}

void ByteWriter::u32(std::uint32_t v) {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  buf_.insert(buf_.end(), b, b + sizeof(b));
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  buf_.insert(buf_.end(), b, b + sizeof(b));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw ParseError("truncated input: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_) + " of " +
                     std::to_string(data_.size()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const auto lo = u16();
  const auto hi = u16();
  return static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
}

std::uint64_t ByteReader::u64() {
  const auto lo = u32();
  const auto hi = u32();
  return static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

std::string ByteReader::str() {
  const auto n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  const auto n = u32();
  return raw(n);
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  need(n);
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace dydroid::support
