// Minimal leveled logger. The pipeline runs tens of thousands of simulated
// apps, so logging defaults to Warn; benches flip to Error.
#pragma once

#include <string_view>

namespace dydroid::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view component, std::string_view message);

/// Fork-safety hooks used by support::Subprocess via pthread_atfork: the
/// sink mutex is acquired before fork and released in both parent and
/// child, so a child forked while another thread is mid-log never inherits
/// a locked sink (a classic post-fork deadlock).
void log_fork_lock();
void log_fork_unlock();

inline void log_debug(std::string_view c, std::string_view m) {
  log(LogLevel::Debug, c, m);
}
inline void log_info(std::string_view c, std::string_view m) {
  log(LogLevel::Info, c, m);
}
inline void log_warn(std::string_view c, std::string_view m) {
  log(LogLevel::Warn, c, m);
}
inline void log_error(std::string_view c, std::string_view m) {
  log(LogLevel::Error, c, m);
}

}  // namespace dydroid::support
