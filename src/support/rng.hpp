// Deterministic random number generation. All randomized components
// (MiniMonkey, AppGen, obfuscators, malware mutators) take an explicit Rng so
// every experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dydroid::support {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[below(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derive an independent child generator (for per-app determinism).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace dydroid::support
