// SimDex container: classes + interned string pool, with a binary
// (de)serializer. This is the unit of dynamic code loading — the payload of
// `classes.dex`, of dynamically loaded .dex/.jar files, and (wrapped in
// SimNative) of native libraries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dex/instruction.hpp"
#include "support/bytes.hpp"

namespace dydroid::dex {

/// Method access/kind flags.
enum MethodFlags : std::uint32_t {
  kStatic = 1u << 0,
  kPublic = 1u << 1,
  kNative = 1u << 2,       // body lives in a loaded SimNative library
  kConstructor = 1u << 3,  // "<init>"
};

struct Method {
  std::string name;
  std::uint32_t flags = kPublic;
  std::uint16_t num_params = 0;     // includes `this` for instance methods
  std::uint16_t num_registers = 0;  // total register file size (>= params)
  std::vector<Instruction> code;    // empty for native methods

  [[nodiscard]] bool is_static() const { return (flags & kStatic) != 0; }
  [[nodiscard]] bool is_native() const { return (flags & kNative) != 0; }
};

struct ClassDef {
  std::string name;        // fully qualified, e.g. "com.example.app.Main"
  std::string super_name;  // "" for root classes
  std::vector<std::string> instance_fields;
  std::vector<std::string> static_fields;
  std::vector<Method> methods;

  [[nodiscard]] const Method* find_method(std::string_view method_name) const;
};

/// Named opaque side-section. The VM and deserializer skip sections they do
/// not understand (forward compatibility); the disassembler attempts to parse
/// known ones — which is exactly the asymmetry anti-decompilation tooling
/// exploits (see obfuscation/anti_decompilation.hpp).
struct ExtraSection {
  std::string name;
  support::Bytes data;
};

class DexFile {
 public:
  /// Intern a string, returning its pool index.
  std::uint32_t intern(std::string_view s);
  /// Look up an interned string without adding it.
  [[nodiscard]] std::optional<std::uint32_t> find_string(
      std::string_view s) const;
  [[nodiscard]] const std::string& string_at(std::uint32_t idx) const;
  [[nodiscard]] std::size_t string_count() const { return strings_.size(); }

  [[nodiscard]] const std::vector<ClassDef>& classes() const {
    return classes_;
  }
  [[nodiscard]] std::vector<ClassDef>& classes() { return classes_; }
  [[nodiscard]] const ClassDef* find_class(std::string_view name) const;
  ClassDef& add_class(ClassDef cls);

  [[nodiscard]] const std::vector<ExtraSection>& extras() const {
    return extras_;
  }
  void add_extra(ExtraSection extra) { extras_.push_back(std::move(extra)); }

  /// Serialize to the SDEX binary format.
  [[nodiscard]] support::Bytes serialize() const;
  /// Parse; throws support::ParseError on malformed input.
  static DexFile deserialize(std::span<const std::uint8_t> data);

  /// Validate internal consistency (string indices, branch targets, register
  /// numbers). Returns an error description, or nullopt if well-formed.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Total instruction count across all methods.
  [[nodiscard]] std::size_t instruction_count() const;

  /// Magic bytes at the front of every serialized SimDex file.
  static constexpr std::string_view kMagic = "SDEX1";

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<ClassDef> classes_;
  std::vector<ExtraSection> extras_;
};

/// True if `data` begins with the SimDex magic.
bool looks_like_dex(std::span<const std::uint8_t> data);

}  // namespace dydroid::dex
