// Fluent assembler for SimDex bytecode — the `dx` analogue. AppGen, malware
// family generators and the obfuscators all emit code through this API.
//
//   DexBuilder dex;
//   auto cls = dex.cls("com.example.Main", "android.app.Activity");
//   auto m = cls.method("onCreate", /*params=*/1, /*registers=*/6);
//   m.const_str(1, "http://example.com/payload.dex");
//   m.new_instance(2, "java.net.URL");
//   m.invoke_virtual("java.net.URL", "<init>", {2, 1});
//   ...
//   m.return_void();
//
// Branches use string labels resolved when the method is finalized (on
// MethodBuilder destruction or explicit done()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dex/dexfile.hpp"

namespace dydroid::dex {

class DexBuilder;
class ClassBuilder;

/// Builds one method body. Registers are caller-chosen indices; the builder
/// tracks the max used register and sizes the register file automatically.
class MethodBuilder {
 public:
  MethodBuilder(const MethodBuilder&) = delete;
  MethodBuilder& operator=(const MethodBuilder&) = delete;
  MethodBuilder(MethodBuilder&& other) noexcept;
  ~MethodBuilder();

  MethodBuilder& const_int(std::uint16_t dst, std::int64_t value);
  MethodBuilder& const_str(std::uint16_t dst, std::string_view value);
  MethodBuilder& move(std::uint16_t dst, std::uint16_t src);
  MethodBuilder& move_result(std::uint16_t dst);
  MethodBuilder& add(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& sub(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& mul(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& div(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& rem(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& concat(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& cmp_eq(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& cmp_lt(std::uint16_t dst, std::uint16_t lhs, std::uint16_t rhs);
  MethodBuilder& if_eqz(std::uint16_t reg, std::string_view label);
  MethodBuilder& if_nez(std::uint16_t reg, std::string_view label);
  MethodBuilder& jump(std::string_view label);
  MethodBuilder& label(std::string_view name);
  MethodBuilder& new_instance(std::uint16_t dst, std::string_view class_name);
  MethodBuilder& invoke_static(std::string_view class_name,
                               std::string_view method_name,
                               std::initializer_list<std::uint16_t> args = {});
  MethodBuilder& invoke_virtual(std::string_view class_name,
                                std::string_view method_name,
                                std::initializer_list<std::uint16_t> args);
  MethodBuilder& iget(std::uint16_t dst, std::uint16_t obj,
                      std::string_view field);
  MethodBuilder& iput(std::uint16_t src, std::uint16_t obj,
                      std::string_view field);
  MethodBuilder& sget(std::uint16_t dst, std::string_view class_name,
                      std::string_view field);
  MethodBuilder& sput(std::uint16_t src, std::string_view class_name,
                      std::string_view field);
  MethodBuilder& ret(std::uint16_t reg);
  MethodBuilder& return_void();
  MethodBuilder& throw_str(std::uint16_t reg);
  /// Enter a guarded region: on exception, `dst` receives the message and
  /// control jumps to `handler_label`.
  MethodBuilder& try_enter(std::uint16_t dst, std::string_view handler_label);
  /// Leave the innermost guarded region.
  MethodBuilder& try_exit();
  MethodBuilder& nop();

  /// Append a raw instruction (used by obfuscators / tests).
  MethodBuilder& emit(Instruction ins);

  /// Resolve labels and commit the method into its class. Idempotent;
  /// called automatically from the destructor.
  void done();

  /// Index the *next* emitted instruction will have.
  [[nodiscard]] std::size_t next_pc() const { return m().code.size(); }

 private:
  friend class ClassBuilder;
  MethodBuilder(DexBuilder* dex, std::size_t cls_idx, std::size_t method_idx);

  void track(std::uint16_t reg);
  std::uint32_t intern(std::string_view s);
  // Indices (not pointers) so that concurrent class/method additions that
  // reallocate the underlying vectors cannot dangle.
  [[nodiscard]] Method& m() const;

  DexBuilder* dex_;
  std::size_t cls_idx_;
  std::size_t method_idx_;
  bool finalized_ = false;
  std::uint16_t max_reg_ = 0;
  std::unordered_map<std::string, std::int32_t> labels_;
  // (instruction index, label) fixups patched in done().
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

class ClassBuilder {
 public:
  /// Add a method; params includes `this` for instance methods.
  MethodBuilder method(std::string_view name, std::uint16_t params,
                       std::uint32_t flags = kPublic);
  MethodBuilder static_method(std::string_view name, std::uint16_t params);
  ClassBuilder& native_method(std::string_view name, std::uint16_t params);
  ClassBuilder& instance_field(std::string_view name);
  ClassBuilder& static_field(std::string_view name);

  [[nodiscard]] const std::string& name() const;

 private:
  friend class DexBuilder;
  ClassBuilder(DexBuilder* dex, std::size_t cls_idx)
      : dex_(dex), cls_idx_(cls_idx) {}
  [[nodiscard]] ClassDef& c() const;
  DexBuilder* dex_;
  std::size_t cls_idx_;
};

class DexBuilder {
 public:
  DexBuilder() : dex_(std::make_unique<DexFile>()) {}

  /// Add (or reopen) a class.
  ClassBuilder cls(std::string_view name, std::string_view super_name = "");

  /// Finish and take the DexFile. The builder must not be reused afterwards.
  [[nodiscard]] DexFile build();

  [[nodiscard]] DexFile& file() { return *dex_; }

 private:
  friend class MethodBuilder;
  friend class ClassBuilder;
  std::unique_ptr<DexFile> dex_;
};

}  // namespace dydroid::dex
