#include "dex/builder.hpp"

#include <stdexcept>

namespace dydroid::dex {

MethodBuilder::MethodBuilder(DexBuilder* dex, std::size_t cls_idx,
                             std::size_t method_idx)
    : dex_(dex), cls_idx_(cls_idx), method_idx_(method_idx) {}

MethodBuilder::MethodBuilder(MethodBuilder&& other) noexcept
    : dex_(other.dex_),
      cls_idx_(other.cls_idx_),
      method_idx_(other.method_idx_),
      finalized_(other.finalized_),
      max_reg_(other.max_reg_),
      labels_(std::move(other.labels_)),
      fixups_(std::move(other.fixups_)) {
  other.finalized_ = true;  // moved-from builder must not re-finalize
}

MethodBuilder::~MethodBuilder() {
  if (!finalized_) done();
}

Method& MethodBuilder::m() const {
  return dex_->dex_->classes()[cls_idx_].methods[method_idx_];
}

void MethodBuilder::track(std::uint16_t reg) {
  if (reg + 1 > max_reg_) max_reg_ = static_cast<std::uint16_t>(reg + 1);
}

std::uint32_t MethodBuilder::intern(std::string_view s) {
  return dex_->dex_->intern(s);
}

MethodBuilder& MethodBuilder::emit(Instruction ins) {
  track(ins.a);
  track(ins.b);
  track(ins.c);
  for (std::uint8_t i = 0; i < ins.argc; ++i) track(ins.args[i]);
  m().code.push_back(ins);
  return *this;
}

MethodBuilder& MethodBuilder::const_int(std::uint16_t dst, std::int64_t value) {
  Instruction ins;
  ins.op = Op::ConstInt;
  ins.a = dst;
  ins.imm = value;
  return emit(ins);
}

MethodBuilder& MethodBuilder::const_str(std::uint16_t dst,
                                        std::string_view value) {
  Instruction ins;
  ins.op = Op::ConstStr;
  ins.a = dst;
  ins.name = intern(value);
  return emit(ins);
}

MethodBuilder& MethodBuilder::move(std::uint16_t dst, std::uint16_t src) {
  Instruction ins;
  ins.op = Op::Move;
  ins.a = dst;
  ins.b = src;
  return emit(ins);
}

MethodBuilder& MethodBuilder::move_result(std::uint16_t dst) {
  Instruction ins;
  ins.op = Op::MoveResult;
  ins.a = dst;
  return emit(ins);
}

namespace {
Instruction binop(Op op, std::uint16_t dst, std::uint16_t lhs,
                  std::uint16_t rhs) {
  Instruction ins;
  ins.op = op;
  ins.a = dst;
  ins.b = lhs;
  ins.c = rhs;
  return ins;
}
}  // namespace

MethodBuilder& MethodBuilder::add(std::uint16_t d, std::uint16_t l,
                                  std::uint16_t r) {
  return emit(binop(Op::Add, d, l, r));
}
MethodBuilder& MethodBuilder::sub(std::uint16_t d, std::uint16_t l,
                                  std::uint16_t r) {
  return emit(binop(Op::Sub, d, l, r));
}
MethodBuilder& MethodBuilder::mul(std::uint16_t d, std::uint16_t l,
                                  std::uint16_t r) {
  return emit(binop(Op::Mul, d, l, r));
}
MethodBuilder& MethodBuilder::div(std::uint16_t d, std::uint16_t l,
                                  std::uint16_t r) {
  return emit(binop(Op::Div, d, l, r));
}
MethodBuilder& MethodBuilder::rem(std::uint16_t d, std::uint16_t l,
                                  std::uint16_t r) {
  return emit(binop(Op::Rem, d, l, r));
}
MethodBuilder& MethodBuilder::concat(std::uint16_t d, std::uint16_t l,
                                     std::uint16_t r) {
  return emit(binop(Op::Concat, d, l, r));
}
MethodBuilder& MethodBuilder::cmp_eq(std::uint16_t d, std::uint16_t l,
                                     std::uint16_t r) {
  return emit(binop(Op::CmpEq, d, l, r));
}
MethodBuilder& MethodBuilder::cmp_lt(std::uint16_t d, std::uint16_t l,
                                     std::uint16_t r) {
  return emit(binop(Op::CmpLt, d, l, r));
}

MethodBuilder& MethodBuilder::if_eqz(std::uint16_t reg, std::string_view label) {
  Instruction ins;
  ins.op = Op::IfEqz;
  ins.a = reg;
  fixups_.emplace_back(m().code.size(), std::string(label));
  return emit(ins);
}

MethodBuilder& MethodBuilder::if_nez(std::uint16_t reg, std::string_view label) {
  Instruction ins;
  ins.op = Op::IfNez;
  ins.a = reg;
  fixups_.emplace_back(m().code.size(), std::string(label));
  return emit(ins);
}

MethodBuilder& MethodBuilder::jump(std::string_view label) {
  Instruction ins;
  ins.op = Op::Goto;
  fixups_.emplace_back(m().code.size(), std::string(label));
  return emit(ins);
}

MethodBuilder& MethodBuilder::label(std::string_view name) {
  labels_[std::string(name)] = static_cast<std::int32_t>(m().code.size());
  return *this;
}

MethodBuilder& MethodBuilder::new_instance(std::uint16_t dst,
                                           std::string_view class_name) {
  Instruction ins;
  ins.op = Op::NewInstance;
  ins.a = dst;
  ins.cls = intern(class_name);
  ins.name = ins.cls;
  return emit(ins);
}

MethodBuilder& MethodBuilder::invoke_static(
    std::string_view class_name, std::string_view method_name,
    std::initializer_list<std::uint16_t> args) {
  if (args.size() > kMaxInvokeArgs) {
    throw std::invalid_argument("too many invoke args");
  }
  Instruction ins;
  ins.op = Op::InvokeStatic;
  ins.cls = intern(class_name);
  ins.name = intern(method_name);
  ins.argc = static_cast<std::uint8_t>(args.size());
  std::size_t i = 0;
  for (const auto reg : args) ins.args[i++] = reg;
  return emit(ins);
}

MethodBuilder& MethodBuilder::invoke_virtual(
    std::string_view class_name, std::string_view method_name,
    std::initializer_list<std::uint16_t> args) {
  if (args.size() == 0) {
    throw std::invalid_argument("invoke-virtual needs a receiver");
  }
  if (args.size() > kMaxInvokeArgs) {
    throw std::invalid_argument("too many invoke args");
  }
  Instruction ins;
  ins.op = Op::InvokeVirtual;
  ins.cls = intern(class_name);
  ins.name = intern(method_name);
  ins.argc = static_cast<std::uint8_t>(args.size());
  std::size_t i = 0;
  for (const auto reg : args) ins.args[i++] = reg;
  return emit(ins);
}

MethodBuilder& MethodBuilder::iget(std::uint16_t dst, std::uint16_t obj,
                                   std::string_view field) {
  Instruction ins;
  ins.op = Op::IGet;
  ins.a = dst;
  ins.b = obj;
  ins.name = intern(field);
  return emit(ins);
}

MethodBuilder& MethodBuilder::iput(std::uint16_t src, std::uint16_t obj,
                                   std::string_view field) {
  Instruction ins;
  ins.op = Op::IPut;
  ins.a = src;
  ins.b = obj;
  ins.name = intern(field);
  return emit(ins);
}

MethodBuilder& MethodBuilder::sget(std::uint16_t dst,
                                   std::string_view class_name,
                                   std::string_view field) {
  Instruction ins;
  ins.op = Op::SGet;
  ins.a = dst;
  ins.cls = intern(class_name);
  ins.name = intern(field);
  return emit(ins);
}

MethodBuilder& MethodBuilder::sput(std::uint16_t src,
                                   std::string_view class_name,
                                   std::string_view field) {
  Instruction ins;
  ins.op = Op::SPut;
  ins.a = src;
  ins.cls = intern(class_name);
  ins.name = intern(field);
  return emit(ins);
}

MethodBuilder& MethodBuilder::ret(std::uint16_t reg) {
  Instruction ins;
  ins.op = Op::Return;
  ins.a = reg;
  return emit(ins);
}

MethodBuilder& MethodBuilder::return_void() {
  Instruction ins;
  ins.op = Op::ReturnVoid;
  return emit(ins);
}

MethodBuilder& MethodBuilder::throw_str(std::uint16_t reg) {
  Instruction ins;
  ins.op = Op::Throw;
  ins.a = reg;
  return emit(ins);
}

MethodBuilder& MethodBuilder::try_enter(std::uint16_t dst,
                                        std::string_view handler_label) {
  Instruction ins;
  ins.op = Op::TryEnter;
  ins.a = dst;
  fixups_.emplace_back(m().code.size(), std::string(handler_label));
  return emit(ins);
}

MethodBuilder& MethodBuilder::try_exit() {
  Instruction ins;
  ins.op = Op::TryExit;
  return emit(ins);
}

MethodBuilder& MethodBuilder::nop() {
  Instruction ins;
  ins.op = Op::Nop;
  return emit(ins);
}

void MethodBuilder::done() {
  if (finalized_) return;
  finalized_ = true;
  Method& method = m();
  // A label may sit at the very end of the body (jump-to-exit); it needs an
  // instruction to land on even when the preceding one is a terminator.
  bool label_at_end = false;
  for (const auto& [name, pos] : labels_) {
    if (pos == static_cast<std::int32_t>(method.code.size())) {
      label_at_end = true;
    }
  }
  if (label_at_end || method.code.empty() ||
      !method.code.back().is_terminator()) {
    // Implicit return keeps generated bodies well-formed.
    Instruction ins;
    ins.op = Op::ReturnVoid;
    method.code.push_back(ins);
  }
  for (const auto& [pc, label] : fixups_) {
    const auto it = labels_.find(label);
    if (it == labels_.end()) {
      throw std::logic_error("undefined label: " + label);
    }
    method.code[pc].target = it->second;
  }
  if (max_reg_ < method.num_params) max_reg_ = method.num_params;
  method.num_registers = max_reg_;
}

ClassDef& ClassBuilder::c() const { return dex_->dex_->classes()[cls_idx_]; }

const std::string& ClassBuilder::name() const { return c().name; }

MethodBuilder ClassBuilder::method(std::string_view name, std::uint16_t params,
                                   std::uint32_t flags) {
  Method m;
  m.name = std::string(name);
  m.flags = flags;
  if (name == "<init>") m.flags |= kConstructor;
  m.num_params = params;
  m.num_registers = params;
  c().methods.push_back(std::move(m));
  return MethodBuilder(dex_, cls_idx_, c().methods.size() - 1);
}

MethodBuilder ClassBuilder::static_method(std::string_view name,
                                          std::uint16_t params) {
  return method(name, params, kPublic | kStatic);
}

ClassBuilder& ClassBuilder::native_method(std::string_view name,
                                          std::uint16_t params) {
  Method m;
  m.name = std::string(name);
  m.flags = kPublic | kNative;
  m.num_params = params;
  m.num_registers = params;
  c().methods.push_back(std::move(m));
  return *this;
}

ClassBuilder& ClassBuilder::instance_field(std::string_view name) {
  c().instance_fields.emplace_back(name);
  return *this;
}

ClassBuilder& ClassBuilder::static_field(std::string_view name) {
  c().static_fields.emplace_back(name);
  return *this;
}

ClassBuilder DexBuilder::cls(std::string_view name, std::string_view super) {
  auto& classes = dex_->classes();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].name == name) return ClassBuilder(this, i);
  }
  ClassDef def;
  def.name = std::string(name);
  def.super_name = std::string(super);
  dex_->add_class(std::move(def));
  return ClassBuilder(this, classes.size() - 1);
}

DexFile DexBuilder::build() {
  DexFile out = std::move(*dex_);
  dex_ = std::make_unique<DexFile>();
  return out;
}

}  // namespace dydroid::dex
