// Smali-like text disassembler for SimDex — the baksmali analogue.
//
// Deliberately stricter than the VM: it parses the optional "debug_info"
// extra section (instruction index -> source line), which the VM ignores.
// Malformed debug info therefore crashes the *tooling* while leaving the app
// runnable — the mechanism real anti-decompilation packers exploit against
// apktool (paper §III-D).
#pragma once

#include <string>

#include "dex/dexfile.hpp"

namespace dydroid::dex {

/// Parsed debug-info entry (see ExtraSection "debug_info").
struct DebugLine {
  std::uint32_t pc = 0;
  std::uint32_t line = 0;
};

/// Disassemble to smali-like text. Throws support::ParseError if the file's
/// debug_info section is malformed (anti-decompilation).
std::string disassemble(const DexFile& dex);

/// Name of the debug-info extra section.
inline constexpr std::string_view kDebugInfoSection = "debug_info";

/// Encode a debug_info section body (pairs of u32 pc, u32 line; pcs must be
/// strictly increasing and in range for the method count check).
support::Bytes encode_debug_info(const std::vector<DebugLine>& lines);

/// Parse a debug_info section; throws support::ParseError if entries are
/// truncated or pcs are not strictly increasing.
std::vector<DebugLine> parse_debug_info(std::span<const std::uint8_t> data);

}  // namespace dydroid::dex
