#include "dex/dexfile.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace dydroid::dex {

using support::ByteReader;
using support::Bytes;
using support::ByteWriter;
using support::ParseError;

const Method* ClassDef::find_method(std::string_view method_name) const {
  for (const auto& m : methods) {
    if (m.name == method_name) return &m;
  }
  return nullptr;
}

std::uint32_t DexFile::intern(std::string_view s) {
  const auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), idx);
  return idx;
}

std::optional<std::uint32_t> DexFile::find_string(std::string_view s) const {
  const auto it = index_.find(std::string(s));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& DexFile::string_at(std::uint32_t idx) const {
  if (idx >= strings_.size()) {
    throw ParseError("string index out of range: " + std::to_string(idx));
  }
  return strings_[idx];
}

const ClassDef* DexFile::find_class(std::string_view name) const {
  for (const auto& c : classes_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

ClassDef& DexFile::add_class(ClassDef cls) {
  classes_.push_back(std::move(cls));
  return classes_.back();
}

namespace {

void write_instruction(ByteWriter& w, const Instruction& ins) {
  w.u8(static_cast<std::uint8_t>(ins.op));
  w.u16(ins.a);
  w.u16(ins.b);
  w.u16(ins.c);
  w.u32(static_cast<std::uint32_t>(ins.target));
  w.i64(ins.imm);
  w.u32(ins.cls);
  w.u32(ins.name);
  w.u8(ins.argc);
  for (std::uint8_t i = 0; i < ins.argc; ++i) w.u16(ins.args[i]);
}

Instruction read_instruction(ByteReader& r) {
  Instruction ins;
  const auto raw_op = r.u8();
  if (raw_op >= kOpCount) {
    throw ParseError("invalid opcode: " + std::to_string(raw_op));
  }
  ins.op = static_cast<Op>(raw_op);
  ins.a = r.u16();
  ins.b = r.u16();
  ins.c = r.u16();
  ins.target = static_cast<std::int32_t>(r.u32());
  ins.imm = r.i64();
  ins.cls = r.u32();
  ins.name = r.u32();
  ins.argc = r.u8();
  if (ins.argc > kMaxInvokeArgs) {
    throw ParseError("invoke argc too large: " + std::to_string(ins.argc));
  }
  for (std::uint8_t i = 0; i < ins.argc; ++i) ins.args[i] = r.u16();
  return ins;
}

}  // namespace

Bytes DexFile::serialize() const {
  ByteWriter w;
  w.raw(support::to_bytes(kMagic));
  w.u32(static_cast<std::uint32_t>(strings_.size()));
  for (const auto& s : strings_) w.str(s);
  w.u32(static_cast<std::uint32_t>(classes_.size()));
  for (const auto& c : classes_) {
    w.str(c.name);
    w.str(c.super_name);
    w.u32(static_cast<std::uint32_t>(c.instance_fields.size()));
    for (const auto& f : c.instance_fields) w.str(f);
    w.u32(static_cast<std::uint32_t>(c.static_fields.size()));
    for (const auto& f : c.static_fields) w.str(f);
    w.u32(static_cast<std::uint32_t>(c.methods.size()));
    for (const auto& m : c.methods) {
      w.str(m.name);
      w.u32(m.flags);
      w.u16(m.num_params);
      w.u16(m.num_registers);
      w.u32(static_cast<std::uint32_t>(m.code.size()));
      for (const auto& ins : m.code) write_instruction(w, ins);
    }
  }
  w.u32(static_cast<std::uint32_t>(extras_.size()));
  for (const auto& e : extras_) {
    w.str(e.name);
    w.blob(e.data);
  }
  return w.take();
}

DexFile DexFile::deserialize(std::span<const std::uint8_t> data) {
  // Fault-injection site: bad string/method data (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kDexParse)) {
    throw ParseError(support::fault_message(support::FaultSite::kDexParse));
  }
  ByteReader r(data);
  const auto magic = r.raw(kMagic.size());
  if (support::to_string(magic) != kMagic) {
    throw ParseError("bad SimDex magic");
  }
  DexFile dex;
  const auto num_strings = r.u32();
  for (std::uint32_t i = 0; i < num_strings; ++i) {
    // Preserve pool order: duplicate strings are not re-interned so indices
    // embedded in instructions remain stable.
    dex.strings_.push_back(r.str());
  }
  for (std::uint32_t i = 0; i < dex.strings_.size(); ++i) {
    dex.index_.emplace(dex.strings_[i], i);
  }
  const auto num_classes = r.u32();
  for (std::uint32_t i = 0; i < num_classes; ++i) {
    ClassDef c;
    c.name = r.str();
    c.super_name = r.str();
    const auto nif = r.u32();
    for (std::uint32_t j = 0; j < nif; ++j) c.instance_fields.push_back(r.str());
    const auto nsf = r.u32();
    for (std::uint32_t j = 0; j < nsf; ++j) c.static_fields.push_back(r.str());
    const auto nm = r.u32();
    for (std::uint32_t j = 0; j < nm; ++j) {
      Method m;
      m.name = r.str();
      m.flags = r.u32();
      m.num_params = r.u16();
      m.num_registers = r.u16();
      const auto ni = r.u32();
      // A lying length prefix must not drive the allocation: every
      // instruction consumes at least one byte, so the remaining input
      // bounds any honest count (the per-instruction reads then reject
      // the lie with a truncation ParseError instead of a bad_alloc).
      m.code.reserve(std::min<std::size_t>(ni, r.remaining()));
      for (std::uint32_t k = 0; k < ni; ++k) m.code.push_back(read_instruction(r));
      c.methods.push_back(std::move(m));
    }
    dex.classes_.push_back(std::move(c));
  }
  const auto num_extras = r.u32();
  for (std::uint32_t i = 0; i < num_extras; ++i) {
    ExtraSection e;
    e.name = r.str();
    e.data = r.blob();
    dex.extras_.push_back(std::move(e));
  }
  if (auto err = dex.validate()) throw ParseError(*err);
  return dex;
}

std::optional<std::string> DexFile::validate() const {
  const auto nstr = static_cast<std::uint32_t>(strings_.size());
  for (const auto& c : classes_) {
    for (const auto& m : c.methods) {
      if (m.num_registers < m.num_params) {
        return "method " + c.name + "." + m.name + ": registers < params";
      }
      const auto ncode = static_cast<std::int32_t>(m.code.size());
      for (std::size_t pc = 0; pc < m.code.size(); ++pc) {
        const auto& ins = m.code[pc];
        const auto where = c.name + "." + m.name + "@" + std::to_string(pc);
        auto reg_ok = [&](std::uint16_t reg) { return reg < m.num_registers; };
        if (!reg_ok(ins.a) || !reg_ok(ins.b) || !reg_ok(ins.c)) {
          return where + ": register out of range";
        }
        if (ins.has_target() && (ins.target < 0 || ins.target >= ncode)) {
          return where + ": branch target out of range";
        }
        const bool uses_cls = ins.op == Op::NewInstance || ins.is_invoke() ||
                              ins.op == Op::SGet || ins.op == Op::SPut;
        const bool uses_name = uses_cls || ins.op == Op::ConstStr ||
                               ins.op == Op::IGet || ins.op == Op::IPut;
        if (uses_cls && ins.cls >= nstr) return where + ": class index bad";
        if (uses_name && ins.name >= nstr) return where + ": name index bad";
        for (std::uint8_t i = 0; i < ins.argc; ++i) {
          if (!reg_ok(ins.args[i])) return where + ": arg register bad";
        }
      }
    }
  }
  return std::nullopt;
}

std::size_t DexFile::instruction_count() const {
  std::size_t n = 0;
  for (const auto& c : classes_) {
    for (const auto& m : c.methods) n += m.code.size();
  }
  return n;
}

bool looks_like_dex(std::span<const std::uint8_t> data) {
  const auto magic = DexFile::kMagic;
  if (data.size() < magic.size()) return false;
  return std::equal(magic.begin(), magic.end(), data.begin(),
                    [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

}  // namespace dydroid::dex
