#include "dex/disassembler.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dydroid::dex {

using support::ParseError;

support::Bytes encode_debug_info(const std::vector<DebugLine>& lines) {
  support::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(lines.size()));
  for (const auto& l : lines) {
    w.u32(l.pc);
    w.u32(l.line);
  }
  return w.take();
}

std::vector<DebugLine> parse_debug_info(std::span<const std::uint8_t> data) {
  support::ByteReader r(data);
  const auto n = r.u32();
  std::vector<DebugLine> out;
  out.reserve(n);
  std::int64_t last_pc = -1;
  for (std::uint32_t i = 0; i < n; ++i) {
    DebugLine l;
    l.pc = r.u32();
    l.line = r.u32();
    if (static_cast<std::int64_t>(l.pc) <= last_pc) {
      throw ParseError("debug_info: pcs not strictly increasing at entry " +
                       std::to_string(i));
    }
    last_pc = l.pc;
    out.push_back(l);
  }
  if (!r.at_end()) {
    throw ParseError("debug_info: trailing bytes");
  }
  return out;
}

namespace {

void disassemble_instruction(std::ostringstream& out, const DexFile& dex,
                             const Instruction& ins, std::size_t pc) {
  out << "    #" << pc << "  " << op_name(ins.op);
  switch (ins.op) {
    case Op::ConstInt:
      out << " v" << ins.a << ", " << ins.imm;
      break;
    case Op::ConstStr:
      out << " v" << ins.a << ", \"" << dex.string_at(ins.name) << "\"";
      break;
    case Op::Move:
      out << " v" << ins.a << ", v" << ins.b;
      break;
    case Op::MoveResult:
    case Op::Return:
    case Op::Throw:
      out << " v" << ins.a;
      break;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Rem:
    case Op::Concat:
    case Op::CmpEq:
    case Op::CmpLt:
      out << " v" << ins.a << ", v" << ins.b << ", v" << ins.c;
      break;
    case Op::IfEqz:
    case Op::IfNez:
      out << " v" << ins.a << ", @" << ins.target;
      break;
    case Op::Goto:
      out << " @" << ins.target;
      break;
    case Op::TryEnter:
      out << " v" << ins.a << ", handler @" << ins.target;
      break;
    case Op::NewInstance:
      out << " v" << ins.a << ", " << dex.string_at(ins.cls);
      break;
    case Op::InvokeStatic:
    case Op::InvokeVirtual: {
      out << " " << dex.string_at(ins.cls) << "->" << dex.string_at(ins.name)
          << "(";
      for (std::uint8_t i = 0; i < ins.argc; ++i) {
        if (i != 0) out << ", ";
        out << "v" << ins.args[i];
      }
      out << ")";
      break;
    }
    case Op::IGet:
      out << " v" << ins.a << ", v" << ins.b << "."
          << dex.string_at(ins.name);
      break;
    case Op::IPut:
      out << " v" << ins.b << "." << dex.string_at(ins.name) << " <- v"
          << ins.a;
      break;
    case Op::SGet:
      out << " v" << ins.a << ", " << dex.string_at(ins.cls) << "."
          << dex.string_at(ins.name);
      break;
    case Op::SPut:
      out << " " << dex.string_at(ins.cls) << "." << dex.string_at(ins.name)
          << " <- v" << ins.a;
      break;
    case Op::Nop:
    case Op::ReturnVoid:
    case Op::TryExit:
      break;
  }
  out << "\n";
}

}  // namespace

std::string disassemble(const DexFile& dex) {
  // Parse known extra sections first; this is the strictness the
  // anti-decompilation poisoner exploits.
  for (const auto& extra : dex.extras()) {
    if (extra.name == kDebugInfoSection) {
      (void)parse_debug_info(extra.data);
    }
  }
  if (auto err = dex.validate()) {
    throw ParseError("disassemble: " + *err);
  }
  std::ostringstream out;
  for (const auto& cls : dex.classes()) {
    out << ".class " << cls.name;
    if (!cls.super_name.empty()) out << " extends " << cls.super_name;
    out << "\n";
    for (const auto& f : cls.static_fields) {
      out << "  .field static " << f << "\n";
    }
    for (const auto& f : cls.instance_fields) {
      out << "  .field " << f << "\n";
    }
    for (const auto& m : cls.methods) {
      out << "  .method ";
      if (m.is_static()) out << "static ";
      if (m.is_native()) out << "native ";
      out << m.name << " params=" << m.num_params
          << " registers=" << m.num_registers << "\n";
      for (std::size_t pc = 0; pc < m.code.size(); ++pc) {
        disassemble_instruction(out, dex, m.code[pc], pc);
      }
      out << "  .end method\n";
    }
    out << ".end class\n";
  }
  return out.str();
}

}  // namespace dydroid::dex
