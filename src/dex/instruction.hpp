// SimDex instruction set.
//
// A register-based bytecode modelled on Dalvik: each method owns a register
// file v0..v(N-1); method parameters arrive in v0..v(P-1) (v0 = `this` for
// instance methods). Branch targets are absolute instruction indices within
// the method body (the assembler resolves labels).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dydroid::dex {

enum class Op : std::uint8_t {
  Nop = 0,
  ConstInt,    // vA <- imm
  ConstStr,    // vA <- strings[name]
  Move,        // vA <- vB
  MoveResult,  // vA <- invoke result register
  Add,         // vA <- vB + vC (int)
  Sub,         // vA <- vB - vC
  Mul,         // vA <- vB * vC
  Div,         // vA <- vB / vC (throws on zero)
  Rem,         // vA <- vB % vC (throws on zero)
  Concat,      // vA <- str(vB) + str(vC)
  CmpEq,       // vA <- (vB == vC) ? 1 : 0  (int or string compare)
  CmpLt,       // vA <- (vB < vC) ? 1 : 0   (int compare)
  IfEqz,       // if int(vA) == 0 goto target
  IfNez,       // if int(vA) != 0 goto target
  Goto,        // goto target
  NewInstance,    // vA <- new instance of class strings[cls] (ctor NOT run)
  InvokeStatic,   // strings[cls].strings[name](v args...)
  InvokeVirtual,  // receiver = v args[0]; dispatch on its dynamic class
  IGet,           // vA <- vB.fields[strings[name]]
  IPut,           // vB.fields[strings[name]] <- vA
  SGet,           // vA <- static field strings[cls].strings[name]
  SPut,           // static field strings[cls].strings[name] <- vA
  Return,      // return vA
  ReturnVoid,  // return
  Throw,       // throw exception with message str(vA)
  TryEnter,    // push handler: on exception, vA <- message, jump target
  TryExit,     // pop the innermost handler
};

/// Number of distinct opcodes (for table sizing / validation).
constexpr int kOpCount = static_cast<int>(Op::TryExit) + 1;

/// Human-readable mnemonic.
std::string_view op_name(Op op);

/// Max explicit invoke arguments (in addition to nothing; receiver counts).
constexpr std::size_t kMaxInvokeArgs = 8;

/// One decoded instruction. Fields are interpreted per-op as documented in
/// the Op enum; unused fields are zero.
struct Instruction {
  Op op = Op::Nop;
  std::uint16_t a = 0;  // destination / tested register
  std::uint16_t b = 0;  // first source register
  std::uint16_t c = 0;  // second source register
  std::int32_t target = 0;   // absolute branch target (instruction index)
  std::int64_t imm = 0;      // ConstInt immediate
  std::uint32_t cls = 0;     // string index: class name (invokes, fields, new)
  std::uint32_t name = 0;    // string index: method/field/string payload
  std::uint8_t argc = 0;     // invoke argument count
  std::array<std::uint16_t, kMaxInvokeArgs> args{};  // invoke argument registers

  [[nodiscard]] bool is_branch() const {
    return op == Op::IfEqz || op == Op::IfNez || op == Op::Goto;
  }
  /// Instructions carrying a branch target (branches + handler entries).
  [[nodiscard]] bool has_target() const {
    return is_branch() || op == Op::TryEnter;
  }
  [[nodiscard]] bool is_invoke() const {
    return op == Op::InvokeStatic || op == Op::InvokeVirtual;
  }
  [[nodiscard]] bool is_terminator() const {
    return op == Op::Return || op == Op::ReturnVoid || op == Op::Throw ||
           op == Op::Goto;
  }
};

inline std::string_view op_name(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::ConstInt: return "const-int";
    case Op::ConstStr: return "const-str";
    case Op::Move: return "move";
    case Op::MoveResult: return "move-result";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Rem: return "rem";
    case Op::Concat: return "concat";
    case Op::CmpEq: return "cmp-eq";
    case Op::CmpLt: return "cmp-lt";
    case Op::IfEqz: return "if-eqz";
    case Op::IfNez: return "if-nez";
    case Op::Goto: return "goto";
    case Op::NewInstance: return "new-instance";
    case Op::InvokeStatic: return "invoke-static";
    case Op::InvokeVirtual: return "invoke-virtual";
    case Op::IGet: return "iget";
    case Op::IPut: return "iput";
    case Op::SGet: return "sget";
    case Op::SPut: return "sput";
    case Op::Return: return "return";
    case Op::ReturnVoid: return "return-void";
    case Op::Throw: return "throw";
    case Op::TryEnter: return "try-enter";
    case Op::TryExit: return "try-exit";
  }
  return "invalid";
}

}  // namespace dydroid::dex
