// Sandbox result-pipe protocol (docs/ISOLATION.md).
//
// In isolate mode each analysis attempt runs in a forked child
// (support::Subprocess); the only thing that crosses back to the
// supervisor is a byte stream on a pipe. A crashing child can die
// mid-write, so the stream must be self-validating: the child ships the
// standard outcome_codec payload inside the same CRC frame layer the
// write-ahead journal uses, stamped with the sandbox's own magic —
//
//   stream := magic frame
//   magic  := "DYSBOX01"                      (8 bytes)
//   frame  := len:u32 crc:u32 payload[len]    (crc = CRC-32 of payload)
//
// — and the supervisor re-reads it with the journal's parse_journal. A
// torn or bit-flipped stream (child killed mid-write, injected
// sandbox.pipe fault, fuzzed frames) is detected exactly as a torn
// journal tail is, and degrades to a quarantined crash outcome: the run
// is never corrupted by whatever a dying child managed to emit.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "driver/outcome_codec.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::driver {

/// Pipe-stream magic: "DYSBOX01" (bump the digits on protocol changes).
inline constexpr std::array<std::uint8_t, 8> kSandboxMagic = {
    'D', 'Y', 'S', 'B', 'O', 'X', '0', '1'};

/// Encode one finished attempt as the complete pipe stream the child
/// writes before exiting: magic + one CRC frame of outcome_codec payload.
[[nodiscard]] support::Bytes encode_sandbox_result(std::size_t app_index,
                                                   const AppOutcome& outcome);

/// Decode the bytes the supervisor drained from the pipe. Fails (never
/// throws) on a missing/wrong magic, a torn or bit-flipped frame, trailing
/// garbage, anything but exactly one record, or an undecodable payload —
/// the caller quarantines the app on any failure.
[[nodiscard]] support::Result<DecodedOutcome> decode_sandbox_result(
    std::span<const std::uint8_t> data);

}  // namespace dydroid::driver
