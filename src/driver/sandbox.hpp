// Sandbox result-pipe protocol (docs/ISOLATION.md).
//
// In isolate mode each analysis attempt runs in a forked child
// (support::Subprocess); the only thing that crosses back to the
// supervisor is a byte stream on a pipe. A crashing child can die
// mid-write, so the stream must be self-validating: the child ships the
// standard outcome_codec payload inside the same CRC frame layer the
// write-ahead journal uses, stamped with the sandbox's own magic —
//
//   stream := magic frame
//   magic  := "DYSBOX01"                      (8 bytes)
//   frame  := len:u32 crc:u32 payload[len]    (crc = CRC-32 of payload)
//
// — and the supervisor re-reads it with the journal's parse_journal. A
// torn or bit-flipped stream (child killed mid-write, injected
// sandbox.pipe fault, fuzzed frames) is detected exactly as a torn
// journal tail is, and degrades to a quarantined crash outcome: the run
// is never corrupted by whatever a dying child managed to emit.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "driver/outcome_codec.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::driver {

/// Pipe-stream magic: "DYSBOX01" (bump the digits on protocol changes).
inline constexpr std::array<std::uint8_t, 8> kSandboxMagic = {
    'D', 'Y', 'S', 'B', 'O', 'X', '0', '1'};

/// Encode one finished attempt as the complete pipe stream the child
/// writes before exiting: magic + one CRC frame of outcome_codec payload.
[[nodiscard]] support::Bytes encode_sandbox_result(std::size_t app_index,
                                                   const AppOutcome& outcome);

/// Decode the bytes the supervisor drained from the pipe. Fails (never
/// throws) on a missing/wrong magic, a torn or bit-flipped frame, trailing
/// garbage, anything but exactly one record, or an undecodable payload —
/// the caller quarantines the app on any failure.
[[nodiscard]] support::Result<DecodedOutcome> decode_sandbox_result(
    std::span<const std::uint8_t> data);

// ---- Worker-pool RPC (docs/ISOLATION.md §3) --------------------------------
//
// Pool mode replaces the one-shot result pipe with a persistent
// request/response conversation under its own magic. Both directions use
// the identical `magic frame` shape: requests carry the dispatch tuple the
// forked loop needs to run one attempt, responses are byte-for-byte the
// DYSBOX01 stream under the RPC magic.

/// RPC-stream magic: "DYSBRPC1" (bump the digit on protocol changes).
inline constexpr std::array<std::uint8_t, 8> kPoolRpcMagic = {
    'D', 'Y', 'S', 'B', 'R', 'P', 'C', '1'};

/// One dispatched attempt: everything the pooled child needs to run the
/// app body exactly as the fork-per-app child would.
struct PoolRequest {
  std::uint64_t app_index = 0;  // global corpus index into jobs
  std::uint32_t attempt = 0;    // retry ordinal (salts fault sessions)
  std::uint64_t seed = 0;       // the app's corpus seed (child validates)
  std::uint32_t worker = 0;     // supervisor thread ordinal (trace context)
  bool crash_child = false;     // injected sandbox.crash: abort on receipt
};

/// Encode one dispatch as a complete framed request message.
[[nodiscard]] support::Bytes encode_pool_request(const PoolRequest& request);

/// Decode a framed request message. Fails (never throws) on a bad magic,
/// torn frame or malformed payload — the serve loop exits loudly on any
/// failure (a desynchronized stream cannot be resynchronized).
[[nodiscard]] support::Result<PoolRequest> decode_pool_request(
    std::span<const std::uint8_t> data);

/// Encode one finished attempt as a framed response message.
[[nodiscard]] support::Bytes encode_pool_response(std::size_t app_index,
                                                  const AppOutcome& outcome);

/// Decode a framed response message; same failure contract (and the same
/// quarantine-on-failure caller behavior) as decode_sandbox_result.
[[nodiscard]] support::Result<DecodedOutcome> decode_pool_response(
    std::span<const std::uint8_t> data);

}  // namespace dydroid::driver
