// Deterministic shard-journal merge (docs/SHARDING.md).
//
// A sharded campaign runs N independent `dydroid survey --shard I/N`
// processes, each journaling its residue class of the corpus into its own
// write-ahead journal (docs/CHECKPOINT.md) stamped with a ShardMeta
// record. merge_shard_journals folds those N journals into ONE sealed,
// unsharded journal whose replay (`--resume` against it) is byte-identical
// to an uninterrupted unsharded run — at any worker count, faults on or
// off.
//
// Merge invariants (all violations are loud failures, never partial
// output):
//   * Every input journal must lead with a shard-metadata record; all
//     records must agree on shard count, seed base, corpus size, outcome
//     codec version (which must also be THIS build's version) and config
//     fingerprint.
//   * Exactly one journal per shard index 0..N-1 — a duplicated or missing
//     shard is an error, not a guess.
//   * Every outcome record must decode, belong to its journal's residue
//     class (index ≡ shard (mod N) — an overlap is an error), lie inside
//     the corpus, and carry the index-derived seed.
//   * All corpus indices 0..corpus_size-1 must be covered (a torn shard
//     tail that lost records surfaces here as missing indices).
//   * Duplicates *within* one shard journal resolve last-writer-wins —
//     the same rule a per-shard resume applies.
//
// The merged journal contains the winning record payloads verbatim (byte
// preservation, not re-encoding) in ascending global-index order, with no
// shard-metadata record: it is a plain journal, replayable with a plain
// `--resume`. Validation completes entirely in memory before the output
// path is opened, so a failed merge never leaves a half-written journal.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "support/error.hpp"
#include "support/journal.hpp"

namespace dydroid::driver {

/// What a successful merge folded together.
struct ShardMergeSummary {
  /// Shard count the inputs agreed on.
  std::uint32_t shard_count = 0;
  /// Full corpus size the inputs agreed on.
  std::uint64_t corpus_size = 0;
  /// Outcome records written to the merged journal (== corpus_size).
  std::size_t records_merged = 0;
  /// Superseded duplicate records dropped by last-writer-wins.
  std::size_t duplicates_dropped = 0;
  /// Damaged tail bytes dropped across all input journals (recovered the
  /// same way a resume would; losses surface as missing indices).
  std::size_t torn_bytes = 0;
  /// The agreed metadata (shard_index meaningless; kept for seed base,
  /// corpus size, codec version and config fingerprint).
  support::ShardMeta meta;
};

/// Fold the shard journals at `shard_paths` into one sealed journal at
/// `out_path` (truncating any existing file there only after validation
/// passes). Returns the summary, or a loud failure naming the first
/// violated invariant.
[[nodiscard]] support::Result<ShardMergeSummary> merge_shard_journals(
    const std::string& out_path, std::span<const std::string> shard_paths);

/// Human-readable description of the first field on which two shard-meta
/// records disagree (shard index/count compared too); empty when they are
/// equal. Shared by the merge (inter-shard agreement) and the runner's
/// per-shard resume (journal-vs-run agreement).
[[nodiscard]] std::string describe_shard_meta_mismatch(
    const support::ShardMeta& got, const support::ShardMeta& want);

}  // namespace dydroid::driver
