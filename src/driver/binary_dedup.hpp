// Corpus-wide unique-binary dedup store (docs/CACHE.md).
//
// The paper's key scaling observation (Section V): apps vastly outnumber
// the binaries they load — thousands of apps embed the same ad-SDK dex or
// the same native helper, so deduplicating intercepted payloads by content
// hash collapses the downstream analysis surface from "binaries seen" to
// "unique binaries". This store reproduces that measurement over a corpus
// run: every intercepted payload is keyed by its SHA-256 (content identity
// — see support/hash.hpp's strength classes; FNV-1a is craftably
// collidable and must never decide dedup identity) and counted once.
//
// Optionally (when the runner has a cache directory) unique payloads are
// persisted content-addressed under DIR/blobs/<hex-digest>.bin — a binary
// already on disk is never written again, across runs.
//
// Thread-safety: none. The runner absorbs outcomes in corpus order after
// the worker pool joins, which also makes every stat deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "support/hash.hpp"

namespace dydroid::driver {

/// Apps-vs-unique-binaries tallies for the survey report.
struct BinaryDedupStats {
  std::size_t total = 0;          // intercepted binaries across the corpus
  std::size_t unique = 0;         // distinct payload digests
  std::size_t unique_dex = 0;
  std::size_t unique_native = 0;
  std::uint64_t total_bytes = 0;  // payload bytes as intercepted
  std::uint64_t unique_bytes = 0; // payload bytes after dedup
  std::size_t max_reuse = 0;      // interceptions of the hottest payload
  std::size_t blobs_written = 0;  // payloads persisted by this run

  /// Bytes the dedup avoided storing/re-analyzing.
  [[nodiscard]] std::uint64_t duplicate_bytes() const {
    return total_bytes - unique_bytes;
  }
};

/// Content-addressed table of every intercepted binary in a corpus run.
class BinaryDedupStore {
 public:
  BinaryDedupStore() = default;
  /// Persist unique payloads under `blob_dir` (created on first write).
  explicit BinaryDedupStore(std::string blob_dir)
      : blob_dir_(std::move(blob_dir)) {}

  /// Absorb every intercepted binary of one finished app.
  void absorb(const core::AppReport& report);

  [[nodiscard]] bool contains(const support::Sha256Digest& digest) const {
    return counts_.find(digest) != counts_.end();
  }
  /// Interceptions recorded for one payload digest (0 = never seen).
  [[nodiscard]] std::size_t reuse(const support::Sha256Digest& digest) const;
  [[nodiscard]] const BinaryDedupStats& stats() const { return stats_; }

 private:
  std::string blob_dir_;
  std::unordered_map<support::Sha256Digest, std::size_t,
                     support::Sha256DigestHash>
      counts_;
  BinaryDedupStats stats_;
};

}  // namespace dydroid::driver
