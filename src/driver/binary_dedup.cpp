#include "driver/binary_dedup.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dydroid::driver {

namespace {

/// Write one payload content-addressed: blobs are immutable, so an
/// existing file is already the payload (equal digest, equal bytes) and is
/// never rewritten. Best-effort: a write failure costs the blob, not the
/// run.
bool persist_blob(const std::string& dir, const support::Sha256Digest& digest,
                  std::span<const std::uint8_t> bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dedup: cannot create blob dir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  const auto path = std::filesystem::path(dir) / (digest.hex() + ".bin");
  if (std::filesystem::exists(path, ec)) return false;  // already stored
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "dedup: short write persisting %s\n",
                 path.string().c_str());
    return false;
  }
  return true;
}

}  // namespace

void BinaryDedupStore::absorb(const core::AppReport& report) {
  for (const auto& binary_report : report.binaries) {
    const core::InterceptedBinary& binary = binary_report.binary;
    const auto digest = support::sha256(binary.bytes.span());
    ++stats_.total;
    stats_.total_bytes += binary.bytes.size();
    auto [it, fresh] = counts_.emplace(digest, 0);
    ++it->second;
    if (it->second > stats_.max_reuse) stats_.max_reuse = it->second;
    if (!fresh) continue;
    ++stats_.unique;
    stats_.unique_bytes += binary.bytes.size();
    if (binary.kind == core::CodeKind::Dex) {
      ++stats_.unique_dex;
    } else {
      ++stats_.unique_native;
    }
    if (!blob_dir_.empty() &&
        persist_blob(blob_dir_, digest, binary.bytes.span())) {
      ++stats_.blobs_written;
    }
  }
}

std::size_t BinaryDedupStore::reuse(const support::Sha256Digest& digest) const {
  const auto it = counts_.find(digest);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace dydroid::driver
