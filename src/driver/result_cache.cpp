#include "driver/result_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "driver/outcome_codec.hpp"
#include "malware/droidnative.hpp"
#include "support/fault.hpp"
#include "support/io.hpp"

namespace dydroid::driver {

namespace {

/// Cache record payload, inside the CRC frame:
///   version:u8 apk[32] config[32] seed:u64 outcome:blob
/// where outcome is an encode_outcome payload (index 0; the corpus index
/// is positional state of a *run*, not of the content-addressed result).
support::Bytes encode_record(const CacheKey& key,
                             std::span<const std::uint8_t> outcome_payload) {
  support::ByteWriter w;
  w.reserve(1 + 32 + 32 + 8 + 4 + outcome_payload.size());
  w.u8(kCacheCodecVersion);
  w.raw(key.apk.bytes);
  w.raw(key.config.bytes);
  w.u64(key.seed);
  w.blob(outcome_payload);
  return w.take();
}

struct DecodedRecord {
  CacheKey key;
  support::Bytes outcome_payload;
};

/// Throws support::ParseError on truncation / version mismatch.
DecodedRecord decode_record(std::span<const std::uint8_t> payload) {
  support::ByteReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kCacheCodecVersion) {
    throw support::ParseError("cache: unsupported record version " +
                              std::to_string(version));
  }
  DecodedRecord out;
  const auto apk = r.raw(32);
  const auto config = r.raw(32);
  std::copy(apk.begin(), apk.end(), out.key.apk.bytes.begin());
  std::copy(config.begin(), config.end(), out.key.config.bytes.begin());
  out.key.seed = r.u64();
  out.outcome_payload = r.blob();
  if (!r.at_end()) throw support::ParseError("cache: trailing record bytes");
  return out;
}

}  // namespace

support::Result<ResultCache> ResultCache::open(
    const std::string& dir, const support::Sha256Digest& expected_config,
    CacheConfig config) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return support::Result<ResultCache>::failure(
        "cache: cannot create directory " + dir + ": " + ec.message());
  }
  ResultCache cache;
  cache.config_ = config;
  cache.expected_config_ = expected_config;
  cache.store_path_ = (std::filesystem::path(dir) / kCacheFileName).string();

  // Load the existing store, journal-style: walk intact frames, stop at
  // the first damaged one, chop the damaged tail so appends land after the
  // last intact record. Damaged *contents* never fail the open — the cache
  // is advisory — but a store file we cannot read as our own format (bad
  // magic: some other file squatting on the path) is a loud failure.
  if (std::filesystem::exists(cache.store_path_, ec)) {
    auto read = support::read_journal(cache.store_path_, kCacheMagic);
    if (!read.ok()) {
      return support::Result<ResultCache>::failure(read.error());
    }
    if (read.value().torn()) {
      cache.stats_.torn_tail = true;
      std::fprintf(stderr,
                   "cache: recovered torn tail in %s (%zu bytes discarded)\n",
                   cache.store_path_.c_str(), read.value().bytes_discarded);
      const auto truncated = support::truncate_journal(
          cache.store_path_, read.value().bytes_recovered);
      if (!truncated.ok()) {
        return support::Result<ResultCache>::failure(truncated.error());
      }
    }
    for (const auto& record : read.value().records) {
      DecodedRecord decoded;
      try {
        decoded = decode_record(record);
      } catch (const support::ParseError&) {
        // CRC-intact but semantically unreadable (foreign codec version,
        // truncated fields): skip and recompute — never crash.
        ++cache.stats_.skipped;
        cache.dirty_ = true;
        continue;
      }
      if (decoded.key.config != expected_config) {
        ++cache.stats_.invalidated;
        cache.dirty_ = true;
        continue;
      }
      // Last writer wins on duplicate keys (same rule as journal replay);
      // a later record also refreshes recency.
      auto it = cache.index_.find(decoded.key);
      if (it != cache.index_.end()) {
        cache.payload_bytes_ -= it->second.payload.size();
        cache.payload_bytes_ += decoded.outcome_payload.size();
        it->second.payload = std::move(decoded.outcome_payload);
        cache.lru_.splice(cache.lru_.end(), cache.lru_, it->second.lru_it);
        cache.dirty_ = true;  // duplicate frames on disk
      } else {
        const auto lru_it =
            cache.lru_.insert(cache.lru_.end(), decoded.key);
        cache.payload_bytes_ += decoded.outcome_payload.size();
        cache.index_.emplace(decoded.key,
                             Entry{std::move(decoded.outcome_payload), lru_it});
      }
    }
    cache.stats_.loaded = cache.index_.size();
    if (cache.stats_.invalidated > 0) {
      std::fprintf(stderr,
                   "cache: invalidated %zu entries in %s with a stale config "
                   "fingerprint (current %s) — the pipeline configuration "
                   "changed; those apps will recompute\n",
                   cache.stats_.invalidated, cache.store_path_.c_str(),
                   expected_config.hex().c_str());
    }
    if (cache.stats_.skipped > 0) {
      std::fprintf(stderr, "cache: skipped %zu undecodable entries in %s\n",
                   cache.stats_.skipped, cache.store_path_.c_str());
    }
  }

  support::JournalWriterOptions writer_options;
  writer_options.fsync_each_record = config.fsync_each_insert;
  writer_options.magic = kCacheMagic;
  writer_options.fault_site = support::FaultSite::kCacheWrite;
  auto writer = support::JournalWriter::open(cache.store_path_, writer_options);
  if (!writer.ok()) {
    return support::Result<ResultCache>::failure(writer.error());
  }
  cache.writer_.emplace(std::move(writer).take());

  // Loaded entries may already exceed this run's (possibly tighter)
  // bounds.
  {
    std::lock_guard<std::mutex> lock(*cache.mutex_);
    cache.evict_past_bounds_locked();
  }
  return std::move(cache);
}

ResultCache::~ResultCache() {
  if (mutex_) (void)seal();
}

std::optional<AppOutcome> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (support::fault_fire(support::FaultSite::kCacheRead)) {
    // Injected read error: the cache is advisory, so a failed read is just
    // a miss — the app recomputes and the run's outputs do not change.
    ++stats_.read_faults;
    ++stats_.misses;
    return std::nullopt;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  DecodedOutcome decoded;
  try {
    decoded = decode_outcome(it->second.payload);
  } catch (const support::ParseError& e) {
    // An entry that passed CRC at open but no longer decodes (foreign
    // outcome codec version): drop it and recompute.
    std::fprintf(stderr, "cache: dropping undecodable entry (%s)\n", e.what());
    payload_bytes_ -= it->second.payload.size();
    lru_.erase(it->second.lru_it);
    index_.erase(it);
    ++stats_.skipped;
    ++stats_.misses;
    dirty_ = true;
    return std::nullopt;
  }
  touch_locked(it->second, key);
  ++stats_.hits;
  AppOutcome outcome = std::move(decoded.outcome);
  // decode_outcome stamps journal-replay provenance; a cache hit is not a
  // journal replay. The runner stamps cache provenance on its side.
  outcome.replayed = false;
  return outcome;
}

void ResultCache::insert(const CacheKey& key, const AppOutcome& outcome) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (!writer_.has_value()) return;  // sealed: run is shutting down
  support::Bytes payload = encode_outcome(0, outcome);
  const support::Bytes record = encode_record(key, payload);
  const auto appended = writer_->append(record);
  if (!appended.ok()) {
    // cache.write fault or real I/O error: the frame on disk is torn, the
    // entry is dropped. dirty_ forces seal() to compact, which rewrites
    // the file from the intact in-memory entries and so repairs the tear.
    ++stats_.write_failures;
    dirty_ = true;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    payload_bytes_ -= it->second.payload.size();
    payload_bytes_ += payload.size();
    it->second.payload = std::move(payload);
    touch_locked(it->second, key);
    dirty_ = true;  // the overwritten frame is now garbage on disk
  } else {
    const auto lru_it = lru_.insert(lru_.end(), key);
    payload_bytes_ += payload.size();
    index_.emplace(key, Entry{std::move(payload), lru_it});
  }
  evict_past_bounds_locked();
}

void ResultCache::touch_locked(Entry& entry, const CacheKey& /*key*/) {
  lru_.splice(lru_.end(), lru_, entry.lru_it);
}

void ResultCache::evict_past_bounds_locked() {
  while (!lru_.empty() &&
         ((config_.max_entries != 0 && index_.size() > config_.max_entries) ||
          (config_.max_bytes != 0 && payload_bytes_ > config_.max_bytes))) {
    const CacheKey victim = lru_.front();
    const auto it = index_.find(victim);
    payload_bytes_ -= it->second.payload.size();
    lru_.pop_front();
    index_.erase(it);
    ++stats_.evictions;
    dirty_ = true;  // evicted frames stay on disk until compaction
  }
}

support::Status ResultCache::seal() {
  if (!mutex_) return {};  // moved-from shell
  std::lock_guard<std::mutex> lock(*mutex_);
  if (!writer_.has_value()) return {};  // already sealed
  support::Status status = writer_->seal();
  writer_.reset();
  if (!dirty_) return status;

  // Compact: rewrite the store to the surviving entries in LRU order
  // (least recent first — file order IS recency order at the next open),
  // then atomically swap it in. On any failure the original file is left
  // in place: it still replays correctly, just with garbage frames.
  const std::string tmp_path = store_path_ + ".compact";
  support::JournalWriterOptions writer_options;
  writer_options.truncate = true;
  writer_options.magic = kCacheMagic;
  writer_options.fault_site = support::FaultSite::kCacheWrite;
  auto writer = support::JournalWriter::open(tmp_path, writer_options);
  if (!writer.ok()) return support::Status::failure(writer.error());
  for (const auto& key : lru_) {
    const auto& entry = index_.at(key);
    const auto appended =
        writer.value().append(encode_record(key, entry.payload));
    if (!appended.ok()) {
      (void)writer.value().seal();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return appended;
    }
  }
  const auto sealed = writer.value().seal();
  if (!sealed.ok()) return sealed;
  std::error_code ec;
  std::filesystem::rename(tmp_path, store_path_, ec);
  if (ec) {
    return support::Status::failure("cache: cannot rename " + tmp_path +
                                    " over " + store_path_ + ": " +
                                    ec.message());
  }
  // The rename is only crash-durable once the parent directory is fsynced;
  // without it the swap itself can vanish after power loss and the next
  // open would replay the garbage-laden pre-compaction file.
  if (const auto synced = support::fsync_parent_dir(store_path_);
      !synced.ok()) {
    return synced;
  }
  dirty_ = false;
  return status;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return index_.size();
}

std::uint64_t ResultCache::payload_bytes() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return payload_bytes_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return stats_;
}

std::vector<CacheKey> ResultCache::lru_order() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return {lru_.begin(), lru_.end()};
}

// ---- config fingerprint ----------------------------------------------------

support::Sha256Digest config_fingerprint(const core::DyDroid& pipeline) {
  const core::PipelineOptions& options = pipeline.options();
  support::ByteWriter w;
  // Domain label + codec version: bumping the outcome codec re-keys every
  // entry, so a new driver never replays payloads it cannot decode.
  w.str("dydroid.config.v1");
  w.u8(kCacheCodecVersion);
  w.u8(kOutcomeCodecVersion);

  // Stage list (execution order). A custom stage list — extra stage,
  // reordering, static-only subset — is a different pipeline.
  const auto stages = pipeline.stage_names();
  w.u32(static_cast<std::uint32_t>(stages.size()));
  for (const auto name : stages) w.str(name);

  // Engine / device / runtime knobs: anything that steers the fuzzer, the
  // VM budget or the simulated environment steers the report.
  w.u32(static_cast<std::uint32_t>(options.engine.monkey.num_events));
  w.u32(static_cast<std::uint32_t>(options.engine.monkey.num_view_ids));
  w.u64(options.engine.limits.max_steps_per_entry);
  w.u32(static_cast<std::uint32_t>(options.engine.limits.max_call_depth));
  w.u32(static_cast<std::uint32_t>(options.device.api_level));
  w.u64(options.device.storage_capacity_bytes);
  w.u8(options.runtime.time_ms.has_value() ? 1 : 0);
  w.i64(options.runtime.time_ms.value_or(0));
  w.u8(options.runtime.airplane_mode ? 1 : 0);
  w.u8(options.runtime.wifi_enabled ? 1 : 0);
  w.u8(options.runtime.location_enabled ? 1 : 0);

  // Scenario closures cannot be hashed; fingerprint their presence only.
  // docs/CACHE.md spells out why this stays sound for corpus runs (the
  // per-app scenario is a pure function of the app spec, i.e. of the APK
  // bytes already in the key) and when to use a fresh cache dir instead.
  w.u8(options.scenario_setup ? 1 : 0);

  // Detector identity by observable training state (a proxy: the sample
  // set itself is not reachable from here, but size + families + threshold
  // catch every supported way of configuring it differently).
  w.u8(options.detector != nullptr ? 1 : 0);
  if (options.detector != nullptr) {
    w.u64(std::bit_cast<std::uint64_t>(options.detector->threshold()));
    w.u64(options.detector->training_size());
    const auto families = options.detector->families();
    w.u32(static_cast<std::uint32_t>(families.size()));
    for (const auto& family : families) w.str(family);
  }

  w.u8(options.dynamic_analysis ? 1 : 0);

  // Fault plan: injected failures are part of the deterministic outcome
  // (a crash bucket under faults is a *correct* result for that plan).
  w.u8(options.faults != nullptr ? 1 : 0);
  if (options.faults != nullptr) w.str(options.faults->to_string());

  // Driver policy that shapes outcomes: timeout budget, retry/quarantine.
  w.u64(std::bit_cast<std::uint64_t>(options.max_app_wall_ms));
  w.u8(options.retry_on_crash ? 1 : 0);

  return support::sha256(w.data());
}

}  // namespace dydroid::driver
