// Content-addressed result cache (docs/CACHE.md).
//
// The paper's corpus (Section V) is dominated by repeated content: the
// same APK resubmitted across markets, repacked variants sharing payloads,
// and re-runs of the measurement after a driver upgrade. The cache makes
// re-analysis of identical work free: it maps
//
//   (SHA-256 of the APK bytes, SHA-256 config fingerprint, app seed)
//     -> encoded AppOutcome (the same payload codec the resume journal uses)
//
// so a corpus run can skip analyze() for any app whose exact bytes were
// already analyzed under the exact same pipeline configuration and seed.
// Identity bottoms out in SHA-256 — never FNV-1a (see support/hash.hpp's
// strength classes): a craftable 64-bit collision must land in distinct
// cache entries, not serve one app's results for another's bytes.
//
// On-disk layout: DIR/results.dyc reuses the journal frame layer
// (support/journal.hpp) under its own magic "DYCACH01" — CRC-framed
// records, append-only writes, torn-tail recovery. Unlike the journal the
// cache is *advisory*: a torn tail, an undecodable record or a stale
// config fingerprint never aborts a run — damaged entries are skipped
// (loudly, to stderr) and the apps recompute. File order doubles as the
// LRU order (front = least recent); eviction drops in-memory entries once
// max_entries/max_bytes are exceeded and seal() compacts the file to the
// survivors in LRU order, so recency survives across runs.
//
// Fault sites (docs/FAULTS.md): cache.read fails a lookup (treated as a
// miss), cache.write fails an insert (the entry is dropped and the frame
// left genuinely torn). Both degrade, never abort — cached and uncached
// runs stay byte-identical under injection.
//
// Thread-safety: all public methods are internally synchronized; one
// ResultCache serves every corpus worker.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "driver/corpus_runner.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"

namespace dydroid::core {
class DyDroid;
}

namespace dydroid::driver {

/// Cache file magic: "DYCACH01" (bump the digits on format changes). Keeps
/// a cache file from ever being mistaken for an outcome journal.
inline constexpr std::array<std::uint8_t, 8> kCacheMagic = {
    'D', 'Y', 'C', 'A', 'C', 'H', '0', '1'};

/// Cache record payload version (first byte of every record payload).
inline constexpr std::uint8_t kCacheCodecVersion = 1;

/// The store file inside the cache directory.
inline constexpr std::string_view kCacheFileName = "results.dyc";

/// Full identity of one cached analysis. Every component is
/// content-addressed: apk is the digest of the exact package bytes, config
/// the fingerprint of the exact pipeline semantics, seed the exact fuzzing
/// stream. Equal keys replay byte-identical reports.
struct CacheKey {
  support::Sha256Digest apk;
  support::Sha256Digest config;
  std::uint64_t seed = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    const support::Sha256DigestHash h;
    return support::hash_combine(
        support::hash_combine(h(k.apk), h(k.config)), k.seed);
  }
};

/// Capacity bounds. 0 means unlimited. Bytes count encoded record
/// payloads (the dominant cost), not framing.
struct CacheConfig {
  std::size_t max_entries = 0;
  std::uint64_t max_bytes = 0;
  /// fsync(2) after every insert (default off, like the journal).
  bool fsync_each_insert = false;
};

/// Counters for diagnostics and the survey summary. `loaded`/`invalidated`/
/// `skipped` describe open-time recovery; the rest accumulate per call.
struct CacheStats {
  std::size_t loaded = 0;        // intact, current-config entries at open
  std::size_t invalidated = 0;   // entries under a stale config fingerprint
  std::size_t skipped = 0;       // undecodable records dropped at open
  bool torn_tail = false;        // open recovered a damaged tail
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;     // entries dropped by capacity bounds
  std::size_t read_faults = 0;   // cache.read fired (served as misses)
  std::size_t write_failures = 0;  // cache.write fired / append error
};

/// The on-disk, capacity-bounded result store. See the header comment for
/// the format and recovery rules.
class ResultCache {
 public:
  /// Open (creating the directory and store file if absent) the cache at
  /// `dir`. Entries whose config digest differs from `expected_config` are
  /// invalidated — dropped from the index with a stderr warning naming
  /// both fingerprints, so a semantic config change is loud, never a
  /// silent corpus-wide miss. Damaged records/tails are recovered
  /// journal-style. Fails only on real I/O errors (unwritable dir, store
  /// open failure) — never on damaged contents.
  static support::Result<ResultCache> open(
      const std::string& dir, const support::Sha256Digest& expected_config,
      CacheConfig config = {});

  ResultCache(ResultCache&&) noexcept = default;
  ResultCache& operator=(ResultCache&&) noexcept = default;
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;
  ~ResultCache();

  /// Look up one key. A hit refreshes recency and returns the decoded
  /// outcome (completed=true, replayed/cache flags cleared — the caller
  /// stamps provenance). A cache.read fault or an entry that no longer
  /// decodes degrades to a miss (the bad entry is dropped).
  [[nodiscard]] std::optional<AppOutcome> lookup(const CacheKey& key);

  /// Insert (or overwrite) one finished outcome. Appends the record to the
  /// store, then admits it to the index and evicts LRU entries past the
  /// capacity bounds. A cache.write fault or append error drops the entry
  /// (counted in write_failures) without failing the run.
  void insert(const CacheKey& key, const AppOutcome& outcome);

  /// Flush and close the store. If entries were evicted, overwritten or
  /// damaged records dropped, the file is first compacted: rewritten to
  /// the surviving entries in LRU order (temp file + atomic rename), so
  /// the next open sees exactly the index state and recency this run
  /// ended with. Idempotent; also performed by the destructor.
  support::Status seal();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t payload_bytes() const;
  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const std::string& store_path() const { return store_path_; }

  /// Keys in recency order, least recent first (the compaction order).
  /// Test hook for the LRU-eviction suite.
  [[nodiscard]] std::vector<CacheKey> lru_order() const;

 private:
  struct Entry {
    support::Bytes payload;  // encoded outcome record (codec payload)
    std::list<CacheKey>::iterator lru_it;
  };

  ResultCache() = default;

  void evict_past_bounds_locked();
  void touch_locked(Entry& entry, const CacheKey& key);

  // Behind unique_ptr so the cache stays movable (std::mutex is not).
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::string store_path_;
  CacheConfig config_;
  support::Sha256Digest expected_config_{};
  std::optional<support::JournalWriter> writer_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> index_;
  std::list<CacheKey> lru_;  // front = least recently used
  std::uint64_t payload_bytes_ = 0;
  /// Disk no longer mirrors the index (eviction, overwrite, damage):
  /// seal() must compact.
  bool dirty_ = false;
  CacheStats stats_;
};

/// SHA-256 fingerprint of everything that changes analysis semantics:
/// stage list, engine/device/runtime knobs, detector identity, fault plan,
/// retry/timeout policy and the outcome codec version. Two pipelines with
/// equal fingerprints produce byte-identical reports for equal (apk, seed)
/// — the invariant the cache's correctness rests on. Caveat: per-app
/// scenario closures cannot be fingerprinted; only their presence is
/// (docs/CACHE.md discusses why corpus scenarios derived 1:1 from the app
/// bytes keep this sound).
[[nodiscard]] support::Sha256Digest config_fingerprint(
    const core::DyDroid& pipeline);

}  // namespace dydroid::driver
