#include "driver/shard_merge.hpp"

#include <utility>
#include <vector>

#include "driver/corpus_runner.hpp"
#include "driver/outcome_codec.hpp"
#include "support/strings.hpp"

namespace dydroid::driver {

namespace {

using MergeResult = support::Result<ShardMergeSummary>;

std::string hex_prefix(const std::array<std::uint8_t, 32>& fp) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < 8; ++i) {
    out.push_back(kHex[fp[i] >> 4]);
    out.push_back(kHex[fp[i] & 0xF]);
  }
  return out;
}

}  // namespace

std::string describe_shard_meta_mismatch(const support::ShardMeta& got,
                                         const support::ShardMeta& want) {
  if (got.shard_index != want.shard_index ||
      got.shard_count != want.shard_count) {
    return support::format("shard %u/%u vs shard %u/%u", got.shard_index,
                           got.shard_count, want.shard_index,
                           want.shard_count);
  }
  if (got.seed_base != want.seed_base) {
    return support::format(
        "seed base %llu vs %llu",
        static_cast<unsigned long long>(got.seed_base),
        static_cast<unsigned long long>(want.seed_base));
  }
  if (got.corpus_size != want.corpus_size) {
    return support::format(
        "corpus size %llu vs %llu",
        static_cast<unsigned long long>(got.corpus_size),
        static_cast<unsigned long long>(want.corpus_size));
  }
  if (got.outcome_codec_version != want.outcome_codec_version) {
    return support::format("outcome codec version %u vs %u",
                           got.outcome_codec_version,
                           want.outcome_codec_version);
  }
  if (got.config_fingerprint != want.config_fingerprint) {
    return support::format(
        "config fingerprint %s... vs %s... (differently configured "
        "pipelines)",
        hex_prefix(got.config_fingerprint).c_str(),
        hex_prefix(want.config_fingerprint).c_str());
  }
  return {};
}

support::Result<ShardMergeSummary> merge_shard_journals(
    const std::string& out_path, std::span<const std::string> shard_paths) {
  if (shard_paths.empty()) {
    return MergeResult::failure("merge: no shard journals given");
  }

  ShardMergeSummary summary;
  // Winning payload per global index, preserved verbatim (an outcome
  // payload is never empty — it leads with a version byte — so empty
  // means "not covered yet").
  std::vector<support::Bytes> winners;
  std::vector<char> shard_seen;
  bool have_reference = false;
  support::ShardMeta reference;  // shard_index normalized to 0

  for (const std::string& path : shard_paths) {
    auto read = support::read_journal(path);
    if (!read.ok()) {
      return MergeResult::failure("merge: " + read.error());
    }
    summary.torn_bytes += read.value().bytes_discarded;
    const auto& records = read.value().records;
    if (records.empty() || !support::is_shard_meta(records.front())) {
      return MergeResult::failure(
          "merge: " + path +
          ": not a shard journal (no shard-metadata record; merge folds "
          "journals produced by --shard runs)");
    }
    support::ShardMeta meta;
    try {
      meta = support::decode_shard_meta(records.front());
    } catch (const std::exception& e) {
      return MergeResult::failure("merge: " + path +
                                  ": corrupt shard metadata: " + e.what());
    }
    if (meta.outcome_codec_version != kOutcomeCodecVersion) {
      return MergeResult::failure(support::format(
          "merge: %s: outcome codec version %u but this build reads "
          "version %u",
          path.c_str(), meta.outcome_codec_version, kOutcomeCodecVersion));
    }
    if (meta.corpus_size > kMaxCorpusApps) {
      return MergeResult::failure(support::format(
          "merge: %s: corpus size %llu exceeds the %llu-app ceiling",
          path.c_str(), static_cast<unsigned long long>(meta.corpus_size),
          static_cast<unsigned long long>(kMaxCorpusApps)));
    }
    if (!have_reference) {
      reference = meta;
      reference.shard_index = 0;
      have_reference = true;
      winners.assign(static_cast<std::size_t>(meta.corpus_size), {});
      shard_seen.assign(meta.shard_count, 0);
      summary.shard_count = meta.shard_count;
      summary.corpus_size = meta.corpus_size;
      summary.meta = reference;
    } else {
      support::ShardMeta normalized = meta;
      normalized.shard_index = 0;
      if (const std::string mismatch =
              describe_shard_meta_mismatch(normalized, reference);
          !mismatch.empty()) {
        return MergeResult::failure("merge: " + path +
                                    ": metadata disagrees with " +
                                    shard_paths.front() + ": " + mismatch);
      }
    }
    if (shard_seen[meta.shard_index]) {
      return MergeResult::failure(support::format(
          "merge: %s: shard %u/%u appears in more than one input journal",
          path.c_str(), meta.shard_index, meta.shard_count));
    }
    shard_seen[meta.shard_index] = 1;

    for (std::size_t i = 1; i < records.size(); ++i) {
      const support::Bytes& record = records[i];
      if (support::is_shard_meta(record)) {
        return MergeResult::failure(
            "merge: " + path + ": unexpected extra shard-metadata record");
      }
      DecodedOutcome decoded;
      try {
        decoded = decode_outcome(record);
      } catch (const std::exception& e) {
        return MergeResult::failure("merge: " + path +
                                    ": corrupt journal record: " + e.what());
      }
      if (decoded.index >= meta.corpus_size) {
        return MergeResult::failure(support::format(
            "merge: %s: record for app %zu but the corpus has %llu apps",
            path.c_str(), decoded.index,
            static_cast<unsigned long long>(meta.corpus_size)));
      }
      if (decoded.index % meta.shard_count != meta.shard_index) {
        return MergeResult::failure(support::format(
            "merge: %s: record for app %zu does not belong to shard %u/%u "
            "(overlapping shards?)",
            path.c_str(), decoded.index, meta.shard_index,
            meta.shard_count));
      }
      if (decoded.outcome.seed !=
          seed_for_app(meta.seed_base, decoded.index)) {
        return MergeResult::failure(support::format(
            "merge: %s: app %zu journaled with seed %llu but the shard's "
            "seed base derives %llu",
            path.c_str(), decoded.index,
            static_cast<unsigned long long>(decoded.outcome.seed),
            static_cast<unsigned long long>(
                seed_for_app(meta.seed_base, decoded.index))));
      }
      // Last-writer-wins within a shard — the same duplicate resolution a
      // per-shard resume applies to its own journal.
      if (!winners[decoded.index].empty()) ++summary.duplicates_dropped;
      winners[decoded.index] = record;
    }
  }

  for (std::uint32_t shard = 0; shard < summary.shard_count; ++shard) {
    if (!shard_seen[shard]) {
      return MergeResult::failure(support::format(
          "merge: missing the journal for shard %u/%u (got %zu of %u "
          "shard journals)",
          shard, summary.shard_count, shard_paths.size(),
          summary.shard_count));
    }
  }
  std::size_t missing = 0;
  std::size_t first_missing = 0;
  for (std::size_t index = 0; index < winners.size(); ++index) {
    if (winners[index].empty()) {
      if (missing == 0) first_missing = index;
      ++missing;
    }
  }
  if (missing > 0) {
    return MergeResult::failure(support::format(
        "merge: %zu of %zu app outcome(s) missing (first missing app %zu) "
        "— an incomplete or torn shard; resume that shard to completion "
        "and merge again",
        missing, winners.size(), first_missing));
  }

  // Everything validated in memory; only now touch the output path.
  support::JournalWriterOptions options;
  options.truncate = true;
  auto writer = support::JournalWriter::open(out_path, options);
  if (!writer.ok()) {
    return MergeResult::failure("merge: " + writer.error());
  }
  support::JournalWriter out = std::move(writer).take();
  for (const support::Bytes& record : winners) {
    if (const support::Status appended = out.append(record); !appended.ok()) {
      return MergeResult::failure("merge: " + appended.error());
    }
  }
  if (const support::Status sealed = out.seal(); !sealed.ok()) {
    return MergeResult::failure("merge: " + sealed.error());
  }
  summary.records_merged = winners.size();
  return summary;
}

}  // namespace dydroid::driver
