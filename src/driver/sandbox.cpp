#include "driver/sandbox.hpp"

#include "support/journal.hpp"
#include "support/strings.hpp"

namespace dydroid::driver {

support::Bytes encode_sandbox_result(std::size_t app_index,
                                     const AppOutcome& outcome) {
  support::ByteWriter payload;
  payload.reserve(512);
  encode_outcome_into(app_index, outcome, payload);
  support::ByteWriter stream;
  stream.reserve(payload.size() + kSandboxMagic.size() +
                 support::kJournalFrameOverhead);
  stream.raw(kSandboxMagic);
  support::encode_frame(stream, payload.data());
  return stream.take();
}

support::Result<DecodedOutcome> decode_sandbox_result(
    std::span<const std::uint8_t> data) {
  if (data.empty()) {
    return support::Result<DecodedOutcome>::failure(
        "sandbox: empty result pipe (child died before writing)");
  }
  auto parsed = support::parse_journal(data, kSandboxMagic);
  if (!parsed.ok()) {
    return support::Result<DecodedOutcome>::failure("sandbox: " +
                                                    parsed.error());
  }
  const auto& read = parsed.value();
  if (read.records.size() != 1 || read.torn()) {
    return support::Result<DecodedOutcome>::failure(support::format(
        "sandbox: expected one intact result frame, got %zu record(s) with "
        "%zu damaged trailing byte(s)",
        read.records.size(), read.bytes_discarded));
  }
  try {
    return decode_outcome(read.records.front());
  } catch (const std::exception& e) {
    // A payload that passed its CRC but fails to decode (version skew,
    // deliberately crafted fuzz input): same quarantine path as a tear.
    return support::Result<DecodedOutcome>::failure(
        std::string("sandbox: corrupt result payload: ") + e.what());
  }
}

namespace {

/// Parse one `magic frame` message and hand back the single intact record.
support::Result<support::Bytes> single_record(
    std::span<const std::uint8_t> data,
    const std::array<std::uint8_t, 8>& magic, const char* what) {
  if (data.empty()) {
    return support::Result<support::Bytes>::failure(
        std::string("pool: empty ") + what + " message");
  }
  auto parsed = support::parse_journal(data, magic);
  if (!parsed.ok()) {
    return support::Result<support::Bytes>::failure("pool: " + parsed.error());
  }
  const auto& read = parsed.value();
  if (read.records.size() != 1 || read.torn()) {
    return support::Result<support::Bytes>::failure(support::format(
        "pool: expected one intact %s frame, got %zu record(s) with "
        "%zu damaged trailing byte(s)",
        what, read.records.size(), read.bytes_discarded));
  }
  return support::Bytes(read.records.front().begin(),
                        read.records.front().end());
}

}  // namespace

support::Bytes encode_pool_request(const PoolRequest& request) {
  support::ByteWriter payload;
  payload.u64(request.app_index);
  payload.u32(request.attempt);
  payload.u64(request.seed);
  payload.u32(request.worker);
  payload.u8(request.crash_child ? 1 : 0);
  support::ByteWriter stream;
  stream.reserve(payload.size() + kPoolRpcMagic.size() +
                 support::kJournalFrameOverhead);
  stream.raw(kPoolRpcMagic);
  support::encode_frame(stream, payload.data());
  return stream.take();
}

support::Result<PoolRequest> decode_pool_request(
    std::span<const std::uint8_t> data) {
  auto record = single_record(data, kPoolRpcMagic, "request");
  if (!record.ok()) {
    return support::Result<PoolRequest>::failure(record.error());
  }
  try {
    support::ByteReader reader(record.value());
    PoolRequest request;
    request.app_index = reader.u64();
    request.attempt = reader.u32();
    request.seed = reader.u64();
    request.worker = reader.u32();
    request.crash_child = reader.u8() != 0;
    if (!reader.at_end()) {
      return support::Result<PoolRequest>::failure(
          "pool: trailing bytes after request payload");
    }
    return request;
  } catch (const std::exception& e) {
    return support::Result<PoolRequest>::failure(
        std::string("pool: corrupt request payload: ") + e.what());
  }
}

support::Bytes encode_pool_response(std::size_t app_index,
                                    const AppOutcome& outcome) {
  support::ByteWriter payload;
  payload.reserve(512);
  encode_outcome_into(app_index, outcome, payload);
  support::ByteWriter stream;
  stream.reserve(payload.size() + kPoolRpcMagic.size() +
                 support::kJournalFrameOverhead);
  stream.raw(kPoolRpcMagic);
  support::encode_frame(stream, payload.data());
  return stream.take();
}

support::Result<DecodedOutcome> decode_pool_response(
    std::span<const std::uint8_t> data) {
  auto record = single_record(data, kPoolRpcMagic, "response");
  if (!record.ok()) {
    return support::Result<DecodedOutcome>::failure(record.error());
  }
  try {
    return decode_outcome(record.value());
  } catch (const std::exception& e) {
    return support::Result<DecodedOutcome>::failure(
        std::string("pool: corrupt response payload: ") + e.what());
  }
}

}  // namespace dydroid::driver
