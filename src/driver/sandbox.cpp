#include "driver/sandbox.hpp"

#include "support/journal.hpp"
#include "support/strings.hpp"

namespace dydroid::driver {

support::Bytes encode_sandbox_result(std::size_t app_index,
                                     const AppOutcome& outcome) {
  support::ByteWriter payload;
  payload.reserve(512);
  encode_outcome_into(app_index, outcome, payload);
  support::ByteWriter stream;
  stream.reserve(payload.size() + kSandboxMagic.size() +
                 support::kJournalFrameOverhead);
  stream.raw(kSandboxMagic);
  support::encode_frame(stream, payload.data());
  return stream.take();
}

support::Result<DecodedOutcome> decode_sandbox_result(
    std::span<const std::uint8_t> data) {
  if (data.empty()) {
    return support::Result<DecodedOutcome>::failure(
        "sandbox: empty result pipe (child died before writing)");
  }
  auto parsed = support::parse_journal(data, kSandboxMagic);
  if (!parsed.ok()) {
    return support::Result<DecodedOutcome>::failure("sandbox: " +
                                                    parsed.error());
  }
  const auto& read = parsed.value();
  if (read.records.size() != 1 || read.torn()) {
    return support::Result<DecodedOutcome>::failure(support::format(
        "sandbox: expected one intact result frame, got %zu record(s) with "
        "%zu damaged trailing byte(s)",
        read.records.size(), read.bytes_discarded));
  }
  try {
    return decode_outcome(read.records.front());
  } catch (const std::exception& e) {
    // A payload that passed its CRC but fails to decode (version skew,
    // deliberately crafted fuzz input): same quarantine path as a tear.
    return support::Result<DecodedOutcome>::failure(
        std::string("sandbox: corrupt result payload: ") + e.what());
  }
}

}  // namespace dydroid::driver
