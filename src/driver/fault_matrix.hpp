// Golden-corpus differential fault matrix: the harness behind
// `dydroid faultcheck` and tests/fault_matrix_test.cpp.
//
// It generates one small paper-calibrated corpus, records a fault-free
// baseline, then replays the same corpus with exactly one injection site
// armed (`site=always`) per case — plus one byte-corruption case per
// appgen::CorruptionLayer. For every app it asserts the outcome moved only
// into the bucket the Table II failure taxonomy predicts for that site
// (or stayed byte-identical when the site is unreachable for that app),
// and that every configuration is byte-identical across 1/2/8 workers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "appgen/faulty.hpp"
#include "core/pipeline.hpp"
#include "driver/corpus_runner.hpp"

namespace dydroid::driver {

/// What one fault case predicts for one app, given the app's generation
/// spec (ground truth) and its fault-free baseline report.
struct FaultPrediction {
  /// The site is unreachable for this app: the full report (JSON) must be
  /// byte-identical to the baseline. When set, the other fields are unused.
  bool byte_identical = false;
  /// Expected Table II bucket under the fault.
  std::optional<core::DynamicStatus> status;
  std::optional<bool> decompile_failed;
  /// True -> report.binaries must be empty under the fault.
  std::optional<bool> no_binaries;
};

using FaultPredictor = std::function<FaultPrediction(
    const appgen::GeneratedApp& app, const core::AppReport& baseline)>;

/// One differential case: a fault plan plus its per-app prediction.
struct FaultMatrixCase {
  std::string name;
  std::string plan;  // support::FaultPlan grammar, e.g. "dex.parse=always"
  FaultPredictor predict;
};

/// Every injection site in `always` mode with its predicted bucket:
///   apk.deserialize / manifest.parse / dex.parse -> not-run (decompiler
///     fails first), rewrite.repack -> rewriting-failure for apps needing
///     the permission injection, device.boot / device.install -> crash for
///     apps that reach the dynamic phase, interceptor.io -> same bucket but
///     zero intercepted binaries, native.load -> crash for apps that load
///     non-system native code at runtime.
std::vector<FaultMatrixCase> default_fault_matrix();

/// One byte-corruption case: corrupt a fraction of the corpus at `layer`
/// (appgen::corrupt_corpus); `predict` applies to the corrupted apps, all
/// others must stay byte-identical to the baseline.
struct CorruptionMatrixCase {
  appgen::CorruptionLayer layer;
  FaultPredictor predict;
};

std::vector<CorruptionMatrixCase> default_corruption_matrix();

/// Outcome histogram indexed by static_cast<std::size_t>(DynamicStatus).
using StatusHistogram = std::array<std::size_t, 5>;

struct FaultCaseResult {
  std::string name;
  std::string plan;  // empty for corruption cases
  StatusHistogram histogram{};
  std::size_t shifted = 0;    // apps whose status bucket moved vs baseline
  std::size_t identical = 0;  // apps byte-identical to the baseline
  std::vector<std::string> failures;
};

struct FaultCheckOptions {
  /// Corpus scale; 0.0035 of the paper's population is ~200 apps.
  double scale = 0.0035;
  std::uint64_t corpus_seed = 20161101;
  std::uint64_t seed_base = kDefaultSeedBase;
  /// Worker counts every configuration must agree across.
  std::vector<std::size_t> worker_counts = {1, 2, 8};
  /// Also run the byte-corruption (FaultyCorpus) cases.
  bool check_corruption = true;
  /// Fraction of apps corrupted per corruption case.
  double corruption_fraction = 0.35;
  /// Cap on recorded failure messages per case (keeps reports readable).
  std::size_t max_failures_per_case = 8;
};

struct FaultCheckReport {
  std::size_t apps = 0;
  StatusHistogram baseline{};
  std::vector<FaultCaseResult> cases;
  /// Failures not attributable to one case (e.g. plan parse errors).
  std::vector<std::string> failures;

  [[nodiscard]] std::size_t failure_count() const;
  [[nodiscard]] bool passed() const { return failure_count() == 0; }
};

/// Run the full differential matrix. Deterministic in `options`.
FaultCheckReport run_fault_matrix(const FaultCheckOptions& options = {});

/// Render the report as a text table (the `dydroid faultcheck` output).
std::string format_fault_check(const FaultCheckReport& report);

}  // namespace dydroid::driver
