// Journal payload codec for driver::AppOutcome (docs/CHECKPOINT.md).
//
// One journal record = one finished app: the corpus index it belongs to,
// the driver-level bookkeeping the AggregateStats reduction consumes
// (seed, wall time, attempts, timeout/quarantine flags) and the full
// canonical AppReport (core/report_codec.hpp). Replaying a record must be
// indistinguishable from having run the app: the JSON report and every
// absorbed stat agree byte-for-byte with the live outcome.
#pragma once

#include <cstddef>
#include <span>

#include "driver/corpus_runner.hpp"
#include "support/bytes.hpp"

namespace dydroid::driver {

/// Journal payload format version (first byte of every record payload).
/// v2 appended the sandbox classification (SandboxFate + fatal signal,
/// docs/ISOLATION.md) after the flags byte; v1 records are rejected, which
/// also invalidates pre-sandbox result caches via the config fingerprint.
/// Versions count up from 1 and must never reach support::kShardMetaTag
/// (0xF5): a sharded journal's metadata record (docs/SHARDING.md) is told
/// apart from outcomes by its first byte alone.
inline constexpr std::uint8_t kOutcomeCodecVersion = 2;

/// Encode one finished outcome as a journal record payload.
[[nodiscard]] support::Bytes encode_outcome(std::size_t app_index,
                                            const AppOutcome& outcome);

/// Same encoding, appended into a caller-provided writer (call clear()
/// first to start a fresh record). Lets the journal hot path reuse one
/// buffer across thousands of appends instead of allocating per record.
void encode_outcome_into(std::size_t app_index, const AppOutcome& outcome,
                         support::ByteWriter& w);

struct DecodedOutcome {
  std::size_t index = 0;
  AppOutcome outcome;
};

/// Decode a record payload. Throws support::ParseError on a version
/// mismatch, truncation, out-of-range enum values or trailing bytes.
[[nodiscard]] DecodedOutcome decode_outcome(
    std::span<const std::uint8_t> payload);

}  // namespace dydroid::driver
