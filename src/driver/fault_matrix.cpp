#include "driver/fault_matrix.hpp"

#include <unordered_set>
#include <utility>

#include "core/report_json.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace dydroid::driver {

namespace {

using core::AppReport;
using core::DynamicStatus;

FaultPrediction identical() {
  FaultPrediction p;
  p.byte_identical = true;
  return p;
}

/// All three parse sites sit under analysis::decompile, the first consumer
/// of the package bytes: the tool failure lands every app in the Table II
/// "not run" row with decompile_failed set, before any dynamic phase.
FaultPrediction decompiler_killed() {
  FaultPrediction p;
  p.status = DynamicStatus::kNotRun;
  p.decompile_failed = true;
  p.no_binaries = true;
  return p;
}

/// Did the baseline run reach DynamicStage (device boot + install)?
bool entered_dynamic(const AppReport& baseline) {
  switch (baseline.status) {
    case DynamicStatus::kNoActivity:
    case DynamicStatus::kCrash:
    case DynamicStatus::kExercised:
      return true;
    case DynamicStatus::kNotRun:
    case DynamicStatus::kRewritingFailure:
      return false;
  }
  return false;
}

/// Did the baseline run load any non-system native binary? (System libs
/// short-circuit before NativeLibrary::deserialize, so the native.load
/// site never fires for them.)
bool loads_nonsystem_native(const AppReport& baseline) {
  for (const auto& event : baseline.events) {
    if (event.kind == core::CodeKind::Native && !event.system_binary) {
      return true;
    }
  }
  return false;
}

struct RunOutput {
  CorpusResult result;
  std::vector<std::string> json;  // report_to_json per app, corpus order
};

RunOutput run_once(const appgen::Corpus& corpus,
                   const support::FaultPlan* plan, std::size_t workers,
                   std::uint64_t seed_base) {
  core::PipelineOptions options;  // detector off: fully predictable matrix
  options.faults = plan;
  const core::DyDroid pipeline(std::move(options));
  RunnerConfig config;
  config.jobs = workers;
  config.seed_base = seed_base;
  const CorpusRunner runner(pipeline, config);
  RunOutput out{runner.run(corpus), {}};
  out.json.reserve(out.result.outcomes.size());
  for (const auto& outcome : out.result.outcomes) {
    out.json.push_back(core::report_to_json(outcome.report));
  }
  return out;
}

/// Run `corpus` under `plan` once per worker count; every rerun must be
/// byte-identical (per-app report JSON) to the first. Returns the first.
RunOutput run_deterministic(const std::string& label,
                            const appgen::Corpus& corpus,
                            const support::FaultPlan* plan,
                            const FaultCheckOptions& options,
                            std::vector<std::string>& failures) {
  const std::size_t first_workers =
      options.worker_counts.empty() ? 1 : options.worker_counts.front();
  RunOutput first = run_once(corpus, plan, first_workers, options.seed_base);
  for (std::size_t wi = 1; wi < options.worker_counts.size(); ++wi) {
    const std::size_t workers = options.worker_counts[wi];
    const RunOutput other = run_once(corpus, plan, workers, options.seed_base);
    for (std::size_t i = 0; i < first.json.size(); ++i) {
      if (other.json[i] != first.json[i]) {
        failures.push_back(support::format(
            "%s: app %zu report differs between %zu and %zu workers",
            label.c_str(), i, first_workers, workers));
        break;
      }
    }
  }
  return first;
}

/// Check one finished case against its per-app predictions. `corrupted`
/// (when non-null) limits the predictor to the corrupted subset; all other
/// apps must stay byte-identical to the baseline.
void check_predictions(FaultCaseResult& cr, const appgen::Corpus& corpus,
                       const RunOutput& baseline, const RunOutput& run,
                       const FaultPredictor& predict,
                       const std::unordered_set<std::size_t>* corrupted,
                       std::size_t max_failures) {
  std::size_t suppressed = 0;
  const auto fail = [&](std::string message) {
    if (cr.failures.size() < max_failures) {
      cr.failures.push_back(std::move(message));
    } else {
      ++suppressed;
    }
  };

  for (std::size_t i = 0; i < run.result.outcomes.size(); ++i) {
    const AppReport& got = run.result.outcomes[i].report;
    const AppReport& base = baseline.result.outcomes[i].report;
    cr.histogram[static_cast<std::size_t>(got.status)] += 1;
    if (got.status != base.status) ++cr.shifted;
    if (run.json[i] == baseline.json[i]) ++cr.identical;

    const bool in_scope = corrupted == nullptr || corrupted->count(i) > 0;
    const FaultPrediction p =
        in_scope ? predict(corpus.apps[i], base) : identical();
    const char* pkg = corpus.apps[i].spec.package.c_str();

    if (p.byte_identical) {
      if (run.json[i] != baseline.json[i]) {
        fail(support::format(
            "%s: app %zu (%s): expected byte-identical report, got %s "
            "(baseline %s)",
            cr.name.c_str(), i, pkg,
            std::string(core::dynamic_status_name(got.status)).c_str(),
            std::string(core::dynamic_status_name(base.status)).c_str()));
      }
      continue;
    }
    if (p.status.has_value() && got.status != *p.status) {
      fail(support::format(
          "%s: app %zu (%s): expected bucket %s, got %s (baseline %s)",
          cr.name.c_str(), i, pkg,
          std::string(core::dynamic_status_name(*p.status)).c_str(),
          std::string(core::dynamic_status_name(got.status)).c_str(),
          std::string(core::dynamic_status_name(base.status)).c_str()));
    }
    if (p.decompile_failed.has_value() &&
        got.decompile_failed != *p.decompile_failed) {
      fail(support::format("%s: app %zu (%s): expected decompile_failed=%d",
                           cr.name.c_str(), i, pkg,
                           static_cast<int>(*p.decompile_failed)));
    }
    if (p.no_binaries.has_value() && *p.no_binaries && !got.binaries.empty()) {
      fail(support::format(
          "%s: app %zu (%s): expected no intercepted binaries, got %zu",
          cr.name.c_str(), i, pkg, got.binaries.size()));
    }
  }
  if (suppressed > 0) {
    cr.failures.push_back(
        support::format("%s: ... and %zu more prediction failures",
                        cr.name.c_str(), suppressed));
  }
}

}  // namespace

std::vector<FaultMatrixCase> default_fault_matrix() {
  std::vector<FaultMatrixCase> cases;
  const auto kill = [](const appgen::GeneratedApp&, const AppReport&) {
    return decompiler_killed();
  };
  cases.push_back({"apk.deserialize", "apk.deserialize=always", kill});
  cases.push_back({"manifest.parse", "manifest.parse=always", kill});
  cases.push_back({"dex.parse", "dex.parse=always", kill});

  // RewriteStage repacks only the apps that both reached it (static DCL
  // filter passed) and lack WRITE_EXTERNAL_STORAGE in their manifest.
  cases.push_back(
      {"rewrite.repack", "rewrite.repack=always",
       [](const appgen::GeneratedApp& app, const AppReport& baseline) {
         if (baseline.status != DynamicStatus::kNotRun &&
             !app.spec.write_external_permission) {
           FaultPrediction p;
           p.status = DynamicStatus::kRewritingFailure;
           p.decompile_failed = false;
           p.no_binaries = true;
           return p;
         }
         return identical();
       }});

  // Device boot is the first statement of DynamicStage and install follows
  // immediately: every app that reached the dynamic phase in the baseline
  // becomes a crash outcome; everyone else never touches the device.
  const auto dynamic_crash = [](const appgen::GeneratedApp&,
                                const AppReport& baseline) {
    if (entered_dynamic(baseline)) {
      FaultPrediction p;
      p.status = DynamicStatus::kCrash;
      p.decompile_failed = false;
      p.no_binaries = true;
      return p;
    }
    return identical();
  };
  cases.push_back({"device.boot", "device.boot=always", dynamic_crash});
  cases.push_back({"device.install", "device.install=always", dynamic_crash});

  // Snapshot short-writes drop every intercepted binary but change nothing
  // about the run itself: same bucket, same events, zero binaries.
  cases.push_back(
      {"interceptor.io", "interceptor.io=always",
       [](const appgen::GeneratedApp&, const AppReport& baseline) {
         if (baseline.binaries.empty()) return identical();
         FaultPrediction p;
         p.status = baseline.status;
         p.decompile_failed = baseline.decompile_failed;
         p.no_binaries = true;
         return p;
       }});

  // A failing native loader surfaces as an UnsatisfiedLinkError crash in
  // exactly the apps that loaded non-system native code in the baseline.
  cases.push_back(
      {"native.load", "native.load=always",
       [](const appgen::GeneratedApp&, const AppReport& baseline) {
         if (loads_nonsystem_native(baseline)) {
           FaultPrediction p;
           p.status = DynamicStatus::kCrash;
           return p;
         }
         return identical();
       }});
  return cases;
}

std::vector<CorruptionMatrixCase> default_corruption_matrix() {
  std::vector<CorruptionMatrixCase> cases;
  const auto kill = [](const appgen::GeneratedApp&, const AppReport&) {
    return decompiler_killed();
  };
  // Container truncation, a poisoned manifest and a truncated classes.dex
  // all fail the (strict) decompiler first: Table II "not run".
  cases.push_back({appgen::CorruptionLayer::kContainer, kill});
  cases.push_back({appgen::CorruptionLayer::kManifest, kill});
  cases.push_back({appgen::CorruptionLayer::kDex, kill});
  // A CRC trap entry is invisible to the lenient parse paths; it only
  // detonates inside the strict repacker, i.e. for apps that need the
  // permission rewrite (Table II "rewriting failure").
  cases.push_back(
      {appgen::CorruptionLayer::kCrcTrap,
       [](const appgen::GeneratedApp& app, const AppReport& baseline) {
         FaultPrediction p;
         if (baseline.status != DynamicStatus::kNotRun &&
             !app.spec.write_external_permission) {
           p.status = DynamicStatus::kRewritingFailure;
           p.no_binaries = true;
         } else {
           p.status = baseline.status;
         }
         return p;
       }});
  return cases;
}

std::size_t FaultCheckReport::failure_count() const {
  std::size_t count = failures.size();
  for (const auto& c : cases) count += c.failures.size();
  return count;
}

FaultCheckReport run_fault_matrix(const FaultCheckOptions& options) {
  support::set_log_level(support::LogLevel::Error);
  FaultCheckReport report;

  appgen::CorpusConfig corpus_config;
  corpus_config.scale = options.scale;
  corpus_config.seed = options.corpus_seed;
  const appgen::Corpus corpus = appgen::generate_corpus(corpus_config);
  report.apps = corpus.apps.size();

  const RunOutput baseline = run_deterministic("baseline", corpus, nullptr,
                                               options, report.failures);
  for (const auto& outcome : baseline.result.outcomes) {
    report.baseline[static_cast<std::size_t>(outcome.report.status)] += 1;
  }

  for (const auto& site_case : default_fault_matrix()) {
    FaultCaseResult cr;
    cr.name = site_case.name;
    cr.plan = site_case.plan;
    auto parsed = support::FaultPlan::parse(site_case.plan);
    if (!parsed.ok()) {
      cr.failures.push_back(cr.name + ": plan parse failed: " +
                            parsed.error());
      report.cases.push_back(std::move(cr));
      continue;
    }
    const support::FaultPlan plan = std::move(parsed).take();
    const RunOutput run =
        run_deterministic(cr.name, corpus, &plan, options, cr.failures);
    check_predictions(cr, corpus, baseline, run, site_case.predict, nullptr,
                      options.max_failures_per_case);
    report.cases.push_back(std::move(cr));
  }

  if (options.check_corruption) {
    for (const auto& corruption : default_corruption_matrix()) {
      FaultCaseResult cr;
      cr.name = std::string("corrupt:") +
                std::string(appgen::corruption_layer_name(corruption.layer));
      appgen::FaultyCorpusConfig faulty_config;
      faulty_config.fraction = options.corruption_fraction;
      faulty_config.layer = corruption.layer;
      const appgen::FaultyCorpus faulty =
          appgen::corrupt_corpus(corpus, faulty_config);
      const std::unordered_set<std::size_t> corrupted(
          faulty.corrupted.begin(), faulty.corrupted.end());
      const RunOutput run = run_deterministic(cr.name, faulty.corpus, nullptr,
                                              options, cr.failures);
      check_predictions(cr, corpus, baseline, run, corruption.predict,
                        &corrupted, options.max_failures_per_case);
      report.cases.push_back(std::move(cr));
    }
  }
  return report;
}

std::string format_fault_check(const FaultCheckReport& report) {
  std::string out;
  const auto histogram_cells = [](const StatusHistogram& h) {
    return support::format("%6zu %6zu %6zu %6zu %6zu", h[0], h[1], h[2], h[3],
                           h[4]);
  };
  out += support::format(
      "fault matrix: %zu apps, %zu cases, %zu prediction/determinism "
      "failures\n\n",
      report.apps, report.cases.size(), report.failure_count());
  out += support::format("%-22s %-26s %7s %7s  %6s %6s %6s %6s %6s\n", "case",
                         "plan", "shifted", "ident", "n-run", "rewrt",
                         "no-act", "crash", "exerc");
  out += support::format("%-22s %-26s %7s %7s  %s\n", "baseline", "(faults off)",
                         "-", "-", histogram_cells(report.baseline).c_str());
  for (const auto& c : report.cases) {
    out += support::format(
        "%-22s %-26s %7zu %7zu  %s\n", c.name.c_str(),
        c.plan.empty() ? "(byte corruption)" : c.plan.c_str(), c.shifted,
        c.identical, histogram_cells(c.histogram).c_str());
  }
  std::vector<std::string> all_failures = report.failures;
  for (const auto& c : report.cases) {
    all_failures.insert(all_failures.end(), c.failures.begin(),
                        c.failures.end());
  }
  if (all_failures.empty()) {
    out += "\nall per-site bucket predictions hold; reports byte-identical "
           "across worker counts\n";
  } else {
    out += "\nfailures:\n";
    for (const auto& f : all_failures) out += "  " + f + "\n";
  }
  return out;
}

}  // namespace dydroid::driver
