#include "driver/outcome_codec.hpp"

#include <bit>

#include "core/report_codec.hpp"
#include "support/error.hpp"
#include "support/journal.hpp"

namespace dydroid::driver {

using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

void encode_outcome_into(std::size_t app_index, const AppOutcome& outcome,
                         support::ByteWriter& w) {
  w.u8(kOutcomeCodecVersion);
  w.u64(static_cast<std::uint64_t>(app_index));
  w.u64(outcome.seed);
  w.u64(std::bit_cast<std::uint64_t>(outcome.wall_ms));
  w.u32(outcome.attempts);
  std::uint8_t flags = 0;
  if (outcome.timed_out) flags |= 1u;
  if (outcome.quarantined) flags |= 2u;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(outcome.sandbox_fate));
  w.u8(outcome.fatal_signal);
  core::serialize_report(w, outcome.report);
}

support::Bytes encode_outcome(std::size_t app_index,
                              const AppOutcome& outcome) {
  ByteWriter w;
  w.reserve(512);  // typical encoded outcome is a few hundred bytes
  encode_outcome_into(app_index, outcome, w);
  return w.take();
}

DecodedOutcome decode_outcome(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kOutcomeCodecVersion) {
    // The shard-metadata tag (support::kShardMetaTag) is deliberately
    // disjoint from every codec version byte; name the record kind in the
    // error so "decoded a meta record as an outcome" reads as the caller
    // bug it is, not as journal corruption.
    if (support::is_shard_meta(payload)) {
      throw ParseError(
          "outcome codec: record is shard metadata, not an outcome");
    }
    throw ParseError("outcome codec: unsupported version " +
                     std::to_string(version));
  }
  DecodedOutcome decoded;
  decoded.index = static_cast<std::size_t>(r.u64());
  decoded.outcome.seed = r.u64();
  decoded.outcome.wall_ms = std::bit_cast<double>(r.u64());
  decoded.outcome.attempts = r.u32();
  const std::uint8_t flags = r.u8();
  if (flags > 3) throw ParseError("outcome codec: bad flags");
  decoded.outcome.timed_out = (flags & 1u) != 0;
  decoded.outcome.quarantined = (flags & 2u) != 0;
  const std::uint8_t fate = r.u8();
  if (fate > static_cast<std::uint8_t>(SandboxFate::kTimedOut)) {
    throw ParseError("outcome codec: bad sandbox fate");
  }
  decoded.outcome.sandbox_fate = static_cast<SandboxFate>(fate);
  decoded.outcome.fatal_signal = r.u8();
  decoded.outcome.report = core::deserialize_report(r);
  if (!r.at_end()) {
    throw ParseError("outcome codec: trailing bytes after report");
  }
  decoded.outcome.completed = true;
  decoded.outcome.replayed = true;
  return decoded;
}

}  // namespace dydroid::driver
