#include "driver/corpus_runner.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "appgen/generator.hpp"
#include "support/stopwatch.hpp"

namespace dydroid::driver {

void AggregateStats::absorb(const AppOutcome& outcome) {
  const auto& report = outcome.report;
  ++apps;
  switch (report.status) {
    case core::DynamicStatus::kNotRun: ++not_run; break;
    case core::DynamicStatus::kRewritingFailure: ++rewriting_failure; break;
    case core::DynamicStatus::kNoActivity: ++no_activity; break;
    case core::DynamicStatus::kCrash: ++crashed; break;
    case core::DynamicStatus::kExercised: ++exercised; break;
  }
  if (outcome.timed_out) ++timed_out;
  if (outcome.attempts > 1) ++retried;
  if (outcome.quarantined) ++quarantined;
  if (report.decompile_failed) ++decompile_failed;
  if (report.static_dcl.any()) ++static_dcl;
  if (!report.binaries.empty()) ++intercepted;
  if (!report.remote_loaded().empty()) ++remote_loaders;
  if (!report.malware_loaded().empty()) ++malware_carriers;
  if (!report.vulns.empty()) ++vulnerable;
  for (const auto& binary : report.binaries) {
    if (!binary.privacy.leaks.empty()) {
      ++privacy_leaking;
      break;
    }
  }
  binaries += report.binaries.size();
  events += report.events.size();
  total_app_ms += outcome.wall_ms;
  if (outcome.wall_ms > max_app_ms) max_app_ms = outcome.wall_ms;
}

void AggregateStats::merge(const AggregateStats& other) {
  apps += other.apps;
  not_run += other.not_run;
  rewriting_failure += other.rewriting_failure;
  no_activity += other.no_activity;
  crashed += other.crashed;
  exercised += other.exercised;
  decompile_failed += other.decompile_failed;
  static_dcl += other.static_dcl;
  intercepted += other.intercepted;
  remote_loaders += other.remote_loaders;
  malware_carriers += other.malware_carriers;
  vulnerable += other.vulnerable;
  privacy_leaking += other.privacy_leaking;
  binaries += other.binaries;
  events += other.events;
  timed_out += other.timed_out;
  retried += other.retried;
  quarantined += other.quarantined;
  total_app_ms += other.total_app_ms;
  if (other.max_app_ms > max_app_ms) max_app_ms = other.max_app_ms;
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DYDROID_JOBS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

CorpusRunner::CorpusRunner(const core::DyDroid& pipeline, RunnerConfig config)
    : pipeline_(&pipeline), config_(config) {}

CorpusResult CorpusRunner::run(std::span<const AppJob> jobs) const {
  CorpusResult result;
  result.threads = std::min(resolve_jobs(config_.jobs),
                            std::max<std::size_t>(jobs.size(), 1));
  result.outcomes.resize(jobs.size());

  const support::Stopwatch corpus_clock;
  std::atomic<std::size_t> next{0};
  std::vector<AggregateStats> worker_stats(result.threads);

  const core::PipelineOptions& options = pipeline_->options();

  // One attempt: analyze with the app's seed, recording wall time on every
  // path. The pipeline already converts stage failures into crash outcomes;
  // this is the last-resort belt for anything else (bad_alloc, a scenario
  // closure throwing before the stages run), so a worker thread can never
  // be torn down — and a crashing app still gets its elapsed time recorded
  // instead of wall_ms = 0.
  const auto run_attempt = [&](const AppJob& job, AppOutcome& outcome,
                               std::uint32_t attempt) {
    core::AnalysisRequest request;
    request.apk_bytes = job.apk;
    request.seed = outcome.seed;
    request.attempt = attempt;
    request.scenario_setup = job.scenario ? &job.scenario : nullptr;

    const support::Stopwatch app_clock;
    try {
      outcome.report = pipeline_->analyze(request);
    } catch (const std::exception& e) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message = std::string("runner: ") + e.what();
    } catch (...) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message = "runner: unknown exception";
    }
    const double attempt_ms = app_clock.elapsed_ms();
    outcome.wall_ms += attempt_ms;
    const bool over_budget =
        options.max_app_wall_ms > 0.0 && attempt_ms > options.max_app_wall_ms;
    if (over_budget) outcome.timed_out = true;
    return over_budget ||
           outcome.report.status == core::DynamicStatus::kCrash;
  };

  // Each worker claims the next unprocessed index, analyzes it with its
  // index-derived seed and writes into that index's pre-sized outcome
  // slot — disjoint writes, worker-local tallies, no locks on the hot path.
  const auto worker = [&](std::size_t worker_id) {
    AggregateStats& local = worker_stats[worker_id];
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) break;
      const AppJob& job = jobs[index];
      AppOutcome& outcome = result.outcomes[index];
      outcome.seed = job.seed.value_or(seed_for_app(config_.seed_base, index));

      // Timeout + single-retry-then-quarantine policy (docs/FAULTS.md):
      // a crashed or over-budget app gets exactly one re-run (the retry's
      // fault session is salted by the attempt, so transient injected
      // faults clear deterministically); if the retry fails too, the app
      // is quarantined — its final report keeps its Table II bucket.
      bool failed = run_attempt(job, outcome, 0);
      if (failed && options.retry_on_crash) {
        outcome.attempts = 2;
        failed = run_attempt(job, outcome, 1);
        outcome.quarantined = failed;
      }
      local.absorb(outcome);
    }
  };

  if (result.threads <= 1) {
    worker(0);  // serial fast path: no thread spawn, same code path
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(result.threads);
    for (std::size_t t = 0; t < result.threads; ++t) {
      pool.emplace_back(worker, t);
    }
    pool.clear();  // join
  }

  for (const auto& local : worker_stats) result.stats.merge(local);
  result.wall_ms = corpus_clock.elapsed_ms();
  return result;
}

CorpusResult CorpusRunner::run(const appgen::Corpus& corpus) const {
  const auto jobs = jobs_from_corpus(corpus);
  return run(jobs);
}

std::vector<AppJob> jobs_from_corpus(const appgen::Corpus& corpus) {
  std::vector<AppJob> jobs;
  jobs.reserve(corpus.apps.size());
  for (const auto& app : corpus.apps) {
    AppJob job;
    job.apk = app.apk;
    job.scenario = [&app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace dydroid::driver
