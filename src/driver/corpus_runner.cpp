#include "driver/corpus_runner.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "appgen/generator.hpp"
#include "driver/outcome_codec.hpp"
#include "driver/result_cache.hpp"
#include "driver/sandbox.hpp"
#include "driver/shard_merge.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/trace.hpp"
#include "support/worker_pool.hpp"

namespace dydroid::driver {

namespace {

/// Salt for the driver-level fault session (journal.append / driver.kill
/// sites): distinct from every per-app session seed, deterministic in the
/// runner's seed base.
constexpr std::uint64_t kDriverFaultSalt = 0xD21BE9u;

/// Salt for the per-app *sandbox* fault session (sandbox.spawn /
/// sandbox.pipe / sandbox.crash): supervisor-side decisions draw from a
/// stream derived from the app seed + attempt but distinct from the
/// pipeline's in-child per-app session, so arming sandbox sites never
/// perturbs the analysis itself.
constexpr std::uint64_t kSandboxFaultSalt = 0x5ABD0Cull;

/// When RunnerConfig::sandbox_deadline_ms is unset, the kill budget is a
/// generous multiple of the pipeline's per-attempt wall budget: plenty of
/// slack for fork + pipe overhead on a healthy app, still a hard bound on
/// a hung one.
constexpr double kSandboxDeadlineSlack = 10.0;
constexpr double kSandboxDeadlinePadMs = 1000.0;

/// A child SIGKILLed by neither our deadline supervisor is either the
/// kernel OOM killer or an unrelated external kill (a chaos harness, an
/// operator). The two are indistinguishable from the parent, so the
/// supervisor transparently respawns the attempt a bounded number of
/// times: a genuine memory hog dies again immediately (and is then
/// classified killed_oom), while a randomly kill -9'd child just re-runs —
/// which is what keeps tools/run_isolation_matrix.sh's summaries golden.
constexpr int kExternalKillRespawns = 2;

/// Narrow a global corpus index into the u32 trace-context field. The
/// corpus identity must never silently truncate (with sharding, the global
/// index IS the app's identity across processes); validate_runner_config
/// bounds every run below kMaxCorpusApps, so a trip here means an internal
/// slot-mapping bug — fail loudly rather than tag spans with a wrapped id.
std::uint32_t trace_app_id(std::size_t index) {
  if (index >= support::kTraceNoApp) {
    throw std::runtime_error(support::format(
        "runner: corpus index %zu overflows the u32 trace context", index));
  }
  return static_cast<std::uint32_t>(index);
}

}  // namespace

void AggregateStats::absorb(const AppOutcome& outcome) {
  const auto& report = outcome.report;
  ++apps;
  switch (report.status) {
    case core::DynamicStatus::kNotRun: ++not_run; break;
    case core::DynamicStatus::kRewritingFailure: ++rewriting_failure; break;
    case core::DynamicStatus::kNoActivity: ++no_activity; break;
    case core::DynamicStatus::kCrash: ++crashed; break;
    case core::DynamicStatus::kExercised: ++exercised; break;
  }
  if (outcome.timed_out) ++timed_out;
  if (outcome.attempts > 1) ++retried;
  if (outcome.quarantined) ++quarantined;
  switch (outcome.sandbox_fate) {
    case SandboxFate::kNone: break;
    case SandboxFate::kCrashed: ++sandbox_crashed; break;
    case SandboxFate::kOomKilled: ++killed_oom; break;
    case SandboxFate::kTimedOut: ++killed_timeout; break;
  }
  if (outcome.cache_checked) {
    if (outcome.cache_hit) {
      ++cache_hits;
    } else {
      ++cache_misses;
    }
  }
  if (report.decompile_failed) ++decompile_failed;
  if (report.static_dcl.any()) ++static_dcl;
  if (!report.binaries.empty()) ++intercepted;
  if (!report.remote_loaded().empty()) ++remote_loaders;
  if (!report.malware_loaded().empty()) ++malware_carriers;
  if (!report.vulns.empty()) ++vulnerable;
  for (const auto& binary : report.binaries) {
    if (!binary.privacy.leaks.empty()) {
      ++privacy_leaking;
      break;
    }
  }
  binaries += report.binaries.size();
  events += report.events.size();
  total_app_ms += outcome.wall_ms;
  if (outcome.wall_ms > max_app_ms) max_app_ms = outcome.wall_ms;
}

void AggregateStats::merge(const AggregateStats& other) {
  apps += other.apps;
  not_run += other.not_run;
  rewriting_failure += other.rewriting_failure;
  no_activity += other.no_activity;
  crashed += other.crashed;
  exercised += other.exercised;
  decompile_failed += other.decompile_failed;
  static_dcl += other.static_dcl;
  intercepted += other.intercepted;
  remote_loaders += other.remote_loaders;
  malware_carriers += other.malware_carriers;
  vulnerable += other.vulnerable;
  privacy_leaking += other.privacy_leaking;
  binaries += other.binaries;
  events += other.events;
  timed_out += other.timed_out;
  retried += other.retried;
  quarantined += other.quarantined;
  sandbox_crashed += other.sandbox_crashed;
  killed_oom += other.killed_oom;
  killed_timeout += other.killed_timeout;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  total_app_ms += other.total_app_ms;
  if (other.max_app_ms > max_app_ms) max_app_ms = other.max_app_ms;
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw > 0 ? hw : 1;
  const char* env = std::getenv("DYDROID_JOBS");
  if (env == nullptr || env[0] == '\0') return fallback;
  // Strict parse: "4x", "nope" or "-1" must warn-and-default, never throw
  // or silently wrap (the old strtoul accepted "4x" as 4 and "nope" as a
  // silent fallthrough). The warning goes straight to stderr — env
  // misconfiguration must be visible even when the log level is Error
  // (the CLI survey path quiets the logger).
  const auto parsed = support::parse_u64(env);
  if (!parsed.ok() || parsed.value() == 0) {
    std::fprintf(stderr,
                 "driver: ignoring invalid DYDROID_JOBS %s (%s); using %zu\n",
                 env, parsed.ok() ? "must be >= 1" : parsed.error().c_str(),
                 fallback);
    return fallback;
  }
  return static_cast<std::size_t>(parsed.value());
}

void validate_runner_config(const RunnerConfig& config,
                            std::uint64_t corpus_size) {
  if (corpus_size > kMaxCorpusApps) {
    throw std::runtime_error(support::format(
        "runner: corpus of %llu apps exceeds the %llu-app ceiling (global "
        "indices must fit the u32 trace context)",
        static_cast<unsigned long long>(corpus_size),
        static_cast<unsigned long long>(kMaxCorpusApps)));
  }
  if (seed_range_overflows(config.seed_base, corpus_size)) {
    throw std::runtime_error(support::format(
        "runner: seed base %llu overflows across %llu apps (seed_for_app "
        "would wrap and two apps would collide on one seed); lower the seed "
        "base",
        static_cast<unsigned long long>(config.seed_base),
        static_cast<unsigned long long>(corpus_size)));
  }
  if (config.shard_count == 0 && config.shard_index != 0) {
    throw std::runtime_error(support::format(
        "runner: shard index %u set without a shard count",
        config.shard_index));
  }
  if (config.shard_count > 0 && config.shard_index >= config.shard_count) {
    throw std::runtime_error(support::format(
        "runner: shard index %u out of range for %u shard(s)",
        config.shard_index, config.shard_count));
  }
  if (config.resume && config.journal_path.empty()) {
    throw std::runtime_error("runner: resume requested without a journal path");
  }
}

CorpusRunner::CorpusRunner(const core::DyDroid& pipeline, RunnerConfig config)
    : pipeline_(&pipeline), config_(std::move(config)) {}

CorpusResult CorpusRunner::run(std::span<const AppJob> jobs) const {
  validate_runner_config(config_, jobs.size());

  // --- corpus sharding (docs/SHARDING.md) ----------------------------------
  // This run owns the global indices ≡ shard_index (mod shard_count); the
  // worker loop walks shard-local slots and maps them back to global
  // indices, so seeds, journal records, trace context and cache keys all
  // stay global-index-derived — the invariant `dydroid merge` relies on.
  const bool sharded = config_.shard_count > 0;
  const std::size_t shard_apps = static_cast<std::size_t>(shard_app_count(
      jobs.size(), config_.shard_index, config_.shard_count));
  const auto global_index_of = [&](std::size_t slot) {
    return sharded ? config_.shard_index +
                         slot * static_cast<std::size_t>(config_.shard_count)
                   : slot;
  };

  CorpusResult result;
  result.shard_apps = shard_apps;
  result.threads = std::min(resolve_jobs(config_.jobs),
                            std::max<std::size_t>(shard_apps, 1));
  result.outcomes.resize(jobs.size());

  const support::Stopwatch corpus_clock;
  const core::PipelineOptions& options = pipeline_->options();

  /// The seed the app at `index` runs (and must have run) with.
  const auto seed_of = [&](std::size_t index) {
    return jobs[index].seed.value_or(seed_for_app(config_.seed_base, index));
  };

  // The pipeline fingerprint keys the result cache and — for sharded
  // journaled runs — pins the shard-metadata record, so compute it once up
  // front when either consumer needs it.
  support::Sha256Digest config_fp;
  if (!config_.cache_dir.empty() || (sharded && !config_.journal_path.empty())) {
    config_fp = config_fingerprint(*pipeline_);
  }
  support::ShardMeta shard_meta;
  shard_meta.shard_index = config_.shard_index;
  shard_meta.shard_count = config_.shard_count;
  shard_meta.seed_base = config_.seed_base;
  shard_meta.corpus_size = jobs.size();
  shard_meta.outcome_codec_version = kOutcomeCodecVersion;
  shard_meta.config_fingerprint = config_fp.bytes;

  // --- resume replay + write-ahead journal setup (docs/CHECKPOINT.md) ------
  // `done[i]` marks outcomes restored from the journal; workers skip them.
  std::vector<char> done(jobs.size(), 0);
  std::optional<support::JournalWriter> journal;
  std::optional<support::FaultSession> driver_faults;
  std::mutex journal_mutex;  // serializes appends + the driver fault session

  bool journal_has_meta = false;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      auto read = support::read_journal(config_.journal_path);
      if (!read.ok()) {
        throw std::runtime_error("runner: resume failed: " + read.error());
      }
      if (read.value().torn()) {
        support::log_warn(
            "driver",
            support::format("journal %s: recovered %zu records, dropped %zu "
                            "torn/corrupt tail byte(s)",
                            config_.journal_path.c_str(),
                            read.value().records.size(),
                            read.value().bytes_discarded));
        // Chop the damaged tail off before reopening for append, so the
        // records this run writes land after the last *intact* frame (an
        // O_APPEND writer would otherwise bury them behind the garbage,
        // unreachable to the next reader).
        const support::Status truncated = support::truncate_journal(
            config_.journal_path, read.value().bytes_recovered);
        if (!truncated.ok()) {
          throw std::runtime_error("runner: resume failed: " +
                                   truncated.error());
        }
      }
      std::size_t record_ordinal = 0;
      for (const auto& record : read.value().records) {
        if (support::is_shard_meta(record)) {
          // The shard-metadata record pins everything a per-shard resume
          // must agree on; any disagreement means the journal belongs to a
          // different shard, corpus or pipeline — fail loudly, never
          // silently re-run (docs/SHARDING.md).
          if (record_ordinal != 0) {
            throw std::runtime_error(
                "runner: resume failed: shard-metadata record is not the "
                "journal's first record");
          }
          if (!sharded) {
            throw std::runtime_error(
                "runner: resume failed: journal belongs to a sharded run "
                "(resume it with the matching --shard I/N, or merge the "
                "shard journals first)");
          }
          support::ShardMeta meta;
          try {
            meta = support::decode_shard_meta(record);
          } catch (const std::exception& e) {
            throw std::runtime_error(
                std::string(
                    "runner: resume failed: corrupt shard metadata: ") +
                e.what());
          }
          if (const std::string mismatch =
                  describe_shard_meta_mismatch(meta, shard_meta);
              !mismatch.empty()) {
            throw std::runtime_error(
                "runner: resume failed: journal does not match this run: " +
                mismatch);
          }
          journal_has_meta = true;
          ++record_ordinal;
          continue;
        }
        if (sharded && record_ordinal == 0) {
          // A sharded journal leads with its metadata record; the first
          // record being an outcome means this journal came from an
          // unsharded run — diagnose that directly instead of tripping
          // over whichever record first leaves the shard's residue class.
          throw std::runtime_error(
              "runner: resume failed: journal has outcome records but no "
              "shard-metadata record (unsharded journal resumed with "
              "--shard?)");
        }
        ++record_ordinal;
        DecodedOutcome decoded;
        try {
          decoded = decode_outcome(record);
        } catch (const std::exception& e) {
          // A framed record that passed its CRC but fails to decode means
          // the journal does not belong to this build/corpus: fail loudly
          // rather than silently re-running (and double-counting) apps.
          throw std::runtime_error(
              std::string("runner: resume failed: corrupt journal record: ") +
              e.what());
        }
        if (decoded.index >= jobs.size()) {
          throw std::runtime_error(support::format(
              "runner: resume failed: journal record for app %zu but the "
              "corpus has %zu apps (journal/corpus mismatch?)",
              decoded.index, jobs.size()));
        }
        if (decoded.outcome.seed != seed_of(decoded.index)) {
          throw std::runtime_error(support::format(
              "runner: resume failed: app %zu was journaled with seed %llu "
              "but this run derives seed %llu (different seed base or "
              "corpus?)",
              decoded.index,
              static_cast<unsigned long long>(decoded.outcome.seed),
              static_cast<unsigned long long>(seed_of(decoded.index))));
        }
        if (sharded && decoded.index % config_.shard_count !=
                           config_.shard_index) {
          throw std::runtime_error(support::format(
              "runner: resume failed: journal record for app %zu does not "
              "belong to shard %u/%u (wrong shard's journal?)",
              decoded.index, config_.shard_index, config_.shard_count));
        }
        // Duplicate records resolve last-writer-wins: a record re-appended
        // after an earlier resume supersedes the older one.
        result.outcomes[decoded.index] = std::move(decoded.outcome);
        done[decoded.index] = 1;
      }
    }
    support::JournalWriterOptions journal_options;
    journal_options.fsync_each_record = config_.journal_fsync;
    journal_options.truncate = !config_.resume;
    auto writer =
        support::JournalWriter::open(config_.journal_path, journal_options);
    if (!writer.ok()) throw std::runtime_error("runner: " + writer.error());
    journal.emplace(std::move(writer).take());
    // A sharded run stamps a fresh (or still-empty) journal with its
    // shard-metadata record before any outcome, so every shard journal is
    // self-describing to `dydroid merge` and to later resumes. No ambient
    // fault scope is installed here: metadata stamping is run setup, not a
    // journaled outcome, and must not consume injected-fault budget.
    if (sharded && !journal_has_meta) {
      const support::Status stamped =
          journal->append(support::encode_shard_meta(shard_meta));
      if (!stamped.ok()) {
        throw std::runtime_error("runner: cannot stamp shard metadata: " +
                                 stamped.error());
      }
    }
  }

  // --- content-addressed result cache (docs/CACHE.md) ----------------------
  std::optional<ResultCache> cache;
  if (!config_.cache_dir.empty()) {
    CacheConfig cache_config;
    cache_config.max_entries = config_.cache_max_entries;
    cache_config.max_bytes = config_.cache_max_bytes;
    cache_config.fsync_each_insert = config_.cache_fsync;
    auto opened = ResultCache::open(config_.cache_dir, config_fp, cache_config);
    if (!opened.ok()) throw std::runtime_error("runner: " + opened.error());
    cache.emplace(std::move(opened).take());
  }

  // Arm the driver-level fault session (journal.append / driver.kill /
  // cache.read / cache.write) from the pipeline's plan; per-app sites keep
  // their per-app sessions.
  if ((journal.has_value() || cache.has_value()) &&
      options.faults != nullptr && !options.faults->empty()) {
    driver_faults.emplace(
        *options.faults,
        support::fault_session_seed(config_.seed_base ^ kDriverFaultSalt, 0));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> aborted{false};
  std::string abort_message;  // written once, under journal_mutex

  /// Graceful shutdown and abort checks, polled between apps only — an
  /// in-flight app always finishes and is journaled.
  const auto should_quit = [&] {
    return aborted.load(std::memory_order_relaxed) ||
           (config_.stop != nullptr &&
            config_.stop->load(std::memory_order_relaxed));
  };

  // One attempt: analyze with the app's seed, recording wall time and the
  // attempt count on every path. The pipeline already converts stage
  // failures into crash outcomes; the catch blocks are the last-resort
  // belt for anything else (bad_alloc, internal logic errors), so a worker
  // thread can never be torn down — and a crashing app still gets its
  // elapsed time recorded instead of wall_ms = 0.
  const auto run_attempt = [&](const AppJob& job, AppOutcome& outcome,
                               std::uint32_t attempt, std::size_t index,
                               std::size_t worker) {
    // Record the attempt as it *starts*, not when the retry policy decides
    // to schedule it: a journaled outcome must never claim an attempt that
    // did not run (live stats and journal replay count `retried` from this
    // field, so the two can never disagree).
    outcome.attempts = attempt + 1;

    core::AnalysisRequest request;
    request.apk = job.apk;
    request.seed = outcome.seed;
    request.attempt = attempt;
    request.scenario_setup = job.scenario ? &job.scenario : nullptr;

    // Nested ambient context: every span opened under this attempt — the
    // stage spans inside analyze(), the sub-phase spans below them — is
    // tagged (app index, attempt, worker) without any plumbing.
    const support::TraceContextScope trace_context(
        trace_app_id(index), attempt, static_cast<std::uint32_t>(worker));

    // Wall-time accounting guard: every exit path — normal return, a crash
    // converted below, or an exception escaping this very machinery (e.g.
    // bad_alloc while forming the crash report) — *accumulates* the
    // attempt's elapsed time into outcome.wall_ms exactly once. Before
    // this guard the escaping-exception path assigned (=) while the
    // normal path accumulated (+=), so paths could disagree about whether
    // earlier attempts' time was included.
    struct WallGuard {
      support::Stopwatch clock;
      double* into;
      ~WallGuard() {
        if (into != nullptr) *into += clock.elapsed_ms();
      }
      /// Normal-path exit: settle the accumulation and report the
      /// attempt's own elapsed ms (for the per-attempt budget check).
      double settle() {
        const double ms = clock.elapsed_ms();
        *into += ms;
        into = nullptr;
        return ms;
      }
    } wall_guard{support::Stopwatch{}, &outcome.wall_ms};

    {
      const support::Span attempt_span("runner", "attempt");
      try {
        outcome.report = pipeline_->analyze(request);
      } catch (const std::exception& e) {
        outcome.report = core::AppReport{};
        outcome.report.status = core::DynamicStatus::kCrash;
        outcome.report.crash_message = std::string("runner: ") + e.what();
      } catch (...) {
        outcome.report = core::AppReport{};
        outcome.report.status = core::DynamicStatus::kCrash;
        outcome.report.crash_message = "runner: unknown exception";
      }
    }
    const double attempt_ms = wall_guard.settle();
    const bool over_budget =
        options.max_app_wall_ms > 0.0 && attempt_ms > options.max_app_wall_ms;
    if (over_budget) outcome.timed_out = true;
    return over_budget ||
           outcome.report.status == core::DynamicStatus::kCrash;
  };

  // --- process-isolation sandbox (docs/ISOLATION.md) -----------------------
  const double sandbox_deadline_ms =
      config_.sandbox_deadline_ms > 0.0
          ? config_.sandbox_deadline_ms
          : (options.max_app_wall_ms > 0.0
                 ? options.max_app_wall_ms * kSandboxDeadlineSlack +
                       kSandboxDeadlinePadMs
                 : 0.0);

  /// One sandboxed attempt: fork a child that runs the *identical*
  /// run_attempt machinery (same seeds, same per-app fault session, same
  /// crash-conversion belt — which is what makes clean exits byte-identical
  /// to thread mode) and ships the encoded outcome back as one
  /// magic-stamped CRC frame; the supervisor enforces the limits and
  /// classifies whatever comes back. Returns the same "failed" predicate
  /// run_attempt feeds the retry policy.
  const auto sandbox_attempt = [&](const AppJob& job, AppOutcome& outcome,
                                   std::uint32_t attempt, std::size_t index,
                                   std::size_t worker_id) -> bool {
    outcome.attempts = attempt + 1;
    // The fate reflects the *final* attempt: a kill on attempt 0 that
    // clears on the retry leaves the app clean, like any transient crash.
    outcome.sandbox_fate = SandboxFate::kNone;
    outcome.fatal_signal = 0;

    const support::TraceContextScope trace_context(
        trace_app_id(index), attempt, static_cast<std::uint32_t>(worker_id));

    // Supervisor-side sandbox fault session (sandbox.spawn / sandbox.pipe /
    // sandbox.crash): deterministic in (app seed, attempt), separate from
    // the pipeline's per-app session inside the child.
    std::optional<support::FaultSession> sandbox_faults;
    std::optional<support::FaultScope> sandbox_scope;
    if (options.faults != nullptr && !options.faults->empty()) {
      sandbox_faults.emplace(
          *options.faults,
          support::fault_session_seed(outcome.seed ^ kSandboxFaultSalt,
                                      attempt));
      sandbox_scope.emplace(&*sandbox_faults);
    }
    // Drawn pre-fork so the decision is deterministic in the parent's
    // stream; *executed* in the child as a real abort, so the injected
    // crash exercises genuine signal-death classification end to end.
    const bool crash_child =
        support::fault_fire(support::FaultSite::kSandboxCrash);

    support::SubprocessLimits limits;
    limits.max_memory_bytes = config_.sandbox_mem_limit_bytes;
    limits.cpu_time_s = config_.sandbox_cpu_limit_s;
    limits.wall_deadline_ms = sandbox_deadline_ms;

    const auto child_body = [&](int write_fd) -> int {
      if (crash_child) std::abort();
      AppOutcome child_outcome;
      child_outcome.seed = outcome.seed;
      (void)run_attempt(job, child_outcome, attempt, index, worker_id);
      const support::Bytes stream =
          encode_sandbox_result(index, child_outcome);
      return support::write_fully(write_fd, stream.data(), stream.size()) ? 0
                                                                          : 3;
    };

    // Accumulate the attempt's wall time (fork + analysis + reap) on every
    // exit path, mirroring run_attempt's WallGuard.
    const support::Stopwatch attempt_clock;
    struct AttemptWall {
      const support::Stopwatch* clock;
      double* into;
      ~AttemptWall() { *into += clock->elapsed_ms(); }
    } wall_guard{&attempt_clock, &outcome.wall_ms};

    /// Resolve a sandbox-killed/crashed attempt: synthesized crash report,
    /// classified fate, fatal signal recorded. Always "failed".
    const auto synthesize = [&](SandboxFate fate, int signal,
                                std::string message) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message = std::move(message);
      outcome.sandbox_fate = fate;
      outcome.fatal_signal = static_cast<std::uint8_t>(signal);
      if (fate == SandboxFate::kTimedOut) outcome.timed_out = true;
      support::count(fate == SandboxFate::kCrashed ? "sandbox.crashed"
                                                   : "sandbox.killed");
      return true;
    };

    for (int respawn = 0;; ++respawn) {
      auto spawned = [&]() -> support::Result<support::Subprocess> {
        const support::Span spawn_span("sandbox", "spawn");
        if (support::fault_fire(support::FaultSite::kSandboxSpawn)) {
          return support::Result<support::Subprocess>::failure(
              support::fault_message(support::FaultSite::kSandboxSpawn));
        }
        return support::Subprocess::spawn(child_body, limits);
      }();
      if (!spawned.ok()) {
        return synthesize(SandboxFate::kCrashed, 0,
                          "sandbox: spawn failed: " + spawned.error());
      }
      support::SubprocessResult waited;
      {
        const support::Span wait_span("sandbox", "wait");
        support::Subprocess child = std::move(spawned).take();
        waited = child.wait();
      }
      if (waited.deadline_killed) {
        return synthesize(
            SandboxFate::kTimedOut, SIGKILL,
            support::format(
                "sandbox: killed after exceeding the %.0f ms wall deadline",
                sandbox_deadline_ms));
      }
      if (waited.exited && waited.exit_code == support::kOomExitCode) {
        return synthesize(SandboxFate::kOomKilled, 0,
                          "sandbox: allocation failed under the memory limit");
      }
      if (!waited.exited && waited.term_signal == SIGKILL) {
        // A SIGKILL that is not ours: the kernel OOM killer or an external
        // kill, indistinguishable from here (see kExternalKillRespawns).
        if (respawn < kExternalKillRespawns) {
          support::count("sandbox.respawned");
          continue;
        }
        return synthesize(SandboxFate::kOomKilled, SIGKILL,
                          "sandbox: child SIGKILLed repeatedly "
                          "(kernel out-of-memory kill)");
      }
      if (!waited.exited) {
        return synthesize(SandboxFate::kCrashed, waited.term_signal,
                          support::format("sandbox: child died on signal %d",
                                          waited.term_signal));
      }
      if (waited.exit_code != 0) {
        return synthesize(
            SandboxFate::kCrashed, 0,
            support::format("sandbox: child exited with code %d",
                            waited.exit_code));
      }
      // Clean exit: decode the shipped outcome, honoring the torn-pipe
      // injection site (which simulates a frame damaged in transit).
      auto decoded =
          support::fault_fire(support::FaultSite::kSandboxPipe)
              ? support::Result<DecodedOutcome>::failure(
                    support::fault_message(support::FaultSite::kSandboxPipe))
              : decode_sandbox_result(waited.output);
      if (!decoded.ok()) {
        return synthesize(SandboxFate::kCrashed, 0, decoded.error());
      }
      AppOutcome shipped = std::move(decoded.value().outcome);
      if (decoded.value().index != index || shipped.seed != outcome.seed) {
        return synthesize(SandboxFate::kCrashed, 0,
                          "sandbox: result frame for the wrong app");
      }
      outcome.report = std::move(shipped.report);
      if (shipped.timed_out) outcome.timed_out = true;
      return shipped.timed_out ||
             outcome.report.status == core::DynamicStatus::kCrash;
    }
  };

  // --- persistent worker pool (docs/ISOLATION.md §3) -----------------------
  // One long-lived forked child per driver thread, dispatched over a framed
  // RPC pipe: the fork cost is amortized over every app the worker serves,
  // while the per-attempt failure taxonomy (crash / OOM / deadline /
  // external kill) classifies exactly as fork-per-app mode does. Ownership
  // is strictly 1:1 — each thread only ever touches its own slot, so the
  // vector needs no locks.
  std::vector<std::optional<support::PoolWorker>> pool_workers(
      config_.isolation_mode == IsolationMode::kPool ? result.threads : 0);

  /// Child-side serve loop (runs in the forked worker): one framed request
  /// per iteration, each running the *identical* run_attempt machinery the
  /// thread and fork-per-app modes use — which is what keeps clean pool
  /// outcomes byte-identical to both. EOF on the request pipe is the
  /// graceful-shutdown signal; any protocol damage exits loudly (a
  /// desynchronized stream cannot be resynchronized).
  const auto pool_serve = [&](int request_fd, int response_fd) -> int {
    support::Bytes message;
    for (;;) {
      std::uint8_t header[support::kPoolMessageHeader];
      const ssize_t got =
          support::read_exact(request_fd, header, sizeof header);
      if (got == 0) return 0;  // clean EOF between requests: shut down
      if (got != static_cast<ssize_t>(sizeof header)) return 3;
      const std::uint32_t payload_len =
          static_cast<std::uint32_t>(header[8]) |
          (static_cast<std::uint32_t>(header[9]) << 8) |
          (static_cast<std::uint32_t>(header[10]) << 16) |
          (static_cast<std::uint32_t>(header[11]) << 24);
      if (payload_len > support::kPoolMaxMessageBytes) return 3;
      message.assign(header, header + sizeof header);
      message.resize(sizeof header + payload_len);
      if (payload_len > 0 &&
          support::read_exact(request_fd, message.data() + sizeof header,
                              payload_len) !=
              static_cast<ssize_t>(payload_len)) {
        return 3;
      }
      const auto request = decode_pool_request(message);
      if (!request.ok()) return 3;
      const PoolRequest& req = request.value();
      if (req.app_index >= jobs.size()) return 3;
      // The injected sandbox.crash decision is drawn in the supervisor
      // (deterministically) and *executed* here as a real abort, exactly
      // like the fork-per-app child.
      if (req.crash_child) std::abort();
      AppOutcome child_outcome;
      child_outcome.seed = req.seed;
      (void)run_attempt(jobs[req.app_index], child_outcome, req.attempt,
                        req.app_index, req.worker);
      const support::Bytes response =
          encode_pool_response(req.app_index, child_outcome);
      if (!support::write_fully(response_fd, response.data(),
                                response.size())) {
        return 3;
      }
    }
  };

  /// One pooled attempt: same preamble, fault sites, classification ladder
  /// and synthesized messages as sandbox_attempt — only the mechanics of
  /// reaching the child differ (a framed RPC instead of a fork). Worker
  /// recycling (injected, after K apps, or on RSS growth) happens strictly
  /// *between* attempts, so it can never change an outcome.
  const auto pool_attempt = [&](const AppJob& /*job: child looks it up*/,
                                AppOutcome& outcome, std::uint32_t attempt,
                                std::size_t index,
                                std::size_t worker_id) -> bool {
    outcome.attempts = attempt + 1;
    outcome.sandbox_fate = SandboxFate::kNone;
    outcome.fatal_signal = 0;

    const support::TraceContextScope trace_context(
        trace_app_id(index), attempt, static_cast<std::uint32_t>(worker_id));

    std::optional<support::FaultSession> sandbox_faults;
    std::optional<support::FaultScope> sandbox_scope;
    if (options.faults != nullptr && !options.faults->empty()) {
      sandbox_faults.emplace(
          *options.faults,
          support::fault_session_seed(outcome.seed ^ kSandboxFaultSalt,
                                      attempt));
      sandbox_scope.emplace(&*sandbox_faults);
    }
    const bool crash_child =
        support::fault_fire(support::FaultSite::kSandboxCrash);

    support::SubprocessLimits limits;
    limits.max_memory_bytes = config_.sandbox_mem_limit_bytes;
    limits.cpu_time_s = config_.sandbox_cpu_limit_s;
    limits.wall_deadline_ms = sandbox_deadline_ms;

    const support::Stopwatch attempt_clock;
    struct AttemptWall {
      const support::Stopwatch* clock;
      double* into;
      ~AttemptWall() { *into += clock->elapsed_ms(); }
    } wall_guard{&attempt_clock, &outcome.wall_ms};

    const auto synthesize = [&](SandboxFate fate, int signal,
                                std::string message) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message = std::move(message);
      outcome.sandbox_fate = fate;
      outcome.fatal_signal = static_cast<std::uint8_t>(signal);
      if (fate == SandboxFate::kTimedOut) outcome.timed_out = true;
      support::count(fate == SandboxFate::kCrashed ? "sandbox.crashed"
                                                   : "sandbox.killed");
      return true;
    };

    std::optional<support::PoolWorker>& slot = pool_workers[worker_id];
    for (int respawn = 0;; ++respawn) {
      // The spawn fault is drawn *unconditionally* — "would the spawn this
      // attempt might need fail?" — never gated on whether this thread's
      // worker happens to be alive. Gating it on pool state would make the
      // hit stream (and therefore which apps fail under p: mode) depend on
      // the worker count, breaking byte-identical reports at any -j.
      const bool spawn_fault =
          support::fault_fire(support::FaultSite::kPoolSpawn);
      if (spawn_fault) {
        if (slot.has_value()) {
          slot->kill();
          slot.reset();
        }
        return synthesize(
            SandboxFate::kCrashed, 0,
            "sandbox: spawn failed: " +
                support::fault_message(support::FaultSite::kPoolSpawn));
      }
      if (!slot.has_value()) {
        const support::Span spawn_span("sandbox", "pool.spawn");
        auto spawned = support::PoolWorker::spawn(pool_serve, limits);
        if (!spawned.ok()) {
          return synthesize(SandboxFate::kCrashed, 0,
                            "sandbox: spawn failed: " + spawned.error());
        }
        slot.emplace(std::move(spawned).take());
        support::count("sandbox.pool.spawned");
      }

      PoolRequest request;
      request.app_index = index;
      request.attempt = attempt;
      request.seed = outcome.seed;
      request.worker = static_cast<std::uint32_t>(worker_id);
      request.crash_child = crash_child;
      support::PoolRpcResult rpc;
      {
        const support::Span rpc_span("sandbox", "pool.rpc");
        support::count("sandbox.pool.rpcs");
        rpc = slot->call(encode_pool_request(request), kPoolRpcMagic,
                         sandbox_deadline_ms);
      }

      using RpcStatus = support::PoolRpcResult::Status;
      if (rpc.status == RpcStatus::kTimeout) {
        slot.reset();
        return synthesize(
            SandboxFate::kTimedOut, SIGKILL,
            support::format(
                "sandbox: killed after exceeding the %.0f ms wall deadline",
                sandbox_deadline_ms));
      }
      if (rpc.status == RpcStatus::kWorkerExit ||
          rpc.status == RpcStatus::kError) {
        slot.reset();
        if (rpc.exited && rpc.exit_code == support::kOomExitCode) {
          return synthesize(
              SandboxFate::kOomKilled, 0,
              "sandbox: allocation failed under the memory limit");
        }
        if (!rpc.exited && rpc.term_signal == SIGKILL) {
          // A SIGKILL that is not ours: kernel OOM killer or an external
          // kill. The in-flight app is transparently re-dispatched to a
          // fresh worker, bounded exactly like fork mode's respawns.
          if (respawn < kExternalKillRespawns) {
            support::count("sandbox.respawned");
            continue;
          }
          return synthesize(SandboxFate::kOomKilled, SIGKILL,
                            "sandbox: child SIGKILLed repeatedly "
                            "(kernel out-of-memory kill)");
        }
        if (!rpc.exited && rpc.term_signal != 0) {
          return synthesize(
              SandboxFate::kCrashed, rpc.term_signal,
              support::format("sandbox: child died on signal %d",
                              rpc.term_signal));
        }
        if (rpc.exited && rpc.exit_code != 0) {
          return synthesize(
              SandboxFate::kCrashed, 0,
              support::format("sandbox: child exited with code %d",
                              rpc.exit_code));
        }
        return synthesize(SandboxFate::kCrashed, 0,
                          rpc.error.empty()
                              ? "sandbox: worker exited before shipping a "
                                "response"
                              : rpc.error);
      }

      // Clean response: decode it, honoring the torn-RPC injection site.
      auto decoded =
          support::fault_fire(support::FaultSite::kPoolRpc)
              ? support::Result<DecodedOutcome>::failure(
                    support::fault_message(support::FaultSite::kPoolRpc))
              : decode_pool_response(rpc.message);
      if (!decoded.ok()) {
        // A response that framed but does not decode means the stream can
        // no longer be trusted: retire the worker along with the outcome.
        slot->kill();
        slot.reset();
        return synthesize(SandboxFate::kCrashed, 0, decoded.error());
      }
      AppOutcome shipped = std::move(decoded.value().outcome);
      if (decoded.value().index != index || shipped.seed != outcome.seed) {
        slot->kill();
        slot.reset();
        return synthesize(SandboxFate::kCrashed, 0,
                          "sandbox: result frame for the wrong app");
      }
      outcome.report = std::move(shipped.report);
      if (shipped.timed_out) outcome.timed_out = true;

      // Between-attempt recycling: the outcome above is already settled, so
      // retiring the worker here can never change a report — only reset its
      // accumulated CPU time and heap growth.
      const bool recycle =
          support::fault_fire(support::FaultSite::kPoolRecycle) ||
          (config_.pool_recycle_apps > 0 &&
           slot->served() >= config_.pool_recycle_apps) ||
          (config_.pool_recycle_rss_bytes > 0 &&
           slot->rss_bytes() > config_.pool_recycle_rss_bytes);
      if (recycle) {
        slot->shutdown();
        slot.reset();
        support::count("sandbox.pool.recycled");
      }
      return shipped.timed_out ||
             outcome.report.status == core::DynamicStatus::kCrash;
    }
  };

  /// Attempt dispatcher: the retry policy below is mode-blind; only the
  /// mechanics of one attempt differ between the isolation modes.
  const auto one_attempt = [&](const AppJob& job, AppOutcome& outcome,
                               std::uint32_t attempt, std::size_t index,
                               std::size_t worker_id) {
    switch (config_.isolation_mode) {
      case IsolationMode::kForkPerApp:
        return sandbox_attempt(job, outcome, attempt, index, worker_id);
      case IsolationMode::kPool:
        return pool_attempt(job, outcome, attempt, index, worker_id);
      case IsolationMode::kOff:
        break;
    }
    return run_attempt(job, outcome, attempt, index, worker_id);
  };

  /// Full per-app policy: timeout + single-retry-then-quarantine
  /// (docs/FAULTS.md), wrapped in the escaping-exception belt so that an
  /// exception leaking out of the attempt machinery itself still resolves
  /// into a consistent outcome — attempts ≥ 1, wall time accumulated by
  /// the attempt's WallGuard, timed_out derived by the same budget rule —
  /// instead of terminating the driver.
  const auto analyze_app = [&](const AppJob& job, AppOutcome& outcome,
                               std::size_t index, std::size_t worker) {
    outcome.seed = seed_of(index);
    try {
      bool failed = one_attempt(job, outcome, 0, index, worker);
      if (failed && options.retry_on_crash) {
        // The retry's fault session is salted by the attempt, so transient
        // injected faults clear deterministically; if the retry fails too,
        // the app is quarantined — its final report keeps its Table II
        // bucket.
        support::count("runner.retry");
        failed = one_attempt(job, outcome, 1, index, worker);
        outcome.quarantined = failed;
      }
    } catch (const std::exception& e) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message =
          std::string("runner: escaped attempt machinery: ") + e.what();
      if (outcome.attempts == 0) outcome.attempts = 1;
      // wall_ms was already accumulated by the attempt's WallGuard; do NOT
      // overwrite it here (the old assignment was the =/+= mixup this
      // guard removes). The budget check runs over the accumulated total —
      // conservative, since the per-attempt split is unknowable here.
      if (options.max_app_wall_ms > 0.0 &&
          outcome.wall_ms > options.max_app_wall_ms) {
        outcome.timed_out = true;
      }
    } catch (...) {
      outcome.report = core::AppReport{};
      outcome.report.status = core::DynamicStatus::kCrash;
      outcome.report.crash_message = "runner: escaped attempt machinery";
      if (outcome.attempts == 0) outcome.attempts = 1;
      if (options.max_app_wall_ms > 0.0 &&
          outcome.wall_ms > options.max_app_wall_ms) {
        outcome.timed_out = true;
      }
    }
    // A sandbox fate surviving to the final attempt always quarantines:
    // an app the OS had to kill is excluded from trust even when
    // retry_on_crash is off (docs/ISOLATION.md).
    if (outcome.sandbox_fate != SandboxFate::kNone) outcome.quarantined = true;
    outcome.completed = true;
    support::count("runner.apps");
    if (outcome.timed_out) support::count("runner.timed_out");
    if (outcome.quarantined) support::count("runner.quarantined");
    support::observe_us("runner.app_wall",
                        static_cast<std::uint64_t>(outcome.wall_ms * 1000.0));
  };

  /// Install the driver fault session (shared with the journal sites) for
  /// the duration of a cache call, serializing its hit counters under the
  /// journal mutex. A no-op (and no lock) when injection is off.
  struct DriverFaultGuard {
    std::optional<std::unique_lock<std::mutex>> lock;
    std::optional<support::FaultScope> scope;
    DriverFaultGuard(std::optional<support::FaultSession>& session,
                     std::mutex& mutex) {
      if (session.has_value()) {
        lock.emplace(mutex);
        scope.emplace(&*session);
      }
    }
  };

  /// Cache-aware analysis of one app (docs/CACHE.md): content-addressed
  /// lookup first, full analysis on a miss, insert after. Cache faults
  /// degrade — a read fault is a miss, a write fault drops the entry — so
  /// cached and uncached runs produce byte-identical reports.
  const auto process_app = [&](const AppJob& job, AppOutcome& outcome,
                               std::size_t index, std::size_t worker_id) {
    if (!cache.has_value()) {
      analyze_app(job, outcome, index, worker_id);
      return;
    }
    CacheKey key;
    key.config = config_fp;
    key.seed = seed_of(index);
    std::optional<AppOutcome> hit;
    {
      // The span covers the digest too: content addressing is the real
      // cost of a lookup on large packages.
      const support::Span lookup_span("cache", "lookup");
      key.apk = support::sha256(job.apk.span());
      const DriverFaultGuard faults(driver_faults, journal_mutex);
      hit = cache->lookup(key);
    }
    if (hit.has_value()) {
      outcome = std::move(*hit);
      outcome.cache_hit = true;
      outcome.cache_checked = true;
      support::count("cache.hit");
      return;
    }
    support::count("cache.miss");
    analyze_app(job, outcome, index, worker_id);
    outcome.cache_checked = true;
    // A sandbox-killed outcome is a fact about the sandbox environment
    // (limits, deadline, external kills), not about the app content the
    // key addresses — never cache it; the app recomputes next run.
    if (outcome.sandbox_fate != SandboxFate::kNone) return;
    const DriverFaultGuard faults(driver_faults, journal_mutex);
    cache->insert(key, outcome);
  };

  /// Write-ahead append of one finished outcome. Returns false when the
  /// run must abort (failed append or injected driver kill).
  const auto journal_outcome = [&](std::size_t index,
                                   const AppOutcome& outcome) {
    // The span covers encode + lock wait + append, so the trace shows
    // journal contention as well as raw write latency (the write-only
    // latency lives in the journal.append_write histogram).
    const support::Span journal_span("journal", "append");
    // One long-lived encode buffer per worker thread: capacity sticks
    // around after the first few appends, so encoding stops allocating.
    thread_local support::ByteWriter encoder;
    encoder.clear();
    encode_outcome_into(index, outcome, encoder);
    const support::Bytes& payload = encoder.data();
    support::count("journal.append_bytes", payload.size());
    const std::lock_guard<std::mutex> lock(journal_mutex);
    if (aborted.load(std::memory_order_relaxed)) return false;
    // Install the driver fault session (if armed) so the journal.append
    // site inside JournalWriter::append and the driver.kill checked
    // boundary below draw from the same deterministic hit stream.
    std::optional<support::FaultScope> scope;
    if (driver_faults.has_value()) scope.emplace(&*driver_faults);
    const support::Status appended = journal->append(payload);
    if (!appended.ok()) {
      abort_message = appended.error();
      aborted.store(true, std::memory_order_relaxed);
      return false;
    }
    if (support::fault_fire(support::FaultSite::kDriverKill)) {
      abort_message = support::fault_message(support::FaultSite::kDriverKill) +
                      support::format(" after %zu journal append(s)",
                                      journal->appended());
      aborted.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  };

  // Each worker claims the next unprocessed shard slot, maps it to its
  // global corpus index (slot == index when unsharded), analyzes it with
  // its global-index-derived seed and writes into that index's pre-sized
  // outcome slot — disjoint writes, no locks on the hot path (the journal
  // mutex is only ever taken when journaling is enabled).
  const auto worker = [&](std::size_t worker_id) {
    for (;;) {
      if (should_quit()) break;
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= shard_apps) break;
      const std::size_t index = global_index_of(slot);
      if (done[index]) continue;  // replayed from the resume journal
      AppOutcome& outcome = result.outcomes[index];
      // Ambient tagging for the journal-append span (the per-attempt spans
      // install their own nested context with the attempt ordinal).
      const support::TraceContextScope trace_context(
          trace_app_id(index), 0, static_cast<std::uint32_t>(worker_id));
      process_app(jobs[index], outcome, index, worker_id);
      if (journal.has_value() && !journal_outcome(index, outcome)) break;
    }
    // Retire this thread's pooled worker gracefully (EOF-driven exit) on
    // every way out of the loop — corpus drained, graceful stop, abort.
    if (worker_id < pool_workers.size() && pool_workers[worker_id]) {
      pool_workers[worker_id]->shutdown();
      pool_workers[worker_id].reset();
    }
  };

  if (result.threads <= 1) {
    worker(0);  // serial fast path: no thread spawn, same code path
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(result.threads);
    for (std::size_t t = 0; t < result.threads; ++t) {
      pool.emplace_back(worker, t);
    }
    pool.clear();  // join
  }

  // Reduce the stats once, in corpus order: deterministic counts *and*
  // deterministic floating-point sums, independent of worker count and of
  // which outcomes were replayed vs. analyzed. The same ordered pass feeds
  // the corpus-wide unique-binary dedup table (docs/CACHE.md), so its
  // stats — and which run first persists a shared blob — are deterministic
  // too.
  BinaryDedupStore dedup(
      config_.cache_dir.empty() ? std::string{} : config_.cache_dir + "/blobs");
  for (const auto& outcome : result.outcomes) {
    if (!outcome.completed) continue;
    result.stats.absorb(outcome);
    dedup.absorb(outcome.report);
    if (outcome.replayed) {
      ++result.replayed;
    } else {
      ++result.analyzed;
    }
  }
  result.dedup = dedup.stats();

  // Seal the journal and the cache before reporting the run's fate:
  // whatever happens next (return or throw), the files on disk are
  // complete, compacted and resumable.
  std::size_t appended_by_this_run = 0;
  if (journal.has_value()) {
    appended_by_this_run = journal->appended();
    const support::Status sealed = journal->seal();
    if (!sealed.ok()) support::log_warn("driver", sealed.error());
    journal.reset();
  }
  if (cache.has_value()) {
    const CacheStats cache_stats = cache->stats();
    result.cache_evictions = cache_stats.evictions;
    result.cache_invalidated = cache_stats.invalidated;
    result.cache_write_failures = cache_stats.write_failures;
    const support::Status sealed = cache->seal();
    if (!sealed.ok()) support::log_warn("driver", sealed.error());
    cache.reset();
  }

  if (aborted.load(std::memory_order_relaxed)) {
    throw RunAborted("runner: run aborted mid-corpus: " + abort_message,
                     appended_by_this_run);
  }

  result.interrupted = result.completed() < shard_apps;
  result.wall_ms = corpus_clock.elapsed_ms();
  return result;
}

CorpusResult CorpusRunner::run(const appgen::Corpus& corpus) const {
  const auto jobs = jobs_from_corpus(corpus);
  return run(jobs);
}

std::vector<AppJob> jobs_from_corpus(const appgen::Corpus& corpus) {
  std::vector<AppJob> jobs;
  jobs.reserve(corpus.apps.size());
  for (const auto& app : corpus.apps) {
    AppJob job;
    job.apk = app.apk;
    job.scenario = [&app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace dydroid::driver
