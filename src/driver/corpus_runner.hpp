// Parallel corpus driver: maps one shared, immutable DyDroid pipeline over
// an app corpus with a fixed-size worker pool, the way the paper pushed
// 58,739 Google-Play apps through the Figure-1 pipeline.
//
// Guarantees:
//   * Determinism — each app's fuzzing seed derives from its corpus index
//     (seed_for_app), never from a shared counter, so the per-app reports
//     are byte-identical regardless of worker count or scheduling.
//   * Ordering — outcomes come back in corpus order; every downstream
//     table printer iterates exactly as the serial loop did.
//   * Isolation — a stage failure (or stray exception) in one app becomes
//     that app's crash outcome; it never aborts the batch.
//   * Lock-free hot path — workers write to pre-sized outcome slots;
//     AggregateStats are reduced once, in corpus order, after the pool
//     joins (order-deterministic, including the floating-point sums).
//   * Crash safety (docs/CHECKPOINT.md) — with a journal configured, every
//     finished outcome is appended to a CRC-framed write-ahead log before
//     the run advances; a killed run resumes by replaying the journal and
//     re-running only the missing apps, reproducing the uninterrupted
//     run's reports byte-for-byte. With no journal configured the hot path
//     is untouched (a single pointer check per app).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/pipeline.hpp"
#include "driver/binary_dedup.hpp"

namespace dydroid::driver {

/// Default seed base: the historical bench corpus seed origin.
inline constexpr std::uint64_t kDefaultSeedBase = 0xBE9C0000ull;

/// Hard corpus-size ceiling. Global app indices are the identity that
/// threads through seeds, journal records, cache keys and the u32 trace
/// context (whose kTraceNoApp sentinel is 0xFFFFFFFF), so the largest legal
/// index is 0xFFFFFFFE. validate_runner_config rejects bigger corpora
/// loudly instead of letting the index silently truncate at the trace
/// boundary.
inline constexpr std::uint64_t kMaxCorpusApps = 0xFFFFFFFFull;

/// Seed for the app at `index`. Index-derived (not a shared counter), so an
/// app keeps its seed when the corpus is filtered, reordered or sharded.
[[nodiscard]] constexpr std::uint64_t seed_for_app(std::uint64_t base,
                                                   std::size_t index) {
  return base + static_cast<std::uint64_t>(index);
}

/// True when `base + index` would wrap for some index in [0, count): two
/// distinct apps would silently collide on one seed. Checked (loudly) by
/// validate_runner_config before any seed is derived.
[[nodiscard]] constexpr bool seed_range_overflows(std::uint64_t base,
                                                  std::uint64_t count) {
  return count > 0 &&
         base > std::numeric_limits<std::uint64_t>::max() - (count - 1);
}

/// Apps the shard `shard_index` of `shard_count` owns out of a corpus of
/// `corpus_size`: the global indices ≡ shard_index (mod shard_count).
/// shard_count 0 means "unsharded" (the whole corpus).
[[nodiscard]] constexpr std::uint64_t shard_app_count(
    std::uint64_t corpus_size, std::uint32_t shard_index,
    std::uint32_t shard_count) {
  if (shard_count == 0) return corpus_size;
  if (shard_index >= corpus_size) return 0;
  return (corpus_size - shard_index + shard_count - 1) / shard_count;
}

/// How analysis attempts are contained (docs/ISOLATION.md).
enum class IsolationMode : std::uint8_t {
  /// Thread mode: attempts run on the worker thread. Fastest; a wild
  /// crash in one app takes the whole driver down.
  kOff = 0,
  /// One forked child per attempt (support::Subprocess): full containment,
  /// but every app pays fork + pipe + waitpid.
  kForkPerApp = 1,
  /// One persistent forked child per worker thread (support::PoolWorker),
  /// dispatched over a framed RPC pipe: the same containment and
  /// crash/OOM/timeout classification at a fraction of the per-app cost —
  /// one fork is amortized over every app the worker serves.
  kPool = 2,
};

/// How the process sandbox disposed of an app's final attempt when
/// isolation is on (docs/ISOLATION.md). kNone for thread-mode
/// outcomes and for sandboxed apps whose child exited cleanly — including
/// apps whose *analysis* crashed in the ordinary, in-process-catchable way.
enum class SandboxFate : std::uint8_t {
  kNone = 0,
  /// The child died abnormally (fatal signal recorded in fatal_signal) or
  /// returned a reserved failure code: a wild write, an abort, a torn
  /// result pipe. The app keeps a synthesized crash report.
  kCrashed = 1,
  /// The child was killed for memory: its allocator failed under
  /// RLIMIT_AS (clean reserved-code exit) or the kernel OOM-killed it.
  kOomKilled = 2,
  /// The supervisor SIGKILLed the child past the sandbox wall deadline —
  /// the preemptive version of the max_app_wall_ms watchdog.
  kTimedOut = 3,
};

/// One unit of corpus work. The APK is a refcounted Blob view (enqueueing
/// never copies package bytes); the scenario closure is referenced, so the
/// corpus must outlive the run() call.
struct AppJob {
  support::Blob apk;
  /// Per-app device preparation (hosted payloads, companion apps, files).
  std::function<void(os::Device&)> scenario;
  /// Explicit seed override. When unset, the seed derives from the job's
  /// position (seed_for_app). Set this to the app's *original* corpus seed
  /// when running a filtered/reordered subset, so every app reproduces its
  /// full-run report byte-for-byte.
  std::optional<std::uint64_t> seed;
};

/// Per-app result with timing, in corpus order.
struct AppOutcome {
  core::AppReport report;
  std::uint64_t seed = 0;
  /// Total wall time spent on the app, summed across attempts. Recorded on
  /// every path — including crash outcomes and escaping exceptions.
  double wall_ms = 0.0;
  /// Analysis attempts consumed (2 when the retry policy re-ran the app).
  std::uint32_t attempts = 1;
  /// An attempt exceeded PipelineOptions::max_app_wall_ms.
  bool timed_out = false;
  /// The final attempt still crashed/timed out under retry_on_crash; the
  /// app is excluded from trust but keeps its Table II bucket.
  bool quarantined = false;
  /// The slot holds a real outcome (analyzed or replayed). False only in
  /// the partial results of an interrupted/aborted run. Not journaled.
  bool completed = false;
  /// The outcome was restored from a resume journal instead of analyzed
  /// by this process. Not journaled.
  bool replayed = false;
  /// How the sandbox disposed of the final attempt (kNone outside isolate
  /// mode and for clean child exits). Journaled: replay and live runs
  /// classify kills identically.
  SandboxFate sandbox_fate = SandboxFate::kNone;
  /// The signal that terminated the child when sandbox_fate is kCrashed /
  /// kOomKilled / kTimedOut and the child died to a signal (0 when it
  /// exited with a reserved failure code instead). Journaled.
  std::uint8_t fatal_signal = 0;
  /// The outcome was served by the content-addressed result cache
  /// (docs/CACHE.md) instead of analyzed by this process. Not journaled.
  bool cache_hit = false;
  /// The result cache was consulted for this app (hit or miss). False when
  /// no cache is configured and for journal-replayed outcomes, so
  /// cache_hits + cache_misses + replayed == apps always holds. Not
  /// journaled.
  bool cache_checked = false;
};

/// Corpus-level tallies. Workers each reduce into a private instance on the
/// hot path; the runner merges them once after the pool joins.
struct AggregateStats {
  std::size_t apps = 0;
  // Table II outcome histogram.
  std::size_t not_run = 0;
  std::size_t rewriting_failure = 0;
  std::size_t no_activity = 0;
  std::size_t crashed = 0;
  std::size_t exercised = 0;
  std::size_t decompile_failed = 0;
  // Measurement aspects.
  std::size_t static_dcl = 0;        // apps whose code references DCL APIs
  std::size_t intercepted = 0;       // apps with ≥1 intercepted binary
  std::size_t remote_loaders = 0;    // apps loading network-fetched code
  std::size_t malware_carriers = 0;  // apps loading detected malware
  std::size_t vulnerable = 0;        // apps with ≥1 vulnerability finding
  std::size_t privacy_leaking = 0;   // apps whose loaded code leaks privacy
  std::size_t binaries = 0;          // total intercepted binaries
  std::size_t events = 0;            // total DCL events
  // Fault-handling policy (docs/FAULTS.md).
  std::size_t timed_out = 0;    // apps exceeding max_app_wall_ms
  std::size_t retried = 0;      // apps re-run by the retry policy
  std::size_t quarantined = 0;  // apps still failing after the retry
  // Process-isolation sandbox (docs/ISOLATION.md). Classified from the
  // final attempt's SandboxFate; sandboxed kills also land in the Table II
  // `crashed` bucket via their synthesized crash reports, so these split
  // the crash population by *mechanism* rather than adding to `apps`.
  std::size_t sandbox_crashed = 0;  // child signal deaths / reserved exits
  std::size_t killed_oom = 0;       // memory-limit and kernel-OOM kills
  std::size_t killed_timeout = 0;   // supervisor wall-deadline SIGKILLs
  // Result cache (docs/CACHE.md). Counted from cache-checked outcomes, so
  // cache_hits + cache_misses covers exactly the apps this process put
  // through the cache (journal-replayed apps never consult it).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  // Timing.
  double total_app_ms = 0.0;
  double max_app_ms = 0.0;

  /// Fold one finished app into the tallies.
  void absorb(const AppOutcome& outcome);
  /// Merge another (worker-local) tally into this one.
  void merge(const AggregateStats& other);
};

struct CorpusResult {
  std::vector<AppOutcome> outcomes;  // corpus order
  AggregateStats stats;
  double wall_ms = 0.0;     // whole-corpus wall time
  std::size_t threads = 0;  // worker count actually used
  // --- crash-safe run bookkeeping (docs/CHECKPOINT.md) ---------------------
  std::size_t analyzed = 0;  // outcomes produced by this process
  std::size_t replayed = 0;  // outcomes restored from the resume journal
  /// Apps this run was responsible for: the whole corpus unsharded, the
  /// shard's residue class under --shard I/N (docs/SHARDING.md). The
  /// outcomes vector always spans the full corpus; non-shard slots stay
  /// !completed.
  std::size_t shard_apps = 0;
  /// A graceful stop (RunnerConfig::stop) ended the run before every app
  /// completed; in-flight apps finished and were journaled.
  bool interrupted = false;
  // --- result cache bookkeeping (docs/CACHE.md) ----------------------------
  std::size_t cache_evictions = 0;      // entries dropped by capacity bounds
  std::size_t cache_invalidated = 0;    // stale-fingerprint entries at open
  std::size_t cache_write_failures = 0; // inserts dropped (fault / IO error)
  /// Corpus-wide unique-binary dedup table (the paper's apps-vs-unique-
  /// binaries measurement), reduced in corpus order after the pool joins.
  BinaryDedupStats dedup;

  [[nodiscard]] std::size_t completed() const { return analyzed + replayed; }
};

struct RunnerConfig {
  /// Worker count; 0 = DYDROID_JOBS env var, else hardware_concurrency.
  std::size_t jobs = 0;
  /// Base for the index-derived per-app seeds.
  std::uint64_t seed_base = kDefaultSeedBase;

  // --- corpus sharding (docs/SHARDING.md) ----------------------------------
  /// Split the corpus across shard_count independent runs: this run
  /// executes only global indices ≡ shard_index (mod shard_count), keeping
  /// global-index seeds, journal records, trace context and cache keys, so
  /// `dydroid merge` can fold the shard journals back into one journal
  /// whose replay is byte-identical to an unsharded run. 0 (the default)
  /// means unsharded; a sharded run with a journal stamps it with a
  /// support::ShardMeta record before any outcome.
  std::uint32_t shard_count = 0;
  /// This run's shard in [0, shard_count). Must be 0 when unsharded.
  std::uint32_t shard_index = 0;

  // --- crash-safe journaling (docs/CHECKPOINT.md) --------------------------
  /// Non-empty enables the write-ahead outcome journal: every finished app
  /// is appended (one CRC-framed record) before the run advances. Empty
  /// (the default) costs nothing on the hot path.
  std::string journal_path;
  /// Replay completed outcomes from `journal_path` before running: their
  /// apps are skipped, their stats re-merged, and new outcomes append to
  /// the same journal. Requires a non-empty journal_path.
  bool resume = false;
  /// fsync the journal after every record (power-loss durability); off by
  /// default — the journal is always fsync'd when sealed.
  bool journal_fsync = false;
  /// Graceful-shutdown flag (e.g. set by a SIGINT/SIGTERM handler): when
  /// it becomes true, workers finish their in-flight apps, the journal is
  /// sealed, and run() returns a partial result with interrupted=true.
  const std::atomic<bool>* stop = nullptr;

  // --- content-addressed result cache (docs/CACHE.md) ----------------------
  /// Non-empty enables the on-disk result cache: each app is looked up by
  /// (SHA-256 of its bytes, config fingerprint, seed) before analysis and
  /// inserted after, and unique intercepted binaries are persisted
  /// content-addressed under <cache_dir>/blobs. Empty (the default) costs
  /// one branch per app.
  std::string cache_dir;
  /// LRU capacity bounds for the cache; 0 = unlimited.
  std::size_t cache_max_entries = 0;
  std::uint64_t cache_max_bytes = 0;
  /// fsync the cache store after every insert; off by default.
  bool cache_fsync = false;

  // --- process-isolation sandbox (docs/ISOLATION.md) -----------------------
  /// Containment for analysis attempts. kForkPerApp runs every attempt in
  /// a fresh forked child; kPool dispatches attempts to one persistent
  /// forked worker per thread over a framed RPC pipe. In both modes clean
  /// exits decode to outcomes byte-identical to thread mode; signal
  /// deaths, OOM kills and wall-deadline kills become classified,
  /// quarantined crash outcomes instead of taking the driver down. Off by
  /// default: thread mode is untouched.
  IsolationMode isolation_mode = IsolationMode::kOff;
  /// True when any sandbox (fork-per-app or pool) is on.
  [[nodiscard]] bool isolated() const {
    return isolation_mode != IsolationMode::kOff;
  }
  /// Pool mode: retire a worker after it has served this many apps and
  /// fork a fresh one (0 = never). Resets accumulated RLIMIT_CPU time and
  /// heap growth; reports are unaffected — recycling happens between
  /// attempts.
  std::uint32_t pool_recycle_apps = 0;
  /// Pool mode: retire a worker whose resident set grows past this many
  /// bytes (0 = never). Checked between attempts via /proc/<pid>/statm.
  std::uint64_t pool_recycle_rss_bytes = 0;
  /// Child RLIMIT_AS in bytes (0 = inherit). Must comfortably exceed the
  /// parent's footprint — the limit covers the whole forked image. Ignored
  /// under ASan/TSan (support::address_space_limit_supported).
  std::uint64_t sandbox_mem_limit_bytes = 0;
  /// Child RLIMIT_CPU in seconds (0 = inherit).
  std::uint32_t sandbox_cpu_limit_s = 0;
  /// Wall budget per sandboxed attempt, after which the supervisor
  /// SIGKILLs the child. 0 derives a generous budget from the pipeline's
  /// max_app_wall_ms (so a hung stage is preempted, not just recorded) and
  /// means "no kill" when that is unset too.
  double sandbox_deadline_ms = 0.0;
};

/// Thrown by CorpusRunner::run when the run itself dies mid-corpus: a
/// journal append failed (including an injected FaultSite::kJournalAppend
/// torn write) or an injected FaultSite::kDriverKill fired at the checked
/// boundary after an append. The journal is sealed before throwing, so the
/// run is resumable with RunnerConfig::resume.
class RunAborted : public std::runtime_error {
 public:
  RunAborted(std::string message, std::size_t journaled)
      : std::runtime_error(std::move(message)), journaled_(journaled) {}
  /// Records appended to the journal by this process before the abort.
  [[nodiscard]] std::size_t journaled() const { return journaled_; }

 private:
  std::size_t journaled_ = 0;
};

/// Resolve a requested worker count: explicit > DYDROID_JOBS > hardware.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

/// Validate a runner configuration against the corpus it is about to run.
/// Throws std::runtime_error (loudly, before any app runs) on: a corpus
/// larger than kMaxCorpusApps (the u32 trace-context identity would
/// truncate), a seed base whose index-derived seeds would wrap
/// (seed_range_overflows — two apps would collide on one seed), shard
/// fields out of range, or resume without a journal path. Called by
/// CorpusRunner::run; exposed so tests can probe the boundaries without
/// materializing a corpus.
void validate_runner_config(const RunnerConfig& config,
                            std::uint64_t corpus_size);

class CorpusRunner {
 public:
  /// The pipeline is shared by all workers; it must stay alive and
  /// unmodified for the duration of every run() call.
  explicit CorpusRunner(const core::DyDroid& pipeline, RunnerConfig config = {});

  /// Run every job; returns outcomes in job order.
  [[nodiscard]] CorpusResult run(std::span<const AppJob> jobs) const;
  /// Convenience: run a generated corpus (jobs built via jobs_from_corpus).
  [[nodiscard]] CorpusResult run(const appgen::Corpus& corpus) const;

  [[nodiscard]] const RunnerConfig& config() const { return config_; }

 private:
  const core::DyDroid* pipeline_;
  RunnerConfig config_;
};

/// Build one AppJob per generated app (bytes + scenario referenced in
/// place; `corpus` must outlive the jobs).
[[nodiscard]] std::vector<AppJob> jobs_from_corpus(const appgen::Corpus& corpus);

}  // namespace dydroid::driver
