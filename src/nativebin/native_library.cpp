#include "nativebin/native_library.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace dydroid::nativebin {

using support::ParseError;

std::string_view arch_name(Arch arch) {
  switch (arch) {
    case Arch::Arm: return "ARM";
    case Arch::X86: return "x86";
  }
  return "?";
}

std::optional<NativeLibrary::Symbol> NativeLibrary::find_symbol(
    std::string_view name) const {
  for (const auto& cls : code_.classes()) {
    for (const auto& m : cls.methods) {
      if (m.is_static() && m.name == name) return Symbol{&cls, &m};
    }
  }
  return std::nullopt;
}

std::vector<std::string> NativeLibrary::exported_symbols() const {
  std::vector<std::string> out;
  for (const auto& cls : code_.classes()) {
    for (const auto& m : cls.methods) {
      if (m.is_static()) out.push_back(m.name);
    }
  }
  return out;
}

support::Bytes NativeLibrary::serialize() const {
  support::ByteWriter w;
  w.raw(support::to_bytes(kMagic));
  w.str(soname_);
  w.u8(static_cast<std::uint8_t>(arch_));
  w.blob(code_.serialize());
  return w.take();
}

NativeLibrary NativeLibrary::deserialize(std::span<const std::uint8_t> data) {
  // Fault-injection site: corrupt .so payload (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kNativeLoad)) {
    throw ParseError(support::fault_message(support::FaultSite::kNativeLoad));
  }
  support::ByteReader r(data);
  const auto magic = r.raw(kMagic.size());
  if (support::to_string(magic) != kMagic) {
    throw ParseError("bad SimNative magic");
  }
  NativeLibrary lib;
  lib.soname_ = r.str();
  const auto raw_arch = r.u8();
  if (raw_arch > static_cast<std::uint8_t>(Arch::X86)) {
    throw ParseError("bad SimNative arch");
  }
  lib.arch_ = static_cast<Arch>(raw_arch);
  const auto code = r.blob();
  lib.code_ = dex::DexFile::deserialize(code);
  return lib;
}

bool looks_like_native(std::span<const std::uint8_t> data) {
  const auto magic = NativeLibrary::kMagic;
  if (data.size() < magic.size()) return false;
  return std::equal(magic.begin(), magic.end(), data.begin(),
                    [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

std::string map_library_name(std::string_view name) {
  std::string out = "lib";
  out += name;
  out += ".so";
  return out;
}

}  // namespace dydroid::nativebin
