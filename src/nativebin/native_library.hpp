// SimNative: the ELF .so analogue. A native library carries
// architecture-tagged function bodies in the SimISA encoding plus an export
// table. The VM links exported symbols to `native`-flagged dex methods; the
// MAIL translator (MiniDroidNative) lifts the same bodies for malware
// analysis — matching the paper's claim that DroidNative handles binaries
// "compiled for various platforms, such as ARM and x86".
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dex/dexfile.hpp"

namespace dydroid::nativebin {

enum class Arch : std::uint8_t { Arm = 0, X86 = 1 };

std::string_view arch_name(Arch arch);

class NativeLibrary {
 public:
  NativeLibrary() = default;
  NativeLibrary(std::string soname, Arch arch)
      : soname_(std::move(soname)), arch_(arch) {}

  [[nodiscard]] const std::string& soname() const { return soname_; }
  [[nodiscard]] Arch arch() const { return arch_; }

  /// Function bodies live as static methods of synthetic classes inside an
  /// embedded SimDex pool; every static method is an exported symbol.
  [[nodiscard]] dex::DexFile& code() { return code_; }
  [[nodiscard]] const dex::DexFile& code() const { return code_; }

  /// Find an exported function by symbol (method) name.
  struct Symbol {
    const dex::ClassDef* cls = nullptr;
    const dex::Method* method = nullptr;
  };
  [[nodiscard]] std::optional<Symbol> find_symbol(
      std::string_view name) const;

  /// Names of all exported symbols.
  [[nodiscard]] std::vector<std::string> exported_symbols() const;

  [[nodiscard]] support::Bytes serialize() const;
  static NativeLibrary deserialize(std::span<const std::uint8_t> data);

  static constexpr std::string_view kMagic = "SNAT1";

 private:
  std::string soname_;
  Arch arch_ = Arch::Arm;
  dex::DexFile code_;
};

/// True if `data` begins with the SimNative magic.
bool looks_like_native(std::span<const std::uint8_t> data);

/// Map a library name to its file name, mirroring
/// java.lang.System.mapLibraryName: "foo" -> "libfoo.so".
std::string map_library_name(std::string_view name);

}  // namespace dydroid::nativebin
