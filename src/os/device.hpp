// SimDevice: the composed measurement device — filesystem, network, system
// services and package manager, equivalent to the paper's Samsung Galaxy
// Nexus running the instrumented Android 4.3.1 image.
#pragma once

#include <memory>

#include "os/network.hpp"
#include "os/package_manager.hpp"
#include "os/services.hpp"
#include "os/vfs.hpp"

namespace dydroid::os {

struct DeviceConfig {
  /// Android 4.3.1 = API level 18, the paper's measurement image.
  int api_level = 18;
  /// 0 = unlimited storage. The execution engine recovers from full-storage
  /// errors automatically (paper §I: "device storage running out").
  std::uint64_t storage_capacity_bytes = 0;
};

class Device {
 public:
  explicit Device(DeviceConfig config = {});

  [[nodiscard]] Vfs& vfs() { return vfs_; }
  [[nodiscard]] const Vfs& vfs() const { return vfs_; }
  [[nodiscard]] SystemServices& services() { return services_; }
  [[nodiscard]] const SystemServices& services() const { return services_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] PackageManager& package_manager() { return pm_; }
  [[nodiscard]] const PackageManager& package_manager() const { return pm_; }

  /// Install an app package (shared parsed image — no re-serialize).
  support::Status install(const apk::ApkImage& image) {
    return pm_.install(image);
  }
  /// Install from a parsed file only (serializes once).
  support::Status install(const apk::ApkFile& apk) { return pm_.install(apk); }

 private:
  Vfs vfs_;
  SystemServices services_;
  Network network_;
  PackageManager pm_;
};

}  // namespace dydroid::os
