// Package manager: installs SimApks onto the device, owns the package
// registry queried by PackageManager framework APIs (paper Table X
// "usage pattern": installed applications / installed packages).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apk/apk.hpp"
#include "support/error.hpp"

namespace dydroid::os {

class Vfs;

struct InstalledPackage {
  std::string pkg;
  manifest::Manifest manifest;
  std::string signer;
  std::string apk_path;  // /data/app/<pkg>.apk
};

class PackageManager {
 public:
  explicit PackageManager(Vfs* vfs) : vfs_(vfs) {}

  /// Install an APK image: registers the package, stores the image's
  /// serialized Blob under /data/app *without re-serializing*, creates the
  /// app's private data dir marker, and extracts bundled native libraries
  /// (as zero-copy entry views) into /data/data/<pkg>/lib/.
  support::Status install(const apk::ApkImage& image);
  /// Install from a parsed file only: serializes once, then installs.
  support::Status install(const apk::ApkFile& apk);
  support::Status uninstall(std::string_view pkg);

  [[nodiscard]] const InstalledPackage* find(std::string_view pkg) const;
  [[nodiscard]] bool is_installed(std::string_view pkg) const {
    return find(pkg) != nullptr;
  }
  [[nodiscard]] std::vector<std::string> installed_packages() const;
  [[nodiscard]] std::size_t count() const { return packages_.size(); }

 private:
  Vfs* vfs_;
  std::map<std::string, InstalledPackage, std::less<>> packages_;
};

}  // namespace dydroid::os
